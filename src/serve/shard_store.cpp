#include "serve/shard_store.hpp"

#include <cstdio>
#include <system_error>
#include <thread>
#include <utility>

#include "sched/artifact.hpp"
#include "serve/protocol.hpp"
#include "util/file.hpp"

namespace difftrace::serve {

namespace fs = std::filesystem;

ShardStore::ShardStore(fs::path root) : root_(std::move(root)) {
  fs::create_directories(root_ / "tmp");
  for (std::uint32_t shard = 0; shard < kShardCount; ++shard) fs::create_directories(shard_dir(shard));
  util::MutexLock lock(index_mu_);
  if (!load_index()) {  // NOLINT-DT(blocking-under-lock): constructor-time recovery; the store is not shared yet
    // A brand-new store legitimately has no index yet; only report a rebuild
    // when there was something to recover (a defective index, leftover
    // staging files, or orphaned archives).
    std::error_code ec;
    const bool pristine = !fs::exists(index_path(), ec);
    rebuild_index();  // NOLINT-DT(blocking-under-lock): constructor-time recovery; the store is not shared yet
    persist_index();  // NOLINT-DT(blocking-under-lock): constructor-time recovery; the store is not shared yet
    rebuilt_ = !pristine || !runs_.empty();
  }
}

bool ShardStore::valid_run_name(const std::string& name) {
  if (name.empty() || name.size() > 200 || name.front() == '.') return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                    c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

fs::path ShardStore::shard_dir(std::uint32_t shard) const {
  char label[3];
  std::snprintf(label, sizeof(label), "%02u", shard % kShardCount);
  return root_ / "shards" / label;
}

fs::path ShardStore::archive_path(const RunInfo& run) const {
  return shard_dir(run.shard) / (run.name + ".dtrc");
}

RunInfo ShardStore::ingest(const std::string& name, const trace::TraceStore& store, bool salvaged) {
  if (!valid_run_name(name))
    throw OpError(2, "invalid run name '" + name + "' (allowed: [A-Za-z0-9._-], no leading dot)");

  // Stage under a caller-unique name so concurrent ingests of the same run
  // never write the same staging file; the shard-directory rename below is
  // the single commit point.
  const auto tid = std::hash<std::thread::id>{}(std::this_thread::get_id());
  const auto staging = root_ / "tmp" / (name + "." + std::to_string(tid) + ".part");
  store.save(staging.string());

  RunInfo info;
  info.name = name;
  info.salvaged = salvaged;
  const auto stats = store.stats();
  info.traces = stats.trace_count;
  info.events = stats.total_events;
  try {
    const auto digest = util::digest_file_bytes(staging.string());
    info.bytes = digest.bytes;
    info.crc32 = digest.crc32;
    info.shard = digest.crc32 % kShardCount;
    {
      util::MutexLock lock(shard_mu_[info.shard]);
      fs::rename(staging, archive_path(info));  // NOLINT-DT(blocking-under-lock): commit is one rename; the shard lock exists to order exactly this
    }
  } catch (...) {
    std::error_code ec;
    fs::remove(staging, ec);
    throw;
  }

  std::optional<RunInfo> replaced;
  {
    util::MutexLock lock(index_mu_);
    if (const auto it = runs_.find(name); it != runs_.end()) replaced = it->second;
    runs_[name] = info;
    persist_index();  // NOLINT-DT(blocking-under-lock): index publication under index_mu_ is the crash-consistency contract
  }
  // A re-ingest that landed in a different shard leaves the old archive
  // behind; remove it outside the index lock (shard + index locks are never
  // nested) — harmless if a concurrent re-ingest already did.
  if (replaced && replaced->shard != info.shard) {
    util::MutexLock lock(shard_mu_[replaced->shard]);
    std::error_code ec;
    fs::remove(archive_path(*replaced), ec);
  }
  return info;
}

std::optional<RunInfo> ShardStore::lookup(const std::string& name) const {
  util::MutexLock lock(index_mu_);
  const auto it = runs_.find(name);
  if (it == runs_.end()) return std::nullopt;
  return it->second;
}

std::vector<RunInfo> ShardStore::list() const {
  util::MutexLock lock(index_mu_);
  std::vector<RunInfo> runs;
  runs.reserve(runs_.size());
  for (const auto& [name, info] : runs_) runs.push_back(info);
  return runs;
}

std::size_t ShardStore::size() const {
  util::MutexLock lock(index_mu_);
  return runs_.size();
}

bool ShardStore::load_index() {
  std::vector<std::uint8_t> frame;
  try {
    frame = util::read_file_bytes(index_path().string());  // NOLINT-DT(blocking-under-lock): load_index runs under the ctor/admin lock by design
  } catch (const std::exception&) {
    return false;
  }
  const auto payload = sched::open_artifact(frame, kArtifactServeIndex);
  if (!payload) return false;
  std::map<std::string, RunInfo> runs;
  try {
    sched::ArtifactReader reader(*payload);
    const auto count = reader.get_u64();
    for (std::uint64_t i = 0; i < count; ++i) {
      RunInfo info;
      info.name = reader.get_str();
      info.crc32 = reader.get_u32();
      info.shard = reader.get_u32();
      info.bytes = reader.get_u64();
      info.traces = reader.get_u64();
      info.events = reader.get_u64();
      info.salvaged = reader.get_bool();
      runs[info.name] = info;
    }
    if (!reader.at_end()) return false;
  } catch (const std::out_of_range&) {
    return false;
  }
  // The index is only trusted when the shards agree with it: an entry whose
  // archive vanished (or changed size) means the daemon died mid-mutation —
  // rebuild from disk instead of serving phantom runs.
  for (const auto& [name, info] : runs) {
    std::error_code ec;
    if (info.shard >= kShardCount || fs::file_size(archive_path(info), ec) != info.bytes || ec)
      return false;
  }
  runs_ = std::move(runs);
  return true;
}

void ShardStore::rebuild_index() {
  runs_.clear();
  for (std::uint32_t shard = 0; shard < kShardCount; ++shard) {
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(shard_dir(shard), ec)) {
      if (!entry.is_regular_file() || entry.path().extension() != ".dtrc") continue;
      RunInfo info;
      info.name = entry.path().stem().string();
      info.shard = shard;  // trust placement; CRC is provenance, not an address
      try {
        const auto digest = util::digest_file_bytes(entry.path().string());  // NOLINT-DT(blocking-under-lock): rebuild is an offline recovery scan under the admin lock
        info.bytes = digest.bytes;
        info.crc32 = digest.crc32;
        const auto salvage = trace::TraceStore::salvage(entry.path().string());  // NOLINT-DT(blocking-under-lock): rebuild is an offline recovery scan under the admin lock
        if (salvage.store.size() == 0) continue;  // nothing recoverable: not a run
        info.salvaged = !salvage.report.ok();
        const auto stats = salvage.store.stats();
        info.traces = stats.trace_count;
        info.events = stats.total_events;
      } catch (const std::exception&) {
        continue;  // unreadable file: skip, never fail the rebuild
      }
      runs_[info.name] = info;
    }
  }
  // Staging leftovers are pre-commit by definition; a rebuild is the
  // recovery point where they are known dead.
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_ / "tmp", ec)) fs::remove(entry.path(), ec);
}

void ShardStore::persist_index() {
  sched::ArtifactWriter writer;
  writer.put_u64(runs_.size());
  for (const auto& [name, info] : runs_) {
    writer.put_str(info.name);
    writer.put_u32(info.crc32);
    writer.put_u32(info.shard);
    writer.put_u64(info.bytes);
    writer.put_u64(info.traces);
    writer.put_u64(info.events);
    writer.put_bool(info.salvaged);
  }
  util::write_file_atomic(index_path().string(), sched::seal_artifact(kArtifactServeIndex, writer.bytes()));  // NOLINT-DT(blocking-under-lock): atomic index publish under index_mu_ is the crash-consistency contract
}

}  // namespace difftrace::serve
