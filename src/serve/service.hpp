// The serve daemon's brain, independent of any socket: Service turns one
// Request into one Response. Transport (serve/server) and process wiring
// (cli serve command) sit on either side of this class, which makes the
// whole protocol testable in-process with no file descriptors.
//
// Layering rule: src/serve must not depend on src/cli (cli links serve to
// host the commands), yet answers must be byte-identical to the cold CLI.
// The resolution is QueryOps — a bundle of callbacks the CLI layer fills
// with its OWN command bodies (cli::rank_stores, cli::check_store, ...).
// Service contributes what is serve-specific: run-name resolution through
// the shard store, hot pinning of decoded stores and built sessions, the
// resident artifact cache, and the response envelope.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "sched/cache.hpp"
#include "serve/hot_cache.hpp"
#include "serve/protocol.hpp"
#include "serve/shard_store.hpp"
#include "trace/store.hpp"

namespace difftrace::serve {

/// An archive pulled off disk, salvage-tolerantly.
struct LoadedArchive {
  trace::TraceStore store;
  bool salvaged = false;
};

/// The analysis callbacks the hosting layer provides. Every `opts` vector
/// holds raw CLI option tokens ("--k=12", "--side-by-side"); implementations
/// parse them with the cold CLI's parsers and throw OpError on bad usage.
struct QueryOps {
  std::function<LoadedArchive(const std::string& path, std::ostream& chatter)> load_archive;
  std::function<int(const trace::TraceStore& normal, const trace::TraceStore& faulty,
                    const std::vector<std::string>& opts, sched::Cache* cache, std::ostream& out,
                    std::ostream& chatter)>
      rank;
  std::function<int(const trace::TraceStore& store, const std::string& label,
                    const std::vector<std::string>& opts, const std::string& default_cache_dir,
                    std::ostream& out, std::ostream& chatter)>
      check;
  std::function<std::shared_ptr<const core::Session>(const trace::TraceStore& normal,
                                                     const trace::TraceStore& faulty,
                                                     const std::vector<std::string>& opts)>
      make_session;
  std::function<int(const core::Session& session, const std::string& trace,
                    const std::vector<std::string>& opts, std::ostream& out)>
      diff;
};

struct ServiceConfig {
  std::filesystem::path store_root = ".difftrace-store";
  /// Decoded stores / built sessions pinned in memory (each an LRU).
  std::size_t hot_capacity = 8;
};

class Service {
 public:
  /// Opens (or creates) the shard store under `config.store_root` and the
  /// resident artifact cache at <store_root>/cache. `log` receives daemon
  /// chatter (index rebuilds); responses carry per-request chatter instead.
  Service(ServiceConfig config, QueryOps ops, std::ostream& log);

  /// Parses and answers one request line. Never throws: every failure is an
  /// error response (parse failures get exit code 2 and an empty op echo).
  [[nodiscard]] Response handle_line(const std::string& line);

  /// Answers one parsed request. Never throws.
  [[nodiscard]] Response handle(const Request& req);

  /// Set once a shutdown request has been answered; the accept loop polls it.
  [[nodiscard]] bool shutdown_requested() const noexcept {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Out-of-band shutdown (signal handling in the hosting process).
  void request_shutdown() noexcept { shutdown_.store(true, std::memory_order_release); }

  [[nodiscard]] const ShardStore& shards() const noexcept { return shards_; }

 private:
  using StorePtr = HotCache::StorePtr;

  /// Resolves an ingested run name to its pinned decoded store (loading and
  /// pinning on miss). Throws OpError(2) for unknown names.
  StorePtr resident_store(const std::string& name, std::ostream& chatter);

  void op_ingest(const Request& req, Response& resp, std::ostream& out, std::ostream& chatter);
  void op_list(Response& resp, std::ostream& out);
  void op_rank(const Request& req, Response& resp, std::ostream& out, std::ostream& chatter);
  void op_check(const Request& req, Response& resp, std::ostream& out, std::ostream& chatter);
  void op_diff(const Request& req, Response& resp, std::ostream& out, std::ostream& chatter);
  void op_stats(Response& resp, std::ostream& out);

  ServiceConfig config_;
  QueryOps ops_;
  ShardStore shards_;
  HotCache hot_;
  sched::Cache cache_;  // resident artifact cache shared across requests
  std::ostream& log_;
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> errors_{0};
};

}  // namespace difftrace::serve
