#include "serve/protocol.hpp"

#include "util/json.hpp"

namespace difftrace::serve {

namespace {

std::string string_field(const util::JsonValue& doc, std::string_view key) {
  const auto* node = doc.find(key);
  if (!node) return {};
  if (node->kind != util::JsonValue::Kind::String)
    throw OpError(2, "request field '" + std::string(key) + "' must be a string");
  return node->string;
}

}  // namespace

Request parse_request(const std::string& line) {
  util::JsonValue doc;
  try {
    doc = util::parse_json(line);
  } catch (const std::exception& e) {
    throw OpError(2, std::string("malformed request: ") + e.what());
  }
  if (!doc.is_object()) throw OpError(2, "malformed request: expected a JSON object");

  Request req;
  req.op = string_field(doc, "op");
  if (req.op.empty()) throw OpError(2, "request is missing 'op'");
  req.request_id = string_field(doc, "request_id");
  req.path = string_field(doc, "path");
  req.name = string_field(doc, "name");
  req.run = string_field(doc, "run");
  req.normal = string_field(doc, "normal");
  req.faulty = string_field(doc, "faulty");
  req.trace = string_field(doc, "trace");
  if (const auto* opts = doc.find("opts")) {
    if (!opts->is_array()) throw OpError(2, "request field 'opts' must be an array");
    for (const auto& item : opts->array) {
      if (item.kind != util::JsonValue::Kind::String)
        throw OpError(2, "request field 'opts' must contain only strings");
      req.opts.push_back(item.string);
    }
  }
  return req;
}

void write_request(std::ostream& out, const Request& req) {
  {
    util::JsonWriter json(out, /*indent=*/-1);
    json.begin_object();
    json.field("op", req.op);
    json.field("request_id", req.request_id);
    if (!req.path.empty()) json.field("path", req.path);
    if (!req.name.empty()) json.field("name", req.name);
    if (!req.run.empty()) json.field("run", req.run);
    if (!req.normal.empty()) json.field("normal", req.normal);
    if (!req.faulty.empty()) json.field("faulty", req.faulty);
    if (!req.trace.empty()) json.field("trace", req.trace);
    if (!req.opts.empty()) {
      json.key("opts");
      json.begin_array();
      for (const auto& opt : req.opts) json.value(opt);
      json.end_array();
    }
    json.end_object();
  }
  out << "\n";
}

void write_response(std::ostream& out, const Response& resp) {
  {
    util::JsonWriter json(out, /*indent=*/-1);
    json.begin_object();
    json.field("serve_version", resp.serve_version);
    json.field("request_id", resp.request_id);
    json.field("op", resp.op);
    json.field("status", resp.status);
    json.field("exit_code", resp.exit_code);
    json.field("tool_version", resp.tool_version);
    json.key("command");
    json.begin_array();
    for (const auto& token : resp.command) json.value(token);
    json.end_array();
    json.field("wall_ns", resp.wall_ns);
    json.field("cpu_ns", resp.cpu_ns);
    json.field("peak_rss_kb", resp.peak_rss_kb);
    json.field("output", resp.output);
    json.field("chatter", resp.chatter);
    if (resp.status == "error") json.field("error", resp.error);
    for (const auto& [key, raw] : resp.extras) {
      json.key(key);
      json.raw_value(raw);
    }
    json.end_object();
  }
  out << "\n";
}

Response parse_response(const std::string& line) {
  const auto doc = util::parse_json(line);
  if (!doc.is_object()) throw std::runtime_error("malformed response: expected a JSON object");
  Response resp;
  resp.serve_version = doc.at("serve_version").as_uint();
  if (resp.serve_version != kServeVersion)
    throw std::runtime_error("serve_version mismatch: daemon speaks v" +
                             std::to_string(resp.serve_version) + ", client expects v" +
                             std::to_string(kServeVersion));
  resp.request_id = doc.at("request_id").as_string();
  resp.op = doc.at("op").as_string();
  resp.status = doc.at("status").as_string();
  resp.exit_code = static_cast<int>(doc.at("exit_code").as_int());
  resp.tool_version = doc.at("tool_version").as_string();
  for (const auto& token : doc.at("command").array) resp.command.push_back(token.as_string());
  resp.wall_ns = doc.at("wall_ns").as_uint();
  resp.cpu_ns = doc.at("cpu_ns").as_uint();
  resp.peak_rss_kb = doc.at("peak_rss_kb").as_uint();
  resp.output = doc.at("output").as_string();
  resp.chatter = doc.at("chatter").as_string();
  if (const auto* error = doc.find("error")) resp.error = error->as_string();
  return resp;
}

}  // namespace difftrace::serve
