// The serve wire protocol: line-delimited JSON over a local socket, one
// request document per line in, one response document per line out.
//
// Requests name an operation (ingest, list, rank, check, diff, stats,
// shutdown) plus its operands; analysis options travel as an `opts` array of
// raw "--key=value" CLI tokens so the daemon can hand them to the SAME
// option parsers the cold CLI uses — byte-identical answers fall out of the
// shared parser, not a parallel schema.
//
// Every response carries `serve_version` plus the RunManifest v1 shared
// fields (tool_version, command, exit_code, wall_ns, cpu_ns, peak_rss_kb) so
// tools/check_manifest.py --serve validates a response stream with the same
// typed-field checks it applies to manifests. Responses never interleave:
// result text is in `output`, stderr-style chatter in `chatter`.
#pragma once

#include <cstdint>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace difftrace::serve {

/// Bump when any response field changes meaning or shape.
inline constexpr std::uint64_t kServeVersion = 1;

/// A typed operation failure: carried to the client as an error response
/// with this exit code (2 = usage mistake, 1 = operation failure), matching
/// the exit codes the cold CLI would produce for the same input.
class OpError : public std::runtime_error {
 public:
  OpError(int exit_code, const std::string& message)
      : std::runtime_error(message), exit_code_(exit_code) {}

  [[nodiscard]] int exit_code() const noexcept { return exit_code_; }

 private:
  int exit_code_;
};

struct Request {
  std::string op;          // ingest | list | rank | check | diff | stats | shutdown
  std::string request_id;  // client-chosen correlation id, echoed verbatim
  std::string path;        // ingest: archive file to read
  std::string name;        // ingest: run name (default: archive stem)
  std::string run;         // check: ingested run to verify
  std::string normal;      // rank/diff: baseline run
  std::string faulty;      // rank/diff: faulty run
  std::string trace;       // diff: P.T trace label
  std::vector<std::string> opts;  // raw "--key=value" / "--flag" CLI tokens
};

struct Response {
  std::uint64_t serve_version = kServeVersion;
  std::string request_id;
  std::string op;
  std::string status;  // "ok" | "error"
  int exit_code = 0;
  std::string tool_version;
  std::vector<std::string> command;  // equivalent cold-CLI argv
  std::uint64_t wall_ns = 0;
  std::uint64_t cpu_ns = 0;
  std::uint64_t peak_rss_kb = 0;
  std::string output;   // the command's stdout, verbatim
  std::string chatter;  // the command's stderr-style chatter, verbatim
  std::string error;    // human-readable failure (status == "error" only)
  /// Op-specific structured payload: (key, raw JSON value) pairs appended to
  /// the response object (e.g. ingest's "run", list's "runs").
  std::vector<std::pair<std::string, std::string>> extras;
};

/// Parses one request line. Throws OpError(2) on malformed JSON, a missing
/// `op`, or a non-string/array field — the server answers with an error
/// response rather than dropping the connection.
[[nodiscard]] Request parse_request(const std::string& line);

/// Writes `req` as exactly one line: a compact JSON document plus '\n'.
/// Empty operand fields are omitted (the parser treats absent and "" alike).
void write_request(std::ostream& out, const Request& req);

/// Writes `resp` as exactly one line: a compact JSON document plus '\n'.
void write_response(std::ostream& out, const Response& resp);

/// Parses a response line back into the struct (client and tests). Throws
/// std::runtime_error on malformed input or a serve_version mismatch.
[[nodiscard]] Response parse_response(const std::string& line);

}  // namespace difftrace::serve
