#include "serve/server.hpp"

#include <memory>
#include <optional>
#include <sstream>

#include "obs/metrics.hpp"
#include "sched/pool.hpp"
#include "util/log.hpp"

namespace difftrace::serve {

namespace {

/// Receive-slice granularity: short enough that a connection notices daemon
/// shutdown promptly, long enough to stay off the scheduler's back.
constexpr int kRecvSliceMs = 250;

}  // namespace

void serve_connection(Service& service, Socket& conn, int idle_timeout_ms) {
  conn.set_recv_timeout_ms(kRecvSliceMs);
  int idle_ms = 0;
  std::string line;
  while (!service.shutdown_requested()) {
    switch (conn.recv_line(line)) {
      case Socket::RecvStatus::Line: {
        idle_ms = 0;
        const auto resp = service.handle_line(line);
        std::ostringstream framed;
        write_response(framed, resp);
        conn.send_all(framed.str());
        break;
      }
      case Socket::RecvStatus::Timeout:
        idle_ms += kRecvSliceMs;
        if (idle_timeout_ms > 0 && idle_ms >= idle_timeout_ms) return;
        break;
      case Socket::RecvStatus::Closed:
        return;
    }
  }
}

void run_server(Service& service, Listener& listener, const ServerConfig& config,
                std::ostream& log) {
  util::status_line(log, "[serve] listening on " + listener.path() + " (" +
                             std::to_string(config.jobs) + " job(s))");
  // Pool scope: destroying the pool after the accept loop drains the queue
  // and joins the workers, so every accepted connection is fully served
  // (including the shutdown response itself) before run_server returns.
  std::optional<sched::Pool> pool;
  if (config.jobs > 1) pool.emplace(config.jobs);
  while (!service.shutdown_requested()) {
    if (config.interrupt && *config.interrupt) {
      util::status_line(log, "[serve] signal received; shutting down");
      service.request_shutdown();
      break;
    }
    auto accepted = listener.accept_for(/*timeout_ms=*/100);
    if (!accepted) continue;
    if (pool) {
      // std::function requires copyable ticks; the connection rides in a
      // shared_ptr. Ticks must not throw (pool workers have no handler) —
      // a connection failure is counted and the connection dropped.
      auto conn = std::make_shared<Socket>(std::move(*accepted));
      const int idle = config.idle_timeout_ms;
      pool->post("serve", [&service, conn, idle]() {
        try {
          serve_connection(service, *conn, idle);
        } catch (const std::exception&) {
          obs::counter("serve.connection_errors").add(1);
        }
      });
    } else {
      try {
        serve_connection(service, *accepted, config.idle_timeout_ms);
      } catch (const std::exception& e) {
        obs::counter("serve.connection_errors").add(1);
        util::status_line(log, std::string("[serve] connection error: ") + e.what());
      }
    }
  }
  pool.reset();  // drain in-flight connections before announcing exit
  util::status_line(log, "[serve] shutdown complete");
}

}  // namespace difftrace::serve
