#include "serve/service.hpp"

#include <sstream>
#include <utility>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/file.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace difftrace::serve {

namespace {

std::string run_json(const RunInfo& info) {
  std::ostringstream buf;
  util::JsonWriter json(buf, /*indent=*/-1);
  json.begin_object();
  json.field("name", info.name);
  json.field("crc32", util::hex32(info.crc32));
  json.field("shard", info.shard);
  json.field("bytes", info.bytes);
  json.field("traces", info.traces);
  json.field("events", info.events);
  json.field("salvaged", info.salvaged);
  json.end_object();
  return buf.str();
}

/// Hot-cache key of a run: name + content digest, so a re-ingested run can
/// never alias its predecessor's pinned state.
std::string store_key(const RunInfo& info) { return info.name + ":" + util::hex32(info.crc32); }

}  // namespace

Service::Service(ServiceConfig config, QueryOps ops, std::ostream& log)
    : config_(std::move(config)),
      ops_(std::move(ops)),
      shards_(config_.store_root),
      hot_(config_.hot_capacity),
      cache_((config_.store_root / "cache").string()),
      log_(log) {
  // What makes the daemon warm: beyond the disk-backed artifact cache, keep
  // recently served payloads resident so repeat rank/check answers skip the
  // read + frame-CRC + decode path entirely. Sized alongside the store/
  // session LRUs (a sweep touches ~dozens of eval cells per run pair).
  cache_.retain_hot(config_.hot_capacity * 128);
  if (shards_.rebuilt_on_open())
    util::status_line(log_, "[serve] store index rebuilt from shards (" +
                                std::to_string(shards_.size()) + " run(s))");
}

Response Service::handle_line(const std::string& line) {
  try {
    return handle(parse_request(line));
  } catch (const OpError& e) {
    // Unparseable request: we cannot echo op/request_id we never decoded.
    Response resp;
    resp.tool_version = std::string(obs::kToolVersion);
    resp.status = "error";
    resp.exit_code = e.exit_code();
    resp.error = e.what();
    resp.cpu_ns = obs::process_cpu_ns();
    resp.peak_rss_kb = obs::peak_rss_kb();
    errors_.fetch_add(1, std::memory_order_relaxed);
    obs::counter("serve.errors").add(1);
    return resp;
  }
}

Response Service::handle(const Request& req) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  obs::counter("serve.requests").add(1);

  Response resp;
  resp.request_id = req.request_id;
  resp.op = req.op;
  resp.tool_version = std::string(obs::kToolVersion);
  resp.status = "ok";
  const auto start = obs::wall_now_ns();
  std::ostringstream out;
  std::ostringstream chatter;
  try {
    // One span per request: a --self-trace'd daemon session records its
    // whole query history as analyzable phases ("serve/rank/sweep/...").
    obs::Span span_op(req.op);
    if (req.op == "ingest") {
      op_ingest(req, resp, out, chatter);
    } else if (req.op == "list") {
      resp.command = {"list"};
      op_list(resp, out);
    } else if (req.op == "rank") {
      op_rank(req, resp, out, chatter);
    } else if (req.op == "check") {
      op_check(req, resp, out, chatter);
    } else if (req.op == "diff") {
      op_diff(req, resp, out, chatter);
    } else if (req.op == "stats") {
      resp.command = {"stats"};
      op_stats(resp, out);
    } else if (req.op == "shutdown") {
      resp.command = {"shutdown"};
      out << "shutting down\n";
      shutdown_.store(true, std::memory_order_release);
    } else {
      throw OpError(2, "unknown op '" + req.op +
                           "' (ingest, list, rank, check, diff, stats, shutdown)");
    }
  } catch (const OpError& e) {
    resp.status = "error";
    resp.exit_code = e.exit_code();
    resp.error = e.what();
    errors_.fetch_add(1, std::memory_order_relaxed);
    obs::counter("serve.errors").add(1);
  } catch (const std::exception& e) {
    resp.status = "error";
    resp.exit_code = 1;
    resp.error = e.what();
    errors_.fetch_add(1, std::memory_order_relaxed);
    obs::counter("serve.errors").add(1);
  }
  resp.output = out.str();
  resp.chatter = chatter.str();
  resp.wall_ns = obs::wall_now_ns() - start;
  resp.cpu_ns = obs::process_cpu_ns();
  resp.peak_rss_kb = obs::peak_rss_kb();
  return resp;
}

Service::StorePtr Service::resident_store(const std::string& name, std::ostream& chatter) {
  const auto info = shards_.lookup(name);
  if (!info) throw OpError(2, "unknown run '" + name + "' (ingest it first; see 'list')");
  const auto path = shards_.archive_path(*info).string();
  return hot_.get_store(store_key(*info), [this, &path, &chatter]() -> StorePtr {
    return std::make_shared<const trace::TraceStore>(ops_.load_archive(path, chatter).store);
  });
}

void Service::op_ingest(const Request& req, Response& resp, std::ostream& out,
                        std::ostream& chatter) {
  if (req.path.empty()) throw OpError(2, "ingest requires 'path'");
  auto name = req.name;
  if (name.empty()) name = std::filesystem::path(req.path).stem().string();
  resp.command = {"ingest", req.path, "--name", name};

  auto loaded = ops_.load_archive(req.path, chatter);
  const auto info = shards_.ingest(name, loaded.store, loaded.salvaged);
  obs::counter("serve.ingests").add(1);
  // Pre-pin the decoded store: the archive we just wrote is the canonical
  // save of exactly this in-memory state, so pinning it now gives the first
  // query a warm hit without a decode.
  auto pinned = std::make_shared<const trace::TraceStore>(std::move(loaded.store));
  (void)hot_.get_store(store_key(info), [&pinned]() -> StorePtr { return pinned; });

  out << "ingested " << info.name << ": " << info.traces << " trace(s), " << info.events
      << " event(s), " << info.bytes << " bytes -> shard "
      << (info.shard < 10 ? "0" : "") << info.shard << (info.salvaged ? " (salvaged)" : "")
      << "\n";
  resp.extras.emplace_back("run", run_json(info));
}

void Service::op_list(Response& resp, std::ostream& out) {
  const auto runs = shards_.list();
  util::TextTable table({"Run", "CRC32", "Shard", "Traces", "Events", "Bytes", "Salvaged"});
  std::ostringstream buf;
  util::JsonWriter json(buf, /*indent=*/-1);
  json.begin_array();
  for (const auto& info : runs) {
    table.add_row({info.name, util::hex32(info.crc32), std::to_string(info.shard),
                   std::to_string(info.traces), std::to_string(info.events),
                   std::to_string(info.bytes), info.salvaged ? "yes" : "no"});
    json.raw_value(run_json(info));
  }
  json.end_array();
  out << table.render();
  resp.extras.emplace_back("runs", buf.str());
}

void Service::op_rank(const Request& req, Response& resp, std::ostream& out,
                      std::ostream& chatter) {
  if (req.normal.empty() || req.faulty.empty())
    throw OpError(2, "rank requires 'normal' and 'faulty' run names");
  resp.command = {"rank", req.normal, req.faulty};
  resp.command.insert(resp.command.end(), req.opts.begin(), req.opts.end());
  const auto normal = resident_store(req.normal, chatter);
  const auto faulty = resident_store(req.faulty, chatter);
  resp.exit_code = ops_.rank(*normal, *faulty, req.opts, &cache_, out, chatter);
}

void Service::op_check(const Request& req, Response& resp, std::ostream& out,
                       std::ostream& chatter) {
  if (req.run.empty()) throw OpError(2, "check requires 'run'");
  resp.command = {"check", req.run};
  resp.command.insert(resp.command.end(), req.opts.begin(), req.opts.end());
  const auto store = resident_store(req.run, chatter);
  resp.exit_code =
      ops_.check(*store, req.run, req.opts, cache_.dir().string(), out, chatter);
}

void Service::op_diff(const Request& req, Response& resp, std::ostream& out,
                      std::ostream& chatter) {
  if (req.normal.empty() || req.faulty.empty())
    throw OpError(2, "diff requires 'normal' and 'faulty' run names");
  if (req.trace.empty()) throw OpError(2, "diff requires 'trace' (P.T)");
  resp.command = {"diffnlr", req.normal, req.faulty, "--trace", req.trace};
  resp.command.insert(resp.command.end(), req.opts.begin(), req.opts.end());
  const auto normal_info = shards_.lookup(req.normal);
  const auto faulty_info = shards_.lookup(req.faulty);
  const auto normal = resident_store(req.normal, chatter);
  const auto faulty = resident_store(req.faulty, chatter);
  // Session key: both store identities plus the session-shaping options.
  // `trace` stays OUT of the key — diffing another trace of the same pair
  // reuses the pinned session, which is the common interactive pattern.
  std::string key = store_key(*normal_info) + "|" + store_key(*faulty_info);
  for (const auto& opt : req.opts) key += "\x1f" + opt;
  const auto session = hot_.get_session(key, [this, &normal, &faulty, &req]() {
    return ops_.make_session(*normal, *faulty, req.opts);
  });
  resp.exit_code = ops_.diff(*session, req.trace, req.opts, out);
}

void Service::op_stats(Response& resp, std::ostream& out) {
  const auto hot = hot_.stats();
  const auto runs = shards_.size();
  const auto requests = requests_.load(std::memory_order_relaxed);
  const auto errors = errors_.load(std::memory_order_relaxed);

  out << "runs:            " << runs << "\n";
  out << "requests:        " << requests << "\n";
  out << "errors:          " << errors << "\n";
  out << "hot stores:      " << hot.stores << " (" << hot.store_hits << " hit(s), "
      << hot.store_misses << " miss(es))\n";
  out << "hot sessions:    " << hot.sessions << " (" << hot.session_hits << " hit(s), "
      << hot.session_misses << " miss(es))\n";
  out << "artifact cache:  " << cache_.dir().string() << "\n";

  std::ostringstream buf;
  util::JsonWriter json(buf, /*indent=*/-1);
  json.begin_object();
  json.field("runs", static_cast<std::uint64_t>(runs));
  json.field("requests", requests);
  json.field("errors", errors);
  json.field("hot_stores", static_cast<std::uint64_t>(hot.stores));
  json.field("hot_sessions", static_cast<std::uint64_t>(hot.sessions));
  json.field("store_hits", hot.store_hits);
  json.field("store_misses", hot.store_misses);
  json.field("session_hits", hot.session_hits);
  json.field("session_misses", hot.session_misses);
  json.field("cache_dir", cache_.dir().string());
  json.end_object();
  resp.extras.emplace_back("serve", buf.str());
}

}  // namespace difftrace::serve
