// The daemon's in-memory tier above sched::Cache: decoded TraceStores and
// built core::Sessions pinned as shared_ptrs, keyed by run content (name +
// archive CRC) so a re-ingested run can never serve stale analysis — its new
// CRC is a new key and the old entry simply ages out.
//
// Answer-parity contract: the cache stores the INPUTS of analysis (stores,
// sessions), never rendered output. A hit and a miss therefore run the same
// rendering code over equal values and produce byte-identical responses;
// what a hit skips is archive decode and NLR construction, which is where
// the warm-query speedup comes from.
//
// get_store/get_session run the builder OUTSIDE the lock (builds take
// seconds; lookups take microseconds), so concurrent misses may build the
// same entry twice — the first insert wins and the loser's value is used
// for its own request then dropped. Correct either way, because builders
// are deterministic functions of the key.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <string>

#include "core/pipeline.hpp"
#include "trace/store.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace difftrace::serve {

class HotCache {
 public:
  /// `capacity` bounds stores and sessions independently (an LRU each);
  /// 0 disables pinning (every get builds).
  explicit HotCache(std::size_t capacity) : capacity_(capacity) {}

  using StorePtr = std::shared_ptr<const trace::TraceStore>;
  using SessionPtr = std::shared_ptr<const core::Session>;

  /// Returns the pinned store for `key`, building (and inserting) on miss.
  StorePtr get_store(const std::string& key, const std::function<StorePtr()>& build)
      DT_EXCLUDES(mu_);

  /// Same protocol for built analysis sessions.
  SessionPtr get_session(const std::string& key, const std::function<SessionPtr()>& build)
      DT_EXCLUDES(mu_);

  struct Stats {
    std::uint64_t store_hits = 0;
    std::uint64_t store_misses = 0;
    std::uint64_t session_hits = 0;
    std::uint64_t session_misses = 0;
    std::size_t stores = 0;
    std::size_t sessions = 0;
  };
  [[nodiscard]] Stats stats() const DT_EXCLUDES(mu_);

 private:
  template <typename T>
  struct Entry {
    std::shared_ptr<const T> value;
    std::uint64_t tick = 0;
  };
  template <typename T>
  using Map = std::map<std::string, Entry<T>>;

  /// Evicts the least-recently-used entry while over capacity.
  template <typename T>
  void trim(Map<T>& map) DT_REQUIRES(mu_);

  const std::size_t capacity_;
  mutable util::Mutex mu_;
  std::uint64_t tick_ DT_GUARDED_BY(mu_) = 0;
  Map<trace::TraceStore> stores_ DT_GUARDED_BY(mu_);
  Map<core::Session> sessions_ DT_GUARDED_BY(mu_);
  std::uint64_t store_hits_ DT_GUARDED_BY(mu_) = 0;
  std::uint64_t store_misses_ DT_GUARDED_BY(mu_) = 0;
  std::uint64_t session_hits_ DT_GUARDED_BY(mu_) = 0;
  std::uint64_t session_misses_ DT_GUARDED_BY(mu_) = 0;
};

}  // namespace difftrace::serve
