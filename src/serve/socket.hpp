// Minimal AF_UNIX stream transport for the serve protocol: an RAII
// connection (Socket) with line-oriented receive, and an RAII listener that
// owns the socket file. POSIX-only, like the rest of the daemon; everything
// above this file is transport-agnostic (Service is plain request/response).
//
// Stale-socket policy: a leftover socket file from a crashed daemon is
// reclaimed (connect probe fails -> unlink + rebind), but a LIVE daemon on
// the same path is an error — two daemons must never share a store.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace difftrace::serve {

/// One connected stream endpoint.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;

  /// Applies SO_RCVTIMEO so recv_line can time out (0 = block forever).
  void set_recv_timeout_ms(int ms);

  enum class RecvStatus {
    Line,     // a complete line was produced
    Timeout,  // the receive timeout elapsed with no complete line
    Closed,   // peer closed (an unterminated trailing fragment is dropped)
  };

  /// Reads up to the next '\n' (stripped). Throws std::runtime_error on a
  /// hard socket error.
  RecvStatus recv_line(std::string& line);

  /// Writes all of `data`; throws std::runtime_error when the peer is gone.
  void send_all(std::string_view data);

 private:
  int fd_ = -1;
  std::string buffer_;  // received bytes past the last returned line
};

/// Bound + listening daemon endpoint; unlinks the socket file on destruction.
class Listener {
 public:
  /// Throws std::runtime_error when the path is too long for sun_path, a
  /// live daemon already serves it, or bind/listen fail.
  explicit Listener(std::string path);
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Waits up to `timeout_ms` for one connection; nullopt on timeout.
  /// Throws std::runtime_error on a hard accept error.
  [[nodiscard]] std::optional<Socket> accept_for(int timeout_ms);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  int fd_ = -1;
  std::string path_;
};

/// Connects to a daemon socket; throws std::runtime_error on failure.
[[nodiscard]] Socket connect_socket(const std::string& path);

/// connect_socket with a bounded retry: `attempts` tries with doubling
/// backoff starting at `backoff_ms` (for clients racing daemon startup).
[[nodiscard]] Socket connect_with_retry(const std::string& path, int attempts, int backoff_ms);

}  // namespace difftrace::serve
