#include "serve/hot_cache.hpp"

namespace difftrace::serve {

template <typename T>
void HotCache::trim(Map<T>& map) {
  while (map.size() > capacity_) {
    auto lru = map.begin();
    for (auto it = map.begin(); it != map.end(); ++it)
      if (it->second.tick < lru->second.tick) lru = it;
    map.erase(lru);
  }
}

HotCache::StorePtr HotCache::get_store(const std::string& key,
                                       const std::function<StorePtr()>& build) {
  {
    util::MutexLock lock(mu_);
    if (const auto it = stores_.find(key); it != stores_.end()) {
      ++store_hits_;
      it->second.tick = ++tick_;
      return it->second.value;
    }
    ++store_misses_;
  }
  auto value = build();  // outside the lock: decodes can take seconds
  if (capacity_ == 0) return value;
  util::MutexLock lock(mu_);
  auto [it, inserted] = stores_.try_emplace(key);
  if (inserted) it->second.value = value;  // first insert wins
  it->second.tick = ++tick_;
  trim(stores_);
  return it->second.value;
}

HotCache::SessionPtr HotCache::get_session(const std::string& key,
                                           const std::function<SessionPtr()>& build) {
  {
    util::MutexLock lock(mu_);
    if (const auto it = sessions_.find(key); it != sessions_.end()) {
      ++session_hits_;
      it->second.tick = ++tick_;
      return it->second.value;
    }
    ++session_misses_;
  }
  auto value = build();
  if (capacity_ == 0) return value;
  util::MutexLock lock(mu_);
  auto [it, inserted] = sessions_.try_emplace(key);
  if (inserted) it->second.value = value;
  it->second.tick = ++tick_;
  trim(sessions_);
  return it->second.value;
}

HotCache::Stats HotCache::stats() const {
  util::MutexLock lock(mu_);
  Stats s;
  s.store_hits = store_hits_;
  s.store_misses = store_misses_;
  s.session_hits = session_hits_;
  s.session_misses = session_misses_;
  s.stores = stores_.size();
  s.sessions = sessions_.size();
  return s;
}

}  // namespace difftrace::serve
