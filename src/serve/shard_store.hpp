// The daemon's on-disk run store: ingested archives spread over a fixed set
// of shard directories (shard = CRC-32 of the archive bytes mod kShardCount)
// with one persisted index mapping run names to their shard and content
// digest.
//
// Layout under the store root:
//   shards/00 .. shards/15/   <name>.dtrc archives, canonical v2 framing
//   tmp/                      staging area (*.part); ingest renames out of it
//   index.dta                 framed artifact (kind 4) listing every run
//
// Durability contract: the index is a CACHE of the shard directories, never
// the source of truth. It is written atomically (tmp + rename) after every
// mutation, and ANY defect on open — missing file, bad frame, entry whose
// archive is gone — triggers a full rebuild from the shards on disk, exactly
// like a defective sched::Cache entry is a miss, never an error. A daemon
// killed mid-ingest leaves at worst a stale *.part (cleared on rebuild) and
// an index one rename behind (rebuilt).
//
// Locking: one util::Mutex per shard serializes renames into that shard
// directory, one index mutex guards the in-memory map + index file. A shard
// lock and the index lock are never held together, so lock order cannot
// cycle. All annotated; -Wthread-safety -Werror proves the contract.
#pragma once

#include <array>
#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "trace/store.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace difftrace::serve {

/// Artifact kind for the persisted shard index (see the registry in
/// sched/artifact.hpp).
inline constexpr std::uint64_t kArtifactServeIndex = 4;

/// Fixed shard fan-out. Changing this re-homes archives; the rebuild path
/// trusts the directory a file is found in, so an old layout still opens.
inline constexpr std::uint32_t kShardCount = 16;

/// One ingested run, as recorded in the index.
struct RunInfo {
  std::string name;
  std::uint32_t crc32 = 0;  // CRC-32 of the stored archive bytes
  std::uint32_t shard = 0;
  std::uint64_t bytes = 0;
  std::uint64_t traces = 0;
  std::uint64_t events = 0;
  bool salvaged = false;  // the INGESTED source was damaged (store is clean)
};

class ShardStore {
 public:
  /// Opens (creating directories as needed) the store at `root`. A missing
  /// or defective index is rebuilt from the shard directories; stale *.part
  /// staging files are removed. Throws std::runtime_error only on I/O
  /// failures that make the root unusable.
  explicit ShardStore(std::filesystem::path root);

  /// Run names are path components; restrict them to a filesystem- and
  /// protocol-safe alphabet: [A-Za-z0-9._-], non-empty, no leading dot.
  [[nodiscard]] static bool valid_run_name(const std::string& name);

  /// Saves `store` into the shard chosen by its canonical archive CRC and
  /// updates the index. Re-ingesting an existing name replaces it (the old
  /// archive is removed, even across shards). Safe to call concurrently for
  /// distinct or identical names. Throws OpError(2) on an invalid name,
  /// std::runtime_error on I/O failure.
  RunInfo ingest(const std::string& name, const trace::TraceStore& store, bool salvaged)
      DT_EXCLUDES(index_mu_);

  [[nodiscard]] std::optional<RunInfo> lookup(const std::string& name) const
      DT_EXCLUDES(index_mu_);

  /// All runs in name order.
  [[nodiscard]] std::vector<RunInfo> list() const DT_EXCLUDES(index_mu_);

  [[nodiscard]] std::size_t size() const DT_EXCLUDES(index_mu_);

  /// Absolute path of a run's archive.
  [[nodiscard]] std::filesystem::path archive_path(const RunInfo& run) const;

  [[nodiscard]] const std::filesystem::path& root() const noexcept { return root_; }

  /// True when open found no usable index and rebuilt it from the shards.
  [[nodiscard]] bool rebuilt_on_open() const noexcept { return rebuilt_; }

 private:
  [[nodiscard]] std::filesystem::path shard_dir(std::uint32_t shard) const;
  [[nodiscard]] std::filesystem::path index_path() const { return root_ / "index.dta"; }

  /// True when index.dta exists, frames correctly, and every listed archive
  /// is present with the recorded size.
  bool load_index() DT_REQUIRES(index_mu_);
  /// Rescans shards/*/ *.dtrc, recomputing digests and per-run statistics
  /// (salvage-tolerant), and clears tmp/.
  void rebuild_index() DT_REQUIRES(index_mu_);
  void persist_index() DT_REQUIRES(index_mu_);

  std::filesystem::path root_;
  bool rebuilt_ = false;

  mutable std::array<util::Mutex, kShardCount> shard_mu_;  // per-shard rename serialization
  mutable util::Mutex index_mu_;
  std::map<std::string, RunInfo> runs_ DT_GUARDED_BY(index_mu_);
};

}  // namespace difftrace::serve
