#include "serve/socket.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

namespace difftrace::serve {

namespace {

#ifdef MSG_NOSIGNAL
constexpr int kSendFlags = MSG_NOSIGNAL;  // dead peer -> EPIPE, not SIGPIPE
#else
constexpr int kSendFlags = 0;
#endif

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("socket path too long (" + std::to_string(path.size()) + " > " +
                             std::to_string(sizeof(addr.sun_path) - 1) + " bytes): " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

int connect_fd(const std::string& path) {
  const auto addr = make_addr(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

}  // namespace

Socket::Socket(Socket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

void Socket::set_recv_timeout_ms(int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(ms % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0)
    throw_errno("setsockopt(SO_RCVTIMEO)");
}

Socket::RecvStatus Socket::recv_line(std::string& line) {
  for (;;) {
    if (const auto pos = buffer_.find('\n'); pos != std::string::npos) {
      line.assign(buffer_, 0, pos);
      buffer_.erase(0, pos + 1);
      return RecvStatus::Line;
    }
    char chunk[4096];
    const auto got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(got));
      continue;
    }
    if (got == 0) return RecvStatus::Closed;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return RecvStatus::Timeout;
    throw_errno("recv");
  }
}

void Socket::send_all(std::string_view data) {
  while (!data.empty()) {
    const auto sent = ::send(fd_, data.data(), data.size(), kSendFlags);
    if (sent < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    data.remove_prefix(static_cast<std::size_t>(sent));
  }
}

Listener::Listener(std::string path) : path_(std::move(path)) {
  const auto addr = make_addr(path_);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EADDRINUSE) {
      const int saved = errno;
      ::close(fd_);
      fd_ = -1;
      errno = saved;
      throw_errno("bind '" + path_ + "'");
    }
    // Distinguish a live daemon from a crashed one's leftover file: only a
    // connect that actually fails proves the path is dead and reclaimable.
    if (const int probe = connect_fd(path_); probe >= 0) {
      ::close(probe);
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("another daemon is already serving '" + path_ + "'");
    }
    ::unlink(path_.c_str());
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      const int saved = errno;
      ::close(fd_);
      fd_ = -1;
      errno = saved;
      throw_errno("bind '" + path_ + "'");
    }
  }
  if (::listen(fd_, 64) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    ::unlink(path_.c_str());
    errno = saved;
    throw_errno("listen '" + path_ + "'");
  }
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
  ::unlink(path_.c_str());
}

std::optional<Socket> Listener::accept_for(int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return std::nullopt;
    throw_errno("poll");
  }
  if (ready == 0) return std::nullopt;
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN || errno == EWOULDBLOCK)
      return std::nullopt;
    throw_errno("accept");
  }
  return Socket(fd);
}

Socket connect_socket(const std::string& path) {
  const int fd = connect_fd(path);
  if (fd < 0) throw_errno("connect '" + path + "'");
  return Socket(fd);
}

Socket connect_with_retry(const std::string& path, int attempts, int backoff_ms) {
  int delay = backoff_ms;
  for (int attempt = 1;; ++attempt) {
    const int fd = connect_fd(path);
    if (fd >= 0) return Socket(fd);
    if (attempt >= attempts) throw_errno("connect '" + path + "'");
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    delay = delay < 1000 ? delay * 2 : delay;  // doubling, capped
  }
}

}  // namespace difftrace::serve
