// The daemon's accept loop: connections in, Service answers out.
//
// Concurrency model: with jobs > 1 each accepted connection becomes one
// sched::Pool tick that serves the whole connection (requests on one
// connection are answered in order; distinct connections run concurrently,
// which is what makes concurrent ingest + query real). jobs == 1 serves
// connections inline on the accept thread — the deterministic debug mode.
// Service's internals (shard store, hot cache, artifact cache) carry the
// thread-safety contract; ticks never let an exception escape (connection
// failures are counted and the connection dropped).
#pragma once

#include <csignal>
#include <ostream>

#include "serve/service.hpp"
#include "serve/socket.hpp"

namespace difftrace::serve {

struct ServerConfig {
  std::size_t jobs = 1;  // resolved (>= 1); jobs-1 pool workers serve connections
  /// Per-connection idle cutoff; a client silent this long is dropped.
  /// <= 0 disables the cutoff.
  int idle_timeout_ms = 30'000;
  /// Optional signal-delivery flag (set by a SIGINT/SIGTERM handler in the
  /// hosting process); a nonzero value shuts the daemon down as if a
  /// shutdown request had been answered.
  const volatile std::sig_atomic_t* interrupt = nullptr;
};

/// Serves one connection to completion (peer close, idle cutoff, or daemon
/// shutdown). Exposed for tests; run_server wraps it per accepted socket.
void serve_connection(Service& service, Socket& conn, int idle_timeout_ms);

/// Accepts and serves until a shutdown request has been answered; returns
/// after all in-flight connections finished. `log` receives daemon chatter.
void run_server(Service& service, Listener& listener, const ServerConfig& config,
                std::ostream& log);

}  // namespace difftrace::serve
