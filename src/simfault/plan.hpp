// FaultPlan: the declarative vocabulary of the runtime fault injector.
//
// A plan names one fault class plus the predicates that arm it. The runtime
// classes (Drop .. LockHold) are implemented by hook points inside simmpi /
// simomp — the *network* or the *runtime* misbehaves, never the app source.
// The legacy classes (SwapBug .. SkipLagrangeLeapFrog) are the paper's
// hand-planted bugs, implemented inside the miniapps; they share this
// vocabulary so one spec grammar, one validator, and one matrix driver
// cover both (apps/faults.hpp bridges FaultSpec <-> FaultPlan).
//
// Spec grammar (compact form):
//   <class>[@key=value[,key=value...]]
//   keys: rank, thread, iter, op, ticks, to, seed
// Examples:
//   drop@rank=1,op=6         drop the message rank 1 posts as its 7th MPI op
//   corrupt@rank=2,op=3      corrupt rank 2's contribution to that reduction
//   delay@rank=3,op=4,ticks=32
//   lockhold@rank=1,thread=2,ticks=16
//   dlBug@rank=1,iter=1      the paper's oddeven deadlock, as a plan
// A spec starting with '{' is parsed as the equivalent JSON object
// ({"class": "drop", "rank": 1, "op": 6, ...}).
//
// Predicate semantics: -1 means "any". A plan with an explicit op/iter fires
// exactly at that occurrence; wildcards fire at every matching occurrence.
// Op indices count the target rank's MPI API calls from 0 (for LockHold:
// that thread's critical-section acquisitions). Iterations are app-reported
// loop indices (see simfault::hooks::begin_iteration).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace difftrace::simfault {

enum class FaultClass : std::uint8_t {
  None,
  // Runtime classes, injected by the simmpi/simomp hook points.
  Drop,           // discard a posted message (the network eats it)
  Dup,            // deliver a posted message twice
  Reorder,        // hold a message back until the sender's next send/collective
  Misroute,       // deliver a message to the wrong destination rank
  CorruptReduce,  // flip the target rank's reduction contribution bytes
  SkipIter,       // skip one app loop iteration entirely
  Delay,          // insert N traced virtual ticks before the target op
  LockHold,       // hold a critical section across N extra traced ticks
  // Legacy classes: the paper's six hand-planted bugs (implemented by the
  // miniapps; names must stay stable — golden tests key on them).
  SwapBug,
  DlBug,
  OmpNoCritical,
  WrongCollectiveSize,
  WrongCollectiveOp,
  SkipLagrangeLeapFrog,
};

[[nodiscard]] std::string_view fault_class_name(FaultClass cls) noexcept;
/// Reverse lookup; throws PlanError on an unknown name.
[[nodiscard]] FaultClass fault_class_from_name(std::string_view name);
/// True for the classes the simmpi/simomp hooks implement (vs. app-side).
[[nodiscard]] bool is_runtime_class(FaultClass cls) noexcept;

/// Structured parse/validation failure: `field` names the offending spec key
/// ("class", "rank", "op", ...), what() carries the full message.
class PlanError : public std::runtime_error {
 public:
  PlanError(std::string field, const std::string& message)
      : std::runtime_error("fault plan: " + field + ": " + message), field_(std::move(field)) {}

  [[nodiscard]] const std::string& field() const noexcept { return field_; }

 private:
  std::string field_;
};

struct FaultPlan {
  FaultClass cls = FaultClass::None;
  int rank = -1;       // target process rank (-1 = any)
  int thread = -1;     // target team thread (LockHold / OmpNoCritical)
  int iteration = -1;  // app-reported loop iteration
  int op_index = -1;   // per-rank MPI-op (or per-thread lock) sequence number
  int ticks = 8;       // Delay / LockHold: virtual ticks to insert
  int to = -1;         // Misroute: destination override (-1 = derived from seed)
  std::uint64_t seed = 42;  // drives the PRNG-derived decisions (corruption
                            // pattern, misroute target) — same seed, same bytes

  [[nodiscard]] bool enabled() const noexcept { return cls != FaultClass::None; }
  /// Compact spec round-trip (parse_plan(to_spec()) == *this).
  [[nodiscard]] std::string to_spec() const;
  /// JSON object form ({"class": ..., "rank": ...}); omits wildcard fields.
  [[nodiscard]] std::string to_json() const;

  [[nodiscard]] bool operator==(const FaultPlan&) const noexcept = default;
};

/// Parses the compact spec grammar above (or, when `spec` starts with '{',
/// the JSON object form). Throws PlanError naming the bad key.
[[nodiscard]] FaultPlan parse_plan(std::string_view spec);

/// The coordinate bounds a plan's predicates are validated against.
/// A dimension of -1 means "unknown — only reject negative garbage".
struct AppShape {
  int nranks = -1;
  int threads = -1;
  int iterations = -1;
};

/// Rejects out-of-range predicates with a structured PlanError: a plan that
/// targets rank 99 of a 4-rank job would otherwise arm nothing and report a
/// clean run — the silent-acceptance bug this replaces.
void validate_plan(const FaultPlan& plan, const AppShape& shape);

}  // namespace difftrace::simfault
