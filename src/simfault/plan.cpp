#include "simfault/plan.hpp"

#include <array>
#include <cctype>
#include <sstream>
#include <utility>

#include "util/json.hpp"
#include "util/str.hpp"

namespace difftrace::simfault {

namespace {

constexpr std::array<std::pair<FaultClass, std::string_view>, 15> kClassNames = {{
    {FaultClass::None, "none"},
    {FaultClass::Drop, "drop"},
    {FaultClass::Dup, "dup"},
    {FaultClass::Reorder, "reorder"},
    {FaultClass::Misroute, "misroute"},
    {FaultClass::CorruptReduce, "corrupt"},
    {FaultClass::SkipIter, "skip"},
    {FaultClass::Delay, "delay"},
    {FaultClass::LockHold, "lockhold"},
    {FaultClass::SwapBug, "swapBug"},
    {FaultClass::DlBug, "dlBug"},
    {FaultClass::OmpNoCritical, "ompNoCritical"},
    {FaultClass::WrongCollectiveSize, "wrongCollectiveSize"},
    {FaultClass::WrongCollectiveOp, "wrongCollectiveOp"},
    {FaultClass::SkipLagrangeLeapFrog, "skipLagrangeLeapFrog"},
}};

int parse_int_field(std::string_view key, std::string_view value) {
  try {
    std::size_t used = 0;
    const std::string text(value);
    const int parsed = std::stoi(text, &used);
    if (used != text.size()) throw std::invalid_argument("trailing characters");
    return parsed;
  } catch (const std::exception&) {
    throw PlanError(std::string(key), "'" + std::string(value) + "' is not an integer");
  }
}

void assign_field(FaultPlan& plan, std::string_view key, std::string_view value) {
  if (key == "rank")
    plan.rank = parse_int_field(key, value);
  else if (key == "thread")
    plan.thread = parse_int_field(key, value);
  else if (key == "iter" || key == "iteration")
    plan.iteration = parse_int_field(key, value);
  else if (key == "op")
    plan.op_index = parse_int_field(key, value);
  else if (key == "ticks")
    plan.ticks = parse_int_field(key, value);
  else if (key == "to")
    plan.to = parse_int_field(key, value);
  else if (key == "seed")
    plan.seed = static_cast<std::uint64_t>(parse_int_field(key, value));
  else
    throw PlanError(std::string(key), "unknown key (rank, thread, iter, op, ticks, to, seed)");
}

std::string trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])) != 0) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) --end;
  return std::string(s.substr(begin, end - begin));
}

FaultPlan plan_from_json_text(std::string_view text) {
  util::JsonValue doc;
  try {
    doc = util::parse_json(text);
  } catch (const std::exception& e) {
    throw PlanError("json", e.what());
  }
  if (!doc.is_object()) throw PlanError("json", "plan document is not an object");
  FaultPlan plan;
  for (const auto& [key, value] : doc.object) {
    if (key == "class") {
      plan.cls = fault_class_from_name(value.as_string());
      continue;
    }
    if (value.kind != util::JsonValue::Kind::Number)
      throw PlanError(key, "expected an integer value");
    assign_field(plan, key, std::to_string(value.as_int()));
  }
  return plan;
}

}  // namespace

std::string_view fault_class_name(FaultClass cls) noexcept {
  for (const auto& [value, name] : kClassNames)
    if (value == cls) return name;
  return "unknown";
}

FaultClass fault_class_from_name(std::string_view name) {
  for (const auto& [value, text] : kClassNames)
    if (text == name) return value;
  throw PlanError("class", "unknown fault class '" + std::string(name) + "'");
}

bool is_runtime_class(FaultClass cls) noexcept {
  switch (cls) {
    case FaultClass::Drop:
    case FaultClass::Dup:
    case FaultClass::Reorder:
    case FaultClass::Misroute:
    case FaultClass::CorruptReduce:
    case FaultClass::SkipIter:
    case FaultClass::Delay:
    case FaultClass::LockHold:
      return true;
    default:
      return false;
  }
}

FaultPlan parse_plan(std::string_view spec) {
  const auto trimmed = trim(spec);
  if (trimmed.empty()) throw PlanError("class", "empty plan spec");
  if (trimmed.front() == '{') return plan_from_json_text(trimmed);

  FaultPlan plan;
  const auto at = trimmed.find('@');
  plan.cls = fault_class_from_name(trimmed.substr(0, at));
  if (at == std::string::npos) return plan;
  const auto fields = trimmed.substr(at + 1);
  if (fields.empty()) throw PlanError("spec", "'@' with no key=value fields");
  for (const auto& field : util::split(fields, ',')) {
    const auto eq = field.find('=');
    if (eq == std::string::npos)
      throw PlanError("spec", "field '" + field + "' is not key=value");
    assign_field(plan, trim(field.substr(0, eq)), trim(field.substr(eq + 1)));
  }
  return plan;
}

std::string FaultPlan::to_spec() const {
  std::ostringstream os;
  os << fault_class_name(cls);
  std::string sep = "@";
  const auto emit = [&](std::string_view key, long long value) {
    os << sep << key << "=" << value;
    sep = ",";
  };
  if (rank >= 0) emit("rank", rank);
  if (thread >= 0) emit("thread", thread);
  if (iteration >= 0) emit("iter", iteration);
  if (op_index >= 0) emit("op", op_index);
  if (cls == FaultClass::Delay || cls == FaultClass::LockHold) emit("ticks", ticks);
  if (to >= 0) emit("to", to);
  if (seed != FaultPlan{}.seed) emit("seed", static_cast<long long>(seed));
  return os.str();
}

std::string FaultPlan::to_json() const {
  std::ostringstream os;
  util::JsonWriter json(os, /*indent=*/0);
  json.begin_object();
  json.field("class", fault_class_name(cls));
  if (rank >= 0) json.field("rank", rank);
  if (thread >= 0) json.field("thread", thread);
  if (iteration >= 0) json.field("iter", iteration);
  if (op_index >= 0) json.field("op", op_index);
  if (cls == FaultClass::Delay || cls == FaultClass::LockHold) json.field("ticks", ticks);
  if (to >= 0) json.field("to", to);
  json.field("seed", seed);
  json.end_object();
  return os.str();
}

void validate_plan(const FaultPlan& plan, const AppShape& shape) {
  const auto check = [](std::string_view key, int value, int bound) {
    if (value < -1)
      throw PlanError(std::string(key), std::to_string(value) + " is negative (-1 means any)");
    if (bound >= 0 && value >= bound)
      throw PlanError(std::string(key), std::to_string(value) + " out of range [0, " +
                                            std::to_string(bound) + ")");
  };
  check("rank", plan.rank, shape.nranks);
  check("thread", plan.thread, shape.threads);
  check("iter", plan.iteration, shape.iterations);
  check("op", plan.op_index, -1);
  check("to", plan.to, shape.nranks);
  if (plan.ticks <= 0 && (plan.cls == FaultClass::Delay || plan.cls == FaultClass::LockHold))
    throw PlanError("ticks", std::to_string(plan.ticks) + " must be positive");
  if (plan.cls == FaultClass::LockHold && plan.rank < 0)
    throw PlanError("rank", "lockhold requires an explicit rank");
}

}  // namespace difftrace::simfault
