// The runtime fault injector: one process-wide Injector armed with a single
// FaultPlan, consulted by hook points inside simmpi (World::post_send,
// World::collective, Comm op prologues) and simomp (Critical). The injector
// only *decides* — callers own all tracing and message mechanics — so this
// library links nothing above util/obs and the decision layer stays testable
// without a World.
//
// Determinism contract: every decision is a pure function of (plan, rank,
// thread, op-index, iteration). Randomized choices (corruption bytes, derived
// misroute targets) hash the plan seed with the coordinates via splitmix64,
// so they are independent of thread interleaving and of DIFFTRACE_JOBS —
// the same seed yields byte-identical traces at any job count.
//
// Concurrency: arm()/disarm() must be called while no simulated ranks are
// running (the matrix driver runs cells serially). Hook reads synchronize on
// the armed flag (release store / acquire load); per-coordinate counters are
// relaxed atomics bumped only by the owning rank's thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <atomic>
#include <memory>

#include "simfault/plan.hpp"

namespace difftrace::simfault {

namespace hooks {

enum class MsgAction : std::uint8_t {
  Deliver,   // no interference
  Drop,      // the network eats the message; the sender believes it completed
  Duplicate, // deliver the message twice
  HoldBack,  // delay delivery until the sender's next send/collective
  Misroute,  // deliver to `new_dest` instead of the posted destination
};

struct MsgDecision {
  MsgAction action = MsgAction::Deliver;
  int new_dest = -1;  // valid iff action == Misroute
};

/// Fast armed check; every other hook is a no-op returning the neutral
/// decision when this is false.
[[nodiscard]] bool active() noexcept;

/// Called at each simmpi API entry on the calling rank's thread. Returns the
/// 0-based per-rank op index of the op now executing (-1 when disarmed).
int op_enter(int rank) noexcept;

/// Virtual ticks to insert before the op that just entered (Delay plans);
/// the caller emits them as traced scopes. 0 when the plan does not fire.
[[nodiscard]] int delay_ticks(int rank, int op_index) noexcept;

/// Consulted when rank `src` posts a message to `dst` (under the World
/// mutex, on src's thread). The decision keys on src's current op index.
[[nodiscard]] MsgDecision on_message(int src, int dst, int tag) noexcept;

/// Consulted when `rank` deposits a Reduce/Allreduce contribution. Returns
/// true after XOR-ing a seed-derived pattern into the bytes when a
/// CorruptReduce plan fires; false leaves the buffer untouched.
bool corrupt_contribution(int rank, std::byte* data, std::size_t size) noexcept;

/// App-reported loop boundary; also advances the rank's iteration cursor
/// used by iteration predicates. Returns false when a SkipIter plan says
/// this iteration must be skipped.
bool begin_iteration(int rank, int iteration) noexcept;

/// Extra traced ticks to hold a critical section after acquiring it
/// (LockHold plans). Counts per-(proc, thread) acquisitions as the op index.
[[nodiscard]] int lock_hold_ticks(int proc, int thread) noexcept;

}  // namespace hooks

class Injector {
 public:
  [[nodiscard]] static Injector& instance();

  /// Validates the plan against `shape` (throws PlanError) and arms it.
  /// Must not race with running ranks; rearming replaces the previous plan.
  void arm(const FaultPlan& plan, const AppShape& shape);
  void disarm() noexcept;

  [[nodiscard]] bool armed() const noexcept {
    return armed_.load(std::memory_order_acquire);
  }
  /// Decisions taken (messages interfered with, ticks inserted, iterations
  /// skipped, buffers corrupted) since the last arm().
  [[nodiscard]] std::uint64_t fired() const noexcept {
    return fired_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  // Decision engine (the hooks:: free functions forward here).
  int op_enter(int rank) noexcept;
  [[nodiscard]] int delay_ticks(int rank, int op_index) noexcept;
  [[nodiscard]] hooks::MsgDecision on_message(int src, int dst, int tag) noexcept;
  bool corrupt_contribution(int rank, std::byte* data, std::size_t size) noexcept;
  bool begin_iteration(int rank, int iteration) noexcept;
  [[nodiscard]] int lock_hold_ticks(int proc, int thread) noexcept;

 private:
  Injector() = default;

  [[nodiscard]] bool rank_matches(int rank) const noexcept;
  [[nodiscard]] bool iter_matches(int rank) const noexcept;
  [[nodiscard]] bool op_matches(int op_index) const noexcept;
  void note_fired() noexcept;

  static constexpr int kMaxThreads = 256;  // lock-counter stride per proc

  std::atomic<bool> armed_{false};
  FaultPlan plan_;
  AppShape shape_;
  // Per-rank cursors, each written only by the owning rank's thread.
  std::unique_ptr<std::atomic<int>[]> op_seq_;
  std::unique_ptr<std::atomic<int>[]> iter_now_;
  std::unique_ptr<std::atomic<int>[]> lock_seq_;  // [proc * kMaxThreads + thread]
  std::atomic<std::uint64_t> fired_{0};
};

/// RAII arm/disarm for tests and the matrix driver: arms on construction
/// (validating against `shape`), disarms on destruction.
class InjectorSession {
 public:
  InjectorSession(const FaultPlan& plan, const AppShape& shape) {
    Injector::instance().arm(plan, shape);
  }
  ~InjectorSession() { Injector::instance().disarm(); }
  InjectorSession(const InjectorSession&) = delete;
  InjectorSession& operator=(const InjectorSession&) = delete;

  [[nodiscard]] std::uint64_t fired() const noexcept {
    return Injector::instance().fired();
  }
};

}  // namespace difftrace::simfault
