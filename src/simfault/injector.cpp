#include "simfault/injector.hpp"

#include <string_view>

#include "obs/metrics.hpp"
#include "util/prng.hpp"

namespace difftrace::simfault {

namespace {

/// Stateless per-decision hash: mixes the plan seed with the decision
/// coordinates so randomized choices depend only on (seed, coordinates),
/// never on interleaving. Distinct salts keep the streams independent.
std::uint64_t decision_hash(std::uint64_t seed, std::uint64_t salt, int a, int b) noexcept {
  std::uint64_t state = seed ^ (salt * 0x9E3779B97F4A7C15ULL) ^
                        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) ^
                        static_cast<std::uint32_t>(b);
  return util::splitmix64(state);
}

void count_class(FaultClass cls) {
  switch (cls) {
    case FaultClass::Drop: obs::counter("simfault.drop").add(); break;
    case FaultClass::Dup: obs::counter("simfault.dup").add(); break;
    case FaultClass::Reorder: obs::counter("simfault.reorder").add(); break;
    case FaultClass::Misroute: obs::counter("simfault.misroute").add(); break;
    case FaultClass::CorruptReduce: obs::counter("simfault.corrupt").add(); break;
    case FaultClass::SkipIter: obs::counter("simfault.skip").add(); break;
    case FaultClass::Delay: obs::counter("simfault.delay").add(); break;
    case FaultClass::LockHold: obs::counter("simfault.lockhold").add(); break;
    default: break;
  }
}

}  // namespace

Injector& Injector::instance() {
  static Injector injector;
  return injector;
}

void Injector::arm(const FaultPlan& plan, const AppShape& shape) {
  validate_plan(plan, shape);
  disarm();
  plan_ = plan;
  shape_ = shape;
  const auto nranks = static_cast<std::size_t>(shape.nranks > 0 ? shape.nranks : 1);
  op_seq_ = std::make_unique<std::atomic<int>[]>(nranks);
  iter_now_ = std::make_unique<std::atomic<int>[]>(nranks);
  lock_seq_ = std::make_unique<std::atomic<int>[]>(nranks * kMaxThreads);
  for (std::size_t i = 0; i < nranks; ++i) {
    op_seq_[i].store(0, std::memory_order_relaxed);
    iter_now_[i].store(-1, std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < nranks * kMaxThreads; ++i)
    lock_seq_[i].store(0, std::memory_order_relaxed);
  fired_.store(0, std::memory_order_relaxed);
  if (is_runtime_class(plan.cls)) armed_.store(true, std::memory_order_release);
}

void Injector::disarm() noexcept { armed_.store(false, std::memory_order_release); }

bool Injector::rank_matches(int rank) const noexcept {
  return plan_.rank < 0 || plan_.rank == rank;
}

bool Injector::iter_matches(int rank) const noexcept {
  if (plan_.iteration < 0) return true;
  if (rank < 0 || rank >= shape_.nranks) return false;
  return iter_now_[static_cast<std::size_t>(rank)].load(std::memory_order_relaxed) ==
         plan_.iteration;
}

bool Injector::op_matches(int op_index) const noexcept {
  return plan_.op_index < 0 || plan_.op_index == op_index;
}

void Injector::note_fired() noexcept {
  fired_.fetch_add(1, std::memory_order_relaxed);
  obs::counter("simfault.fired").add();
  count_class(plan_.cls);
}

int Injector::op_enter(int rank) noexcept {
  if (rank < 0 || rank >= shape_.nranks) return -1;
  return op_seq_[static_cast<std::size_t>(rank)].fetch_add(1, std::memory_order_relaxed);
}

int Injector::delay_ticks(int rank, int op_index) noexcept {
  if (plan_.cls != FaultClass::Delay) return 0;
  if (!rank_matches(rank) || !iter_matches(rank) || !op_matches(op_index)) return 0;
  note_fired();
  return plan_.ticks;
}

hooks::MsgDecision Injector::on_message(int src, int dst, int tag) noexcept {
  (void)tag;
  hooks::MsgDecision decision;
  if (!rank_matches(src) || !iter_matches(src)) return decision;
  // The message decision keys on the op the sender is currently inside:
  // op_enter already advanced the cursor, so "current" is the value - 1.
  const int op = (src >= 0 && src < shape_.nranks)
                     ? op_seq_[static_cast<std::size_t>(src)].load(std::memory_order_relaxed) - 1
                     : -1;
  if (!op_matches(op)) return decision;
  switch (plan_.cls) {
    case FaultClass::Drop:
      decision.action = hooks::MsgAction::Drop;
      break;
    case FaultClass::Dup:
      decision.action = hooks::MsgAction::Duplicate;
      break;
    case FaultClass::Reorder:
      decision.action = hooks::MsgAction::HoldBack;
      break;
    case FaultClass::Misroute: {
      decision.action = hooks::MsgAction::Misroute;
      if (plan_.to >= 0) {
        decision.new_dest = plan_.to;
      } else {
        // Derive a wrong-but-valid destination from the seed: any rank other
        // than the posted one (falls back to dst when nranks == 1).
        const int n = shape_.nranks > 1 ? shape_.nranks : 1;
        auto pick = static_cast<int>(decision_hash(plan_.seed, /*salt=*/3, src, op) %
                                     static_cast<std::uint64_t>(n));
        if (pick == dst) pick = (pick + 1) % n;
        decision.new_dest = pick;
      }
      if (decision.new_dest == dst) decision.action = hooks::MsgAction::Deliver;
      break;
    }
    default:
      return decision;
  }
  if (decision.action != hooks::MsgAction::Deliver) note_fired();
  return decision;
}

bool Injector::corrupt_contribution(int rank, std::byte* data, std::size_t size) noexcept {
  if (plan_.cls != FaultClass::CorruptReduce || data == nullptr || size == 0) return false;
  if (!rank_matches(rank) || !iter_matches(rank)) return false;
  const int op = (rank >= 0 && rank < shape_.nranks)
                     ? op_seq_[static_cast<std::size_t>(rank)].load(std::memory_order_relaxed) - 1
                     : -1;
  if (!op_matches(op)) return false;
  std::uint64_t state = decision_hash(plan_.seed, /*salt=*/5, rank, op);
  util::Xoshiro256 prng(state);
  for (std::size_t i = 0; i < size; ++i) {
    // XOR with a never-zero byte so at least one bit always flips.
    auto pattern = static_cast<std::uint8_t>(prng.below(255) + 1);
    data[i] ^= static_cast<std::byte>(pattern);
  }
  note_fired();
  return true;
}

bool Injector::begin_iteration(int rank, int iteration) noexcept {
  if (rank >= 0 && rank < shape_.nranks)
    iter_now_[static_cast<std::size_t>(rank)].store(iteration, std::memory_order_relaxed);
  if (plan_.cls != FaultClass::SkipIter) return true;
  if (!rank_matches(rank)) return true;
  if (plan_.iteration >= 0 && plan_.iteration != iteration) return true;
  note_fired();
  return false;
}

int Injector::lock_hold_ticks(int proc, int thread) noexcept {
  if (plan_.cls != FaultClass::LockHold) return 0;
  if (proc < 0 || proc >= shape_.nranks || thread < 0 || thread >= kMaxThreads) return 0;
  const auto slot = static_cast<std::size_t>(proc) * kMaxThreads + static_cast<std::size_t>(thread);
  const int acq = lock_seq_[slot].fetch_add(1, std::memory_order_relaxed);
  if (plan_.rank != proc) return 0;  // validate_plan guarantees rank >= 0
  if (plan_.thread >= 0 && plan_.thread != thread) return 0;
  if (!op_matches(acq)) return 0;
  note_fired();
  return plan_.ticks;
}

namespace hooks {

bool active() noexcept { return Injector::instance().armed(); }

int op_enter(int rank) noexcept {
  auto& injector = Injector::instance();
  if (!injector.armed()) return -1;
  return injector.op_enter(rank);
}

int delay_ticks(int rank, int op_index) noexcept {
  auto& injector = Injector::instance();
  if (!injector.armed()) return 0;
  return injector.delay_ticks(rank, op_index);
}

MsgDecision on_message(int src, int dst, int tag) noexcept {
  auto& injector = Injector::instance();
  if (!injector.armed()) return {};
  return injector.on_message(src, dst, tag);
}

bool corrupt_contribution(int rank, std::byte* data, std::size_t size) noexcept {
  auto& injector = Injector::instance();
  if (!injector.armed()) return false;
  return injector.corrupt_contribution(rank, data, size);
}

bool begin_iteration(int rank, int iteration) noexcept {
  auto& injector = Injector::instance();
  if (!injector.armed()) return true;
  return injector.begin_iteration(rank, iteration);
}

int lock_hold_ticks(int proc, int thread) noexcept {
  auto& injector = Injector::instance();
  if (!injector.armed()) return 0;
  return injector.lock_hold_ticks(proc, thread);
}

}  // namespace hooks

}  // namespace difftrace::simfault
