#include "analyze/engine.hpp"

#include <algorithm>
#include <limits>
#include <ostream>
#include <string>
#include <utility>

#include "analyze/facts.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "trace/opspan.hpp"

namespace difftrace::analyze {

namespace {

using trace::OpCode;
using trace::OpRecord;

[[nodiscard]] bool is_send_post(OpCode c) noexcept {
  return c == OpCode::SendPost || c == OpCode::IsendPost;
}
[[nodiscard]] bool is_recv_post(OpCode c) noexcept {
  return c == OpCode::RecvPost || c == OpCode::IrecvPost;
}

}  // namespace

AbstractEngine::AbstractEngine(const trace::TraceStore& store, const CheckOptions& options)
    : store_(&store),
      options_(&options),
      // The default K=10 is tuned for bare function-name streams; the check
      // IR interleaves op tokens with events, so one iteration's block runs
      // longer — 16 keeps typical bodies recognizable.
      ir_(core::NlrConfig{.k = 16, .min_reps = 2, .fold_known_bodies = false}),
      effects_(ir_) {
  if (!options.cache_dir.empty()) cache_ = std::make_unique<sched::Cache>(options.cache_dir);
}

void AbstractEngine::log_fallback(trace::TraceKey key, const std::string& reason) {
  if (options_->fallback_log != nullptr)
    *options_->fallback_log << "[fallback] stream " << key.label() << " " << reason << "\n";
}

const FlatBody& AbstractEngine::flat_body(std::uint32_t loop_id) {
  const auto it = flat_bodies_.find(loop_id);
  if (it != flat_bodies_.end()) return it->second;
  return flat_bodies_.emplace(loop_id, flatten_body(ir_, loop_id)).first->second;
}

void AbstractEngine::classify_blocked_facts(StreamFacts& f, bool has_last_op,
                                            std::uint32_t last_op_payload,
                                            std::uint64_t last_op_event) const {
  const auto* registry = store_->registry_ptr().get();
  for (auto it = f.open_frames.rbegin(); it != f.open_frames.rend(); ++it) {
    const auto image = registry_fn_image(registry, it->fid);
    if (image == trace::Image::Internal || image == trace::Image::SystemLib) continue;
    if (image == trace::Image::MpiLib || image == trace::Image::OmpLib) {
      f.blocked = true;
      f.blocked_fid = it->fid;
      f.blocked_call_index = it->call_index;
      if (has_last_op && last_op_event > f.blocked_call_index) {
        f.pending = ir_.op_payload(last_op_payload);
        f.pending->event_index = last_op_event;
      }
    }
    break;  // an open Main-image frame below the top means not runtime-blocked
  }
}

StreamSummary AbstractEngine::summarize_concrete(StreamInfo& s) {
  classify_blocked(s, store_->registry_ptr().get());
  StreamSummary summary;
  fill_shape_facts(s, summary.facts);
  fill_lock_facts(s, summary.facts);
  fill_mpi_facts(s, summary.facts);
  segments_from_colls(summary);
  summary.facts.colls.clear();  // flatten_colls re-materializes from the segments
  return summary;
}

StreamSummary AbstractEngine::summarize(trace::TraceKey key) {
  static auto& cache_hits = obs::counter("check.summary_cache_hit");
  static auto& cache_misses = obs::counter("check.summary_cache_miss");
  std::string cache_key;
  if (cache_ != nullptr) {
    cache_key = check_summary_key(*store_, key, ir_.config());
    if (auto payload = cache_->lookup(cache_key, kArtifactCheckSummary)) {
      if (auto cached = decode_check_summary(*payload)) {
        cache_hits.add(1);
        return std::move(*cached);
      }
    }
    cache_misses.add(1);
  }

  auto s = build_stream_info(*store_, key);

  // Anchors the IR cannot reproduce: unordered op records, or an op
  // anchored past the decoded events. Rare and exact either way.
  const trace::OpSpanIndex index(s.ops);
  const bool anchors_ok =
      index.ordered() && (s.ops.empty() || s.ops.back().event_index <= s.events.size());
  StreamSummary summary;
  if (!anchors_ok) {
    log_fallback(key, "(all rules): op anchors defeat the IR — concrete walk of the stream");
    summary = summarize_concrete(s);
  } else {
    const auto program = ir_.reduce(s);
    effects_.update();

    auto& f = summary.facts;
    f.key = s.key;
    f.event_count = s.events.size();
    f.op_count = s.ops.size();
    f.truncated = s.truncated;
    f.degraded = s.degraded;
    f.degradation = s.degradation;

    // Pass A — stream shape and the last-op cursor. A loop body that is
    // stack-neutral contributes nothing but its event span.
    bool shape_abstract = true;
    {
      std::vector<OpenFrame> stack;
      std::uint64_t cur = 0;
      bool has_last = false;
      std::uint32_t last_payload = 0;
      std::uint64_t last_event = 0;
      for (const auto& item : program) {
        if (item.is_loop()) {
          const auto& eff = effects_.effect(item.id);
          if (!eff.stack_clean) {
            shape_abstract = false;
            break;
          }
          if (eff.has_ops) {
            has_last = true;
            last_payload = eff.last_op_payload;
            last_event = cur + (item.count - 1) * eff.events + eff.last_op_rel_event;
          }
          cur += item.count * eff.events;
          continue;
        }
        const auto& tok = ir_.tokens()[item.id];
        if (tok.is_op) {
          has_last = true;
          last_payload = tok.op;
          last_event = cur;
          continue;
        }
        if (tok.kind == trace::EventKind::Call) {
          stack.push_back({tok.fid, cur});
        } else if (stack.empty()) {
          f.orphan_returns.emplace_back(cur, tok.fid);
        } else {
          if (stack.back().fid != tok.fid) f.mismatched_returns.emplace_back(cur, tok.fid);
          stack.pop_back();
        }
        ++cur;
      }
      if (shape_abstract) {
        f.open_frames = std::move(stack);
        classify_blocked_facts(f, has_last, last_payload, last_event);
      }
    }
    if (!shape_abstract) {
      // A body that is not stack-neutral changes the surrounding stack on
      // every iteration; the decoded event walk (already done) is exact.
      log_fallback(key, "stream: loop body not stack-neutral — concrete stack walk");
      f.orphan_returns.clear();
      f.mismatched_returns.clear();
      classify_blocked(s, store_->registry_ptr().get());
      fill_shape_facts(s, f);
    }

    // Pass B — lock discipline. Invariant bodies compose as one iteration
    // (diagnosis keeps the first witness per order edge); anything the
    // summary cannot decide replays just that loop — all iterations in auto
    // mode, the first kWidenIterations (widening) in summary mode.
    {
      const auto pending_ordinal = f.pending.has_value()
                                       ? f.op_count - 1
                                       : std::numeric_limits<std::uint64_t>::max();
      std::vector<std::pair<std::string, std::uint64_t>> held;  // (name, abs acquire anchor)
      std::uint64_t cur = 0;
      std::uint64_t ordinal = 0;

      const auto sim_op = [&](const OpRecord& op, std::uint64_t abs_event,
                              std::uint64_t abs_ordinal) {
        if (op.code == OpCode::LockAcquire) {
          const bool already = std::any_of(
              held.begin(), held.end(), [&op](const auto& h) { return h.first == op.detail; });
          if (already)
            f.lock_findings.push_back({LockFinding::Kind::Reacquire, abs_event, op.detail});
          for (const auto& h : held) f.lock_edges.push_back({h.first, op.detail, abs_event});
          // A pending acquire was never granted.
          if (abs_ordinal != pending_ordinal) held.emplace_back(op.detail, abs_event);
        } else if (op.code == OpCode::LockRelease) {
          const auto it = std::find_if(held.rbegin(), held.rend(),
                                       [&op](const auto& h) { return h.first == op.detail; });
          if (it == held.rend()) {
            f.lock_findings.push_back({LockFinding::Kind::UnpairedRelease, abs_event, op.detail});
          } else {
            held.erase(std::next(it).base());
          }
        } else if (op.code == OpCode::ThreadBarrier && !held.empty()) {
          std::string names;
          for (const auto& h : held) {
            if (!names.empty()) names += "', '";
            names += h.first;
          }
          f.lock_findings.push_back(
              {LockFinding::Kind::HeldAtBarrier, abs_event, std::move(names)});
        }
      };

      for (const auto& item : program) {
        if (!item.is_loop()) {
          const auto& tok = ir_.tokens()[item.id];
          if (tok.is_op) {
            sim_op(ir_.op_payload(tok.op), cur, ordinal);
            ++ordinal;
          } else {
            ++cur;
          }
          continue;
        }
        const auto& eff = effects_.effect(item.id);
        const auto loop_events = item.count * eff.events;
        const auto loop_ops = item.count * eff.ops;
        if (eff.lock_pure) {
          cur += loop_events;
          ordinal += loop_ops;
          continue;
        }
        const bool overlap = std::any_of(
            eff.lock_acquires.begin(), eff.lock_acquires.end(), [&held](const std::string& name) {
              return std::any_of(held.begin(), held.end(),
                                 [&name](const auto& h) { return h.first == name; });
            });
        const bool pending_inside =
            pending_ordinal >= ordinal && pending_ordinal < ordinal + loop_ops;
        if (eff.lock_invariant && !overlap && (!eff.has_barrier || held.empty()) &&
            !pending_inside) {
          for (const auto& edge : eff.lock_edges)
            f.lock_edges.push_back({edge.first, edge.second, cur + edge.event_index});
          for (const auto& [name, rel] : eff.first_acquires)
            for (const auto& h : held) f.lock_edges.push_back({h.first, name, cur + rel});
          cur += loop_events;
          ordinal += loop_ops;
          continue;
        }
        std::string reason = "locks: loop L" + std::to_string(item.id) + "^" +
                             std::to_string(item.count) + " ";
        if (pending_inside) {
          reason += "contains the pending op";
        } else if (!eff.lock_invariant) {
          reason += "is not lock-invariant";
        } else if (overlap) {
          reason += "re-acquires a lock already held outside it";
        } else {
          reason += "reaches a barrier with outer locks held";
        }
        const auto& flat = flat_body(item.id);
        std::uint64_t sim_iters = item.count;
        if (options_->engine == CheckEngine::Auto) {
          log_fallback(key, reason + " — exact replay of its " + std::to_string(item.count) +
                                " iteration(s)");
        } else if (item.count > kWidenIterations) {
          sim_iters = kWidenIterations;
          summary.locks = Precision::Approx;
        }
        for (std::uint64_t k = 0; k < sim_iters; ++k) {
          const auto base_event = cur + k * eff.events;
          const auto base_ordinal = ordinal + k * eff.ops;
          for (std::size_t j = 0; j < flat.ops.size(); ++j)
            sim_op(ir_.op_payload(flat.ops[j].first), base_event + flat.ops[j].second,
                   base_ordinal + j);
        }
        cur += loop_events;
        ordinal += loop_ops;
      }
      // Locks still held at the end of a stream that finished cleanly.
      if (!f.truncated && !f.degraded && !f.blocked)
        for (const auto& h : held)
          f.lock_findings.push_back({LockFinding::Kind::Unreleased, h.second, h.first});
    }

    // Pass C — MPI traffic. Channel deltas multiply exactly; collective
    // participation compresses to segments. A body past the instance cap
    // falls back to the concrete op scan (still exact).
    {
      std::map<std::pair<int, int>, std::uint64_t> sends;
      std::map<std::pair<int, int>, std::uint64_t> recvs;
      bool overflow = false;
      std::uint64_t cur = 0;
      for (const auto& item : program) {
        if (item.is_loop()) {
          const auto& eff = effects_.effect(item.id);
          if (eff.coll_overflow) {
            overflow = true;
            break;
          }
          for (const auto& c : eff.sends) sends[{c.peer, c.tag}] += item.count * c.count;
          for (const auto& c : eff.recvs) recvs[{c.peer, c.tag}] += item.count * c.count;
          if (!eff.colls.empty()) {
            CollSegment seg;
            seg.base_event = cur;
            seg.repeat = item.count;
            seg.event_span = eff.events;
            seg.runs.reserve(eff.colls.size());
            for (const auto& [payload, rel] : eff.colls)
              seg.runs.push_back({ir_.op_payload(payload), rel});
            summary.coll_segments.push_back(std::move(seg));
          }
          cur += item.count * eff.events;
          continue;
        }
        const auto& tok = ir_.tokens()[item.id];
        if (!tok.is_op) {
          ++cur;
          continue;
        }
        const auto& op = ir_.op_payload(tok.op);
        if (is_send_post(op.code)) ++sends[{op.peer, op.tag}];
        if (is_recv_post(op.code)) ++recvs[{op.peer, op.tag}];
        if (op.code == OpCode::CollEnter) {
          CollSegment seg;
          seg.base_event = cur;
          seg.repeat = 1;
          seg.event_span = 0;
          seg.runs.push_back({op, 0});
          summary.coll_segments.push_back(std::move(seg));
        }
      }
      if (overflow) {
        log_fallback(key, "mpi: loop body exceeds " + std::to_string(kMaxBodyCollInstances) +
                              " collective instances — concrete op scan");
        summary.coll_segments.clear();
        fill_mpi_facts(s, f);
        segments_from_colls(summary);
        f.colls.clear();
      } else {
        for (const auto& [ch, n] : sends) f.sends.push_back({ch.first, ch.second, n});
        for (const auto& [ch, n] : recvs) f.recvs.push_back({ch.first, ch.second, n});
      }
    }
  }

  if (cache_ != nullptr && summary.exact())
    cache_->store(cache_key, kArtifactCheckSummary, encode_check_summary(summary));
  return summary;
}

CheckReport AbstractEngine::run() {
  // Resolve the checker set first so an unknown name fails fast.
  std::vector<std::string> names;
  if (options_->checkers.empty()) {
    for (const auto& info : available_checkers()) names.emplace_back(info.name);
  } else {
    for (const auto& name : options_->checkers) {
      (void)make_checker(name);  // throws std::invalid_argument for unknown names
      names.push_back(name);
    }
  }

  std::vector<StreamSummary> summaries;
  for (const auto& key : store_->keys()) summaries.push_back(summarize(key));
  std::sort(summaries.begin(), summaries.end(), [](const StreamSummary& a, const StreamSummary& b) {
    return a.facts.key < b.facts.key;
  });

  CheckReport report;
  report.streams_checked = summaries.size();
  std::vector<const StreamFacts*> ptrs;
  ptrs.reserve(summaries.size());
  for (auto& summary : summaries) {
    flatten_colls(summary);
    report.events_checked += summary.facts.event_count;
    if (summary.facts.degraded)
      report.notes.push_back("stream " + summary.facts.key.label() + " degraded: " +
                             (summary.facts.degradation.empty() ? "partial decode"
                                                                : summary.facts.degradation) +
                             " — severities that rely on its evidence are capped at warning");
    ptrs.push_back(&summary.facts);
  }

  const FactsView view(store_->registry_ptr().get(), std::move(ptrs));
  for (const auto& name : names) {
    obs::Span span_checker(name);
    if (name == "stream") {
      diagnose_wellformed(view, report);
    } else if (name == "mpi") {
      diagnose_mpi(view, report);
    } else if (name == "locks") {
      diagnose_locks(view, report);
    }
    ++report.checkers_run;
  }
  report.sort();
  return report;
}

}  // namespace difftrace::analyze
