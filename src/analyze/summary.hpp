// Loop-body effect summaries — the lattice of the abstract checker engine.
//
// Every NLR loop body gets a one-time BodyEffect: its expanded span
// (tokens/events/ops), stack discipline, lock behaviour, per-channel
// send/recv deltas, and collective participation. Effects compose by
// iteration count via multiplication and across nesting bottom-up over the
// shared LoopTable (bodies reference only lower loop ids, so ascending id
// order IS the fixpoint order). A body whose effect a rule cannot compose
// exactly (a lock-imbalanced body, a collective list past the cap) earns a
// per-rule Precision verdict of Approx, which the engine resolves by
// widening (summary mode) or scoped exact replay (auto mode) — see
// replay_fallback.cpp for the only expansion site.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analyze/facts.hpp"
#include "analyze/ir.hpp"
#include "core/nlr.hpp"
#include "trace/store.hpp"

namespace difftrace::analyze {

/// sched::Cache artifact kind for per-stream check-fact summaries.
inline constexpr std::uint64_t kArtifactCheckSummary = 3;
/// Bump when the summary payload encoding or fact semantics change.
inline constexpr std::uint64_t kCheckSummarySchema = 1;
/// Per-body collective instances kept before declaring overflow.
inline constexpr std::size_t kMaxBodyCollInstances = 1024;
/// Iterations a widened (summary-mode) walk keeps of an imprecise loop:
/// identical iterations mean the lock state converges after the second
/// pass or not at all, so two is where the abstraction stops paying.
inline constexpr std::uint64_t kWidenIterations = 2;

/// One loop body's composed effect. Span fields are always exact; the
/// per-family fields each carry their own validity flag.
struct BodyEffect {
  std::uint64_t tokens = 0;
  std::uint64_t events = 0;
  std::uint64_t ops = 0;

  /// Stack-neutral: balanced call/return, never pops below its own base,
  /// no orphan or mismatched returns inside — iterating it any number of
  /// times leaves the surrounding stack untouched.
  bool stack_clean = false;

  /// No lock ops anywhere in the body.
  bool lock_pure = false;
  /// Lock-invariant: from an empty held set the body produces no findings,
  /// releases everything it acquires, and never releases an outer lock —
  /// N iterations then behave exactly like one.
  bool lock_invariant = false;
  bool has_barrier = false;
  std::vector<std::string> lock_acquires;  // distinct names, sorted
  /// First in-body acquire per name, (name, rel event) in occurrence order —
  /// the witnesses for outer-held × body-acquire order edges.
  std::vector<std::pair<std::string, std::uint64_t>> first_acquires;
  /// Within-body acquisition-order edges with first-iteration anchors.
  std::vector<LockEdge> lock_edges;

  /// One iteration's p2p deltas per (peer, tag) — always exact.
  std::vector<ChannelCount> sends;
  std::vector<ChannelCount> recvs;

  /// One iteration's collective entries (op payload id, rel event), capped
  /// at kMaxBodyCollInstances; overflow sends the stream's mpi family to
  /// the concrete path.
  bool coll_overflow = false;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> colls;

  /// Last op of one iteration, for pending-op attribution.
  bool has_ops = false;
  std::uint32_t last_op_payload = 0;
  std::uint64_t last_op_rel_event = 0;
};

/// Memoized BodyEffects over an IrContext's shared LoopTable.
class EffectTable {
 public:
  explicit EffectTable(const IrContext& ir) : ir_(&ir) {}

  /// Extends coverage to every body currently interned (bottom-up).
  void update();
  [[nodiscard]] const BodyEffect& effect(std::uint32_t loop_id) const {
    return effects_[loop_id];
  }

 private:
  [[nodiscard]] BodyEffect compute(const core::NlrBody& body) const;

  const IrContext* ir_;
  std::vector<BodyEffect> effects_;
};

/// Per-family precision verdict of one stream summary.
enum class Precision : std::uint8_t { Exact = 0, Approx = 1 };

/// Compressed collective participation: instance k of run r anchors at
/// base_event + k*event_span + rel_event.
struct CollRun {
  trace::OpRecord payload;  // anchor zeroed
  std::uint64_t rel_event = 0;
};
struct CollSegment {
  std::uint64_t base_event = 0;
  std::uint64_t repeat = 1;
  std::uint64_t event_span = 0;
  std::vector<CollRun> runs;
};

/// One stream's checker facts plus how they were obtained. facts.colls is
/// left empty until flatten_colls materializes it from the segments.
struct StreamSummary {
  StreamFacts facts;
  std::vector<CollSegment> coll_segments;
  Precision shape = Precision::Exact;
  Precision locks = Precision::Exact;
  Precision mpi = Precision::Exact;

  [[nodiscard]] bool exact() const noexcept {
    return shape == Precision::Exact && locks == Precision::Exact && mpi == Precision::Exact;
  }
};

/// Materializes facts.colls from coll_segments (idempotent).
void flatten_colls(StreamSummary& summary);

/// Builds coll_segments back from explicit instances (repeat-1 segments) —
/// the concrete-path inverse of flatten_colls.
void segments_from_colls(StreamSummary& summary);

/// Artifact payload round-trip. decode returns nullopt on any defect.
[[nodiscard]] std::vector<std::uint8_t> encode_check_summary(const StreamSummary& summary);
[[nodiscard]] std::optional<StreamSummary> decode_check_summary(
    std::span<const std::uint8_t> payload);

/// Cache key: archive fingerprint (blob codec/CRC/shape + registry) plus
/// the op records — trace_fingerprint deliberately excludes ops, and the
/// checkers read little else — plus the engine's NLR configuration.
[[nodiscard]] std::string check_summary_key(const trace::TraceStore& store, trace::TraceKey key,
                                            const core::NlrConfig& config);

/// Body expansion helpers — implemented in replay_fallback.cpp, the one
/// translation unit of this library allowed to expand NLR programs
/// (tools/lint: ir-first-analysis).
struct FlatBody {
  /// (op payload id, rel event) per op, in body order.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> ops;
  std::uint64_t events = 0;
};
[[nodiscard]] FlatBody flatten_body(const IrContext& ir, std::uint32_t loop_id);

}  // namespace difftrace::analyze
