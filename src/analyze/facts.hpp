// The fact/diagnosis split of the checker rules.
//
// Every checker family is two stages: *fact extraction* distills one stream
// into a StreamFacts record (stack shape, lock-walk findings and order
// edges, per-channel send/recv counts, collective participation), and
// *shared diagnosis* turns the facts of all streams into diagnostics. The
// replay engine extracts facts by walking the decoded op stream
// (fill_*_facts below); the abstract engine derives the same facts from
// NLR body summaries. Because both feed the one diagnosis stage, engine
// parity is structural: identical facts in, byte-identical report out.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analyze/context.hpp"
#include "analyze/diagnostic.hpp"
#include "trace/op.hpp"
#include "trace/registry.hpp"

namespace difftrace::analyze {

/// One lock-rule hit witnessed while walking a stream's ops, in walk order
/// (Unreleased entries trail, mirroring the replay walk).
struct LockFinding {
  enum class Kind : std::uint8_t {
    Reacquire = 0,
    UnpairedRelease = 1,
    HeldAtBarrier = 2,
    Unreleased = 3,
  };
  Kind kind = Kind::Reacquire;
  std::uint64_t event_index = 0;
  /// Lock name; for HeldAtBarrier the "', '"-joined held-lock list.
  std::string detail;
};

/// Acquisition-order edge: `second` acquired while `first` was held.
struct LockEdge {
  std::string first;
  std::string second;
  std::uint64_t event_index = 0;  // the acquire of `second`
};

/// Aggregated p2p traffic on one channel. `peer` is the destination for
/// sends and the source for recvs; the owning stream supplies the other end.
struct ChannelCount {
  int peer = -1;
  int tag = -1;
  std::uint64_t count = 0;
};

/// Everything diagnosis needs to know about one stream.
struct StreamFacts {
  trace::TraceKey key{};
  std::uint64_t event_count = 0;
  std::uint64_t op_count = 0;
  bool truncated = false;
  bool degraded = false;
  std::string degradation;

  // Stack shape (the `stream` family).
  std::vector<OpenFrame> open_frames;  // outermost first
  std::vector<std::pair<std::uint64_t, trace::FunctionId>> orphan_returns;
  std::vector<std::pair<std::uint64_t, trace::FunctionId>> mismatched_returns;

  // Blocked classification (consumed by locks and mpi).
  bool blocked = false;
  trace::FunctionId blocked_fid = 0;
  std::uint64_t blocked_call_index = 0;
  std::optional<trace::OpRecord> pending;  // op annotated inside the blocked frame

  // Lock family.
  std::vector<LockFinding> lock_findings;
  std::vector<LockEdge> lock_edges;  // discovery order; diagnosis keeps first witness

  // MPI family.
  std::vector<ChannelCount> sends;
  std::vector<ChannelCount> recvs;
  std::vector<trace::OpRecord> colls;  // CollEnter instances in op order
};

/// Replay-view extraction: fill facts from a decoded stream. Shape must be
/// filled first — the lock and mpi fills read the blocked classification.
void fill_shape_facts(const StreamInfo& s, StreamFacts& f);
void fill_lock_facts(const StreamInfo& s, StreamFacts& f);
void fill_mpi_facts(const StreamInfo& s, StreamFacts& f);

/// The whole-archive fact view the diagnosis stage runs over — the same
/// lookups CheckContext offers, minus anything that requires decoded events.
class FactsView {
 public:
  /// `streams` must be sorted by key and outlive the view.
  FactsView(const trace::FunctionRegistry* registry, std::vector<const StreamFacts*> streams);

  [[nodiscard]] const std::vector<const StreamFacts*>& streams() const noexcept {
    return streams_;
  }
  [[nodiscard]] const StreamFacts* find(trace::TraceKey key) const noexcept;
  /// Rank-level streams (thread 0), ordered by proc.
  [[nodiscard]] std::vector<const StreamFacts*> rank_streams() const;

  [[nodiscard]] std::string fn_name(trace::FunctionId fid) const;
  [[nodiscard]] std::string call_path(const StreamFacts& f) const;

  [[nodiscard]] bool any_degraded() const noexcept { return any_degraded_; }
  [[nodiscard]] bool any_ops() const noexcept { return any_ops_; }

 private:
  const trace::FunctionRegistry* registry_ = nullptr;
  std::vector<const StreamFacts*> streams_;
  bool any_degraded_ = false;
  bool any_ops_ = false;
};

/// Shared diagnosis: facts in, diagnostics out. Emission order matches the
/// historical replay walk exactly — CheckReport::sort() is stable, so the
/// order here is part of the rendered-output contract.
void diagnose_wellformed(const FactsView& view, CheckReport& out);
void diagnose_locks(const FactsView& view, CheckReport& out);
void diagnose_mpi(const FactsView& view, CheckReport& out);

}  // namespace difftrace::analyze
