#include "analyze/summary.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <stdexcept>

#include "core/sweep_cache.hpp"
#include "sched/artifact.hpp"
#include "sched/digest.hpp"

namespace difftrace::analyze {

namespace {

using trace::OpCode;
using trace::OpRecord;

[[nodiscard]] bool is_lock_op(OpCode c) noexcept {
  return c == OpCode::LockAcquire || c == OpCode::LockRelease || c == OpCode::ThreadBarrier;
}

}  // namespace

void EffectTable::update() {
  // Ascending id order is bottom-up: body(i) references only loops < i.
  while (effects_.size() < ir_->loops().size()) {
    effects_.push_back(compute(ir_->loops().body(static_cast<std::uint32_t>(effects_.size()))));
  }
}

BodyEffect EffectTable::compute(const core::NlrBody& body) const {
  BodyEffect eff;
  eff.stack_clean = true;
  eff.lock_pure = true;
  eff.lock_invariant = true;

  std::vector<trace::FunctionId> stack;
  std::vector<std::pair<std::string, std::uint64_t>> held;  // (name, rel acquire)
  std::set<std::string> acquires;
  std::set<std::string> first_seen;
  std::map<std::pair<int, int>, std::uint64_t> sends;
  std::map<std::pair<int, int>, std::uint64_t> recvs;

  for (const auto& item : body) {
    if (item.is_loop()) {
      const auto& child = effects_[item.id];
      eff.tokens += item.count * child.tokens;
      eff.stack_clean = eff.stack_clean && child.stack_clean;
      eff.has_barrier = eff.has_barrier || child.has_barrier;
      // Locks: a pure child is invisible; an invariant child composes when
      // none of its locks are currently held and any barrier meets an empty
      // held set; anything else makes this body imprecise too.
      if (!child.lock_pure) {
        eff.lock_pure = false;
        const bool overlap =
            std::any_of(child.lock_acquires.begin(), child.lock_acquires.end(),
                        [&held](const std::string& name) {
                          return std::any_of(held.begin(), held.end(),
                                             [&name](const auto& h) { return h.first == name; });
                        });
        if (!child.lock_invariant || overlap || (child.has_barrier && !held.empty())) {
          eff.lock_invariant = false;
        } else {
          for (const auto& edge : child.lock_edges)
            eff.lock_edges.push_back({edge.first, edge.second, eff.events + edge.event_index});
          for (const auto& [name, rel] : child.first_acquires) {
            for (const auto& h : held)
              eff.lock_edges.push_back({h.first, name, eff.events + rel});
            if (first_seen.insert(name).second)
              eff.first_acquires.emplace_back(name, eff.events + rel);
          }
          acquires.insert(child.lock_acquires.begin(), child.lock_acquires.end());
        }
      }
      for (const auto& c : child.sends) sends[{c.peer, c.tag}] += item.count * c.count;
      for (const auto& c : child.recvs) recvs[{c.peer, c.tag}] += item.count * c.count;
      if (child.coll_overflow) {
        eff.coll_overflow = true;
      } else {
        for (std::uint64_t k = 0; k < item.count && !eff.coll_overflow; ++k) {
          for (const auto& [payload, rel] : child.colls) {
            if (eff.colls.size() >= kMaxBodyCollInstances) {
              eff.coll_overflow = true;
              break;
            }
            eff.colls.emplace_back(payload, eff.events + k * child.events + rel);
          }
        }
      }
      if (child.has_ops) {
        eff.has_ops = true;
        eff.last_op_payload = child.last_op_payload;
        eff.last_op_rel_event =
            eff.events + (item.count - 1) * child.events + child.last_op_rel_event;
      }
      eff.events += item.count * child.events;
      eff.ops += item.count * child.ops;
      continue;
    }

    ++eff.tokens;
    const auto& tok = ir_->tokens()[item.id];
    if (!tok.is_op) {
      if (tok.kind == trace::EventKind::Call) {
        stack.push_back(tok.fid);
      } else if (stack.empty() || stack.back() != tok.fid) {
        eff.stack_clean = false;  // pops below base or mismatched return
        if (!stack.empty()) stack.pop_back();
      } else {
        stack.pop_back();
      }
      ++eff.events;
      continue;
    }

    const auto& op = ir_->op_payload(tok.op);
    eff.has_ops = true;
    eff.last_op_payload = tok.op;
    eff.last_op_rel_event = eff.events;
    if (is_lock_op(op.code)) eff.lock_pure = false;
    if (op.code == OpCode::LockAcquire) {
      const bool already =
          std::any_of(held.begin(), held.end(),
                      [&op](const auto& h) { return h.first == op.detail; });
      if (already) eff.lock_invariant = false;  // reacquire finding every iteration
      for (const auto& h : held) eff.lock_edges.push_back({h.first, op.detail, eff.events});
      if (first_seen.insert(op.detail).second)
        eff.first_acquires.emplace_back(op.detail, eff.events);
      acquires.insert(op.detail);
      held.emplace_back(op.detail, eff.events);
    } else if (op.code == OpCode::LockRelease) {
      const auto it = std::find_if(held.rbegin(), held.rend(),
                                   [&op](const auto& h) { return h.first == op.detail; });
      if (it == held.rend()) {
        eff.lock_invariant = false;  // releases an outer lock (or unpaired)
      } else {
        held.erase(std::next(it).base());
      }
    } else if (op.code == OpCode::ThreadBarrier) {
      eff.has_barrier = true;
      if (!held.empty()) eff.lock_invariant = false;
    } else if (op.code == OpCode::SendPost || op.code == OpCode::IsendPost) {
      ++sends[{op.peer, op.tag}];
    } else if (op.code == OpCode::RecvPost || op.code == OpCode::IrecvPost) {
      ++recvs[{op.peer, op.tag}];
    } else if (op.code == OpCode::CollEnter) {
      if (eff.colls.size() >= kMaxBodyCollInstances) {
        eff.coll_overflow = true;
      } else {
        eff.colls.emplace_back(tok.op, eff.events);
      }
    }
    ++eff.ops;
  }

  if (!stack.empty()) eff.stack_clean = false;
  if (!held.empty()) eff.lock_invariant = false;  // net-acquiring body
  if (eff.coll_overflow) eff.colls.clear();
  eff.lock_acquires.assign(acquires.begin(), acquires.end());
  for (const auto& [ch, n] : sends) eff.sends.push_back({ch.first, ch.second, n});
  for (const auto& [ch, n] : recvs) eff.recvs.push_back({ch.first, ch.second, n});
  return eff;
}

void flatten_colls(StreamSummary& summary) {
  auto& colls = summary.facts.colls;
  colls.clear();
  std::size_t total = 0;
  for (const auto& seg : summary.coll_segments) total += seg.repeat * seg.runs.size();
  colls.reserve(total);
  for (const auto& seg : summary.coll_segments) {
    for (std::uint64_t k = 0; k < seg.repeat; ++k) {
      for (const auto& run : seg.runs) {
        colls.push_back(run.payload);
        colls.back().event_index = seg.base_event + k * seg.event_span + run.rel_event;
      }
    }
  }
}

void segments_from_colls(StreamSummary& summary) {
  summary.coll_segments.clear();
  summary.coll_segments.reserve(summary.facts.colls.size());
  for (const auto& op : summary.facts.colls) {
    CollSegment seg;
    seg.base_event = op.event_index;
    seg.repeat = 1;
    seg.event_span = 0;
    seg.runs.push_back({op, 0});
    seg.runs.back().payload.event_index = 0;
    summary.coll_segments.push_back(std::move(seg));
  }
}

namespace {

void put_op(sched::ArtifactWriter& w, const OpRecord& op) {
  w.put_u64(op.event_index);
  w.put_u32(static_cast<std::uint32_t>(op.code));
  w.put_i64(op.peer);
  w.put_i64(op.tag);
  w.put_u64(op.count);
  w.put_u32(op.coll);
  w.put_u32(op.dtype);
  w.put_u32(op.redop);
  w.put_str(op.detail);
}

[[nodiscard]] OpRecord get_op(sched::ArtifactReader& r) {
  OpRecord op;
  op.event_index = r.get_u64();
  const auto code = r.get_u32();
  if (code > static_cast<std::uint32_t>(OpCode::ThreadBarrier)) throw std::out_of_range("opcode");
  op.code = static_cast<OpCode>(code);
  op.peer = static_cast<std::int32_t>(r.get_i64());
  op.tag = static_cast<std::int32_t>(r.get_i64());
  op.count = r.get_u64();
  op.coll = static_cast<std::uint8_t>(r.get_u32());
  op.dtype = static_cast<std::uint8_t>(r.get_u32());
  op.redop = static_cast<std::uint8_t>(r.get_u32());
  op.detail = r.get_str();
  return op;
}

}  // namespace

std::vector<std::uint8_t> encode_check_summary(const StreamSummary& summary) {
  const auto& f = summary.facts;
  sched::ArtifactWriter w;
  w.put_i64(f.key.proc);
  w.put_i64(f.key.thread);
  w.put_u64(f.event_count);
  w.put_u64(f.op_count);
  w.put_bool(f.truncated);
  w.put_bool(f.degraded);
  w.put_str(f.degradation);
  w.put_u64(f.open_frames.size());
  for (const auto& frame : f.open_frames) {
    w.put_u32(frame.fid);
    w.put_u64(frame.call_index);
  }
  w.put_u64(f.orphan_returns.size());
  for (const auto& [index, fid] : f.orphan_returns) {
    w.put_u64(index);
    w.put_u32(fid);
  }
  w.put_u64(f.mismatched_returns.size());
  for (const auto& [index, fid] : f.mismatched_returns) {
    w.put_u64(index);
    w.put_u32(fid);
  }
  w.put_bool(f.blocked);
  w.put_u32(f.blocked_fid);
  w.put_u64(f.blocked_call_index);
  w.put_bool(f.pending.has_value());
  if (f.pending) put_op(w, *f.pending);
  w.put_u64(f.lock_findings.size());
  for (const auto& finding : f.lock_findings) {
    w.put_u32(static_cast<std::uint32_t>(finding.kind));
    w.put_u64(finding.event_index);
    w.put_str(finding.detail);
  }
  w.put_u64(f.lock_edges.size());
  for (const auto& edge : f.lock_edges) {
    w.put_str(edge.first);
    w.put_str(edge.second);
    w.put_u64(edge.event_index);
  }
  w.put_u64(f.sends.size());
  for (const auto& c : f.sends) {
    w.put_i64(c.peer);
    w.put_i64(c.tag);
    w.put_u64(c.count);
  }
  w.put_u64(f.recvs.size());
  for (const auto& c : f.recvs) {
    w.put_i64(c.peer);
    w.put_i64(c.tag);
    w.put_u64(c.count);
  }
  w.put_u64(summary.coll_segments.size());
  for (const auto& seg : summary.coll_segments) {
    w.put_u64(seg.base_event);
    w.put_u64(seg.repeat);
    w.put_u64(seg.event_span);
    w.put_u64(seg.runs.size());
    for (const auto& run : seg.runs) {
      put_op(w, run.payload);
      w.put_u64(run.rel_event);
    }
  }
  w.put_u32(static_cast<std::uint32_t>(summary.shape));
  w.put_u32(static_cast<std::uint32_t>(summary.locks));
  w.put_u32(static_cast<std::uint32_t>(summary.mpi));
  return w.take();
}

std::optional<StreamSummary> decode_check_summary(std::span<const std::uint8_t> payload) {
  try {
    sched::ArtifactReader r(payload);
    StreamSummary summary;
    auto& f = summary.facts;
    f.key.proc = static_cast<int>(r.get_i64());
    f.key.thread = static_cast<int>(r.get_i64());
    f.event_count = r.get_u64();
    f.op_count = r.get_u64();
    f.truncated = r.get_bool();
    f.degraded = r.get_bool();
    f.degradation = r.get_str();
    const auto frames = r.get_u64();
    for (std::uint64_t i = 0; i < frames; ++i) {
      OpenFrame frame;
      frame.fid = r.get_u32();
      frame.call_index = r.get_u64();
      f.open_frames.push_back(frame);
    }
    const auto orphans = r.get_u64();
    for (std::uint64_t i = 0; i < orphans; ++i) {
      const auto index = r.get_u64();
      f.orphan_returns.emplace_back(index, r.get_u32());
    }
    const auto mismatched = r.get_u64();
    for (std::uint64_t i = 0; i < mismatched; ++i) {
      const auto index = r.get_u64();
      f.mismatched_returns.emplace_back(index, r.get_u32());
    }
    f.blocked = r.get_bool();
    f.blocked_fid = r.get_u32();
    f.blocked_call_index = r.get_u64();
    if (r.get_bool()) f.pending = get_op(r);
    const auto findings = r.get_u64();
    for (std::uint64_t i = 0; i < findings; ++i) {
      LockFinding finding;
      const auto kind = r.get_u32();
      if (kind > static_cast<std::uint32_t>(LockFinding::Kind::Unreleased)) return std::nullopt;
      finding.kind = static_cast<LockFinding::Kind>(kind);
      finding.event_index = r.get_u64();
      finding.detail = r.get_str();
      f.lock_findings.push_back(std::move(finding));
    }
    const auto edges = r.get_u64();
    for (std::uint64_t i = 0; i < edges; ++i) {
      LockEdge edge;
      edge.first = r.get_str();
      edge.second = r.get_str();
      edge.event_index = r.get_u64();
      f.lock_edges.push_back(std::move(edge));
    }
    const auto sends = r.get_u64();
    for (std::uint64_t i = 0; i < sends; ++i) {
      ChannelCount c;
      c.peer = static_cast<int>(r.get_i64());
      c.tag = static_cast<int>(r.get_i64());
      c.count = r.get_u64();
      f.sends.push_back(c);
    }
    const auto recvs = r.get_u64();
    for (std::uint64_t i = 0; i < recvs; ++i) {
      ChannelCount c;
      c.peer = static_cast<int>(r.get_i64());
      c.tag = static_cast<int>(r.get_i64());
      c.count = r.get_u64();
      f.recvs.push_back(c);
    }
    const auto segments = r.get_u64();
    for (std::uint64_t i = 0; i < segments; ++i) {
      CollSegment seg;
      seg.base_event = r.get_u64();
      seg.repeat = r.get_u64();
      seg.event_span = r.get_u64();
      const auto runs = r.get_u64();
      for (std::uint64_t j = 0; j < runs; ++j) {
        CollRun run;
        run.payload = get_op(r);
        run.rel_event = r.get_u64();
        seg.runs.push_back(std::move(run));
      }
      summary.coll_segments.push_back(std::move(seg));
    }
    const auto shape = r.get_u32();
    const auto locks = r.get_u32();
    const auto mpi = r.get_u32();
    if (shape > 1 || locks > 1 || mpi > 1) return std::nullopt;
    summary.shape = static_cast<Precision>(shape);
    summary.locks = static_cast<Precision>(locks);
    summary.mpi = static_cast<Precision>(mpi);
    if (!r.at_end()) return std::nullopt;
    return summary;
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
}

namespace {

/// splitmix64-style combine: three multiplies per word, word-at-a-time.
inline std::uint64_t mix64(std::uint64_t h, std::uint64_t v) noexcept {
  h += v + 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

/// 64-bit fingerprint over every field of every op record. This runs once
/// per stream per cached check, over potentially millions of ops, and is
/// the whole price of a warm summary-cache hit — so it hashes machine
/// words, not bytes, and spreads the fields of each op across four
/// independent accumulator lanes: a single serial multiply chain (one
/// splitmix step per field) costs more in dependency latency than the
/// replay walk the cache is supposed to beat. Each lane is a one-multiply
/// FNV-style fold; the lanes only meet in the splitmix finale, which
/// supplies the avalanche the per-lane folds lack. Word packing makes the
/// value endian-dependent, which is fine for an on-disk cache keyed per
/// machine.
std::uint64_t ops_fingerprint(const std::vector<trace::OpRecord>& ops) {
  std::uint64_t h0 = 0x6a09e667f3bcc909ULL;
  std::uint64_t h1 = 0xbb67ae8584caa73bULL;
  std::uint64_t h2 = 0x3c6ef372fe94f82bULL;
  std::uint64_t h3 = 0xa54ff53a5f1d36f1ULL;
  constexpr std::uint64_t kMul = 0x9e3779b97f4a7c15ULL;
  for (const auto& op : ops) {
    h0 = (h0 ^ op.event_index) * kMul;
    h1 = (h1 ^ ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(op.code)) << 32) |
                static_cast<std::uint32_t>(op.peer))) *
         kMul;
    h2 = (h2 ^ ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(op.tag)) << 32) |
                (static_cast<std::uint32_t>(op.coll) | (static_cast<std::uint32_t>(op.dtype) << 8) |
                 (static_cast<std::uint32_t>(op.redop) << 16)))) *
         kMul;
    h3 = (h3 ^ op.count) * kMul;
    if (!op.detail.empty()) {
      h0 = (h0 ^ op.detail.size()) * kMul;
      const char* p = op.detail.data();
      std::size_t n = op.detail.size();
      for (; n >= 8; p += 8, n -= 8) {
        std::uint64_t chunk;
        std::memcpy(&chunk, p, 8);
        h1 = (h1 ^ chunk) * kMul;
      }
      if (n != 0) {
        std::uint64_t chunk = 0;
        std::memcpy(&chunk, p, n);
        h2 = (h2 ^ chunk) * kMul;
      }
    }
  }
  return mix64(mix64(mix64(mix64(ops.size(), h0), h1), h2), h3);
}

}  // namespace

std::string check_summary_key(const trace::TraceStore& store, trace::TraceKey key,
                              const core::NlrConfig& config) {
  sched::DigestBuilder b;
  b.add(sched::kArtifactSchemaVersion);
  b.add(kCheckSummarySchema);
  b.add("check-summary");
  b.add(core::trace_fingerprint(store, key));
  // trace_fingerprint covers blob framing and the registry but deliberately
  // excludes op records; the checkers read little else, so hash them here.
  const auto& ops = store.blob(key).ops;
  b.add(static_cast<std::uint64_t>(ops.size()));
  b.add(ops_fingerprint(ops));
  b.add(static_cast<std::uint64_t>(config.k));
  b.add(static_cast<std::uint64_t>(config.min_reps));
  b.add(config.fold_known_bodies);
  return b.hex();
}

}  // namespace difftrace::analyze
