// The replay-fallback translation unit — the ONLY place in src/analyze
// allowed to expand an NLR program back to its flat token sequence
// (tools/lint: ir-first-analysis). The abstract engine calls flatten_body
// when a loop's effect summary cannot decide a rule exactly and the exact
// semantics require walking the iterations concretely; everything else in
// this library works on the reduced program and the effect table.

#include "analyze/summary.hpp"

namespace difftrace::analyze {

FlatBody flatten_body(const IrContext& ir, std::uint32_t loop_id) {
  const auto tokens = core::expand_nlr({core::NlrItem::loop(loop_id, 1)}, ir.loops());
  FlatBody flat;
  for (const auto token : tokens) {
    const auto& tok = ir.tokens()[token];
    if (tok.is_op) {
      flat.ops.emplace_back(tok.op, flat.events);
    } else {
      ++flat.events;
    }
  }
  return flat;
}

}  // namespace difftrace::analyze
