// Checker: one family of semantic rules run over a CheckContext. Checkers
// are registered by name in a static table (checker.cpp) so the CLI can
// list them (`difftrace check --list`) and run a subset (`--checkers`).
//
//   stream  call/return stack well-formedness     (wellformed.cpp)
//   mpi     p2p matching, collectives, wait-for   (mpi.cpp)
//   locks   lock discipline / lock order          (locks.cpp)
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "analyze/context.hpp"
#include "analyze/diagnostic.hpp"

namespace difftrace::analyze {

class Checker {
 public:
  Checker() = default;
  virtual ~Checker() = default;
  Checker(const Checker&) = delete;
  Checker& operator=(const Checker&) = delete;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual std::string_view description() const noexcept = 0;
  virtual void run(const CheckContext& ctx, CheckReport& out) const = 0;
};

struct CheckerInfo {
  std::string_view name;
  std::string_view description;
};

/// The registered checkers, in run order.
[[nodiscard]] std::vector<CheckerInfo> available_checkers();

/// Instantiates one checker by registered name.
/// Throws std::invalid_argument for unknown names (listing the known ones).
[[nodiscard]] std::unique_ptr<Checker> make_checker(std::string_view name);

// Concrete factories (one per implementation file).
[[nodiscard]] std::unique_ptr<Checker> make_wellformed_checker();
[[nodiscard]] std::unique_ptr<Checker> make_mpi_checker();
[[nodiscard]] std::unique_ptr<Checker> make_lock_checker();

}  // namespace difftrace::analyze
