// MPI semantics checker, run over the op side-channel (trace/op.hpp):
//
//  * p2p matching — every posted receive needs a matching send (counted by
//    (src, dst, tag)); a *blocked* rank whose pending receive has no send
//    is direct deadlock evidence, anchored at the exact rank and function.
//  * collectives — simmpi (like MPI) matches collectives by call order per
//    rank, so instance i is simply each rank's i-th collective op. Ranks
//    disagreeing structurally (type/count/dtype/root) at the same instance
//    hang the job; disagreeing only on the reduction op completes with
//    divergent results (the paper's silent wrong-op fault) — a Warning.
//    A rank blocked alone in an instance other ranks never reach is a
//    straggler stall (the skipped-phase faults).
//  * wait-for graph — blocked ranks point at the ranks that could unblock
//    them; a cycle is a deadlock, reported by walking it rank by rank.
//
// All severities are capped at Warning when the archive is degraded
// (salvaged or truncated-undecodable blobs): missing op records make the
// counts above one-sided, so absence-of-match is no longer proof.
//
// Split per facts.hpp: fill_mpi_facts aggregates one stream's channel
// counts and collective participation; diagnose_mpi does the cross-rank
// matching — both engines share the latter.
#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>

#include "analyze/checker.hpp"
#include "analyze/facts.hpp"

namespace difftrace::analyze {

namespace {

using trace::OpCode;
using trace::OpRecord;

[[nodiscard]] bool is_send_post(OpCode c) noexcept {
  return c == OpCode::SendPost || c == OpCode::IsendPost;
}
[[nodiscard]] bool is_recv_post(OpCode c) noexcept {
  return c == OpCode::RecvPost || c == OpCode::IrecvPost;
}
[[nodiscard]] bool is_recv_wait(OpCode c) noexcept {
  return c == OpCode::RecvPost || c == OpCode::WaitRecv;
}

/// Structural agreement for collective matching — mirrors simmpi's
/// CollParams::structurally_equal (reduction op deliberately excluded).
[[nodiscard]] bool coll_equal(const OpRecord& a, const OpRecord& b) noexcept {
  return a.coll == b.coll && a.dtype == b.dtype && a.count == b.count && a.peer == b.peer;
}

/// Full payload agreement (anchor excluded) — the repeat-instance test of
/// the clean fast path below.
[[nodiscard]] bool coll_payload_equal(const OpRecord& a, const OpRecord& b) noexcept {
  return coll_equal(a, b) && a.redop == b.redop && a.detail == b.detail;
}

[[nodiscard]] std::string coll_desc(const OpRecord& op) {
  std::string out = op.detail.empty() ? "collective" : op.detail;
  out += "(count=" + std::to_string(op.count) + ")";
  return out;
}

struct Channel {  // (src, dst, tag)
  int src = 0;
  int dst = 0;
  int tag = 0;
  [[nodiscard]] auto operator<=>(const Channel&) const = default;
};

template <typename Cap>
void check_p2p(const FactsView& view, const std::vector<const StreamFacts*>& ranks, Cap cap,
               CheckReport& out) {
  std::map<Channel, std::uint64_t> sends;
  std::map<Channel, std::uint64_t> recvs;
  for (const auto* f : ranks) {
    for (const auto& c : f->sends) sends[{f->key.proc, c.peer, c.tag}] += c.count;
    for (const auto& c : f->recvs) recvs[{c.peer, f->key.proc, c.tag}] += c.count;
  }

  // Blocked ranks first: a pending receive with no send to consume is the
  // sharpest diagnostic the checker can make — rank, function, peer, tag.
  std::set<Channel> reported;
  for (const auto* f : ranks) {
    const auto* pending = f->blocked && f->pending ? &*f->pending : nullptr;
    if (pending == nullptr || !is_recv_wait(pending->code)) continue;
    const Channel ch{pending->peer, f->key.proc, pending->tag};
    const auto sent = sends.count(ch) != 0 ? sends.at(ch) : 0;
    if (recvs[ch] <= sent) continue;  // a send exists; the waitgraph explains the block
    reported.insert(ch);
    out.add({.rule = "mpi.unmatched-recv",
             .severity = cap(Severity::Error),
             .where = f->key,
             .function = view.fn_name(f->blocked_fid),
             .path = view.call_path(*f),
             .event_index = pending->event_index,
             .message = "rank " + std::to_string(f->key.proc) +
                        " is blocked waiting for a message from rank " +
                        std::to_string(pending->peer) + " tag " + std::to_string(pending->tag) +
                        ", but no matching send was ever posted"});
  }

  // Remaining surpluses, both directions, reported once per channel.
  for (const auto& [ch, nrecv] : recvs) {
    const auto nsent = sends.count(ch) != 0 ? sends.at(ch) : 0;
    if (nrecv > nsent && reported.count(ch) == 0)
      out.add({.rule = "mpi.unmatched-recv",
               .severity = cap(Severity::Warning),
               .where = {ch.dst, 0},
               .message = std::to_string(nrecv - nsent) + " receive(s) from rank " +
                          std::to_string(ch.src) + " tag " + std::to_string(ch.tag) +
                          " with no matching send"});
  }
  for (const auto& [ch, nsent] : sends) {
    const auto nrecv = recvs.count(ch) != 0 ? recvs.at(ch) : 0;
    if (nsent > nrecv)
      out.add({.rule = "mpi.unmatched-send",
               .severity = cap(Severity::Warning),
               .where = {ch.src, 0},
               .message = std::to_string(nsent - nrecv) + " send(s) to rank " +
                          std::to_string(ch.dst) + " tag " + std::to_string(ch.tag) +
                          " never received"});
  }
}

/// Each rank's ordered collective ops; `pending` marks a last entry the
/// rank is still blocked in (joined but not completed).
struct CollSeq {
  const StreamFacts* f = nullptr;
  std::vector<const OpRecord*> entered;
  bool last_pending = false;
};

[[nodiscard]] std::vector<CollSeq> coll_sequences(const std::vector<const StreamFacts*>& ranks) {
  std::vector<CollSeq> seqs;
  for (const auto* f : ranks) {
    CollSeq seq;
    seq.f = f;
    seq.entered.reserve(f->colls.size());
    for (const auto& op : f->colls) seq.entered.push_back(&op);
    seq.last_pending = f->blocked && f->pending && f->pending->code == OpCode::CollEnter &&
                       !seq.entered.empty();
    seqs.push_back(std::move(seq));
  }
  return seqs;
}

/// The modal structural param set among the ranks present at instance i.
[[nodiscard]] const OpRecord* majority(const std::vector<const CollSeq*>& at, std::size_t i) {
  const OpRecord* best = at.front()->entered[i];
  std::size_t best_votes = 0;
  for (const auto* candidate_seq : at) {
    const auto* candidate = candidate_seq->entered[i];
    std::size_t votes = 0;
    for (const auto* seq : at)
      if (coll_equal(*seq->entered[i], *candidate)) ++votes;
    if (votes > best_votes) {
      best_votes = votes;
      best = candidate;
    }
  }
  return best;
}

/// True when instance i has the same participants and per-rank payloads as
/// instance i-1 — iterative codes repeat one collective schedule, so this
/// is the common case by far.
[[nodiscard]] bool repeats_previous_instance(const std::vector<CollSeq>& seqs, std::size_t i) {
  for (const auto& seq : seqs) {
    const bool now = seq.entered.size() > i;
    const bool before = seq.entered.size() > i - 1;
    if (now != before) return false;
    if (now && !coll_payload_equal(*seq.entered[i], *seq.entered[i - 1])) return false;
  }
  return true;
}

template <typename Cap>
void check_collectives(const FactsView& view, const std::vector<const StreamFacts*>& ranks,
                       Cap cap, CheckReport& out) {
  const auto seqs = coll_sequences(ranks);
  std::size_t max_len = 0;
  for (const auto& seq : seqs) max_len = std::max(max_len, seq.entered.size());

  bool prev_clean = false;
  for (std::size_t i = 0; i < max_len; ++i) {
    // Fast path: an instance whose participation and payloads repeat a
    // clean predecessor emits exactly what the predecessor did — nothing.
    if (prev_clean && i > 0 && repeats_previous_instance(seqs, i)) continue;
    const auto before = out.diagnostics.size();
    [&] {
      // Majority params at instance i define the expectation; structural
      // dissenters are the bug (wrong count / wrong collective / wrong root).
      std::vector<const CollSeq*> at;
      for (const auto& seq : seqs)
        if (seq.entered.size() > i) at.push_back(&seq);
      if (at.size() < 2) return;
      const auto* reference = majority(at, i);
      bool structural_mismatch = false;
      for (const auto* seq : at) {
        const auto& op = *seq->entered[i];
        if (coll_equal(op, *reference)) continue;
        structural_mismatch = true;
        out.add({.rule = "mpi.collective-mismatch",
                 .severity = cap(Severity::Error),
                 .where = seq->f->key,
                 .function = op.detail,
                 .event_index = op.event_index,
                 .message = "rank " + std::to_string(seq->f->key.proc) + " entered " +
                            coll_desc(op) + " at collective #" + std::to_string(i) + " while " +
                            std::to_string(at.size() - 1) + " other rank(s) entered " +
                            coll_desc(*reference) + " — structural disagreement hangs the job"});
      }
      if (structural_mismatch) return;  // op comparison is meaningless across different colls
      // The reduction op takes its own majority vote: the structural
      // reference is merely whichever rank sorts first, and when rank 0 is
      // the one with the wrong op, every *correct* rank would differ from it.
      std::map<std::uint8_t, std::size_t> redop_votes;
      for (const auto* seq : at) ++redop_votes[seq->entered[i]->redop];
      const auto modal_redop =
          std::max_element(redop_votes.begin(), redop_votes.end(),
                           [](const auto& a, const auto& b) { return a.second < b.second; })
              ->first;
      for (const auto* seq : at) {
        const auto& op = *seq->entered[i];
        if (op.redop != modal_redop)
          out.add({.rule = "mpi.collective-op-mismatch",
                   .severity = Severity::Warning,
                   .where = seq->f->key,
                   .function = op.detail,
                   .event_index = op.event_index,
                   .message = "rank " + std::to_string(seq->f->key.proc) +
                              " joined collective #" + std::to_string(i) + " (" + op.detail +
                              ") with reduction op " + std::to_string(op.redop) +
                              " while others used " + std::to_string(modal_redop) +
                              " — completes, but results silently diverge"});
      }
    }();
    prev_clean = out.diagnostics.size() == before;
  }

  // Straggler stall: a rank blocked in an instance that at least one
  // other rank never reached (and is not about to: it is blocked
  // elsewhere or its trace finished).
  std::set<std::size_t> stalled_instances;
  for (const auto& seq : seqs) {
    if (!seq.last_pending) continue;
    const auto i = seq.entered.size() - 1;
    if (stalled_instances.count(i) != 0) continue;
    std::vector<std::string> missing;
    for (const auto& other : seqs) {
      if (other.f == seq.f || other.entered.size() > i) continue;
      std::string where = "rank " + std::to_string(other.f->key.proc);
      where += other.f->blocked ? " (blocked in " + view.fn_name(other.f->blocked_fid) + ")"
                                : " (never blocked)";
      missing.push_back(std::move(where));
    }
    if (missing.empty()) continue;
    stalled_instances.insert(i);
    std::string joined_list;
    for (const auto& m : missing) {
      if (!joined_list.empty()) joined_list += ", ";
      joined_list += m;
    }
    const auto& op = *seq.entered[i];
    out.add({.rule = "mpi.collective-stall",
             .severity = cap(Severity::Error),
             .where = seq.f->key,
             .function = view.fn_name(seq.f->blocked_fid),
             .path = view.call_path(*seq.f),
             .event_index = op.event_index,
             .message = "rank " + std::to_string(seq.f->key.proc) + " is blocked in " +
                        coll_desc(op) + " (collective #" + std::to_string(i) + ") that " +
                        std::to_string(missing.size()) + " rank(s) never reached: " +
                        joined_list});
  }
}

/// First cycle reachable from `start` (DFS), as the ordered list of procs
/// on the cycle; empty when none.
[[nodiscard]] std::vector<int> find_cycle(const std::map<int, std::map<int, std::string>>& edges,
                                          int start) {
  std::vector<int> path;
  std::set<int> on_path;
  std::set<int> done;

  struct DfsFrame {
    int node;
    std::map<int, std::string>::const_iterator next;
  };
  const auto children = [&edges](int node) -> const std::map<int, std::string>* {
    const auto it = edges.find(node);
    return it != edges.end() ? &it->second : nullptr;
  };

  std::vector<DfsFrame> stack;
  const auto* kids = children(start);
  if (kids == nullptr) return {};
  stack.push_back({start, kids->begin()});
  path.push_back(start);
  on_path.insert(start);
  while (!stack.empty()) {
    auto& frame = stack.back();
    const auto* frame_kids = children(frame.node);
    if (frame_kids == nullptr || frame.next == frame_kids->end()) {
      done.insert(frame.node);
      on_path.erase(frame.node);
      path.pop_back();
      stack.pop_back();
      continue;
    }
    const int child = frame.next->first;
    ++frame.next;
    if (on_path.count(child) != 0) {
      // Found: the cycle is the path suffix starting at `child`.
      const auto at = std::find(path.begin(), path.end(), child);
      return {at, path.end()};
    }
    if (done.count(child) != 0) continue;
    const auto* child_kids = children(child);
    if (child_kids == nullptr) {
      done.insert(child);
      continue;
    }
    stack.push_back({child, child_kids->begin()});
    path.push_back(child);
    on_path.insert(child);
  }
  return {};
}

template <typename Cap>
void check_waitgraph(const FactsView& view, const std::vector<const StreamFacts*>& ranks, Cap cap,
                     CheckReport& out) {
  const auto seqs = coll_sequences(ranks);
  const auto seq_of = [&seqs](int proc) -> const CollSeq* {
    for (const auto& seq : seqs)
      if (seq.f->key.proc == proc) return &seq;
    return nullptr;
  };

  // proc -> procs it waits on (with a description of why, for rendering).
  std::map<int, std::map<int, std::string>> edges;
  for (const auto* f : ranks) {
    const auto* pending = f->blocked && f->pending ? &*f->pending : nullptr;
    if (pending == nullptr) continue;
    const int p = f->key.proc;
    switch (pending->code) {
      case OpCode::RecvPost:
      case OpCode::WaitRecv:
        edges[p][pending->peer] = "a message (tag " + std::to_string(pending->tag) + ")";
        break;
      case OpCode::SendPost:
      case OpCode::WaitSend:
        edges[p][pending->peer] = "a rendezvous receive (tag " + std::to_string(pending->tag) + ")";
        break;
      case OpCode::CollEnter: {
        const auto* mine = seq_of(p);
        if (mine == nullptr || mine->entered.empty()) break;
        const auto i = mine->entered.size() - 1;
        for (const auto& other : seqs) {
          if (other.f->key.proc == p) continue;
          const bool satisfied =
              other.entered.size() > i && coll_equal(*other.entered[i], *pending);
          if (!satisfied) edges[p][other.f->key.proc] = "joining " + coll_desc(*pending);
        }
        break;
      }
      default:
        break;
    }
  }

  // Cycle hunt: DFS from every blocked proc, first cycle per start, then
  // canonicalize so each deadlock is reported once.
  std::set<std::vector<int>> seen;
  for (const auto& [start, _] : edges) {
    auto cycle = find_cycle(edges, start);
    if (cycle.empty()) continue;
    auto canon = cycle;
    std::rotate(canon.begin(), std::min_element(canon.begin(), canon.end()), canon.end());
    if (!seen.insert(canon).second) continue;
    std::ostringstream walk;
    for (std::size_t i = 0; i < canon.size(); ++i) {
      const int p = canon[i];
      const int q = canon[(i + 1) % canon.size()];
      const auto* f = view.find({p, 0});
      walk << "rank " << p << " blocked in "
           << (f != nullptr && f->blocked ? view.fn_name(f->blocked_fid) : "?")
           << " waiting on rank " << q << " for " << edges.at(p).at(q);
      if (i + 1 < canon.size()) walk << " -> ";
    }
    const auto* anchor = view.find({canon.front(), 0});
    out.add({.rule = "mpi.deadlock-cycle",
             .severity = cap(Severity::Error),
             .where = {canon.front(), 0},
             .function = anchor != nullptr && anchor->blocked ? view.fn_name(anchor->blocked_fid)
                                                              : "",
             .path = anchor != nullptr ? view.call_path(*anchor) : "",
             .message = "wait-for cycle among " + std::to_string(canon.size()) +
                        " rank(s): " + walk.str()});
  }
}

}  // namespace

void fill_mpi_facts(const StreamInfo& s, StreamFacts& f) {
  f.sends.clear();
  f.recvs.clear();
  f.colls.clear();
  std::map<std::pair<int, int>, std::uint64_t> sends;  // (peer, tag)
  std::map<std::pair<int, int>, std::uint64_t> recvs;
  for (const auto& op : s.ops) {
    if (is_send_post(op.code)) ++sends[{op.peer, op.tag}];
    if (is_recv_post(op.code)) ++recvs[{op.peer, op.tag}];
    if (op.code == OpCode::CollEnter) f.colls.push_back(op);
  }
  for (const auto& [ch, n] : sends) f.sends.push_back({ch.first, ch.second, n});
  for (const auto& [ch, n] : recvs) f.recvs.push_back({ch.first, ch.second, n});
}

void diagnose_mpi(const FactsView& view, CheckReport& out) {
  if (!view.any_ops()) {
    out.notes.push_back(
        "mpi: archive carries no op records (written before the op side-channel); skipped");
    return;
  }
  const auto ranks = view.rank_streams();
  for (const auto* f : ranks)
    if (f->op_count == 0 && f->event_count > 0)
      out.notes.push_back("mpi: rank " + std::to_string(f->key.proc) +
                          " has no op records (dropped in salvage); its traffic is invisible");

  // `cap` downgrades proof-by-absence severities on degraded archives.
  const auto cap = [&view](Severity s) {
    return view.any_degraded() && s > Severity::Warning ? Severity::Warning : s;
  };

  check_p2p(view, ranks, cap, out);
  check_collectives(view, ranks, cap, out);
  check_waitgraph(view, ranks, cap, out);
}

namespace {

class MpiChecker final : public Checker {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "mpi"; }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "send/recv matching, collective agreement, wait-for-graph deadlock detection";
  }

  void run(const CheckContext& ctx, CheckReport& out) const override {
    std::vector<StreamFacts> facts(ctx.streams().size());
    std::vector<const StreamFacts*> ptrs;
    ptrs.reserve(facts.size());
    for (std::size_t i = 0; i < facts.size(); ++i) {
      fill_shape_facts(ctx.streams()[i], facts[i]);
      fill_mpi_facts(ctx.streams()[i], facts[i]);
      ptrs.push_back(&facts[i]);
    }
    diagnose_mpi(FactsView(ctx.registry(), std::move(ptrs)), out);
  }
};

}  // namespace

std::unique_ptr<Checker> make_mpi_checker() { return std::make_unique<MpiChecker>(); }

}  // namespace difftrace::analyze
