// Stream well-formedness: every trace must be a balanced call/return
// sequence. Orphan returns (no open call) and mismatched returns (closing
// a different function than the open one) indicate a corrupted or
// mis-instrumented stream; unreturned frames at the end of a stream are
// expected in truncated/degraded traces (the watchdog froze the writer
// mid-call) but suspicious in a run that claims to have finished cleanly.
//
// Split per facts.hpp: fill_shape_facts (context.cpp's stack walk feeds it)
// extracts, diagnose_wellformed renders — both engines share the latter.
#include <string>

#include "analyze/checker.hpp"
#include "analyze/facts.hpp"

namespace difftrace::analyze {

void diagnose_wellformed(const FactsView& view, CheckReport& out) {
  for (const auto* f : view.streams()) {
    const auto& s = *f;
    // Structural damage is an Error in a verified stream; in a degraded
    // one the decoder already warned us the tail is unreliable.
    const auto structural = s.degraded ? Severity::Warning : Severity::Error;
    for (const auto& [index, fid] : s.orphan_returns) {
      out.add({.rule = "stream.orphan-return",
               .severity = structural,
               .where = s.key,
               .function = view.fn_name(fid),
               .event_index = index,
               .message = "return event with no matching call"});
    }
    for (const auto& [index, fid] : s.mismatched_returns) {
      out.add({.rule = "stream.mismatched-return",
               .severity = structural,
               .where = s.key,
               .function = view.fn_name(fid),
               .event_index = index,
               .message = "return does not close the innermost open call"});
    }
    if (s.open_frames.empty()) continue;
    if (s.truncated || s.degraded) {
      out.add({.rule = "stream.unclosed-call",
               .severity = Severity::Info,
               .where = s.key,
               .function = view.fn_name(s.open_frames.back().fid),
               .path = view.call_path(s),
               .event_index = s.open_frames.back().call_index,
               .message = "trace ends inside " + std::to_string(s.open_frames.size()) +
                          " unreturned frame(s) (" +
                          std::string(s.truncated ? "frozen by watchdog" : "degraded tail") +
                          ")"});
    } else {
      out.add({.rule = "stream.unclosed-call",
               .severity = Severity::Warning,
               .where = s.key,
               .function = view.fn_name(s.open_frames.back().fid),
               .path = view.call_path(s),
               .event_index = s.open_frames.back().call_index,
               .message = "stream from a cleanly finished run ends with " +
                          std::to_string(s.open_frames.size()) + " unreturned frame(s)"});
    }
  }
}

namespace {

class WellformedChecker final : public Checker {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "stream"; }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "call/return stack balance, orphan and mismatched returns";
  }

  void run(const CheckContext& ctx, CheckReport& out) const override {
    std::vector<StreamFacts> facts(ctx.streams().size());
    std::vector<const StreamFacts*> ptrs;
    ptrs.reserve(facts.size());
    for (std::size_t i = 0; i < facts.size(); ++i) {
      fill_shape_facts(ctx.streams()[i], facts[i]);
      ptrs.push_back(&facts[i]);
    }
    diagnose_wellformed(FactsView(ctx.registry(), std::move(ptrs)), out);
  }
};

}  // namespace

std::unique_ptr<Checker> make_wellformed_checker() { return std::make_unique<WellformedChecker>(); }

}  // namespace difftrace::analyze
