// Stream well-formedness: every trace must be a balanced call/return
// sequence. Orphan returns (no open call) and mismatched returns (closing
// a different function than the open one) indicate a corrupted or
// mis-instrumented stream; unreturned frames at the end of a stream are
// expected in truncated/degraded traces (the watchdog froze the writer
// mid-call) but suspicious in a run that claims to have finished cleanly.
#include <string>

#include "analyze/checker.hpp"

namespace difftrace::analyze {

namespace {

class WellformedChecker final : public Checker {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "stream"; }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "call/return stack balance, orphan and mismatched returns";
  }

  void run(const CheckContext& ctx, CheckReport& out) const override {
    for (const auto& s : ctx.streams()) {
      // Structural damage is an Error in a verified stream; in a degraded
      // one the decoder already warned us the tail is unreliable.
      const auto structural = s.degraded ? Severity::Warning : Severity::Error;
      for (const auto index : s.orphan_returns) {
        const auto fid = s.events[index].fid;
        out.add({.rule = "stream.orphan-return",
                 .severity = structural,
                 .where = s.key,
                 .function = ctx.fn_name(fid),
                 .event_index = index,
                 .message = "return event with no matching call"});
      }
      for (const auto index : s.mismatched_returns) {
        const auto fid = s.events[index].fid;
        out.add({.rule = "stream.mismatched-return",
                 .severity = structural,
                 .where = s.key,
                 .function = ctx.fn_name(fid),
                 .event_index = index,
                 .message = "return does not close the innermost open call"});
      }
      if (s.open_frames.empty()) continue;
      if (s.truncated || s.degraded) {
        out.add({.rule = "stream.unclosed-call",
                 .severity = Severity::Info,
                 .where = s.key,
                 .function = ctx.fn_name(s.open_frames.back().fid),
                 .path = ctx.call_path(s),
                 .event_index = s.open_frames.back().call_index,
                 .message = "trace ends inside " + std::to_string(s.open_frames.size()) +
                            " unreturned frame(s) (" +
                            std::string(s.truncated ? "frozen by watchdog" : "degraded tail") +
                            ")"});
      } else {
        out.add({.rule = "stream.unclosed-call",
                 .severity = Severity::Warning,
                 .where = s.key,
                 .function = ctx.fn_name(s.open_frames.back().fid),
                 .path = ctx.call_path(s),
                 .event_index = s.open_frames.back().call_index,
                 .message = "stream from a cleanly finished run ends with " +
                            std::to_string(s.open_frames.size()) + " unreturned frame(s)"});
      }
    }
  }
};

}  // namespace

std::unique_ptr<Checker> make_wellformed_checker() { return std::make_unique<WellformedChecker>(); }

}  // namespace difftrace::analyze
