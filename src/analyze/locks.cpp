// Lock-discipline checker over the simomp op records:
//
//  * order cycles — thread A takes lock x then y while thread B (same
//    process: criticals are per-process) takes y then x. Classic ABBA;
//    pending acquisitions count, so a frozen mid-deadlock trace shows the
//    inversion even though neither thread got both locks.
//  * held-across-barrier — entering a team barrier while holding a lock:
//    any teammate that needs the lock before its own barrier call can
//    never arrive, so the barrier (and the region) may never complete.
//  * re-acquire — taking a lock the thread already holds self-deadlocks a
//    non-recursive critical section.
//  * unreleased / unpaired release — balance violations, reported only for
//    streams that finished cleanly (a frozen trace legitimately ends with
//    locks held).
//
// Split per facts.hpp: fill_lock_facts walks one stream's ops and records
// findings/edges; diagnose_locks renders findings and hunts order cycles
// across streams — both engines share the latter.
#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/checker.hpp"
#include "analyze/facts.hpp"

namespace difftrace::analyze {

namespace {

using trace::OpCode;
using trace::OpRecord;

}  // namespace

void fill_lock_facts(const StreamInfo& s, StreamFacts& f) {
  f.lock_findings.clear();
  f.lock_edges.clear();
  std::vector<const OpRecord*> held;  // acquisition order, completed acquires
  for (std::size_t i = 0; i < s.ops.size(); ++i) {
    const auto& op = s.ops[i];
    const bool pending = s.blocked && s.pending() == &op;
    if (op.code == OpCode::LockAcquire) {
      const bool already_held = std::any_of(
          held.begin(), held.end(), [&op](const OpRecord* h) { return h->detail == op.detail; });
      if (already_held)
        f.lock_findings.push_back(
            {LockFinding::Kind::Reacquire, op.event_index, op.detail});
      for (const auto* h : held) f.lock_edges.push_back({h->detail, op.detail, op.event_index});
      if (!pending) held.push_back(&op);  // a pending acquire was never granted
    } else if (op.code == OpCode::LockRelease) {
      const auto it = std::find_if(held.rbegin(), held.rend(),
                                   [&op](const OpRecord* h) { return h->detail == op.detail; });
      if (it == held.rend()) {
        f.lock_findings.push_back(
            {LockFinding::Kind::UnpairedRelease, op.event_index, op.detail});
      } else {
        held.erase(std::next(it).base());
      }
    } else if (op.code == OpCode::ThreadBarrier && !held.empty()) {
      std::string names;
      for (const auto* h : held) {
        if (!names.empty()) names += "', '";
        names += h->detail;
      }
      f.lock_findings.push_back(
          {LockFinding::Kind::HeldAtBarrier, op.event_index, std::move(names)});
    }
  }
  // Locks still held at the end of a stream that finished cleanly.
  if (!s.truncated && !s.degraded && !s.blocked)
    for (const auto* h : held)
      f.lock_findings.push_back({LockFinding::Kind::Unreleased, h->event_index, h->detail});
}

void diagnose_locks(const FactsView& view, CheckReport& out) {
  // Acquisition-order edges per process: held-lock -> next-lock, with the
  // stream and op that witnessed the pair (first witness wins).
  struct Witness {
    trace::TraceKey key;
    std::uint64_t event_index = 0;
  };
  std::map<int, std::map<std::pair<std::string, std::string>, Witness>> order;

  for (const auto* f : view.streams()) {
    for (const auto& finding : f->lock_findings) {
      switch (finding.kind) {
        case LockFinding::Kind::Reacquire:
          out.add({.rule = "lock.reacquire",
                   .severity = Severity::Error,
                   .where = f->key,
                   .function = "GOMP_critical_start",
                   .event_index = finding.event_index,
                   .message = "lock '" + finding.detail +
                              "' acquired while already held — self-deadlock on a "
                              "non-recursive critical section"});
          break;
        case LockFinding::Kind::UnpairedRelease:
          out.add({.rule = "lock.unpaired-release",
                   .severity = Severity::Warning,
                   .where = f->key,
                   .function = "GOMP_critical_end",
                   .event_index = finding.event_index,
                   .message =
                       "release of lock '" + finding.detail + "' that this thread does not hold"});
          break;
        case LockFinding::Kind::HeldAtBarrier:
          out.add({.rule = "lock.held-at-barrier",
                   .severity = Severity::Error,
                   .where = f->key,
                   .function = "GOMP_barrier",
                   .event_index = finding.event_index,
                   .message = "thread enters the team barrier holding lock(s) '" + finding.detail +
                              "' — teammates contending for them can never reach the barrier"});
          break;
        case LockFinding::Kind::Unreleased:
          out.add({.rule = "lock.unreleased",
                   .severity = Severity::Warning,
                   .where = f->key,
                   .function = "GOMP_critical_start",
                   .event_index = finding.event_index,
                   .message = "lock '" + finding.detail + "' is never released"});
          break;
      }
    }
    for (const auto& edge : f->lock_edges)
      order[f->key.proc].try_emplace({edge.first, edge.second},
                                     Witness{f->key, edge.event_index});
  }

  // Order inversions: x-before-y and y-before-x both witnessed in the
  // same process. Report each unordered pair once, from both witnesses.
  for (const auto& [proc, edges] : order) {
    std::set<std::pair<std::string, std::string>> reported;
    for (const auto& [pair, witness] : edges) {
      const auto reverse = std::make_pair(pair.second, pair.first);
      const auto it = edges.find(reverse);
      if (it == edges.end()) continue;
      auto canon = std::minmax(pair.first, pair.second);
      if (!reported.insert({canon.first, canon.second}).second) continue;
      out.add({.rule = "lock.order-cycle",
               .severity = Severity::Error,
               .where = witness.key,
               .function = "GOMP_critical_start",
               .event_index = witness.event_index,
               .message = "inconsistent lock order in process " + std::to_string(proc) +
                          ": '" + pair.first + "' taken before '" + pair.second + "' (thread " +
                          std::to_string(witness.key.thread) + ") but '" + pair.second +
                          "' before '" + pair.first + "' (thread " +
                          std::to_string(it->second.key.thread) + ") — ABBA deadlock risk"});
    }
  }
}

namespace {

class LockChecker final : public Checker {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "locks"; }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "lock acquisition order and held-across-barrier discipline";
  }

  void run(const CheckContext& ctx, CheckReport& out) const override {
    std::vector<StreamFacts> facts(ctx.streams().size());
    std::vector<const StreamFacts*> ptrs;
    ptrs.reserve(facts.size());
    for (std::size_t i = 0; i < facts.size(); ++i) {
      fill_shape_facts(ctx.streams()[i], facts[i]);
      fill_lock_facts(ctx.streams()[i], facts[i]);
      ptrs.push_back(&facts[i]);
    }
    diagnose_locks(FactsView(ctx.registry(), std::move(ptrs)), out);
  }
};

}  // namespace

std::unique_ptr<Checker> make_lock_checker() { return std::make_unique<LockChecker>(); }

}  // namespace difftrace::analyze
