// Lock-discipline checker over the simomp op records:
//
//  * order cycles — thread A takes lock x then y while thread B (same
//    process: criticals are per-process) takes y then x. Classic ABBA;
//    pending acquisitions count, so a frozen mid-deadlock trace shows the
//    inversion even though neither thread got both locks.
//  * held-across-barrier — entering a team barrier while holding a lock:
//    any teammate that needs the lock before its own barrier call can
//    never arrive, so the barrier (and the region) may never complete.
//  * re-acquire — taking a lock the thread already holds self-deadlocks a
//    non-recursive critical section.
//  * unreleased / unpaired release — balance violations, reported only for
//    streams that finished cleanly (a frozen trace legitimately ends with
//    locks held).
#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/checker.hpp"

namespace difftrace::analyze {

namespace {

using trace::OpCode;
using trace::OpRecord;

class LockChecker final : public Checker {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "locks"; }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "lock acquisition order and held-across-barrier discipline";
  }

  void run(const CheckContext& ctx, CheckReport& out) const override {
    // Acquisition-order edges per process: held-lock -> next-lock, with the
    // stream and op that witnessed the pair.
    struct Witness {
      trace::TraceKey key;
      std::uint64_t event_index = 0;
    };
    std::map<int, std::map<std::pair<std::string, std::string>, Witness>> order;

    for (const auto& s : ctx.streams()) {
      std::vector<const OpRecord*> held;  // acquisition order, completed acquires
      for (std::size_t i = 0; i < s.ops.size(); ++i) {
        const auto& op = s.ops[i];
        const bool pending = s.blocked && s.pending() == &op;
        if (op.code == OpCode::LockAcquire) {
          const bool already_held =
              std::any_of(held.begin(), held.end(),
                          [&op](const OpRecord* h) { return h->detail == op.detail; });
          if (already_held)
            out.add({.rule = "lock.reacquire",
                     .severity = Severity::Error,
                     .where = s.key,
                     .function = "GOMP_critical_start",
                     .event_index = op.event_index,
                     .message = "lock '" + op.detail +
                                "' acquired while already held — self-deadlock on a "
                                "non-recursive critical section"});
          for (const auto* h : held)
            order[s.key.proc].try_emplace({h->detail, op.detail},
                                          Witness{s.key, op.event_index});
          if (!pending) held.push_back(&op);  // a pending acquire was never granted
        } else if (op.code == OpCode::LockRelease) {
          const auto it = std::find_if(held.rbegin(), held.rend(), [&op](const OpRecord* h) {
            return h->detail == op.detail;
          });
          if (it == held.rend()) {
            out.add({.rule = "lock.unpaired-release",
                     .severity = Severity::Warning,
                     .where = s.key,
                     .function = "GOMP_critical_end",
                     .event_index = op.event_index,
                     .message = "release of lock '" + op.detail + "' that this thread does not hold"});
          } else {
            held.erase(std::next(it).base());
          }
        } else if (op.code == OpCode::ThreadBarrier && !held.empty()) {
          std::string names;
          for (const auto* h : held) {
            if (!names.empty()) names += "', '";
            names += h->detail;
          }
          out.add({.rule = "lock.held-at-barrier",
                   .severity = Severity::Error,
                   .where = s.key,
                   .function = "GOMP_barrier",
                   .event_index = op.event_index,
                   .message = "thread enters the team barrier holding lock(s) '" + names +
                              "' — teammates contending for them can never reach the barrier"});
        }
      }
      // Locks still held at the end of a stream that finished cleanly.
      if (!s.truncated && !s.degraded && !s.blocked)
        for (const auto* h : held)
          out.add({.rule = "lock.unreleased",
                   .severity = Severity::Warning,
                   .where = s.key,
                   .function = "GOMP_critical_start",
                   .event_index = h->event_index,
                   .message = "lock '" + h->detail + "' is never released"});
    }

    // Order inversions: x-before-y and y-before-x both witnessed in the
    // same process. Report each unordered pair once, from both witnesses.
    for (const auto& [proc, edges] : order) {
      std::set<std::pair<std::string, std::string>> reported;
      for (const auto& [pair, witness] : edges) {
        const auto reverse = std::make_pair(pair.second, pair.first);
        const auto it = edges.find(reverse);
        if (it == edges.end()) continue;
        auto canon = std::minmax(pair.first, pair.second);
        if (!reported.insert({canon.first, canon.second}).second) continue;
        out.add({.rule = "lock.order-cycle",
                 .severity = Severity::Error,
                 .where = witness.key,
                 .function = "GOMP_critical_start",
                 .event_index = witness.event_index,
                 .message = "inconsistent lock order in process " + std::to_string(proc) +
                            ": '" + pair.first + "' taken before '" + pair.second + "' (thread " +
                            std::to_string(witness.key.thread) + ") but '" + pair.second +
                            "' before '" + pair.first + "' (thread " +
                            std::to_string(it->second.key.thread) + ") — ABBA deadlock risk"});
      }
    }
  }
};

}  // namespace

std::unique_ptr<Checker> make_lock_checker() { return std::make_unique<LockChecker>(); }

}  // namespace difftrace::analyze
