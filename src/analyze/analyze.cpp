#include "analyze/analyze.hpp"

#include <memory>

#include "analyze/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace difftrace::analyze {

std::string_view check_engine_name(CheckEngine engine) noexcept {
  switch (engine) {
    case CheckEngine::Replay:
      return "replay";
    case CheckEngine::Summary:
      return "summary";
    case CheckEngine::Auto:
      return "auto";
  }
  return "replay";
}

std::optional<CheckEngine> parse_check_engine(std::string_view name) noexcept {
  if (name == "replay") return CheckEngine::Replay;
  if (name == "summary") return CheckEngine::Summary;
  if (name == "auto") return CheckEngine::Auto;
  return std::nullopt;
}

namespace {

CheckReport run_replay(const trace::TraceStore& store, const CheckOptions& options) {
  // Resolve the checker set first so an unknown name fails fast.
  std::vector<std::unique_ptr<Checker>> checkers;
  if (options.checkers.empty()) {
    for (const auto& info : available_checkers()) checkers.push_back(make_checker(info.name));
  } else {
    for (const auto& name : options.checkers) checkers.push_back(make_checker(name));
  }

  const auto ctx = CheckContext::build(store);
  CheckReport report;
  report.streams_checked = ctx.streams().size();
  for (const auto& s : ctx.streams()) {
    report.events_checked += s.events.size();
    if (s.degraded)
      report.notes.push_back("stream " + s.key.label() + " degraded: " +
                             (s.degradation.empty() ? "partial decode" : s.degradation) +
                             " — severities that rely on its evidence are capped at warning");
  }
  for (const auto& checker : checkers) {
    obs::Span span_checker(checker->name());
    checker->run(ctx, report);
    ++report.checkers_run;
  }
  report.sort();
  return report;
}

}  // namespace

CheckReport run_checks(const trace::TraceStore& store, const CheckOptions& options) {
  obs::Span span_check("check");
  CheckReport report = options.engine == CheckEngine::Replay
                           ? run_replay(store, options)
                           : AbstractEngine(store, options).run();

  static auto& events = obs::counter("check.events_checked");
  static auto& diagnostics = obs::counter("check.diagnostics");
  events.add(report.events_checked);
  diagnostics.add(report.diagnostics.size());
  return report;
}

}  // namespace difftrace::analyze
