#include "analyze/analyze.hpp"

#include <memory>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace difftrace::analyze {

CheckReport run_checks(const trace::TraceStore& store, const CheckOptions& options) {
  obs::Span span_check("check");
  // Resolve the checker set first so an unknown name fails fast.
  std::vector<std::unique_ptr<Checker>> checkers;
  if (options.checkers.empty()) {
    for (const auto& info : available_checkers()) checkers.push_back(make_checker(info.name));
  } else {
    for (const auto& name : options.checkers) checkers.push_back(make_checker(name));
  }

  const auto ctx = CheckContext::build(store);
  CheckReport report;
  report.streams_checked = ctx.streams().size();
  for (const auto& s : ctx.streams()) {
    report.events_checked += s.events.size();
    if (s.degraded)
      report.notes.push_back("stream " + s.key.label() + " degraded: " +
                             (s.degradation.empty() ? "partial decode" : s.degradation) +
                             " — severities that rely on its evidence are capped at warning");
  }
  for (const auto& checker : checkers) {
    obs::Span span_checker(checker->name());
    checker->run(ctx, report);
    ++report.checkers_run;
  }
  report.sort();

  static auto& events = obs::counter("check.events_checked");
  static auto& diagnostics = obs::counter("check.diagnostics");
  events.add(report.events_checked);
  diagnostics.add(report.diagnostics.size());
  return report;
}

}  // namespace difftrace::analyze
