// AbstractEngine: the summary/auto paths of `difftrace check`.
//
// Instead of walking every decoded op like the replay engine, this engine
// reduces each stream to an NLR program over a shared LoopTable (ir.hpp),
// summarizes every loop body once (summary.hpp), and derives the same
// StreamFacts the replay fills — composing body effects by iteration count
// and across nesting. Both engines feed the identical shared diagnosis
// stage (facts.hpp), so whenever the facts agree the rendered report is
// byte-identical by construction.
//
// A body a rule cannot compose exactly earns a fallback, scoped to the
// smallest region that needs it:
//   * auto    — exact replay of just that loop's iterations (flatten_body),
//               each fallback logged with its reason; verdicts stay exact.
//   * summary — widened walk of the first kWidenIterations iterations; the
//               family's Precision drops to Approx (taxonomy preserved,
//               anchors may shift).
// Streams with unordered op anchors skip the IR entirely and use the
// concrete fact fills — still exact, never cached as approximations.
//
// Exact summaries are keyed into the content-addressed sched::Cache
// (check_summary_key), so a warm re-check skips decode + summarization.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "analyze/analyze.hpp"
#include "analyze/ir.hpp"
#include "analyze/summary.hpp"
#include "sched/cache.hpp"
#include "trace/store.hpp"

namespace difftrace::analyze {

class AbstractEngine {
 public:
  AbstractEngine(const trace::TraceStore& store, const CheckOptions& options);

  [[nodiscard]] CheckReport run();

 private:
  [[nodiscard]] StreamSummary summarize(trace::TraceKey key);
  /// Concrete (replay-view) facts for one stream — the whole-stream
  /// fallback used when op anchors defeat the IR. Exact.
  [[nodiscard]] StreamSummary summarize_concrete(StreamInfo& s);
  /// Blocked classification over abstractly derived facts.
  void classify_blocked_facts(StreamFacts& f, bool has_last_op, std::uint32_t last_op_payload,
                              std::uint64_t last_op_event) const;
  [[nodiscard]] const FlatBody& flat_body(std::uint32_t loop_id);
  void log_fallback(trace::TraceKey key, const std::string& reason);

  const trace::TraceStore* store_;
  const CheckOptions* options_;
  IrContext ir_;
  EffectTable effects_;
  std::map<std::uint32_t, FlatBody> flat_bodies_;
  std::unique_ptr<sched::Cache> cache_;
};

}  // namespace difftrace::analyze
