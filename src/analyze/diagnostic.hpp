// Diagnostic records: the structured findings of the semantic trace
// verifier (`difftrace check`). Each diagnostic names a rule, a severity,
// the trace stream it anchors to (rank.thread), the implicated function —
// with the full open-frame call path when the finding is about a blocked
// stream — and a human-readable message. CheckReport aggregates them with
// the degradation notes and drives the CLI exit code.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "trace/event.hpp"

namespace difftrace::analyze {

enum class Severity : std::uint8_t {
  Info = 0,     // context worth surfacing (e.g. truncated stream)
  Warning = 1,  // suspicious but not proven fatal, or degraded evidence
  Error = 2,    // semantic violation: deadlock, unmatched op, broken stream
};

[[nodiscard]] std::string_view severity_name(Severity severity) noexcept;

struct Diagnostic {
  std::string rule{};  // "mpi.unmatched-recv", "lock.order-cycle", ...
  Severity severity = Severity::Warning;
  trace::TraceKey where{};   // stream the finding anchors to
  std::string function{};    // implicated function (e.g. "MPI_Recv")
  std::string path{};        // open-frame call path for blocked streams, "" otherwise
  std::uint64_t event_index = 0;  // position in the stream, when meaningful
  std::string message{};

  /// One-line rendering: "error mpi.unmatched-recv @1.0 MPI_Recv: ...".
  [[nodiscard]] std::string render() const;
};

struct CheckReport {
  std::vector<Diagnostic> diagnostics;
  /// Non-diagnostic context: degraded streams, skipped checkers, missing
  /// op records. Never affects the exit code.
  std::vector<std::string> notes;
  std::size_t streams_checked = 0;
  std::uint64_t events_checked = 0;
  std::size_t checkers_run = 0;

  void add(Diagnostic diagnostic) { diagnostics.push_back(std::move(diagnostic)); }
  [[nodiscard]] std::size_t count(Severity severity) const noexcept;
  [[nodiscard]] std::size_t errors() const noexcept { return count(Severity::Error); }
  [[nodiscard]] std::size_t warnings() const noexcept { return count(Severity::Warning); }
  [[nodiscard]] bool clean() const noexcept { return diagnostics.empty(); }

  /// `difftrace check` exit code, documented next to fsck's in the README:
  /// 0 = no diagnostics, 1 = at least one error, 3 = warnings/infos only.
  /// (2 is the CLI's usage-error code, so the checker never returns it.)
  [[nodiscard]] int exit_code() const noexcept;

  /// Orders diagnostics most-severe first, then by stream, rule, position.
  void sort();

  [[nodiscard]] std::string render() const;
};

}  // namespace difftrace::analyze
