#include "analyze/ir.hpp"

#include <tuple>

#include "trace/opspan.hpp"

namespace difftrace::analyze {

bool IrContext::OpPayloadLess::operator()(const trace::OpRecord& a,
                                          const trace::OpRecord& b) const {
  return std::tie(a.code, a.peer, a.tag, a.count, a.coll, a.dtype, a.redop, a.detail) <
         std::tie(b.code, b.peer, b.tag, b.count, b.coll, b.dtype, b.redop, b.detail);
}

core::TokenId IrContext::intern_event(trace::EventKind kind, trace::FunctionId fid) {
  const auto key = std::make_pair(static_cast<std::uint64_t>(kind),
                                  static_cast<std::uint64_t>(fid));
  const auto it = event_ids_.find(key);
  if (it != event_ids_.end()) return it->second;
  const auto id = static_cast<core::TokenId>(tokens_.size());
  tokens_.push_back({.is_op = false, .kind = kind, .fid = fid, .op = 0});
  event_ids_.emplace(key, id);
  return id;
}

core::TokenId IrContext::intern_op(const trace::OpRecord& op) {
  trace::OpRecord payload = op;
  payload.event_index = 0;
  const auto it = op_ids_.find(payload);
  if (it != op_ids_.end()) return it->second;
  const auto id = static_cast<core::TokenId>(tokens_.size());
  tokens_.push_back({.is_op = true,
                     .kind = trace::EventKind::Call,
                     .fid = 0,
                     .op = static_cast<std::uint32_t>(op_payloads_.size())});
  op_payloads_.push_back(std::move(payload));
  op_ids_.emplace(op_payloads_.back(), id);
  return id;
}

core::NlrProgram IrContext::reduce(const StreamInfo& s) {
  core::NlrBuilder builder(loops_, config_);
  const trace::OpSpanIndex index(s.ops);
  for (std::size_t i = 0; i < s.events.size(); ++i) {
    for (const auto& op : index.at(i)) builder.push(intern_op(op));
    builder.push(intern_event(s.events[i].kind, s.events[i].fid));
  }
  // Trailing ops anchored past the last event (at it, after degraded trim).
  for (const auto& op : index.in_span(s.events.size(), UINT64_MAX)) builder.push(intern_op(op));
  return builder.take();
}

}  // namespace difftrace::analyze
