#include "analyze/context.hpp"

#include <algorithm>

namespace difftrace::analyze {

namespace {

/// Walks one stream's call/return sequence, filling the stack-shape fields.
void walk_stack(StreamInfo& s) {
  std::vector<OpenFrame> stack;
  for (std::size_t i = 0; i < s.events.size(); ++i) {
    const auto& e = s.events[i];
    if (e.kind == trace::EventKind::Call) {
      stack.push_back({e.fid, i});
    } else if (stack.empty()) {
      s.orphan_returns.push_back(i);
    } else {
      if (stack.back().fid != e.fid) s.mismatched_returns.push_back(i);
      stack.pop_back();
    }
  }
  s.open_frames = std::move(stack);
}

}  // namespace

std::string registry_fn_name(const trace::FunctionRegistry* registry, trace::FunctionId fid) {
  if (registry != nullptr && fid < registry->size()) return registry->name(fid);
  return "?fn" + std::to_string(fid);
}

trace::Image registry_fn_image(const trace::FunctionRegistry* registry, trace::FunctionId fid) {
  if (registry != nullptr && fid < registry->size()) return registry->info(fid).image;
  return trace::Image::Main;
}

StreamInfo build_stream_info(const trace::TraceStore& store, trace::TraceKey key) {
  StreamInfo s;
  s.key = key;
  const auto& blob = store.blob(key);
  s.ops = blob.ops;
  s.truncated = blob.truncated;
  auto decoded = store.decode_tolerant(key);
  s.events = std::move(decoded.events);
  if (!decoded.complete) {
    s.degraded = true;
    s.degradation = decoded.note;
    // Ops past the decodable prefix describe events we cannot see; drop
    // them so pending-op attribution stays inside the decoded stream.
    std::erase_if(s.ops, [&](const trace::OpRecord& op) { return op.event_index > s.events.size(); });
  }
  walk_stack(s);
  return s;
}

void classify_blocked(StreamInfo& s, const trace::FunctionRegistry* registry) {
  // Blocked classification: innermost open frame that is a runtime API
  // entry (MpiLib/OmpLib), skipping the library internals nested below it.
  for (auto it = s.open_frames.rbegin(); it != s.open_frames.rend(); ++it) {
    const auto image = registry_fn_image(registry, it->fid);
    if (image == trace::Image::Internal || image == trace::Image::SystemLib) continue;
    if (image == trace::Image::MpiLib || image == trace::Image::OmpLib) {
      s.blocked = true;
      s.blocked_fid = it->fid;
      s.blocked_call_index = it->call_index;
      // The newest op, if annotated inside the blocked frame, names the
      // pending operation (runtimes annotate just before blocking, so in
      // a multi-op call like MPI_Waitall the last one is the blocker).
      if (!s.ops.empty() && s.ops.back().event_index > s.blocked_call_index)
        s.pending_op = static_cast<std::ptrdiff_t>(s.ops.size()) - 1;
    }
    break;  // an open Main-image frame below the top means not runtime-blocked
  }
}

CheckContext CheckContext::build(const trace::TraceStore& store) {
  CheckContext ctx;
  ctx.registry_ = store.registry_ptr();
  for (const auto& key : store.keys()) ctx.streams_.push_back(build_stream_info(store, key));
  std::sort(ctx.streams_.begin(), ctx.streams_.end(),
            [](const StreamInfo& a, const StreamInfo& b) { return a.key < b.key; });

  for (auto& s : ctx.streams_) {
    ctx.any_degraded_ = ctx.any_degraded_ || s.degraded;
    ctx.any_ops_ = ctx.any_ops_ || !s.ops.empty();
    classify_blocked(s, ctx.registry_.get());
  }
  return ctx;
}

const StreamInfo* CheckContext::find(trace::TraceKey key) const noexcept {
  const auto it = std::lower_bound(
      streams_.begin(), streams_.end(), key,
      [](const StreamInfo& s, const trace::TraceKey& k) { return s.key < k; });
  return it != streams_.end() && it->key == key ? &*it : nullptr;
}

std::vector<const StreamInfo*> CheckContext::rank_streams() const {
  std::vector<const StreamInfo*> out;
  for (const auto& s : streams_)
    if (s.key.thread == 0) out.push_back(&s);
  return out;
}

std::string CheckContext::fn_name(trace::FunctionId fid) const {
  return registry_fn_name(registry_.get(), fid);
}

trace::Image CheckContext::fn_image(trace::FunctionId fid) const {
  return registry_fn_image(registry_.get(), fid);
}

std::string CheckContext::call_path(const StreamInfo& stream) const {
  std::string out;
  for (const auto& frame : stream.open_frames) {
    if (!out.empty()) out += " > ";
    out += fn_name(frame.fid);
  }
  return out;
}

}  // namespace difftrace::analyze
