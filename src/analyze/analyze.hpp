// run_checks: the `difftrace check` entry point. Builds one CheckContext
// from a TraceStore (however it was loaded — strict, tolerant, or salvaged)
// and runs the selected checkers over it, returning a sorted CheckReport.
// Deterministic and offline: same archive in, same diagnostics out.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analyze/checker.hpp"
#include "analyze/context.hpp"
#include "analyze/diagnostic.hpp"
#include "trace/store.hpp"

namespace difftrace::analyze {

/// Which engine derives the checker facts (engine.hpp for the abstract two):
///   replay  — walk every decoded op (the historical engine)
///   summary — NLR effect summaries, widening where a body is undecidable
///   auto    — summaries with scoped exact-replay fallback; always exact
enum class CheckEngine : std::uint8_t { Replay = 0, Summary = 1, Auto = 2 };

[[nodiscard]] std::string_view check_engine_name(CheckEngine engine) noexcept;
/// nullopt for unknown names ("replay", "summary", "auto").
[[nodiscard]] std::optional<CheckEngine> parse_check_engine(std::string_view name) noexcept;

struct CheckOptions {
  /// Checker names to run (see available_checkers()); empty = all.
  /// Unknown names throw std::invalid_argument before anything runs.
  std::vector<std::string> checkers;
  CheckEngine engine = CheckEngine::Replay;
  /// Summary-cache directory (summary/auto engines); empty = no cache.
  std::string cache_dir;
  /// Stream for per-fallback "[fallback] ..." lines (the CLI points this at
  /// stderr for --engine=auto); null = silent.
  std::ostream* fallback_log = nullptr;
};

[[nodiscard]] CheckReport run_checks(const trace::TraceStore& store,
                                     const CheckOptions& options = {});

}  // namespace difftrace::analyze
