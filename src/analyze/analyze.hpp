// run_checks: the `difftrace check` entry point. Builds one CheckContext
// from a TraceStore (however it was loaded — strict, tolerant, or salvaged)
// and runs the selected checkers over it, returning a sorted CheckReport.
// Deterministic and offline: same archive in, same diagnostics out.
#pragma once

#include <string>
#include <vector>

#include "analyze/checker.hpp"
#include "analyze/context.hpp"
#include "analyze/diagnostic.hpp"
#include "trace/store.hpp"

namespace difftrace::analyze {

struct CheckOptions {
  /// Checker names to run (see available_checkers()); empty = all.
  /// Unknown names throw std::invalid_argument before anything runs.
  std::vector<std::string> checkers;
};

[[nodiscard]] CheckReport run_checks(const trace::TraceStore& store,
                                     const CheckOptions& options = {});

}  // namespace difftrace::analyze
