#include "analyze/diagnostic.hpp"

#include <algorithm>
#include <sstream>

#include "util/table.hpp"

namespace difftrace::analyze {

std::string_view severity_name(Severity severity) noexcept {
  switch (severity) {
    case Severity::Info: return "info";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?severity";
}

std::string Diagnostic::render() const {
  std::ostringstream os;
  os << severity_name(severity) << " " << rule << " @" << where.label();
  if (!function.empty()) os << " " << function;
  os << ": " << message;
  if (!path.empty()) os << " [" << path << "]";
  return os.str();
}

std::size_t CheckReport::count(Severity severity) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [severity](const Diagnostic& d) { return d.severity == severity; }));
}

int CheckReport::exit_code() const noexcept {
  if (errors() > 0) return 1;
  return diagnostics.empty() ? 0 : 3;
}

void CheckReport::sort() {
  std::stable_sort(diagnostics.begin(), diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.severity != b.severity) return a.severity > b.severity;
                     if (a.where != b.where) return a.where < b.where;
                     if (a.rule != b.rule) return a.rule < b.rule;
                     return a.event_index < b.event_index;
                   });
}

std::string CheckReport::render() const {
  std::ostringstream os;
  os << "checked " << streams_checked << " stream(s), " << events_checked << " event(s), "
     << checkers_run << " checker(s): " << errors() << " error(s), " << warnings()
     << " warning(s), " << count(Severity::Info) << " info(s)\n";
  if (!diagnostics.empty()) {
    util::TextTable table({"Severity", "Rule", "Where", "Function", "Message"});
    for (const auto& d : diagnostics)
      table.add_row({std::string(severity_name(d.severity)), d.rule, d.where.label(),
                     d.function.empty() ? "-" : d.function, d.message});
    os << table.render();
  }
  for (const auto& d : diagnostics)
    if (!d.path.empty()) os << "  path " << d.where.label() << ": " << d.path << "\n";
  for (const auto& note : notes) os << "  note: " << note << "\n";
  return os.str();
}

}  // namespace difftrace::analyze
