// The check-token IR of the abstract engine.
//
// One stream becomes a single token sequence interleaving its call/return
// events with its op records (an op anchored at event_index i precedes
// event i, matching the writer's "recorded before" anchor), then reduces
// to an NLR program over a LoopTable shared by every stream of the run.
// Identical iterations produce identical token blocks, so a loop body's
// checker-visible effect is constant across iterations — the property the
// effect summaries in summary.hpp rest on. Op payloads are interned with
// their anchors zeroed: the IR separates *what happened* (the token) from
// *where* (reconstructed by position during the abstract walk).
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "analyze/context.hpp"
#include "core/nlr.hpp"
#include "trace/op.hpp"

namespace difftrace::analyze {

/// Decoded meaning of one IR token.
struct IrToken {
  bool is_op = false;
  trace::EventKind kind = trace::EventKind::Call;  // event tokens
  trace::FunctionId fid = 0;                       // event tokens
  std::uint32_t op = 0;  // op tokens: index into IrContext::op_payload
};

/// Shared token/loop space for one engine run. Streams reduced through the
/// same context share loop ids, so a body summarized for one rank is free
/// for every other rank that runs the same code.
class IrContext {
 public:
  explicit IrContext(core::NlrConfig config) : config_(config) {}

  /// Tokenizes and reduces one decoded stream.
  [[nodiscard]] core::NlrProgram reduce(const StreamInfo& s);

  [[nodiscard]] const core::LoopTable& loops() const noexcept { return loops_; }
  [[nodiscard]] const std::vector<IrToken>& tokens() const noexcept { return tokens_; }
  [[nodiscard]] const trace::OpRecord& op_payload(std::uint32_t index) const {
    return op_payloads_[index];
  }
  [[nodiscard]] const core::NlrConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] core::TokenId intern_event(trace::EventKind kind, trace::FunctionId fid);
  [[nodiscard]] core::TokenId intern_op(const trace::OpRecord& op);

  core::NlrConfig config_;
  core::LoopTable loops_;
  std::vector<IrToken> tokens_;
  std::vector<trace::OpRecord> op_payloads_;  // anchors zeroed
  /// Payload ordering for interning (OpRecord itself only defines ==).
  struct OpPayloadLess {
    [[nodiscard]] bool operator()(const trace::OpRecord& a, const trace::OpRecord& b) const;
  };

  std::map<std::pair<std::uint64_t, std::uint64_t>, core::TokenId> event_ids_;
  std::map<trace::OpRecord, core::TokenId, OpPayloadLess> op_ids_;
};

}  // namespace difftrace::analyze
