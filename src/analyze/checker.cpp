#include "analyze/checker.hpp"

#include <stdexcept>
#include <string>

namespace difftrace::analyze {

namespace {

using Factory = std::unique_ptr<Checker> (*)();

struct Registration {
  std::string_view name;
  std::string_view description;
  Factory factory;
};

constexpr Registration kRegistry[] = {
    {"stream", "call/return stack balance, orphan and mismatched returns",
     &make_wellformed_checker},
    {"mpi", "send/recv matching, collective agreement, wait-for-graph deadlock detection",
     &make_mpi_checker},
    {"locks", "lock acquisition order and held-across-barrier discipline", &make_lock_checker},
};

}  // namespace

std::vector<CheckerInfo> available_checkers() {
  std::vector<CheckerInfo> out;
  for (const auto& r : kRegistry) out.push_back({r.name, r.description});
  return out;
}

std::unique_ptr<Checker> make_checker(std::string_view name) {
  for (const auto& r : kRegistry)
    if (r.name == name) return r.factory();
  std::string known;
  for (const auto& r : kRegistry) {
    if (!known.empty()) known += ", ";
    known += r.name;
  }
  throw std::invalid_argument("unknown checker '" + std::string(name) + "' (known: " + known + ")");
}

}  // namespace difftrace::analyze
