// CheckContext: the decoded, pre-digested view of one TraceStore that all
// checkers share. Building it does the common heavy lifting exactly once —
// tolerant decode of every stream, a call/return stack walk (open frames,
// orphan and mismatched returns), and blocked-stream classification: a
// stream whose tail leaves an MPI/OMP API frame open was inside a blocking
// runtime call when the trace ended, and the last op record annotated
// inside that frame names the operation it was waiting on.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/op.hpp"
#include "trace/registry.hpp"
#include "trace/store.hpp"

namespace difftrace::analyze {

/// A call event whose return never arrived (still on the stack at stream end).
struct OpenFrame {
  trace::FunctionId fid = 0;
  std::uint64_t call_index = 0;
};

struct StreamInfo {
  trace::TraceKey key;
  std::vector<trace::TraceEvent> events;
  std::vector<trace::OpRecord> ops;
  bool truncated = false;  // writer frozen by the watchdog (deadlock/abort)
  bool degraded = false;   // salvaged blob or incomplete decode: evidence partial
  std::string degradation;  // why, when degraded

  // Stack-walk results.
  std::vector<OpenFrame> open_frames;              // outermost first
  std::vector<std::uint64_t> orphan_returns;       // return with empty stack
  std::vector<std::uint64_t> mismatched_returns;   // return fid != open call fid

  /// Stream ends inside a blocking runtime API (an open MpiLib/OmpLib
  /// frame, ignoring library internals nested below it).
  bool blocked = false;
  trace::FunctionId blocked_fid = 0;       // the open API function
  std::uint64_t blocked_call_index = 0;    // its call event index
  std::ptrdiff_t pending_op = -1;          // index into `ops` of the op inside it, -1 = none

  [[nodiscard]] const trace::OpRecord* pending() const noexcept {
    return pending_op >= 0 ? &ops[static_cast<std::size_t>(pending_op)] : nullptr;
  }
};

/// Replay-view build of one stream: tolerant decode + stack walk. Blocked
/// classification is a separate step because it needs the registry.
[[nodiscard]] StreamInfo build_stream_info(const trace::TraceStore& store, trace::TraceKey key);

/// Blocked-stream classification: marks a stream whose tail leaves an
/// MPI/OMP API frame open (ignoring library internals nested below it) and
/// attributes the pending op annotated inside that frame.
void classify_blocked(StreamInfo& s, const trace::FunctionRegistry* registry);

/// Registry lookups that survive damaged archives: unknown ids render as
/// "?fn<id>" / Image::Main instead of throwing.
[[nodiscard]] std::string registry_fn_name(const trace::FunctionRegistry* registry,
                                           trace::FunctionId fid);
[[nodiscard]] trace::Image registry_fn_image(const trace::FunctionRegistry* registry,
                                             trace::FunctionId fid);

class CheckContext {
 public:
  [[nodiscard]] static CheckContext build(const trace::TraceStore& store);

  [[nodiscard]] const std::vector<StreamInfo>& streams() const noexcept { return streams_; }
  [[nodiscard]] const StreamInfo* find(trace::TraceKey key) const noexcept;
  /// Rank-level streams (thread 0), ordered by proc — where MPI traffic
  /// lives under the FUNNELED threading model.
  [[nodiscard]] std::vector<const StreamInfo*> rank_streams() const;

  /// Registry lookups that survive damaged archives: unknown ids render as
  /// "?fn<id>" / Image::Main instead of throwing.
  [[nodiscard]] std::string fn_name(trace::FunctionId fid) const;
  [[nodiscard]] trace::Image fn_image(trace::FunctionId fid) const;

  /// "main > exchange > MPI_Recv@plt > MPI_Recv"-style rendering of a
  /// stream's open frames (application path into the blocking call).
  [[nodiscard]] std::string call_path(const StreamInfo& stream) const;

  /// Any stream salvaged or incompletely decoded: match/graph evidence is
  /// partial, so checkers cap their severities at Warning.
  [[nodiscard]] bool any_degraded() const noexcept { return any_degraded_; }
  /// False when the archive predates the op side-channel entirely.
  [[nodiscard]] bool any_ops() const noexcept { return any_ops_; }

  [[nodiscard]] const trace::FunctionRegistry* registry() const noexcept {
    return registry_.get();
  }

 private:
  std::shared_ptr<const trace::FunctionRegistry> registry_;
  std::vector<StreamInfo> streams_;  // sorted by key
  bool any_degraded_ = false;
  bool any_ops_ = false;
};

}  // namespace difftrace::analyze
