#include "analyze/facts.hpp"

#include <algorithm>

namespace difftrace::analyze {

void fill_shape_facts(const StreamInfo& s, StreamFacts& f) {
  f.key = s.key;
  f.event_count = s.events.size();
  f.op_count = s.ops.size();
  f.truncated = s.truncated;
  f.degraded = s.degraded;
  f.degradation = s.degradation;
  f.open_frames = s.open_frames;
  f.orphan_returns.clear();
  for (const auto index : s.orphan_returns)
    f.orphan_returns.emplace_back(index, s.events[index].fid);
  f.mismatched_returns.clear();
  for (const auto index : s.mismatched_returns)
    f.mismatched_returns.emplace_back(index, s.events[index].fid);
  f.blocked = s.blocked;
  f.blocked_fid = s.blocked_fid;
  f.blocked_call_index = s.blocked_call_index;
  if (const auto* pending = s.pending()) {
    f.pending = *pending;
  } else {
    f.pending.reset();
  }
}

FactsView::FactsView(const trace::FunctionRegistry* registry,
                     std::vector<const StreamFacts*> streams)
    : registry_(registry), streams_(std::move(streams)) {
  for (const auto* f : streams_) {
    any_degraded_ = any_degraded_ || f->degraded;
    any_ops_ = any_ops_ || f->op_count > 0;
  }
}

const StreamFacts* FactsView::find(trace::TraceKey key) const noexcept {
  const auto it = std::lower_bound(
      streams_.begin(), streams_.end(), key,
      [](const StreamFacts* f, const trace::TraceKey& k) { return f->key < k; });
  return it != streams_.end() && (*it)->key == key ? *it : nullptr;
}

std::vector<const StreamFacts*> FactsView::rank_streams() const {
  std::vector<const StreamFacts*> out;
  for (const auto* f : streams_)
    if (f->key.thread == 0) out.push_back(f);
  return out;
}

std::string FactsView::fn_name(trace::FunctionId fid) const {
  if (registry_ != nullptr && fid < registry_->size()) return registry_->name(fid);
  return "?fn" + std::to_string(fid);
}

std::string FactsView::call_path(const StreamFacts& f) const {
  std::string out;
  for (const auto& frame : f.open_frames) {
    if (!out.empty()) out += " > ";
    out += fn_name(frame.fid);
  }
  return out;
}

}  // namespace difftrace::analyze
