// Initial bug triage (§I of the paper: "collect one standard set of data
// and use it to make an initial triage ... guide a later, deeper debugging
// phase"; future-work item 3 sketches classifying bugs from lattice/loop
// features).
//
// The classifier runs the standard pipeline on a normal/faulty store pair
// and maps the observable change onto a coarse bug class:
//
//   Hang              some faulty trace was truncated by the watchdog, or
//                     stopped reaching calls its normal counterpart made
//                     at the end (deadlock/livelock family). Focus: the
//                     least-progressed trace.
//   StructuralChange  presence-based attribute sets changed — calls or
//                     loop structures appeared/vanished (swapped orders,
//                     missing critical sections, skipped phases). Focus:
//                     the trace with the largest presence change.
//   FrequencyChange   the same calls and loop shapes, different counts
//                     (silent semantic bugs like a wrong reduction
//                     operator). Focus: the trace with the largest count
//                     drift.
//   NoAnomaly         nothing observable under this filter.
//
// The classes intentionally mirror the paper's three studied fault
// families (Table VII hang, Table VI structural, Table VIII silent).
#pragma once

#include <string>
#include <vector>

#include "analyze/diagnostic.hpp"
#include "core/pipeline.hpp"

namespace difftrace::core {

enum class BugClass { NoAnomaly, Hang, StructuralChange, FrequencyChange };

[[nodiscard]] std::string_view bug_class_name(BugClass c) noexcept;

struct TriageReport {
  BugClass bug_class = BugClass::NoAnomaly;
  /// Suggested trace to inspect first (diffNLR target). Meaningful unless
  /// NoAnomaly.
  trace::TraceKey focus{};
  /// Human-readable rationale lines.
  std::vector<std::string> evidence;

  [[nodiscard]] std::string render() const;
};

[[nodiscard]] TriageReport triage(const trace::TraceStore& normal, const trace::TraceStore& faulty,
                                  const FilterSpec& filter, const NlrConfig& nlr = {});

/// Cross-references the statistical triage with the semantic verifier's
/// findings on the faulty run (`difftrace check`). A diagnostic anchored at
/// the focus trace turns a statistical suspicion into a named rule
/// violation; violations elsewhere are surfaced so the reader knows the two
/// analyses disagree about where to look. Appends evidence lines only —
/// never changes the class or focus the statistics chose.
void corroborate(TriageReport& report, const analyze::CheckReport& check);

}  // namespace difftrace::core
