#include "core/diff.hpp"

#include <stdexcept>

namespace difftrace::core {

namespace {

/// V array with k in [-max..max], stored with an offset.
class KArray {
 public:
  explicit KArray(std::size_t max) : offset_(max), data_(2 * max + 1, 0) {}
  [[nodiscard]] std::size_t& operator[](std::ptrdiff_t k) { return data_[static_cast<std::size_t>(k + static_cast<std::ptrdiff_t>(offset_))]; }
  [[nodiscard]] std::size_t operator[](std::ptrdiff_t k) const { return data_[static_cast<std::size_t>(k + static_cast<std::ptrdiff_t>(offset_))]; }

 private:
  std::size_t offset_;
  std::vector<std::size_t> data_;
};

void append_run(std::vector<EditChunk>& out, EditOp op, std::size_t a_pos, std::size_t b_pos,
                std::size_t len) {
  if (len == 0) return;
  if (!out.empty() && out.back().op == op &&
      out.back().a_begin + (op != EditOp::Insert ? out.back().length : 0) == a_pos &&
      out.back().b_begin + (op != EditOp::Delete ? out.back().length : 0) == b_pos) {
    out.back().length += len;
    return;
  }
  out.push_back(EditChunk{op, a_pos, b_pos, len});
}

}  // namespace

std::vector<EditChunk> myers_diff(std::span<const std::uint32_t> a, std::span<const std::uint32_t> b) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  const std::size_t max = n + m;

  // Forward pass, remembering the V array at each depth for backtracking.
  std::vector<KArray> trace;
  trace.reserve(max + 1);
  KArray v(max == 0 ? 1 : max);
  std::ptrdiff_t final_d = -1;
  for (std::size_t d = 0; d <= max && final_d < 0; ++d) {
    for (std::ptrdiff_t k = -static_cast<std::ptrdiff_t>(d); k <= static_cast<std::ptrdiff_t>(d); k += 2) {
      std::size_t x;
      if (k == -static_cast<std::ptrdiff_t>(d) ||
          (k != static_cast<std::ptrdiff_t>(d) && v[k - 1] < v[k + 1])) {
        x = v[k + 1];  // move down in the edit graph (take from b: Insert)
      } else {
        x = v[k - 1] + 1;  // move right (take from a: Delete)
      }
      std::size_t y = x - static_cast<std::size_t>(k);
      while (x < n && y < m && a[x] == b[y]) {
        ++x;
        ++y;
      }
      v[k] = x;
      if (x >= n && y >= m) {
        final_d = static_cast<std::ptrdiff_t>(d);
        break;
      }
    }
    trace.push_back(v);
  }
  if (final_d < 0) throw std::logic_error("myers_diff: no path found (internal error)");

  // Backtrack from (n, m) to (0, 0), collecting moves in reverse.
  struct Move {
    EditOp op;
    std::size_t x;  // position in a after the move
    std::size_t y;  // position in b after the move
    std::size_t len;
  };
  std::vector<Move> moves;
  std::size_t x = n;
  std::size_t y = m;
  for (std::ptrdiff_t d = final_d; d > 0; --d) {
    const KArray& prev = trace[static_cast<std::size_t>(d - 1)];
    const std::ptrdiff_t k = static_cast<std::ptrdiff_t>(x) - static_cast<std::ptrdiff_t>(y);
    std::ptrdiff_t prev_k;
    if (k == -d || (k != d && prev[k - 1] < prev[k + 1]))
      prev_k = k + 1;  // came from an Insert
    else
      prev_k = k - 1;  // came from a Delete
    const std::size_t prev_x = prev[prev_k];
    const std::size_t prev_y = prev_x - static_cast<std::size_t>(prev_k);
    // Snake (Equal run) after the single edit step.
    const std::size_t step_x = prev_k == k + 1 ? prev_x : prev_x + 1;
    const std::size_t step_y = prev_k == k + 1 ? prev_y + 1 : prev_y;
    if (x > step_x) moves.push_back(Move{EditOp::Equal, step_x, step_y, x - step_x});
    if (prev_k == k + 1)
      moves.push_back(Move{EditOp::Insert, prev_x, prev_y, 1});
    else
      moves.push_back(Move{EditOp::Delete, prev_x, prev_y, 1});
    x = prev_x;
    y = prev_y;
  }
  if (x > 0) moves.push_back(Move{EditOp::Equal, 0, 0, x});  // leading snake at d = 0

  std::vector<EditChunk> script;
  for (auto it = moves.rbegin(); it != moves.rend(); ++it)
    append_run(script, it->op, it->x, it->y, it->len);
  return script;
}

std::size_t edit_distance(const std::vector<EditChunk>& script) {
  std::size_t d = 0;
  for (const auto& chunk : script)
    if (chunk.op != EditOp::Equal) d += chunk.length;
  return d;
}

}  // namespace difftrace::core
