#include "core/triage.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace difftrace::core {

std::string_view bug_class_name(BugClass c) noexcept {
  switch (c) {
    case BugClass::NoAnomaly: return "no-anomaly";
    case BugClass::Hang: return "hang";
    case BugClass::StructuralChange: return "structural-change";
    case BugClass::FrequencyChange: return "frequency-change";
  }
  return "unknown";
}

std::string TriageReport::render() const {
  std::ostringstream os;
  os << "bug class: " << bug_class_name(bug_class) << '\n';
  if (bug_class != BugClass::NoAnomaly) os << "inspect first: diffNLR(" << focus.label() << ")\n";
  for (const auto& line : evidence) os << "  - " << line << '\n';
  return os.str();
}

namespace {

/// First few elements of a set, comma-joined, for evidence lines.
std::string sample_of(const std::set<std::string>& items, std::size_t limit = 3) {
  std::string out;
  std::size_t shown = 0;
  for (const auto& item : items) {
    if (shown++ == limit) {
      out += ", ...";
      break;
    }
    if (!out.empty()) out += ", ";
    out += item;
  }
  return out;
}

}  // namespace

TriageReport triage(const trace::TraceStore& normal, const trace::TraceStore& faulty,
                    const FilterSpec& filter, const NlrConfig& nlr) {
  TriageReport report;
  const Session session(normal, faulty, filter, nlr);
  if (session.traces().empty()) {
    report.evidence.push_back("no common traces between the two runs");
    return report;
  }

  // --- Hang detection: watchdog truncation or lost progress ----------------
  std::size_t truncated = 0;
  for (const auto& key : session.traces())
    if (faulty.blob(key).truncated) ++truncated;

  const auto ratios = session.progress_ratios();
  const auto least = session.least_progressed();
  if (truncated > 0) {
    report.bug_class = BugClass::Hang;
    report.focus = session.traces()[least];
    report.evidence.push_back(std::to_string(truncated) + " of " +
                              std::to_string(session.traces().size()) +
                              " faulty traces were truncated by the watchdog");
    std::ostringstream os;
    os << "least progressed: " << session.traces()[least].label() << " at "
       << static_cast<int>(ratios[least] * 100.0) << "% of its normal-run work";
    report.evidence.push_back(os.str());
    return report;
  }

  // --- Structural vs frequency change over the attribute views -------------
  const AttrConfig presence{AttrKind::Single, FreqMode::NoFreq};
  const AttrConfig counts{AttrKind::Single, FreqMode::Actual};

  double best_structural = 0.0;
  std::size_t structural_focus = 0;
  std::set<std::string> vanished_all;
  std::set<std::string> appeared_all;
  std::size_t count_drift_traces = 0;
  double best_drift = 0.0;
  std::size_t drift_focus = 0;

  for (std::size_t i = 0; i < session.traces().size(); ++i) {
    const auto a_normal = mine_attributes(session.normal_nlr(i), session.tokens(), session.loops(), presence);
    const auto a_faulty = mine_attributes(session.faulty_nlr(i), session.tokens(), session.loops(), presence);
    std::set<std::string> vanished;
    std::set<std::string> appeared;
    std::set_difference(a_normal.begin(), a_normal.end(), a_faulty.begin(), a_faulty.end(),
                        std::inserter(vanished, vanished.begin()));
    std::set_difference(a_faulty.begin(), a_faulty.end(), a_normal.begin(), a_normal.end(),
                        std::inserter(appeared, appeared.begin()));
    const auto structural = static_cast<double>(vanished.size() + appeared.size());
    if (structural > best_structural) {
      best_structural = structural;
      structural_focus = i;
    }
    vanished_all.insert(vanished.begin(), vanished.end());
    appeared_all.insert(appeared.begin(), appeared.end());

    if (structural == 0.0) {
      const auto c_normal = mine_attributes(session.normal_nlr(i), session.tokens(), session.loops(), counts);
      const auto c_faulty = mine_attributes(session.faulty_nlr(i), session.tokens(), session.loops(), counts);
      const double drift = 1.0 - jaccard(c_normal, c_faulty);
      if (drift > 0.0) ++count_drift_traces;
      if (drift > best_drift) {
        best_drift = drift;
        drift_focus = i;
      }
    }
  }

  if (best_structural > 0.0) {
    report.bug_class = BugClass::StructuralChange;
    report.focus = session.traces()[structural_focus];
    if (!vanished_all.empty())
      report.evidence.push_back("vanished from the faulty run: " + sample_of(vanished_all));
    if (!appeared_all.empty())
      report.evidence.push_back("appeared in the faulty run: " + sample_of(appeared_all));
    report.evidence.push_back("largest presence change in trace " +
                              session.traces()[structural_focus].label());
    return report;
  }

  if (count_drift_traces > 0) {
    report.bug_class = BugClass::FrequencyChange;
    report.focus = session.traces()[drift_focus];
    report.evidence.push_back(std::to_string(count_drift_traces) +
                              " trace(s) run the same calls and loop shapes at different counts");
    report.evidence.push_back("largest count drift in trace " + session.traces()[drift_focus].label());
    return report;
  }

  report.evidence.push_back("traces are identical under this filter; try another filter or "
                            "all-images capture");
  return report;
}

void corroborate(TriageReport& report, const analyze::CheckReport& check) {
  if (check.clean()) {
    if (report.bug_class != BugClass::NoAnomaly)
      report.evidence.push_back("semantic check: no rule violations — the anomaly is "
                                "statistical only (frequency/structure, not a protocol bug)");
    return;
  }
  // Diagnostics are sorted most-severe-first, so the first one anchored at
  // the focus trace is the strongest corroboration available.
  const analyze::Diagnostic* at_focus = nullptr;
  for (const auto& d : check.diagnostics)
    if (d.where == report.focus) {
      at_focus = &d;
      break;
    }
  if (report.bug_class != BugClass::NoAnomaly && at_focus != nullptr) {
    std::string line = "semantic check corroborates trace " + report.focus.label() + ": " +
                       std::string(analyze::severity_name(at_focus->severity)) + " " +
                       at_focus->rule;
    if (!at_focus->function.empty()) line += " in " + at_focus->function;
    report.evidence.push_back(line);
  } else {
    const auto& top = check.diagnostics.front();
    report.evidence.push_back(
        "semantic check: " + std::to_string(check.errors()) + " error(s), " +
        std::to_string(check.warnings()) + " warning(s); strongest finding at trace " +
        top.where.label() + " (" + top.rule + ") — see the semantic check section");
  }
}

}  // namespace difftrace::core
