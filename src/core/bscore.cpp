#include "core/bscore.hpp"

#include <cmath>
#include <stdexcept>

namespace difftrace::core {

double fowlkes_mallows_bk(const std::vector<int>& labels_a, const std::vector<int>& labels_b) {
  if (labels_a.size() != labels_b.size())
    throw std::invalid_argument("fowlkes_mallows_bk: label vectors differ in length");
  const std::size_t n = labels_a.size();
  if (n == 0) return 1.0;

  int ka = 0;
  int kb = 0;
  for (const auto l : labels_a) ka = std::max(ka, l + 1);
  for (const auto l : labels_b) kb = std::max(kb, l + 1);

  std::vector<std::vector<double>> m(static_cast<std::size_t>(ka),
                                     std::vector<double>(static_cast<std::size_t>(kb), 0.0));
  for (std::size_t i = 0; i < n; ++i) m[static_cast<std::size_t>(labels_a[i])][static_cast<std::size_t>(labels_b[i])] += 1.0;

  double t = -static_cast<double>(n);
  for (const auto& row : m)
    for (const auto v : row) t += v * v;

  double p = -static_cast<double>(n);
  for (const auto& row : m) {
    double rs = 0.0;
    for (const auto v : row) rs += v;
    p += rs * rs;
  }
  double q = -static_cast<double>(n);
  for (int j = 0; j < kb; ++j) {
    double cs = 0.0;
    for (int i = 0; i < ka; ++i) cs += m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    q += cs * cs;
  }

  if (p <= 0.0 || q <= 0.0) return t <= 0.0 ? 1.0 : 0.0;  // all-singleton degenerate cuts
  return t / std::sqrt(p * q);
}

double bscore(const Dendrogram& a, const Dendrogram& b, std::size_t n) {
  if (n < 2) return 1.0;
  if (a.size() != n - 1 || b.size() != n - 1)
    throw std::invalid_argument("bscore: dendrogram size does not match n");
  const std::size_t k_lo = 2;
  const std::size_t k_hi = n > 3 ? n - 1 : 2;
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t k = k_lo; k <= k_hi; ++k) {
    sum += fowlkes_mallows_bk(cut_to_k(a, n, k), cut_to_k(b, n, k));
    ++count;
  }
  return sum / static_cast<double>(count);
}

}  // namespace difftrace::core
