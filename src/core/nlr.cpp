#include "core/nlr.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"

namespace difftrace::core {

// --- TokenTable -----------------------------------------------------------

TokenId TokenTable::intern(const std::string& name) {
  if (const auto it = by_name_.find(name); it != by_name_.end()) return it->second;
  const auto id = static_cast<TokenId>(names_.size());
  names_.push_back(name);   // NOLINT-DT(alloc-in-hot-path): once per distinct token name, not per occurrence
  by_name_.emplace(name, id);  // NOLINT-DT(alloc-in-hot-path): once per distinct token name, not per occurrence
  return id;
}

const std::string& TokenTable::name(TokenId id) const {
  if (id >= names_.size()) throw std::out_of_range("TokenTable: unknown token id " + std::to_string(id));
  return names_[id];
}

std::optional<TokenId> TokenTable::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::vector<TokenId> TokenTable::intern_all(const std::vector<std::string>& tokens) {
  std::vector<TokenId> out;
  out.reserve(tokens.size());
  for (const auto& t : tokens) out.push_back(intern(t));
  return out;
}

// --- LoopTable --------------------------------------------------------------

const std::vector<std::uint32_t> LoopTable::kEmpty{};

std::uint32_t LoopTable::intern(const NlrBody& body) {
  if (body.empty()) throw std::invalid_argument("LoopTable: empty loop body");
  if (const auto it = by_body_.find(body); it != by_body_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(bodies_.size());
  // Below the miss check: the whole tail runs once per *distinct* loop body,
  // not once per fold — the steady-state push never reaches it.
  bodies_.push_back(body);  // NOLINT-DT(alloc-in-hot-path): once per distinct body
  by_body_.emplace(body, id);  // NOLINT-DT(alloc-in-hot-path): once per distinct body
  if (by_length_.size() <= body.size()) by_length_.resize(body.size() + 1);  // NOLINT-DT(alloc-in-hot-path): once per distinct body
  by_length_[body.size()].push_back(id);  // NOLINT-DT(alloc-in-hot-path): once per distinct body

  // Canonical shape: strip counts, map nested loops to their shape ids
  // (inner loops are always interned before the bodies that contain them).
  NlrBody canonical = body;
  for (auto& item : canonical) {
    if (item.is_loop()) {
      item.id = shape_ids_.at(item.id);
      item.count = 0;
    }
  }
  const auto [it, inserted] = by_shape_.emplace(std::move(canonical), next_shape_);  // NOLINT-DT(alloc-in-hot-path): once per distinct body
  if (inserted) ++next_shape_;
  shape_ids_.push_back(it->second);  // NOLINT-DT(alloc-in-hot-path): once per distinct body
  return id;
}

std::uint32_t LoopTable::shape_id(std::uint32_t loop_id) const {
  if (loop_id >= shape_ids_.size())
    throw std::out_of_range("LoopTable: unknown loop id " + std::to_string(loop_id));
  return shape_ids_[loop_id];
}

const NlrBody& LoopTable::body(std::uint32_t loop_id) const {
  if (loop_id >= bodies_.size())
    throw std::out_of_range("LoopTable: unknown loop id " + std::to_string(loop_id));  // NOLINT-DT(alloc-in-hot-path): allocates only on the throw path
  return bodies_[loop_id];
}

std::optional<std::uint32_t> LoopTable::find(const NlrBody& body) const {
  const auto it = by_body_.find(body);
  if (it == by_body_.end()) return std::nullopt;
  return it->second;
}

const std::vector<std::uint32_t>& LoopTable::bodies_of_length(std::size_t len) const {
  if (len >= by_length_.size()) return kEmpty;
  return by_length_[len];
}

// --- NlrBuilder --------------------------------------------------------------

NlrBuilder::NlrBuilder(LoopTable& table, NlrConfig config) : table_(table), config_(config) {
  if (config_.k == 0) throw std::invalid_argument("NlrConfig: k must be positive");
  if (config_.min_reps < 2) throw std::invalid_argument("NlrConfig: min_reps must be >= 2");
}

// Everything push() reaches is the hot path the ROADMAP's "fast as the
// hardware allows" item measures; dtsa's alloc-in-hot-path rule audits this
// closure. Allocations below are either amortized (stack growth), shrink-only
// resizes, or sit on the rare loop-formation path, each marked with a reason.
// DT_HOT: per-token NLR reduction loop
void NlrBuilder::push(TokenId token) {
  stack_.push_back(NlrItem::token(token));  // NOLINT-DT(alloc-in-hot-path): amortized reduction-stack growth
  reduce();
}

void NlrBuilder::push_all(const std::vector<TokenId>& tokens) {
  for (const auto t : tokens) push(t);
}

bool NlrBuilder::blocks_equal(std::size_t start_a, std::size_t start_b, std::size_t len) const {
  // Compare back-to-front: mismatches near the just-pushed end are cheapest.
  for (std::size_t i = len; i-- > 0;)
    if (stack_[start_a + i] != stack_[start_b + i]) return false;
  return true;
}

bool NlrBuilder::try_extend() {
  const std::size_t n = stack_.size();
  // (a) adjacent loop merge: ... L^a L^b with the same body => L^(a+b).
  if (n >= 2) {
    const NlrItem& top = stack_[n - 1];
    NlrItem& below = stack_[n - 2];
    if (top.is_loop() && below.is_loop() && top.id == below.id) {
      below.count += top.count;
      stack_.pop_back();
      return true;
    }
  }
  // (b) body extension: ... L<body> body => count+1.
  for (std::size_t b = 1; b <= config_.k && b + 1 <= n; ++b) {
    const NlrItem& cand = stack_[n - b - 1];
    if (!cand.is_loop()) continue;
    const NlrBody& body = table_.body(cand.id);
    if (body.size() != b) continue;
    bool equal = true;
    for (std::size_t i = 0; i < b; ++i) {
      if (stack_[n - b + i] != body[i]) {
        equal = false;
        break;
      }
    }
    if (!equal) continue;
    stack_.resize(n - b);  // NOLINT-DT(alloc-in-hot-path): shrink-only resize never allocates
    stack_.back().count += 1;
    return true;
  }
  return false;
}

bool NlrBuilder::try_form() {
  const std::size_t n = stack_.size();
  const std::size_t m = config_.min_reps;
  for (std::size_t b = 1; b <= config_.k && m * b <= n; ++b) {
    const std::size_t first = n - m * b;
    bool all_equal = true;
    for (std::size_t block = 1; block < m && all_equal; ++block)
      all_equal = blocks_equal(first, first + block * b, b);
    if (!all_equal) continue;
    const NlrBody body(stack_.begin() + static_cast<std::ptrdiff_t>(n - b), stack_.end());
    const auto loop_id = table_.intern(body);
    stack_.resize(first);  // NOLINT-DT(alloc-in-hot-path): shrink-only resize never allocates
    stack_.push_back(NlrItem::loop(loop_id, m));  // NOLINT-DT(alloc-in-hot-path): capacity freed by the resize above
    return true;
  }
  return false;
}

bool NlrBuilder::try_known_fold() {
  const std::size_t n = stack_.size();
  // Only bodies of length >= 2: folding single-token bodies would wrap every
  // occurrence of any token that ever looped.
  for (std::size_t b = 2; b <= config_.k && b <= n; ++b) {
    // Reuse probe_ as the lookup key: assign() into retained capacity
    // instead of constructing a fresh NlrBody on every probe of every push.
    probe_.assign(stack_.begin() + static_cast<std::ptrdiff_t>(n - b), stack_.end());
    const auto loop_id = table_.find(probe_);
    if (!loop_id) continue;
    stack_.resize(n - b);  // NOLINT-DT(alloc-in-hot-path): shrink-only resize never allocates
    stack_.push_back(NlrItem::loop(*loop_id, 1));  // NOLINT-DT(alloc-in-hot-path): capacity freed by the fold above
    return true;
  }
  return false;
}

void NlrBuilder::reduce() {
  for (;;) {
    if (try_extend()) continue;
    if (try_form()) continue;
    if (config_.fold_known_bodies && try_known_fold()) continue;
    break;
  }
}

// --- free functions -----------------------------------------------------------

NlrProgram build_nlr(const std::vector<TokenId>& tokens, LoopTable& table, const NlrConfig& config) {
  NlrBuilder builder(table, config);
  const auto loops_before = table.size();
  builder.push_all(tokens);
  auto program = builder.take();
  // One charge per reduction, measuring how much the loop recognizer folded.
  static auto& tokens_in = obs::counter("nlr.tokens_in");
  static auto& items_out = obs::counter("nlr.items_out");
  static auto& loops = obs::counter("nlr.loops_interned");
  tokens_in.add(tokens.size());
  items_out.add(program.size());
  loops.add(table.size() - loops_before);
  return program;
}

namespace {

void expand_into(const NlrItem& item, const LoopTable& table, std::vector<TokenId>& out) {
  if (!item.is_loop()) {
    out.push_back(item.id);
    return;
  }
  const NlrBody& body = table.body(item.id);
  for (std::uint64_t i = 0; i < item.count; ++i)
    for (const auto& inner : body) expand_into(inner, table, out);
}

}  // namespace

std::vector<TokenId> expand_nlr(const NlrProgram& program, const LoopTable& table) {
  std::vector<TokenId> out;
  for (const auto& item : program) expand_into(item, table, out);
  return out;
}

std::vector<std::uint64_t> body_weights(const LoopTable& table,
                                        std::span<const std::uint64_t> token_weight) {
  std::vector<std::uint64_t> weights(table.size(), 0);
  for (std::uint32_t id = 0; id < table.size(); ++id) {
    weights[id] = program_weight(table.body(id), token_weight, weights);
  }
  return weights;
}

std::uint64_t program_weight(const NlrProgram& program,
                             std::span<const std::uint64_t> token_weight,
                             std::span<const std::uint64_t> body_weight) {
  std::uint64_t total = 0;
  for (const auto& item : program) {
    if (item.is_loop()) {
      total += item.count * (item.id < body_weight.size() ? body_weight[item.id] : 0);
    } else if (item.id < token_weight.size()) {
      total += token_weight[item.id];
    }
  }
  return total;
}

std::string item_attr_label(const NlrItem& item, const TokenTable& tokens) {
  if (item.is_loop()) return "L" + std::to_string(item.id);
  return tokens.name(item.id);
}

std::string item_label(const NlrItem& item, const TokenTable& tokens) {
  if (item.is_loop()) return "L" + std::to_string(item.id) + "^" + std::to_string(item.count);
  return tokens.name(item.id);
}

std::string program_to_string(const NlrProgram& program, const TokenTable& tokens) {
  std::string out;
  for (const auto& item : program) {
    out += item_label(item, tokens);
    out += '\n';
  }
  return out;
}

}  // namespace difftrace::core
