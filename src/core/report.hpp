// The full DiffTrace report: one artifact combining everything the paper's
// workflow surfaces for a normal/faulty pair — the bug-class triage, the
// filter × attribute ranking table, the semantic verifier's findings, the
// per-trace progress view, and the diffNLRs of the top suspects (Figure 1's
// outputs, assembled).
#pragma once

#include <string>
#include <vector>

#include "analyze/diagnostic.hpp"
#include "core/pipeline.hpp"
#include "core/triage.hpp"

namespace difftrace::core {

struct ReportConfig {
  SweepConfig sweep;
  /// Filter used for the triage / progress / diffNLR sections (the sweep
  /// may cover many; these sections need one vantage point).
  FilterSpec detail_filter = FilterSpec::mpi_all();
  /// diffNLRs rendered for this many top-voted suspects.
  std::size_t diffnlr_count = 2;
  bool side_by_side = false;
  /// Run the semantic verifier (`difftrace check`) over the faulty store
  /// and render its findings next to the ranking, cross-referenced with the
  /// top-voted suspects. The statistical pipeline is untouched either way.
  bool run_check = true;
};

struct Report {
  TriageReport triage;
  RankingTable ranking;
  /// Semantic verifier findings over the faulty run (empty when
  /// config.run_check is off).
  analyze::CheckReport check;
  std::vector<trace::TraceKey> suspects;  // descending vote order
  /// Ingestion problems: traces dropped (present in one run only) or
  /// analyzed degraded (salvaged / partially decodable blobs). Empty for a
  /// healthy pair; rendered as its own report section otherwise, so the
  /// ranking is never read as covering traces it silently lost.
  std::vector<TraceHealth> degraded;
  std::string text;                       // the rendered artifact
};

[[nodiscard]] Report build_report(const trace::TraceStore& normal, const trace::TraceStore& faulty,
                                  const ReportConfig& config);

}  // namespace difftrace::core
