// The full DiffTrace report: one artifact combining everything the paper's
// workflow surfaces for a normal/faulty pair — the bug-class triage, the
// filter × attribute ranking table, the per-trace progress view, and the
// diffNLRs of the top suspects (Figure 1's outputs, assembled).
#pragma once

#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/triage.hpp"

namespace difftrace::core {

struct ReportConfig {
  SweepConfig sweep;
  /// Filter used for the triage / progress / diffNLR sections (the sweep
  /// may cover many; these sections need one vantage point).
  FilterSpec detail_filter = FilterSpec::mpi_all();
  /// diffNLRs rendered for this many top-voted suspects.
  std::size_t diffnlr_count = 2;
  bool side_by_side = false;
};

struct Report {
  TriageReport triage;
  RankingTable ranking;
  std::vector<trace::TraceKey> suspects;  // descending vote order
  /// Ingestion problems: traces dropped (present in one run only) or
  /// analyzed degraded (salvaged / partially decodable blobs). Empty for a
  /// healthy pair; rendered as its own report section otherwise, so the
  /// ranking is never read as covering traces it silently lost.
  std::vector<TraceHealth> degraded;
  std::string text;                       // the rendered artifact
};

[[nodiscard]] Report build_report(const trace::TraceStore& normal, const trace::TraceStore& faulty,
                                  const ReportConfig& config);

}  // namespace difftrace::core
