#include "core/sweep_cache.hpp"

#include <stdexcept>

#include "sched/artifact.hpp"
#include "sched/digest.hpp"
#include "util/crc32.hpp"

namespace difftrace::core {

namespace {

void add_blob_fingerprint(sched::DigestBuilder& d, const trace::TraceBlob& blob) {
  d.add(blob.codec_name);
  d.add(util::crc32({blob.bytes.data(), blob.bytes.size()}));
  d.add(blob.event_count);
  d.add(blob.truncated);
  d.add(blob.salvaged);
  // blob.ops are deliberately excluded: the sweep reads the event stream
  // only; op records feed `difftrace check`, which is not cached.
}

void add_registry_fingerprint(sched::DigestBuilder& d, const trace::FunctionRegistry& registry) {
  const auto functions = registry.snapshot();
  d.add(static_cast<std::uint64_t>(functions.size()));
  for (const auto& fn : functions) {
    d.add(static_cast<std::uint64_t>(fn.id));
    d.add(fn.name);
    d.add(static_cast<std::uint64_t>(fn.image));
  }
}

void add_nlr_fingerprint(sched::DigestBuilder& d, const NlrConfig& nlr) {
  d.add(static_cast<std::uint64_t>(nlr.k));
  d.add(static_cast<std::uint64_t>(nlr.min_reps));
  d.add(nlr.fold_known_bodies);
}

void add_attr_fingerprint(sched::DigestBuilder& d, const AttrConfig& attr) {
  d.add(attr.name());
  d.add(attr.deep);  // name() omits deep
}

void put_program(sched::ArtifactWriter& w, const NlrProgram& program) {
  w.put_u64(program.size());
  for (const auto& item : program) {
    w.put_u64(item.is_loop() ? 1 : 0);
    w.put_u64(item.id);
    if (item.is_loop()) w.put_u64(item.count);
  }
}

/// `loop_limit` bounds the loop ids a program/body may reference.
NlrProgram get_program(sched::ArtifactReader& r, std::size_t token_limit,
                       std::size_t loop_limit) {
  const auto count = r.get_u64();
  NlrProgram program;
  program.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const bool is_loop = r.get_u64() != 0;
    const auto id = r.get_u32();
    if (is_loop) {
      if (id >= loop_limit) throw std::out_of_range("nlr artifact: loop id out of range");
      program.push_back(NlrItem::loop(id, r.get_u64()));
    } else {
      if (id >= token_limit) throw std::out_of_range("nlr artifact: token id out of range");
      program.push_back(NlrItem::token(id));
    }
  }
  return program;
}

void put_matrix(sched::ArtifactWriter& w, const util::Matrix& m) {
  w.put_u64(m.rows());
  w.put_u64(m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c) w.put_f64(m(r, c));
}

util::Matrix get_matrix(sched::ArtifactReader& r) {
  const auto rows = r.get_u64();
  const auto cols = r.get_u64();
  if (rows > (1u << 20) || cols > (1u << 20))
    throw std::out_of_range("eval artifact: absurd matrix shape");
  util::Matrix m(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = r.get_f64();
  return m;
}

void put_dendrogram(sched::ArtifactWriter& w, const Dendrogram& d) {
  w.put_u64(d.size());
  for (const auto& merge : d) {
    w.put_u64(merge.a);
    w.put_u64(merge.b);
    w.put_f64(merge.height);
    w.put_u64(merge.size);
  }
}

Dendrogram get_dendrogram(sched::ArtifactReader& r) {
  const auto count = r.get_u64();
  Dendrogram d;
  d.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Merge m;
    m.a = static_cast<std::size_t>(r.get_u64());
    m.b = static_cast<std::size_t>(r.get_u64());
    m.height = r.get_f64();
    m.size = static_cast<std::size_t>(r.get_u64());
    d.push_back(m);
  }
  return d;
}

}  // namespace

std::uint64_t trace_fingerprint(const trace::TraceStore& store, trace::TraceKey key) {
  sched::DigestBuilder d;
  d.add(sched::kArtifactSchemaVersion);
  add_blob_fingerprint(d, store.blob(key));
  add_registry_fingerprint(d, store.registry());
  return d.value();
}

std::uint64_t store_fingerprint(const trace::TraceStore& store) {
  sched::DigestBuilder d;
  d.add(sched::kArtifactSchemaVersion);
  const auto keys = store.keys();
  d.add(static_cast<std::uint64_t>(keys.size()));
  for (const auto& key : keys) {
    d.add(static_cast<std::uint64_t>(key.proc));
    d.add(static_cast<std::uint64_t>(key.thread));
    add_blob_fingerprint(d, store.blob(key));
  }
  add_registry_fingerprint(d, store.registry());
  return d.value();
}

std::string nlr_artifact_key(std::uint64_t trace_fp, const FilterSpec& filter,
                             const NlrConfig& nlr) {
  sched::DigestBuilder d;
  d.add(sched::kArtifactSchemaVersion);
  d.add(std::string_view("nlr"));
  d.add(trace_fp);
  d.add(filter.fingerprint());
  add_nlr_fingerprint(d, nlr);
  return d.hex();
}

std::string eval_artifact_key(std::uint64_t normal_fp, std::uint64_t faulty_fp,
                              const FilterSpec& filter, const NlrConfig& nlr,
                              const AttrConfig& attr, Linkage linkage) {
  sched::DigestBuilder d;
  d.add(sched::kArtifactSchemaVersion);
  d.add(std::string_view("eval"));
  d.add(normal_fp);
  d.add(faulty_fp);
  d.add(filter.fingerprint());
  add_nlr_fingerprint(d, nlr);
  add_attr_fingerprint(d, attr);
  d.add(linkage_name(linkage));
  return d.hex();
}

std::vector<std::uint8_t> encode_nlr_artifact(const NlrArtifact& artifact) {
  sched::ArtifactWriter w;
  w.put_bool(artifact.complete);
  w.put_str(artifact.note);
  w.put_u64(artifact.token_names.size());
  for (const auto& name : artifact.token_names) w.put_str(name);
  w.put_u64(artifact.loop_bodies.size());
  for (const auto& body : artifact.loop_bodies) put_program(w, body);
  put_program(w, artifact.program);
  return w.take();
}

std::optional<NlrArtifact> decode_nlr_artifact(std::span<const std::uint8_t> payload) {
  try {
    sched::ArtifactReader r(payload);
    NlrArtifact out;
    out.complete = r.get_bool();
    out.note = r.get_str();
    const auto token_count = r.get_u64();
    out.token_names.reserve(token_count);
    for (std::uint64_t i = 0; i < token_count; ++i) out.token_names.push_back(r.get_str());
    const auto loop_count = r.get_u64();
    out.loop_bodies.reserve(loop_count);
    for (std::uint64_t i = 0; i < loop_count; ++i) {
      // A body may only reference loops formed before it (inner before
      // outer), which the local id assignment guarantees by construction.
      out.loop_bodies.push_back(
          get_program(r, out.token_names.size(), static_cast<std::size_t>(i)));
      if (out.loop_bodies.back().empty())
        throw std::out_of_range("nlr artifact: empty loop body");
    }
    out.program = get_program(r, out.token_names.size(), out.loop_bodies.size());
    if (!r.at_end()) return std::nullopt;
    return out;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::vector<std::uint8_t> encode_evaluation(const Evaluation& eval) {
  sched::ArtifactWriter w;
  w.put_u64(static_cast<std::uint64_t>(eval.attr.kind));
  w.put_u64(static_cast<std::uint64_t>(eval.attr.freq));
  w.put_bool(eval.attr.deep);
  put_matrix(w, eval.jsm_normal);
  put_matrix(w, eval.jsm_faulty);
  put_matrix(w, eval.jsm_d);
  w.put_u64(eval.scores.size());
  for (const auto s : eval.scores) w.put_f64(s);
  put_dendrogram(w, eval.dend_normal);
  put_dendrogram(w, eval.dend_faulty);
  w.put_f64(eval.bscore);
  return w.take();
}

std::optional<Evaluation> decode_evaluation(std::span<const std::uint8_t> payload) {
  try {
    sched::ArtifactReader r(payload);
    Evaluation out;
    const auto kind = r.get_u64();
    const auto freq = r.get_u64();
    if (kind > static_cast<std::uint64_t>(AttrKind::Double) ||
        freq > static_cast<std::uint64_t>(FreqMode::NoFreq))
      return std::nullopt;
    out.attr.kind = static_cast<AttrKind>(kind);
    out.attr.freq = static_cast<FreqMode>(freq);
    out.attr.deep = r.get_bool();
    out.jsm_normal = get_matrix(r);
    out.jsm_faulty = get_matrix(r);
    out.jsm_d = get_matrix(r);
    const auto score_count = r.get_u64();
    out.scores.reserve(score_count);
    for (std::uint64_t i = 0; i < score_count; ++i) out.scores.push_back(r.get_f64());
    out.dend_normal = get_dendrogram(r);
    out.dend_faulty = get_dendrogram(r);
    out.bscore = r.get_f64();
    if (!r.at_end()) return std::nullopt;
    return out;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace difftrace::core
