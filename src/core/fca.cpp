#include "core/fca.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "obs/metrics.hpp"

namespace difftrace::core {

// --- FormalContext ----------------------------------------------------------

std::size_t FormalContext::add_object(const std::string& label) {
  object_labels_.push_back(label);
  incidence_.emplace_back(attribute_count(), false);
  return object_labels_.size() - 1;
}

std::size_t FormalContext::add_attribute(const std::string& label) {
  if (const auto existing = find_attribute(label)) return *existing;
  attribute_labels_.push_back(label);
  for (auto& row : incidence_) row.push_back(false);
  return attribute_labels_.size() - 1;
}

std::optional<std::size_t> FormalContext::find_attribute(const std::string& label) const {
  const auto it = std::find(attribute_labels_.begin(), attribute_labels_.end(), label);
  if (it == attribute_labels_.end()) return std::nullopt;
  return static_cast<std::size_t>(it - attribute_labels_.begin());
}

void FormalContext::set_incidence(std::size_t object, const std::string& attribute) {
  set_incidence(object, add_attribute(attribute));
}

void FormalContext::set_incidence(std::size_t object, std::size_t attribute) {
  incidence_.at(object).at(attribute) = true;
}

bool FormalContext::incident(std::size_t object, std::size_t attribute) const {
  return incidence_.at(object).at(attribute);
}

util::DynamicBitset FormalContext::object_intent(std::size_t object) const {
  util::DynamicBitset out(attribute_count());
  const auto& row = incidence_.at(object);
  for (std::size_t m = 0; m < row.size(); ++m)
    if (row[m]) out.set(m);
  return out;
}

util::DynamicBitset FormalContext::derive_objects(const util::DynamicBitset& objects) const {
  util::DynamicBitset out(attribute_count());
  if (attribute_count() == 0) return out;
  for (std::size_t m = 0; m < attribute_count(); ++m) out.set(m);
  for (std::size_t g = 0; g < object_count(); ++g) {
    if (!objects.test(g)) continue;
    out &= object_intent(g);
  }
  return out;
}

util::DynamicBitset FormalContext::derive_attributes(const util::DynamicBitset& attrs) const {
  util::DynamicBitset out(object_count());
  for (std::size_t g = 0; g < object_count(); ++g)
    if (attrs.is_subset_of(object_intent(g))) out.set(g);
  return out;
}

util::DynamicBitset FormalContext::closure(const util::DynamicBitset& attrs) const {
  return derive_objects(derive_attributes(attrs));
}

std::string FormalContext::render() const {
  std::ostringstream os;
  std::size_t obj_width = 0;
  for (const auto& label : object_labels_) obj_width = std::max(obj_width, label.size());
  os << std::string(obj_width, ' ') << " |";
  for (const auto& label : attribute_labels_) os << ' ' << label << " |";
  os << '\n';
  for (std::size_t g = 0; g < object_count(); ++g) {
    os << object_labels_[g] << std::string(obj_width - object_labels_[g].size(), ' ') << " |";
    for (std::size_t m = 0; m < attribute_count(); ++m) {
      const auto w = attribute_labels_[m].size();
      const char mark = incidence_[g][m] ? 'x' : ' ';
      os << ' ' << std::string(w / 2, ' ') << mark << std::string(w - w / 2 - 1, ' ') << " |";
    }
    os << '\n';
  }
  return os.str();
}

// --- Lattice ---------------------------------------------------------------

std::vector<std::pair<std::size_t, std::size_t>> Lattice::cover_edges() const {
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t i = 0; i < concepts.size(); ++i) {
    for (std::size_t j = 0; j < concepts.size(); ++j) {
      if (i == j) continue;
      // j strictly below i?
      if (!(concepts[j].extent.is_subset_of(concepts[i].extent) && concepts[j].extent != concepts[i].extent))
        continue;
      bool covered = true;
      for (std::size_t k = 0; k < concepts.size() && covered; ++k) {
        if (k == i || k == j) continue;
        if (concepts[j].extent.is_subset_of(concepts[k].extent) && concepts[j].extent != concepts[k].extent &&
            concepts[k].extent.is_subset_of(concepts[i].extent) && concepts[k].extent != concepts[i].extent)
          covered = false;
      }
      if (covered) edges.emplace_back(i, j);
    }
  }
  return edges;
}

std::size_t Lattice::object_concept(std::size_t g) const {
  std::size_t best = concepts.size();
  std::size_t best_extent = 0;
  for (std::size_t i = 0; i < concepts.size(); ++i) {
    if (g >= concepts[i].extent.size() || !concepts[i].extent.test(g)) continue;
    if (best == concepts.size() || concepts[i].extent.count() < best_extent) {
      best = i;
      best_extent = concepts[i].extent.count();
    }
  }
  if (best == concepts.size()) throw std::out_of_range("Lattice::object_concept: object in no concept");
  return best;
}

std::string Lattice::render(const FormalContext& context) const {
  // Reduced labelling: an attribute is printed at its attribute concept
  // (the most general concept carrying it); an object at its object concept
  // (the most specific concept containing it).
  std::vector<std::vector<std::string>> attr_labels(concepts.size());
  std::vector<std::vector<std::string>> object_labels(concepts.size());
  for (std::size_t m = 0; m < context.attribute_count(); ++m) {
    std::size_t best = concepts.size();
    std::size_t best_extent = 0;
    for (std::size_t i = 0; i < concepts.size(); ++i) {
      if (!concepts[i].intent.test(m)) continue;
      if (best == concepts.size() || concepts[i].extent.count() > best_extent) {
        best = i;
        best_extent = concepts[i].extent.count();
      }
    }
    if (best != concepts.size()) attr_labels[best].push_back(context.attribute_label(m));
  }
  for (std::size_t g = 0; g < context.object_count(); ++g)
    object_labels[object_concept(g)].push_back(context.object_label(g));

  // Order top-down by extent size.
  std::vector<std::size_t> order(concepts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return concepts[a].extent.count() > concepts[b].extent.count();
  });

  std::ostringstream os;
  for (const auto i : order) {
    os << "concept #" << i << "  extent=" << concepts[i].extent.count() << " object(s)";
    if (!object_labels[i].empty()) {
      os << "  objects:[";
      for (std::size_t k = 0; k < object_labels[i].size(); ++k)
        os << (k ? ", " : "") << object_labels[i][k];
      os << ']';
    }
    if (!attr_labels[i].empty()) {
      os << "  introduces:[";
      for (std::size_t k = 0; k < attr_labels[i].size(); ++k) os << (k ? ", " : "") << attr_labels[i][k];
      os << ']';
    }
    os << '\n';
  }
  os << cover_edges().size() << " cover edge(s)\n";
  return os.str();
}

// --- IncrementalLattice --------------------------------------------------------

IncrementalLattice::IncrementalLattice(std::size_t attribute_count, std::size_t max_concepts)
    : attribute_count_(attribute_count), max_concepts_(max_concepts) {
  // Empty context: the single concept has an empty extent and the full
  // attribute set as intent (the lattice bottom).
  util::DynamicBitset bottom(attribute_count_);
  for (std::size_t m = 0; m < attribute_count_; ++m) bottom.set(m);
  intents_.push_back(std::move(bottom));
}

void IncrementalLattice::add_object(const util::DynamicBitset& attributes) {
  if (attributes.size() != attribute_count_)
    throw std::invalid_argument("IncrementalLattice: attribute bitset size mismatch");
  object_intents_.push_back(attributes);

  // New closed intents are exactly {I ∩ A} ∪ {A}; all old intents remain
  // closed. Maintains intersection-closure of the intent family.
  std::unordered_set<util::DynamicBitset, util::DynamicBitsetHash> existing(intents_.begin(), intents_.end());
  const std::size_t old_count = intents_.size();
  for (std::size_t i = 0; i < old_count; ++i) {
    auto meet = intents_[i] & attributes;
    if (existing.insert(meet).second) intents_.push_back(std::move(meet));
  }
  if (existing.insert(attributes).second) intents_.push_back(attributes);
  if (intents_.size() > old_count) {
    static auto& inserted = obs::counter("fca.concepts_inserted");
    inserted.add(intents_.size() - old_count);
  }
  if (intents_.size() > max_concepts_)
    throw std::length_error("IncrementalLattice: concept count exceeded " +
                            std::to_string(max_concepts_) +
                            " (pathological context; coarsen the attributes)");
}

Lattice IncrementalLattice::build() const {
  Lattice lattice;
  lattice.concepts.reserve(intents_.size());
  for (const auto& intent : intents_) {
    Concept c;
    c.intent = intent;
    c.extent = util::DynamicBitset(object_intents_.size());
    for (std::size_t g = 0; g < object_intents_.size(); ++g)
      if (intent.is_subset_of(object_intents_[g])) c.extent.set(g);
    lattice.concepts.push_back(std::move(c));
  }
  std::sort(lattice.concepts.begin(), lattice.concepts.end(), [](const Concept& a, const Concept& b) {
    if (a.extent.count() != b.extent.count()) return a.extent.count() > b.extent.count();
    return a.intent.count() < b.intent.count();
  });
  return lattice;
}

// --- batch constructions -------------------------------------------------------

Lattice next_closure_lattice(const FormalContext& context) {
  const std::size_t m_count = context.attribute_count();
  Lattice lattice;

  util::DynamicBitset current = context.closure(util::DynamicBitset(m_count));
  for (;;) {
    Concept c;
    c.intent = current;
    c.extent = context.derive_attributes(current);
    lattice.concepts.push_back(c);

    // NextClosure step: find the lectically next closed set.
    bool found = false;
    util::DynamicBitset candidate(m_count);
    for (std::size_t i = m_count; i-- > 0;) {
      if (current.test(i)) continue;
      util::DynamicBitset augmented(m_count);
      for (std::size_t j = 0; j < i; ++j)
        if (current.test(j)) augmented.set(j);
      augmented.set(i);
      auto closed = context.closure(augmented);
      // Valid step iff closure adds no attribute smaller than i.
      bool valid = true;
      for (std::size_t j = 0; j < i && valid; ++j)
        if (closed.test(j) && !current.test(j)) valid = false;
      if (valid) {
        candidate = std::move(closed);
        found = true;
        break;
      }
    }
    if (!found) break;
    current = std::move(candidate);
  }

  std::sort(lattice.concepts.begin(), lattice.concepts.end(), [](const Concept& a, const Concept& b) {
    if (a.extent.count() != b.extent.count()) return a.extent.count() > b.extent.count();
    return a.intent.count() < b.intent.count();
  });
  return lattice;
}

Lattice incremental_lattice(const FormalContext& context) {
  IncrementalLattice inc(context.attribute_count());
  for (std::size_t g = 0; g < context.object_count(); ++g) inc.add_object(context.object_intent(g));
  return inc.build();
}

}  // namespace difftrace::core
