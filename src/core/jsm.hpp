// Jaccard Similarity Matrices (§II-E, §II-F).
//
// JSM[i][j] = |attrs(i) ∩ attrs(j)| / |attrs(i) ∪ attrs(j)| over the mined
// attribute sets of each trace. JSM_D = |JSM_faulty − JSM_normal| is the
// paper's "diff of the diffs" ("sky subtraction"): a base level of
// dissimilarity exists even between healthy traces (master vs worker roles),
// so what matters is how the similarity *relation changes* when the fault
// is introduced. The per-trace suspicion score is the row sum of JSM_D —
// "row 5 changed the most after the bug was introduced" (§II-G).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/fca.hpp"
#include "util/matrix.hpp"

namespace difftrace::core {

/// Jaccard similarity of two string sets. Both empty => 1 (identical).
[[nodiscard]] double jaccard(const std::set<std::string>& a, const std::set<std::string>& b);

/// Weighted Jaccard over frequency vectors: Σ min(f_a, f_b) / Σ max(f_a,
/// f_b) (missing keys count as 0). A graded alternative to embedding the
/// frequency into the attribute identity (Table V's actual/log10 modes):
/// a count drifting from 100 to 101 costs ~1%, not a whole attribute.
[[nodiscard]] double weighted_jaccard(const std::map<std::string, std::uint64_t>& a,
                                      const std::map<std::string, std::uint64_t>& b);

/// Pairwise JSM over per-object frequency maps (weighted Jaccard).
[[nodiscard]] util::Matrix jsm_from_frequencies(
    const std::vector<std::map<std::string, std::uint64_t>>& freqs);

/// Pairwise JSM over per-object attribute sets.
[[nodiscard]] util::Matrix jsm_from_attributes(const std::vector<std::set<std::string>>& attrs);

/// Same matrix computed through the concept lattice: each object's attribute
/// set is recovered as the intent of its object concept. Exists to
/// demonstrate (and test) that the lattice carries the full information.
[[nodiscard]] util::Matrix jsm_from_lattice(const Lattice& lattice, std::size_t object_count);

/// JSM_D = |faulty − normal| (element-wise).
[[nodiscard]] util::Matrix jsm_diff(const util::Matrix& normal, const util::Matrix& faulty);

/// Row sums of JSM_D: suspicion score per trace, descending order of
/// "affected the most".
[[nodiscard]] std::vector<double> suspicion_scores(const util::Matrix& jsm_d);

}  // namespace difftrace::core
