#include "core/hclust.hpp"

#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>

namespace difftrace::core {

std::string_view linkage_name(Linkage l) noexcept {
  switch (l) {
    case Linkage::Single: return "single";
    case Linkage::Complete: return "complete";
    case Linkage::Average: return "average";
    case Linkage::Weighted: return "weighted";
    case Linkage::Ward: return "ward";
    case Linkage::Centroid: return "centroid";
    case Linkage::Median: return "median";
  }
  return "unknown";
}

std::vector<Linkage> all_linkages() {
  return {Linkage::Single, Linkage::Complete, Linkage::Average, Linkage::Weighted,
          Linkage::Ward,   Linkage::Centroid, Linkage::Median};
}

namespace {

double lance_williams(Linkage method, double d_ik, double d_jk, double d_ij, double ni, double nj,
                      double nk) {
  switch (method) {
    case Linkage::Single:
      return std::min(d_ik, d_jk);
    case Linkage::Complete:
      return std::max(d_ik, d_jk);
    case Linkage::Average:
      return (ni * d_ik + nj * d_jk) / (ni + nj);
    case Linkage::Weighted:
      return 0.5 * (d_ik + d_jk);
    case Linkage::Ward: {
      const double t = ni + nj + nk;
      const double v = ((ni + nk) * d_ik * d_ik + (nj + nk) * d_jk * d_jk - nk * d_ij * d_ij) / t;
      return std::sqrt(std::max(0.0, v));
    }
    case Linkage::Centroid: {
      const double s = ni + nj;
      const double v = (ni * d_ik * d_ik + nj * d_jk * d_jk) / s - ni * nj * d_ij * d_ij / (s * s);
      return std::sqrt(std::max(0.0, v));
    }
    case Linkage::Median: {
      const double v = 0.5 * d_ik * d_ik + 0.5 * d_jk * d_jk - 0.25 * d_ij * d_ij;
      return std::sqrt(std::max(0.0, v));
    }
  }
  return 0.0;
}

}  // namespace

Dendrogram linkage(const util::Matrix& dist, Linkage method) {
  const std::size_t n = dist.rows();
  if (dist.cols() != n) throw std::invalid_argument("linkage: distance matrix must be square");
  if (n == 0) return {};

  // Working copy indexed by cluster slot; slot i holds cluster id ids[i].
  util::Matrix d = dist;
  std::vector<std::size_t> ids(n);
  std::iota(ids.begin(), ids.end(), std::size_t{0});
  std::vector<double> sizes(n, 1.0);
  std::vector<bool> active(n, true);

  Dendrogram out;
  out.reserve(n - 1);
  for (std::size_t merge_index = 0; merge_index + 1 < n; ++merge_index) {
    // Find the closest active pair.
    double best = std::numeric_limits<double>::infinity();
    std::size_t bi = 0;
    std::size_t bj = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      for (std::size_t j = i + 1; j < n; ++j) {
        if (!active[j]) continue;
        if (d(i, j) < best) {
          best = d(i, j);
          bi = i;
          bj = j;
        }
      }
    }

    const double ni = sizes[bi];
    const double nj = sizes[bj];
    out.push_back(Merge{ids[bi], ids[bj], best, static_cast<std::size_t>(ni + nj)});

    // Merged cluster lives in slot bi; slot bj retires.
    for (std::size_t k = 0; k < n; ++k) {
      if (!active[k] || k == bi || k == bj) continue;
      const double updated = lance_williams(method, d(bi, k), d(bj, k), best, ni, nj, sizes[k]);
      d(bi, k) = updated;
      d(k, bi) = updated;
    }
    sizes[bi] = ni + nj;
    ids[bi] = n + merge_index;
    active[bj] = false;
  }
  return out;
}

std::vector<int> cut_to_k(const Dendrogram& dendrogram, std::size_t n, std::size_t k) {
  if (k == 0 || k > n) throw std::invalid_argument("cut_to_k: k must be in [1, n]");
  if (dendrogram.size() != n - 1 && n > 0)
    throw std::invalid_argument("cut_to_k: dendrogram size does not match n");

  // Union-find over observations; apply the first n - k merges.
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  const std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  // Cluster id -> a representative observation.
  std::vector<std::size_t> representative(n + dendrogram.size());
  for (std::size_t i = 0; i < n; ++i) representative[i] = i;
  for (std::size_t m = 0; m + k < n; ++m) {
    const auto& merge = dendrogram[m];
    const auto ra = find(representative[merge.a]);
    const auto rb = find(representative[merge.b]);
    parent[rb] = ra;
    representative[n + m] = ra;
  }

  std::vector<int> labels(n, -1);
  int next = 0;
  std::vector<int> root_label(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    const auto root = find(i);
    if (root_label[root] < 0) root_label[root] = next++;
    labels[i] = root_label[root];
  }
  return labels;
}

util::Matrix cophenetic(const Dendrogram& dendrogram, std::size_t n) {
  if (dendrogram.size() + 1 != n && n > 0)
    throw std::invalid_argument("cophenetic: dendrogram size does not match n");
  // members[c] = observations of cluster id c (ids: 0..n-1 singletons,
  // n+m for merge m).
  std::vector<std::vector<std::size_t>> members(n + dendrogram.size());
  for (std::size_t i = 0; i < n; ++i) members[i] = {i};
  util::Matrix out = util::Matrix::square(n);
  for (std::size_t m = 0; m < dendrogram.size(); ++m) {
    const auto& merge = dendrogram[m];
    const auto& left = members[merge.a];
    const auto& right = members[merge.b];
    for (const auto i : left)
      for (const auto j : right) {
        out(i, j) = merge.height;
        out(j, i) = merge.height;
      }
    auto& joined = members[n + m];
    joined.reserve(left.size() + right.size());
    joined.insert(joined.end(), left.begin(), left.end());
    joined.insert(joined.end(), right.begin(), right.end());
  }
  return out;
}

std::string render_dendrogram(const Dendrogram& dendrogram, std::size_t n,
                              const std::vector<std::string>& labels) {
  if (!labels.empty() && labels.size() != n)
    throw std::invalid_argument("render_dendrogram: need one label per observation");
  const auto label_of = [&](std::size_t i) {
    return labels.empty() ? std::to_string(i) : labels[i];
  };
  std::vector<std::string> cluster_text(n + dendrogram.size());
  for (std::size_t i = 0; i < n; ++i) cluster_text[i] = label_of(i);

  std::string out;
  for (std::size_t m = 0; m < dendrogram.size(); ++m) {
    const auto& merge = dendrogram[m];
    const std::string& a = cluster_text[merge.a];
    const std::string& b = cluster_text[merge.b];
    out += "[" + a + "] + [" + b + "]  @ ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", merge.height);
    out += buf;
    out += '\n';
    cluster_text[n + m] = a + " " + b;
  }
  return out;
}

util::Matrix similarity_to_distance(const util::Matrix& similarity) {
  const std::size_t n = similarity.rows();
  util::Matrix d = util::Matrix::square(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double s = 0.5 * (similarity(i, j) + similarity(j, i));
      d(i, j) = std::max(0.0, 1.0 - s);
    }
  return d;
}

}  // namespace difftrace::core
