#include "core/report.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "analyze/analyze.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

namespace difftrace::core {

namespace {

/// Suspects across all ranking rows, by the consensus voting scheme,
/// descending.
std::vector<std::string> voted_suspects(const RankingTable& table) {
  std::map<std::string, int> votes;
  for (const auto& row : table.rows)
    for (std::size_t i = 0; i < row.top_threads.size(); ++i)
      votes[row.top_threads[i]] += i == 0 ? 3 : (i == 1 ? 2 : 1);
  std::vector<std::pair<std::string, int>> ordered(votes.begin(), votes.end());
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  std::vector<std::string> out;
  for (const auto& [label, _] : ordered) out.push_back(label);
  return out;
}

trace::TraceKey parse_label(const std::string& label) {
  const auto parts = util::split(label, '.');
  return trace::TraceKey{std::stoi(parts.at(0)), std::stoi(parts.at(1))};
}

}  // namespace

Report build_report(const trace::TraceStore& normal, const trace::TraceStore& faulty,
                    const ReportConfig& config) {
  Report report;
  std::ostringstream os;

  os << "==================== DiffTrace report ====================\n\n";

  // 0. Semantic verification of the faulty run, computed up front so its
  // findings can corroborate the triage.
  if (config.run_check) report.check = analyze::run_checks(faulty);

  // 1. Triage: which debugging family is this?
  report.triage = triage(normal, faulty, config.detail_filter, config.sweep.pipeline.nlr);
  if (config.run_check) corroborate(report.triage, report.check);
  os << "--- triage ---\n" << report.triage.render() << '\n';

  // 2. Ranking sweep.
  report.ranking = sweep(normal, faulty, config.sweep);
  os << "--- ranking (" << report.ranking.rows.size() << " parameter combinations) ---\n"
     << report.ranking.render();
  const auto consensus = report.ranking.consensus_thread();
  if (!consensus.empty()) os << "consensus suspicious trace: " << consensus << "\n";
  os << '\n';

  // Top-voted suspects (shared by the semantic cross-reference and the
  // diffNLR section below; triage focus is the fallback when unranked).
  for (const auto& label : voted_suspects(report.ranking)) {
    if (report.suspects.size() >= config.diffnlr_count) break;
    report.suspects.push_back(parse_label(label));
  }
  if (report.suspects.empty() && report.triage.bug_class != BugClass::NoAnomaly)
    report.suspects.push_back(report.triage.focus);

  // 2b. Semantic check findings, cross-referenced with the ranking: a trace
  // both statistically suspicious and semantically implicated is the place
  // to start reading.
  if (config.run_check) {
    os << "--- semantic check (faulty run) ---\n" << report.check.render();
    for (const auto& key : report.suspects) {
      std::string rules;
      for (const auto& d : report.check.diagnostics) {
        if (!(d.where == key)) continue;
        if (rules.find(d.rule) != std::string::npos) continue;
        if (!rules.empty()) rules += ", ";
        rules += d.rule;
      }
      if (!rules.empty())
        os << "cross-reference: trace " << key.label()
           << " is both ranking-suspicious and semantically implicated (" << rules << ")\n";
    }
    os << '\n';
  }

  // 3. Ingestion health under the detail filter: which traces the analysis
  // above did NOT see at full fidelity.
  const Session session(normal, faulty, config.detail_filter, config.sweep.pipeline.nlr);
  for (const auto& d : session.dropped()) report.degraded.push_back(d);
  for (const auto& h : session.health())
    if (h.degraded) report.degraded.push_back(h);
  if (!report.degraded.empty()) {
    os << "--- trace health (" << report.degraded.size() << " degraded/dropped) ---\n";
    util::TextTable health_table({"Trace", "Status", "Detail"});
    for (const auto& d : session.dropped()) health_table.add_row({d.key.label(), "dropped", d.note});
    for (const auto& h : session.health())
      if (h.degraded) health_table.add_row({h.key.label(), "degraded", h.note});
    os << health_table.render();
    os << "scores above are computed over the " << session.traces().size()
       << " analyzable trace(s) only\n\n";
  }

  // 4. Progress view under the detail filter.
  if (!session.traces().empty()) {
    const auto ratios = session.progress_ratios();
    const auto least = session.least_progressed();
    os << "--- progress (filter " << session.label() << ") ---\n";
    os << "least progressed: " << session.traces()[least].label() << " at "
       << util::format_double(ratios[least] * 100.0, 1) << "% of its normal-run work\n";
    std::size_t truncated = 0;
    for (const auto& key : session.traces())
      if (faulty.blob(key).truncated) ++truncated;
    os << truncated << " of " << session.traces().size() << " faulty traces watchdog-truncated\n\n";
  }

  // 5. diffNLRs of the top suspects.
  for (const auto& key : report.suspects) {
    if (std::find(session.traces().begin(), session.traces().end(), key) == session.traces().end())
      continue;
    const auto diff = session.diffnlr(key);
    os << "--- diffNLR(" << key.label() << ") ---\n"
       << (config.side_by_side ? diff.render_side_by_side() : diff.render()) << '\n';
  }

  report.text = os.str();
  return report;
}

}  // namespace difftrace::core
