// The DiffTrace pipeline (Figure 1) and ranking tables (Tables VI-IX).
//
// For one front-end filter, a Session holds everything that depends only on
// the filter: the filtered token streams of both runs and their NLR
// programs over a shared TokenTable/LoopTable (so loop ids mean the same
// thing in the normal and the faulty run). For each attribute configuration
// an Evaluation derives JSM_normal / JSM_faulty / JSM_D, the per-trace
// suspicion scores, the two hierarchical clusterings, and their B-score.
//
// sweep() is the paper's outer iteration loop: every (filter × attribute)
// combination becomes one ranking-table row, sorted by ascending B-score —
// the combinations under which the clustering changed most float to the top,
// and their "Top Threads" column flags the suspicious traces.
#pragma once

#include <string>
#include <vector>

#include "analyze/analyze.hpp"
#include "core/attributes.hpp"
#include "core/bscore.hpp"
#include "core/diffnlr.hpp"
#include "core/filter.hpp"
#include "core/hclust.hpp"
#include "core/jsm.hpp"
#include "core/nlr.hpp"
#include "trace/store.hpp"

namespace difftrace::sched {
class Cache;
class Pool;
}  // namespace difftrace::sched

namespace difftrace::core {

struct PipelineConfig {
  NlrConfig nlr;
  Linkage linkage = Linkage::Ward;
  /// Cap on reported suspicious traces per row (the paper's tables show ≤6).
  std::size_t top_n = 6;
  /// Suspicion threshold: score >= mean + sigmas·stddev.
  double threshold_sigmas = 1.0;
};

/// Why (and how) a trace participates in the analysis at reduced fidelity.
/// Degraded-mode contract: the JSM/ranking/progress stages run on whatever
/// survives ingestion, but every trace that is missing, salvaged, or only
/// partially decodable is flagged here so suspicion scores are never
/// silently computed over a different population than the reader assumes.
struct TraceHealth {
  trace::TraceKey key;
  bool degraded = false;  // analyzable, but one side is salvaged/short
  std::string note;       // human-readable reason, empty when healthy
};

/// Execution knobs for building a Session (and, via SweepConfig, a sweep).
/// Both pointers are optional borrows; the referents must outlive the build.
struct SessionOptions {
  /// Worker pool for per-trace decode/filter/NLR. Null or 1-job pools build
  /// serially (today's exact code path).
  sched::Pool* pool = nullptr;
  /// Artifact cache for per-trace NLR programs. Null disables caching.
  /// Ignored when NlrConfig::fold_known_bodies is set — folding makes one
  /// trace's reduction depend on its siblings, which per-trace keys cannot
  /// express (the sweep's per-row Evaluation cache still applies).
  sched::Cache* cache = nullptr;
};

/// Filter-dependent state shared by all attribute configurations.
class Session {
 public:
  Session(const trace::TraceStore& normal, const trace::TraceStore& faulty, FilterSpec filter,
          NlrConfig nlr_config);
  /// Parallel/cached build. Byte-identical results to the serial
  /// constructor at any job count and any cache state: tokens and loop
  /// bodies are committed to the shared tables in canonical trace order
  /// (all normal traces, then all faulty), which reproduces the exact
  /// intern sequence of a from-scratch serial build.
  Session(const trace::TraceStore& normal, const trace::TraceStore& faulty, FilterSpec filter,
          NlrConfig nlr_config, const SessionOptions& options);

  [[nodiscard]] const FilterSpec& filter() const noexcept { return filter_; }
  [[nodiscard]] const NlrConfig& nlr_config() const noexcept { return nlr_config_; }
  /// Traces present in both runs, in TraceKey order — the JSM row order.
  [[nodiscard]] const std::vector<trace::TraceKey>& traces() const noexcept { return traces_; }
  /// Per-trace ingestion health, parallel to traces().
  [[nodiscard]] const std::vector<TraceHealth>& health() const noexcept { return health_; }
  [[nodiscard]] bool degraded(std::size_t i) const { return health_.at(i).degraded; }
  /// Traces present in only one run (dropped from the analysis) + reason.
  [[nodiscard]] const std::vector<TraceHealth>& dropped() const noexcept { return dropped_; }
  [[nodiscard]] bool any_degraded() const noexcept;
  [[nodiscard]] const TokenTable& tokens() const noexcept { return tokens_; }
  [[nodiscard]] const LoopTable& loops() const noexcept { return loops_; }
  [[nodiscard]] const NlrProgram& normal_nlr(std::size_t i) const { return normal_.at(i); }
  [[nodiscard]] const NlrProgram& faulty_nlr(std::size_t i) const { return faulty_.at(i); }

  [[nodiscard]] std::size_t index_of(trace::TraceKey key) const;

  /// diffNLR(x) — the paper's per-trace normal/faulty loop-structure diff
  /// (with the loop-body legend).
  [[nodiscard]] DiffNlr diffnlr(trace::TraceKey key) const;

  /// NLR as a per-thread measure of progress (§II-D: "revealing unfinished
  /// or broken loops"): expanded faulty trace length over expanded normal
  /// trace length. 1.0 = same amount of work observed; ≪ 1 = the trace was
  /// cut short (deadlock truncation). Defined as 1.0 when the normal trace
  /// is empty under this filter.
  [[nodiscard]] double progress_ratio(std::size_t i) const;
  [[nodiscard]] std::vector<double> progress_ratios() const;
  /// Index of the least-progressed trace — PRODOMETER's "least progressed
  /// task" notion, recovered from NLR (ties break to the lower TraceKey).
  [[nodiscard]] std::size_t least_progressed() const;

  /// "11.mpiall.cust.0K10"-style row label (filter name + NLR constant).
  [[nodiscard]] std::string label() const;

 private:
  void build(const trace::TraceStore& normal, const trace::TraceStore& faulty,
             const SessionOptions& options);
  void build_serial(const trace::TraceStore& normal, const trace::TraceStore& faulty);

  FilterSpec filter_;
  NlrConfig nlr_config_;
  std::vector<trace::TraceKey> traces_;
  std::vector<TraceHealth> health_;
  std::vector<TraceHealth> dropped_;
  TokenTable tokens_;
  LoopTable loops_;
  std::vector<NlrProgram> normal_;
  std::vector<NlrProgram> faulty_;
};

/// Cheap (no-decode) ingestion health check of a normal/faulty store pair:
/// flags keys missing from one run and blobs marked salvaged. Used by the
/// CLI to warn before a sweep; Session computes the decode-accurate version.
[[nodiscard]] std::vector<TraceHealth> store_health(const trace::TraceStore& normal,
                                                    const trace::TraceStore& faulty);

/// One (filter × attribute) analysis outcome.
struct Evaluation {
  AttrConfig attr;
  util::Matrix jsm_normal;
  util::Matrix jsm_faulty;
  util::Matrix jsm_d;
  std::vector<double> scores;  // suspicion per trace (session order)
  Dendrogram dend_normal;
  Dendrogram dend_faulty;
  double bscore = 1.0;
};

[[nodiscard]] Evaluation evaluate(const Session& session, const AttrConfig& attr, Linkage linkage);

/// Weighted-Jaccard variant: similarities come from raw frequency vectors
/// (Σmin/Σmax) instead of attribute sets, so count drift degrades
/// similarity gradually. The Evaluation's attr field records the kind with
/// FreqMode::Actual (frequencies are inherently "actual" here).
[[nodiscard]] Evaluation evaluate_weighted(const Session& session, AttrKind kind, Linkage linkage);

/// §II-A single-run mode: "many types of faults may be apparent just by
/// analyzing JSM_faulty" — e.g. truncated processes look highly dissimilar
/// to those that terminated normally. Ranks the traces of ONE run by how
/// dissimilar each is from the rest (no baseline needed).
struct SingleRunEvaluation {
  std::vector<trace::TraceKey> traces;
  util::Matrix jsm;
  /// 1 − mean similarity to the other traces; high = outlier.
  std::vector<double> outlier_scores;
  Dendrogram dendrogram;
};

[[nodiscard]] SingleRunEvaluation evaluate_single_run(const trace::TraceStore& store,
                                                      const FilterSpec& filter,
                                                      const AttrConfig& attr,
                                                      const NlrConfig& nlr = {},
                                                      Linkage linkage = Linkage::Ward);

struct RankingRow {
  std::string filter_label;
  std::string attr_label;
  double bscore = 1.0;
  std::vector<int> top_processes;          // most-affected process ranks, descending
  std::vector<std::string> top_threads;    // "6.4"-style labels, descending
  /// Sweep-grid coordinates; break B-score ties deterministically so serial
  /// and parallel sweeps render identical tables.
  std::size_t filter_index = 0;
  std::size_t attr_index = 0;
};

struct RankingTable {
  std::vector<RankingRow> rows;  // ascending B-score

  [[nodiscard]] std::string render() const;
  /// The thread label that appears most often across rows' top positions —
  /// the overall verdict ("trace 6.4 was affected the most").
  [[nodiscard]] std::string consensus_thread() const;
  [[nodiscard]] int consensus_process() const;
};

struct SweepConfig {
  std::vector<FilterSpec> filters;
  std::vector<AttrConfig> attributes = all_attr_configs();
  PipelineConfig pipeline;
  /// Job count for the sweep's sched::Pool (`--jobs`) — the paper's
  /// future-work item (1), "exploit multi-core CPUs". 0 = resolve via the
  /// DIFFTRACE_JOBS environment variable, falling back to the hardware
  /// concurrency; 1 = serial (today's exact code path). Output is
  /// deterministic and byte-identical regardless of job count.
  std::size_t analysis_threads = 0;
  /// Content-addressed artifact cache (`--cache`); null disables caching.
  /// Borrowed — must outlive the sweep. A warm cache changes wall time,
  /// never output.
  sched::Cache* cache = nullptr;
};

[[nodiscard]] RankingTable sweep(const trace::TraceStore& normal, const trace::TraceStore& faulty,
                                 const SweepConfig& config);

/// Selects suspicious entries from aligned (label, score) pairs: descending
/// score, thresholded at mean + sigmas·stddev, capped at top_n, never empty
/// when any score is positive.
[[nodiscard]] std::vector<std::size_t> select_suspicious(const std::vector<double>& scores,
                                                         std::size_t top_n, double sigmas);

/// Facade tying the pieces together for application code.
class DiffTrace {
 public:
  DiffTrace(trace::TraceStore normal, trace::TraceStore faulty);

  [[nodiscard]] const trace::TraceStore& normal() const noexcept { return normal_; }
  [[nodiscard]] const trace::TraceStore& faulty() const noexcept { return faulty_; }

  [[nodiscard]] Session make_session(const FilterSpec& filter, const NlrConfig& nlr = {}) const;
  [[nodiscard]] RankingTable rank(const SweepConfig& config) const;

  /// Semantic verification (`difftrace check`) of either run. The normal
  /// run is the baseline sanity check (expected clean); the faulty run is
  /// where deadlocks / unmatched ops / lock inversions show up.
  [[nodiscard]] analyze::CheckReport check_normal(const analyze::CheckOptions& options = {}) const;
  [[nodiscard]] analyze::CheckReport check_faulty(const analyze::CheckOptions& options = {}) const;

 private:
  trace::TraceStore normal_;
  trace::TraceStore faulty_;
};

}  // namespace difftrace::core
