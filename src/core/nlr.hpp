// Nested Loop Recognition (§III-A).
//
// Adapts the Ketterlin–Clauss bottom-up reduction (CGO'08) to function-call
// token streams, per the paper's Procedure 1: trace entries are pushed onto
// a stack of elements; after each push the top of the stack is examined for
//   (1) loop extension  — the top b elements repeat the body of the loop
//                         element right below them → increment its count,
//   (2) loop formation  — the top `min_reps` b-long blocks are equal
//                         → replace with a loop element of count min_reps,
//   (3) known-body fold — the top b elements equal a body already in the
//                         shared loop table → replace with count 1 (the
//                         paper's cross-trace heuristic: "detect loops not
//                         only in the current trace but also in other
//                         traces of the same execution").
// Block length b ranges over 1..K, so each push costs O(K²) and the whole
// reduction is Θ(K²·N) — the complexity the paper states.
//
// Loop bodies live in a LoopTable shared across every trace of an analysis
// session, so "L0" names the same body in the normal and the faulty run —
// which is what makes NLR entries usable as FCA attributes and diffNLR
// tokens. The representation is lossless: expand() reproduces the exact
// input token sequence.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace difftrace::core {

using TokenId = std::uint32_t;

/// Interns token strings (filtered function names) to dense ids for one
/// analysis session.
class TokenTable {
 public:
  TokenId intern(const std::string& name);
  [[nodiscard]] const std::string& name(TokenId id) const;
  [[nodiscard]] std::optional<TokenId> find(const std::string& name) const;
  [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }

  [[nodiscard]] std::vector<TokenId> intern_all(const std::vector<std::string>& tokens);

 private:
  std::map<std::string, TokenId> by_name_;
  std::vector<std::string> names_;
};

/// One element of an NLR program: a plain token or a loop reference L<id>^count.
struct NlrItem {
  enum class Kind : std::uint8_t { Token, Loop };

  Kind kind = Kind::Token;
  std::uint32_t id = 0;       // TokenId or loop id
  std::uint64_t count = 0;    // loop iteration count (Loop only)

  [[nodiscard]] static NlrItem token(TokenId t) { return NlrItem{Kind::Token, t, 0}; }
  [[nodiscard]] static NlrItem loop(std::uint32_t loop_id, std::uint64_t count) {
    return NlrItem{Kind::Loop, loop_id, count};
  }

  [[nodiscard]] bool is_loop() const noexcept { return kind == Kind::Loop; }
  /// Exact equality (kind, id, count) — the "isomorphism" test of
  /// Procedure 1; exact counts keep the representation lossless.
  [[nodiscard]] auto operator<=>(const NlrItem&) const = default;
};

using NlrBody = std::vector<NlrItem>;
using NlrProgram = std::vector<NlrItem>;

/// Distinct loop bodies, each with a stable id, shared across traces.
///
/// Each body also gets a *shape id*: the body with every nested iteration
/// count stripped (recursively, inner loops replaced by their shape ids).
/// Two loops that run the same structure a different number of times share
/// a shape. FCA attributes are mined over shape ids, so the
/// nondeterministic trip counts of asynchronous runs (ILCS §IV) do not
/// fabricate fresh attributes on every execution; exact ids (and counts)
/// remain the lossless representation used by expand/diffNLR.
class LoopTable {
 public:
  std::uint32_t intern(const NlrBody& body);
  [[nodiscard]] const NlrBody& body(std::uint32_t loop_id) const;
  [[nodiscard]] std::optional<std::uint32_t> find(const NlrBody& body) const;
  [[nodiscard]] std::size_t size() const noexcept { return bodies_.size(); }

  /// Count-insensitive structural id of a loop (see class comment).
  [[nodiscard]] std::uint32_t shape_id(std::uint32_t loop_id) const;
  [[nodiscard]] std::size_t shape_count() const noexcept { return next_shape_; }

  /// All bodies of a given length, for known-body folding.
  [[nodiscard]] const std::vector<std::uint32_t>& bodies_of_length(std::size_t len) const;

 private:
  std::map<NlrBody, std::uint32_t> by_body_;
  std::vector<NlrBody> bodies_;
  std::vector<std::vector<std::uint32_t>> by_length_;
  std::map<NlrBody, std::uint32_t> by_shape_;   // canonical (count-stripped) body -> shape id
  std::vector<std::uint32_t> shape_ids_;        // loop id -> shape id
  std::uint32_t next_shape_ = 0;
  static const std::vector<std::uint32_t> kEmpty;
};

struct NlrConfig {
  /// Maximum block length examined (the paper's constant K; §IV uses 10,
  /// §V compares 10 and 50).
  std::size_t k = 10;
  /// Consecutive occurrences required to *form* a new loop. The paper's
  /// Procedure 1 shows 3; its Table III folds 2 iterations, which known-body
  /// folding achieves. Default 2 reproduces the tables directly.
  std::size_t min_reps = 2;
  /// Enable the cross-trace known-body heuristic (fold a single occurrence
  /// of an already-seen body into L^1). Off by default: eager folding can
  /// preempt natural loop formation when two traces run the same body at
  /// different phase offsets (e.g. odd vs even ranks of odd/even sort).
  /// Cross-trace ID consistency is already guaranteed by formation-time
  /// interning in the shared LoopTable.
  bool fold_known_bodies = false;
};

/// Incremental NLR builder (the stack of Procedure 1).
class NlrBuilder {
 public:
  NlrBuilder(LoopTable& table, NlrConfig config);

  void push(TokenId token);
  void push_all(const std::vector<TokenId>& tokens);

  /// The reduced program (the stack contents). Valid at any point.
  [[nodiscard]] const NlrProgram& program() const noexcept { return stack_; }
  [[nodiscard]] NlrProgram take() { return std::move(stack_); }

 private:
  void reduce();
  [[nodiscard]] bool try_extend();
  [[nodiscard]] bool try_form();
  [[nodiscard]] bool try_known_fold();
  [[nodiscard]] bool blocks_equal(std::size_t start_a, std::size_t start_b, std::size_t len) const;

  LoopTable& table_;
  NlrConfig config_;
  NlrProgram stack_;
  /// Reused lookup key for try_known_fold: assigning into it is
  /// amortized-allocation-free, where constructing a fresh NlrBody per
  /// probe allocated on every push (found by dtsa's alloc-in-hot-path).
  NlrBody probe_;
};

/// Convenience: reduce a whole token sequence.
[[nodiscard]] NlrProgram build_nlr(const std::vector<TokenId>& tokens, LoopTable& table,
                                   const NlrConfig& config = {});

/// Lossless expansion back to the flat token sequence.
[[nodiscard]] std::vector<TokenId> expand_nlr(const NlrProgram& program, const LoopTable& table);

/// Expanded weight of every loop body, computed without expansion.
///
/// `token_weight[t]` is token t's own weight (all-ones measures expanded
/// token length; per-token op/event counts measure those instead); tokens
/// with ids past the span weigh 0. A loop item contributes
/// count × weight(its body), so the result is the exact expanded weight.
/// Bodies reference only lower loop ids (intern order is bottom-up), which
/// makes one ascending-id pass the whole fixpoint.
[[nodiscard]] std::vector<std::uint64_t> body_weights(const LoopTable& table,
                                                      std::span<const std::uint64_t> token_weight);

/// Expanded weight of one program given precomputed `body_weights`.
[[nodiscard]] std::uint64_t program_weight(const NlrProgram& program,
                                           std::span<const std::uint64_t> token_weight,
                                           std::span<const std::uint64_t> body_weight);

/// "L0^4" / token-name rendering of a single item.
[[nodiscard]] std::string item_label(const NlrItem& item, const TokenTable& tokens);
/// Label without the ^count suffix ("L0", "MPI_Send") — the FCA attribute form.
[[nodiscard]] std::string item_attr_label(const NlrItem& item, const TokenTable& tokens);
/// Multi-line rendering of a program (one item per line).
[[nodiscard]] std::string program_to_string(const NlrProgram& program, const TokenTable& tokens);

}  // namespace difftrace::core
