// Formal Concept Analysis (§III-B).
//
// A formal context K = (G, M, I): objects G (traces), attributes M (mined
// from NLR programs), incidence I. A *concept* is a pair (extent, intent)
// with extent' = intent and intent' = extent (Galois closure). The concept
// lattice orders concepts by extent inclusion.
//
// Two constructions are provided:
//  * IncrementalLattice — objects are injected one at a time into an
//    initially empty lattice, maintaining the set of closed intents
//    (Godin-style incremental maintenance [21]; the intent set of the
//    extended context is exactly {I ∩ A} ∪ {A} over existing intents I and
//    the new object's attribute set A, plus the bottom intent M).
//  * next_closure_lattice — Ganter's batch NextClosure [8], enumerating all
//    closed attribute sets in lectic order. Quadratic in the concept count;
//    used as the oracle in tests and the baseline in the FCA benchmark.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "util/bitset.hpp"

namespace difftrace::core {

/// A formal context over string-labelled objects and attributes.
class FormalContext {
 public:
  std::size_t add_object(const std::string& label);
  std::size_t add_attribute(const std::string& label);
  /// Adds attribute on first sight, then marks incidence.
  void set_incidence(std::size_t object, const std::string& attribute);
  void set_incidence(std::size_t object, std::size_t attribute);

  [[nodiscard]] std::size_t object_count() const noexcept { return object_labels_.size(); }
  [[nodiscard]] std::size_t attribute_count() const noexcept { return attribute_labels_.size(); }
  [[nodiscard]] const std::string& object_label(std::size_t i) const { return object_labels_.at(i); }
  [[nodiscard]] const std::string& attribute_label(std::size_t i) const { return attribute_labels_.at(i); }
  [[nodiscard]] std::optional<std::size_t> find_attribute(const std::string& label) const;

  /// Attribute set of one object, sized to attribute_count().
  [[nodiscard]] util::DynamicBitset object_intent(std::size_t object) const;
  [[nodiscard]] bool incident(std::size_t object, std::size_t attribute) const;

  // Derivation operators.
  /// attributes common to all objects in `objects`
  [[nodiscard]] util::DynamicBitset derive_objects(const util::DynamicBitset& objects) const;
  /// objects having all attributes in `attrs`
  [[nodiscard]] util::DynamicBitset derive_attributes(const util::DynamicBitset& attrs) const;
  /// closure(attrs) = derive(derive(attrs))
  [[nodiscard]] util::DynamicBitset closure(const util::DynamicBitset& attrs) const;

  /// Plain-text rendering (Table IV analogue: objects × attributes grid).
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> object_labels_;
  std::vector<std::string> attribute_labels_;
  std::vector<std::vector<bool>> incidence_;  // [object][attribute]
};

struct Concept {
  util::DynamicBitset extent;  // objects
  util::DynamicBitset intent;  // attributes

  [[nodiscard]] bool operator==(const Concept&) const = default;
};

struct Lattice {
  std::vector<Concept> concepts;  // sorted by descending extent size, top first

  /// Cover edges (i, j): concepts[i] is an upper neighbour of concepts[j].
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> cover_edges() const;
  [[nodiscard]] std::size_t size() const noexcept { return concepts.size(); }

  /// Index of the object concept of `g`: the concept with the largest
  /// intent whose extent contains g.
  [[nodiscard]] std::size_t object_concept(std::size_t g) const;

  /// Multi-line rendering of the lattice (Figure 3 analogue).
  [[nodiscard]] std::string render(const FormalContext& context) const;
};

/// Incrementally maintained lattice; feed objects as they are mined.
class IncrementalLattice {
 public:
  /// `max_concepts` guards against pathological contexts (the worst case is
  /// exponential, as the paper's O(2^2K·|G|) bound warns): exceeding it
  /// throws std::length_error instead of exhausting memory.
  explicit IncrementalLattice(std::size_t attribute_count, std::size_t max_concepts = 1'000'000);

  /// Adds one object (attribute bitset sized to attribute_count).
  void add_object(const util::DynamicBitset& attributes);

  [[nodiscard]] std::size_t object_count() const noexcept { return object_intents_.size(); }
  [[nodiscard]] std::size_t concept_count() const noexcept { return intents_.size(); }

  /// Materializes the full lattice (computes extents for every intent).
  [[nodiscard]] Lattice build() const;

 private:
  std::size_t attribute_count_;
  std::size_t max_concepts_;
  std::vector<util::DynamicBitset> object_intents_;
  std::vector<util::DynamicBitset> intents_;  // closed intents, insertion order
};

/// Batch construction via NextClosure, the test oracle.
[[nodiscard]] Lattice next_closure_lattice(const FormalContext& context);

/// Incremental construction over a whole context (convenience).
[[nodiscard]] Lattice incremental_lattice(const FormalContext& context);

}  // namespace difftrace::core
