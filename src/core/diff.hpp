// Myers O(ND) difference algorithm [18] over integer-token sequences — the
// engine behind diffNLR, exactly the algorithm of GNU diff / git.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace difftrace::core {

enum class EditOp : std::uint8_t { Equal, Delete, Insert };

/// One run of the edit script. Equal consumes from both sides; Delete
/// consumes from A only; Insert from B only.
struct EditChunk {
  EditOp op = EditOp::Equal;
  std::size_t a_begin = 0;
  std::size_t b_begin = 0;
  std::size_t length = 0;

  [[nodiscard]] bool operator==(const EditChunk&) const = default;
};

/// Minimal edit script converting `a` into `b` (runs coalesced, in order).
[[nodiscard]] std::vector<EditChunk> myers_diff(std::span<const std::uint32_t> a,
                                                std::span<const std::uint32_t> b);

/// Total edit distance (inserted + deleted tokens) of a script.
[[nodiscard]] std::size_t edit_distance(const std::vector<EditChunk>& script);

}  // namespace difftrace::core
