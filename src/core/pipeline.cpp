#include "core/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>

#include "obs/span.hpp"
#include "util/stats.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

namespace difftrace::core {

// --- Session -----------------------------------------------------------------

Session::Session(const trace::TraceStore& normal, const trace::TraceStore& faulty, FilterSpec filter,
                 NlrConfig nlr_config)
    : filter_(std::move(filter)), nlr_config_(nlr_config) {
  obs::Span span_session("session");
  // Union of both runs' keys: analyzable traces (present in both) keep their
  // JSM row; one-sided traces are recorded as dropped, never silently lost.
  for (const auto& key : normal.keys()) {
    if (faulty.contains(key))
      traces_.push_back(key);
    else
      dropped_.push_back({key, true, "missing in faulty run"});
  }
  for (const auto& key : faulty.keys())
    if (!normal.contains(key)) dropped_.push_back({key, true, "missing in normal run"});

  // Decode tolerantly: salvaged or tail-corrupt blobs contribute their clean
  // prefix and flag the trace as degraded instead of aborting the session.
  health_.reserve(traces_.size());
  std::vector<trace::TraceStore::DecodedTrace> normal_events;
  std::vector<trace::TraceStore::DecodedTrace> faulty_events;
  normal_events.reserve(traces_.size());
  faulty_events.reserve(traces_.size());
  {
    obs::Span span_decode("decode");
    for (const auto& key : traces_) {
      normal_events.push_back(normal.decode_tolerant(key));
      faulty_events.push_back(faulty.decode_tolerant(key));
      TraceHealth h{key, false, ""};
      const auto& n = normal_events.back();
      const auto& f = faulty_events.back();
      if (!n.complete || !f.complete) {
        h.degraded = true;
        if (!n.complete) h.note = "normal run: " + n.note;
        if (!f.complete) h.note += (h.note.empty() ? "" : "; ") + ("faulty run: " + f.note);
      }
      health_.push_back(std::move(h));
    }
  }

  // Normal run first, then faulty: formation-order interning makes loop ids
  // deterministic, and the normal run primes the table (§III-A heuristic).
  obs::Span span_nlr("nlr");
  normal_.reserve(traces_.size());
  faulty_.reserve(traces_.size());
  for (std::size_t i = 0; i < traces_.size(); ++i) {
    const auto ids = tokens_.intern_all(filter_.apply(normal_events[i].events, normal.registry()));
    normal_.push_back(build_nlr(ids, loops_, nlr_config_));
  }
  for (std::size_t i = 0; i < traces_.size(); ++i) {
    const auto ids = tokens_.intern_all(filter_.apply(faulty_events[i].events, faulty.registry()));
    faulty_.push_back(build_nlr(ids, loops_, nlr_config_));
  }
}

bool Session::any_degraded() const noexcept {
  if (!dropped_.empty()) return true;
  return std::any_of(health_.begin(), health_.end(),
                     [](const TraceHealth& h) { return h.degraded; });
}

std::vector<TraceHealth> store_health(const trace::TraceStore& normal,
                                      const trace::TraceStore& faulty) {
  std::vector<TraceHealth> out;
  for (const auto& key : normal.keys()) {
    if (!faulty.contains(key)) {
      out.push_back({key, true, "missing in faulty run"});
      continue;
    }
    std::string note;
    if (normal.blob(key).salvaged) note = "normal run: salvaged blob";
    if (faulty.blob(key).salvaged)
      note += (note.empty() ? "" : "; ") + std::string("faulty run: salvaged blob");
    if (!note.empty()) out.push_back({key, true, std::move(note)});
  }
  for (const auto& key : faulty.keys())
    if (!normal.contains(key)) out.push_back({key, true, "missing in normal run"});
  return out;
}

std::size_t Session::index_of(trace::TraceKey key) const {
  const auto it = std::find(traces_.begin(), traces_.end(), key);
  if (it == traces_.end()) throw std::out_of_range("Session: trace " + key.label() + " not in session");
  return static_cast<std::size_t>(it - traces_.begin());
}

DiffNlr Session::diffnlr(trace::TraceKey key) const {
  const auto i = index_of(key);
  return diff_nlr(normal_[i], faulty_[i], tokens_, loops_);
}

double Session::progress_ratio(std::size_t i) const {
  const auto normal_len = expand_nlr(normal_.at(i), loops_).size();
  const auto faulty_len = expand_nlr(faulty_.at(i), loops_).size();
  if (normal_len == 0) return 1.0;
  return static_cast<double>(faulty_len) / static_cast<double>(normal_len);
}

std::vector<double> Session::progress_ratios() const {
  std::vector<double> out(traces_.size());
  for (std::size_t i = 0; i < traces_.size(); ++i) out[i] = progress_ratio(i);
  return out;
}

std::size_t Session::least_progressed() const {
  if (traces_.empty()) throw std::logic_error("Session::least_progressed: empty session");
  const auto ratios = progress_ratios();
  std::size_t best = 0;
  for (std::size_t i = 1; i < ratios.size(); ++i)
    if (ratios[i] < ratios[best]) best = i;
  return best;
}

std::string Session::label() const {
  return filter_.name() + ".0K" + std::to_string(nlr_config_.k);
}

// --- Evaluation -------------------------------------------------------------

Evaluation evaluate(const Session& session, const AttrConfig& attr, Linkage linkage_method) {
  obs::Span span_evaluate("evaluate");
  Evaluation out;
  out.attr = attr;

  const std::size_t n = session.traces().size();
  std::vector<std::set<std::string>> attrs_normal(n);
  std::vector<std::set<std::string>> attrs_faulty(n);
  {
    obs::Span span_attrs("attributes");
    for (std::size_t i = 0; i < n; ++i) {
      attrs_normal[i] =
          mine_attributes(session.normal_nlr(i), session.tokens(), session.loops(), attr);
      attrs_faulty[i] =
          mine_attributes(session.faulty_nlr(i), session.tokens(), session.loops(), attr);
    }
  }
  {
    obs::Span span_jsm("jsm");
    out.jsm_normal = jsm_from_attributes(attrs_normal);
    out.jsm_faulty = jsm_from_attributes(attrs_faulty);
    out.jsm_d = jsm_diff(out.jsm_normal, out.jsm_faulty);
    out.scores = suspicion_scores(out.jsm_d);
  }

  if (n >= 2) {
    obs::Span span_cluster("cluster");
    out.dend_normal = linkage(similarity_to_distance(out.jsm_normal), linkage_method);
    out.dend_faulty = linkage(similarity_to_distance(out.jsm_faulty), linkage_method);
    out.bscore = bscore(out.dend_normal, out.dend_faulty, n);
  }
  return out;
}

Evaluation evaluate_weighted(const Session& session, AttrKind kind, Linkage linkage_method) {
  obs::Span span_evaluate("evaluate");
  Evaluation out;
  out.attr = AttrConfig{kind, FreqMode::Actual};

  const std::size_t n = session.traces().size();
  std::vector<std::map<std::string, std::uint64_t>> freqs_normal(n);
  std::vector<std::map<std::string, std::uint64_t>> freqs_faulty(n);
  for (std::size_t i = 0; i < n; ++i) {
    freqs_normal[i] = mine_frequencies(session.normal_nlr(i), session.tokens(), session.loops(), kind);
    freqs_faulty[i] = mine_frequencies(session.faulty_nlr(i), session.tokens(), session.loops(), kind);
  }
  out.jsm_normal = jsm_from_frequencies(freqs_normal);
  out.jsm_faulty = jsm_from_frequencies(freqs_faulty);
  out.jsm_d = jsm_diff(out.jsm_normal, out.jsm_faulty);
  out.scores = suspicion_scores(out.jsm_d);

  if (n >= 2) {
    out.dend_normal = linkage(similarity_to_distance(out.jsm_normal), linkage_method);
    out.dend_faulty = linkage(similarity_to_distance(out.jsm_faulty), linkage_method);
    out.bscore = bscore(out.dend_normal, out.dend_faulty, n);
  }
  return out;
}

SingleRunEvaluation evaluate_single_run(const trace::TraceStore& store, const FilterSpec& filter,
                                        const AttrConfig& attr, const NlrConfig& nlr,
                                        Linkage linkage_method) {
  obs::Span span_evaluate("evaluate");
  SingleRunEvaluation out;
  out.traces = store.keys();

  TokenTable tokens;
  LoopTable loops;
  std::vector<std::set<std::string>> attrs;
  attrs.reserve(out.traces.size());
  for (const auto& key : out.traces) {
    const auto program = build_nlr(tokens.intern_all(filter.apply(store, key)), loops, nlr);
    attrs.push_back(mine_attributes(program, tokens, loops, attr));
  }
  out.jsm = jsm_from_attributes(attrs);

  const std::size_t n = out.traces.size();
  out.outlier_scores.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double total = 0.0;
    for (std::size_t j = 0; j < n; ++j)
      if (j != i) total += out.jsm(i, j);
    out.outlier_scores[i] = n > 1 ? 1.0 - total / static_cast<double>(n - 1) : 0.0;
  }
  if (n >= 2) out.dendrogram = linkage(similarity_to_distance(out.jsm), linkage_method);
  return out;
}

// --- suspicious selection -------------------------------------------------------

std::vector<std::size_t> select_suspicious(const std::vector<double>& scores, std::size_t top_n,
                                           double sigmas) {
  constexpr double kEps = 1e-9;
  const auto summary = util::summarize(scores);
  const double threshold = summary.mean + sigmas * summary.stddev;

  std::vector<std::size_t> order(scores.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });

  std::vector<std::size_t> picked;
  for (const auto i : order) {
    if (picked.size() >= top_n) break;
    if (scores[i] <= kEps) break;
    if (scores[i] < threshold && !picked.empty()) break;
    picked.push_back(i);
  }
  return picked;
}

// --- RankingTable -------------------------------------------------------------

std::string RankingTable::render() const {
  util::TextTable table({"Filter", "Attributes", "B-score", "Top Processes", "Top Threads"});
  for (const auto& row : rows) {
    std::vector<std::string> procs;
    for (const auto p : row.top_processes) procs.push_back(std::to_string(p));
    table.add_row({row.filter_label, row.attr_label, util::format_double(row.bscore),
                   util::join(procs, ", "), util::join(row.top_threads, ", ")});
  }
  return table.render();
}

std::string RankingTable::consensus_thread() const {
  // First-place finishes weigh 3, second 2, anything else in the list 1.
  std::map<std::string, int> votes;
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.top_threads.size(); ++i)
      votes[row.top_threads[i]] += i == 0 ? 3 : (i == 1 ? 2 : 1);
  }
  std::string best;
  int best_votes = 0;
  for (const auto& [label, v] : votes) {
    if (v > best_votes) {
      best = label;
      best_votes = v;
    }
  }
  return best;
}

int RankingTable::consensus_process() const {
  std::map<int, int> votes;
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.top_processes.size(); ++i)
      votes[row.top_processes[i]] += i == 0 ? 3 : (i == 1 ? 2 : 1);
  }
  int best = -1;
  int best_votes = 0;
  for (const auto& [proc, v] : votes) {
    if (v > best_votes) {
      best = proc;
      best_votes = v;
    }
  }
  return best;
}

// --- sweep ---------------------------------------------------------------------

namespace {

/// All rows for one filter (one Session, every attribute configuration).
std::vector<RankingRow> rows_for_filter(const trace::TraceStore& normal,
                                        const trace::TraceStore& faulty, const SweepConfig& config,
                                        std::size_t filter_index) {
  const Session session(normal, faulty, config.filters[filter_index], config.pipeline.nlr);
  std::vector<RankingRow> rows;
  rows.reserve(config.attributes.size());
  for (std::size_t attr_index = 0; attr_index < config.attributes.size(); ++attr_index) {
    const auto& attr = config.attributes[attr_index];
    const auto eval = evaluate(session, attr, config.pipeline.linkage);

    RankingRow row;
    row.filter_label = session.label();
    row.attr_label = attr.name();
    row.bscore = eval.bscore;
    row.filter_index = filter_index;
    row.attr_index = attr_index;

    const auto top = select_suspicious(eval.scores, config.pipeline.top_n,
                                       config.pipeline.threshold_sigmas);
    for (const auto i : top) row.top_threads.push_back(session.traces()[i].label());

    // Process-level aggregation: mean suspicion across the process's
    // threads, then the same selection rule.
    std::map<int, std::pair<double, int>> per_proc;  // proc -> (sum, count)
    for (std::size_t i = 0; i < session.traces().size(); ++i) {
      auto& [sum, count] = per_proc[session.traces()[i].proc];
      sum += eval.scores[i];
      ++count;
    }
    std::vector<int> procs;
    std::vector<double> proc_scores;
    for (const auto& [proc, agg] : per_proc) {
      procs.push_back(proc);
      proc_scores.push_back(agg.first / agg.second);
    }
    const auto top_procs = select_suspicious(proc_scores, config.pipeline.top_n,
                                             config.pipeline.threshold_sigmas);
    for (const auto i : top_procs) row.top_processes.push_back(procs[i]);

    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

RankingTable sweep(const trace::TraceStore& normal, const trace::TraceStore& faulty,
                   const SweepConfig& config) {
  obs::Span span_sweep("sweep");
  const std::size_t requested =
      config.analysis_threads == 0 ? std::max(1u, std::thread::hardware_concurrency())
                                   : config.analysis_threads;
  const std::size_t workers = std::min(requested, std::max<std::size_t>(1, config.filters.size()));

  std::vector<std::vector<RankingRow>> per_filter(config.filters.size());
  if (workers <= 1) {
    for (std::size_t f = 0; f < config.filters.size(); ++f)
      per_filter[f] = rows_for_filter(normal, faulty, config, f);
  } else {
    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (;;) {
          const auto f = next.fetch_add(1, std::memory_order_relaxed);
          if (f >= config.filters.size()) return;
          try {
            per_filter[f] = rows_for_filter(normal, faulty, config, f);
          } catch (...) {
            std::lock_guard lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
          }
        }
      });
    }
    for (auto& t : pool) t.join();
    if (first_error) std::rethrow_exception(first_error);
  }

  RankingTable table;
  for (auto& rows : per_filter)
    for (auto& row : rows) table.rows.push_back(std::move(row));
  std::sort(table.rows.begin(), table.rows.end(), [](const RankingRow& a, const RankingRow& b) {
    if (a.bscore != b.bscore) return a.bscore < b.bscore;
    if (a.filter_index != b.filter_index) return a.filter_index < b.filter_index;
    return a.attr_index < b.attr_index;
  });
  return table;
}

// --- DiffTrace facade --------------------------------------------------------------

DiffTrace::DiffTrace(trace::TraceStore normal, trace::TraceStore faulty)
    : normal_(std::move(normal)), faulty_(std::move(faulty)) {}

Session DiffTrace::make_session(const FilterSpec& filter, const NlrConfig& nlr) const {
  return Session(normal_, faulty_, filter, nlr);
}

RankingTable DiffTrace::rank(const SweepConfig& config) const {
  return sweep(normal_, faulty_, config);
}

analyze::CheckReport DiffTrace::check_normal(const analyze::CheckOptions& options) const {
  return analyze::run_checks(normal_, options);
}

analyze::CheckReport DiffTrace::check_faulty(const analyze::CheckOptions& options) const {
  return analyze::run_checks(faulty_, options);
}

}  // namespace difftrace::core
