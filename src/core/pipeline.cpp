#include "core/pipeline.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <stdexcept>

#include "core/sweep_cache.hpp"
#include "obs/span.hpp"
#include "sched/cache.hpp"
#include "sched/graph.hpp"
#include "sched/pool.hpp"
#include "util/stats.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

namespace difftrace::core {

// --- Session -----------------------------------------------------------------

namespace {

/// Per-(run, trace) working state for the parallel/cached Session build.
struct SideSlot {
  std::string cache_key;                 // NLR artifact key ("" when uncached)
  std::optional<NlrArtifact> artifact;   // cache hit: the rehydrated program
  std::vector<std::string> token_strings;  // miss: filtered token stream
  std::vector<TokenId> ids;              // miss: session token ids (phase B)
  bool complete = true;
  std::string note;
};

/// Converts one trace's reduction (session token ids, private loop table)
/// into the self-contained local-id form stored in the cache. Local ids are
/// assigned by a left-to-right walk of the program, recursing into a loop
/// body at its first reference: for tokens this visitation order equals the
/// filtered stream's first-occurrence order (the walk is the expansion with
/// repetitions elided), and for loops it equals formation order — the two
/// properties rehydration relies on to reproduce shared-table ids.
NlrArtifact make_local_artifact(const NlrProgram& program, const LoopTable& table,
                                const TokenTable& tokens, bool complete, std::string note) {
  NlrArtifact art;
  art.complete = complete;
  art.note = std::move(note);

  std::map<TokenId, std::uint32_t> token_map;  // session id -> local id
  std::vector<std::optional<std::uint32_t>> loop_map(table.size());

  const auto map_token = [&](TokenId id) {
    const auto [it, inserted] = token_map.try_emplace(id, static_cast<std::uint32_t>(art.token_names.size()));
    if (inserted) art.token_names.push_back(tokens.name(id));
    return it->second;
  };
  const auto map_loop = [&](auto&& self, std::uint32_t id) -> std::uint32_t {
    if (loop_map[id]) return *loop_map[id];
    NlrBody local_body;
    for (const auto& item : table.body(id)) {
      if (item.is_loop())
        local_body.push_back(NlrItem::loop(self(self, item.id), item.count));
      else
        local_body.push_back(NlrItem::token(map_token(item.id)));
    }
    const auto local = static_cast<std::uint32_t>(art.loop_bodies.size());
    art.loop_bodies.push_back(std::move(local_body));
    loop_map[id] = local;
    return local;
  };
  for (const auto& item : program) {
    if (item.is_loop())
      art.program.push_back(NlrItem::loop(map_loop(map_loop, item.id), item.count));
    else
      art.program.push_back(NlrItem::token(map_token(item.id)));
  }
  return art;
}

}  // namespace

Session::Session(const trace::TraceStore& normal, const trace::TraceStore& faulty, FilterSpec filter,
                 NlrConfig nlr_config)
    : Session(normal, faulty, std::move(filter), nlr_config, SessionOptions{}) {}

Session::Session(const trace::TraceStore& normal, const trace::TraceStore& faulty, FilterSpec filter,
                 NlrConfig nlr_config, const SessionOptions& options)
    : filter_(std::move(filter)), nlr_config_(nlr_config) {
  build(normal, faulty, options);
}

void Session::build(const trace::TraceStore& normal, const trace::TraceStore& faulty,
                    const SessionOptions& options) {
  obs::Span span_session("session");
  // Union of both runs' keys: analyzable traces (present in both) keep their
  // JSM row; one-sided traces are recorded as dropped, never silently lost.
  for (const auto& key : normal.keys()) {
    if (faulty.contains(key))
      traces_.push_back(key);
    else
      dropped_.push_back({key, true, "missing in faulty run"});
  }
  for (const auto& key : faulty.keys())
    if (!normal.contains(key)) dropped_.push_back({key, true, "missing in normal run"});

  sched::Pool* pool = options.pool;
  const bool pooled = pool != nullptr && pool->jobs() > 1;
  // Known-body folding reads loop bodies formed by OTHER traces of the
  // session, so its reduction can neither run on private per-trace tables
  // nor be cached under per-trace keys; it keeps the serial path.
  const bool isolated_nlr = !nlr_config_.fold_known_bodies;
  sched::Cache* cache = isolated_nlr ? options.cache : nullptr;

  if ((!pooled && cache == nullptr) || !isolated_nlr) {
    build_serial(normal, faulty);
    return;
  }

  const std::size_t n = traces_.size();
  // Unit u in [0, n) is the normal run of traces_[u]; [n, 2n) the faulty run
  // of traces_[u - n] — the canonical (serial) interning order.
  std::vector<SideSlot> sides(2 * n);

  // Phase A (parallel): per trace, either rehydrate the cached NLR artifact
  // (no decode at all) or decode tolerantly and filter to token strings.
  {
    obs::Span span_decode("decode");
    const auto load = [&](std::size_t u) {
      const bool is_faulty = u >= n;
      const auto& store = is_faulty ? faulty : normal;
      const auto key = traces_[is_faulty ? u - n : u];
      SideSlot& slot = sides[u];
      if (cache != nullptr) {
        slot.cache_key = nlr_artifact_key(trace_fingerprint(store, key), filter_, nlr_config_);
        if (auto payload = cache->lookup(slot.cache_key, kArtifactNlr)) {
          if (auto artifact = decode_nlr_artifact(*payload)) {
            slot.complete = artifact->complete;
            slot.note = artifact->note;
            slot.artifact = std::move(artifact);
            return;
          }
        }
      }
      auto decoded = store.decode_tolerant(key);
      slot.complete = decoded.complete;
      slot.note = std::move(decoded.note);
      slot.token_strings = filter_.apply(decoded.events, store.registry());
    };
    if (pooled) {
      pool->parallel_for(2 * n, load);
    } else {
      for (std::size_t u = 0; u < 2 * n; ++u) load(u);
    }
  }

  health_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    TraceHealth h{traces_[i], false, ""};
    const auto& nslot = sides[i];
    const auto& fslot = sides[n + i];
    if (!nslot.complete || !fslot.complete) {
      h.degraded = true;
      if (!nslot.complete) h.note = "normal run: " + nslot.note;
      if (!fslot.complete) h.note += (h.note.empty() ? "" : "; ") + ("faulty run: " + fslot.note);
    }
    health_.push_back(std::move(h));
  }

  obs::Span span_nlr("nlr");
  // Phase B (serial, canonical order): intern the token vocabulary. Artifact
  // vocabularies list names in stream first-occurrence order, so interning
  // them is indistinguishable from interning the stream itself — shared
  // token ids come out identical to a from-scratch serial build.
  std::vector<std::vector<TokenId>> token_maps(2 * n);  // artifact-local -> session
  for (std::size_t u = 0; u < 2 * n; ++u) {
    SideSlot& slot = sides[u];
    if (slot.artifact) {
      auto& map = token_maps[u];
      map.reserve(slot.artifact->token_names.size());
      for (const auto& name : slot.artifact->token_names) map.push_back(tokens_.intern(name));
    } else {
      slot.ids = tokens_.intern_all(slot.token_strings);
      slot.token_strings.clear();
      slot.token_strings.shrink_to_fit();
    }
  }

  // Phase C (parallel): reduce each cache-miss trace against a PRIVATE loop
  // table. With folding disabled a trace's reduction never reads bodies it
  // did not form itself, so the private result is isomorphic to the shared
  // one — phase D's remap makes the isomorphism explicit. Freshly reduced
  // traces are encoded and stored back to the cache here (tokens_ is only
  // read const from this point, so worker reads are safe).
  std::vector<LoopTable> private_tables(2 * n);
  std::vector<NlrProgram> private_programs(2 * n);
  {
    const auto reduce = [&](std::size_t u) {
      SideSlot& slot = sides[u];
      if (slot.artifact) return;
      private_programs[u] = build_nlr(slot.ids, private_tables[u], nlr_config_);
      if (cache != nullptr) {
        const auto artifact = make_local_artifact(private_programs[u], private_tables[u], tokens_,
                                                  slot.complete, slot.note);
        cache->store(slot.cache_key, kArtifactNlr, encode_nlr_artifact(artifact));
      }
    };
    if (pooled) {
      pool->parallel_for(2 * n, reduce);
    } else {
      for (std::size_t u = 0; u < 2 * n; ++u) reduce(u);
    }
  }

  // Phase D (serial, canonical order): commit loop bodies to the shared
  // table. Local ids — artifact or private — are in formation order, and a
  // body only references earlier locals, so a plain in-order intern of the
  // remapped bodies replays the exact intern sequence (and therefore the
  // exact loop/shape ids) of a serial build.
  normal_.reserve(n);
  faulty_.reserve(n);
  for (std::size_t u = 0; u < 2 * n; ++u) {
    SideSlot& slot = sides[u];
    const auto remap_program = [&](const NlrProgram& program, const std::vector<std::uint32_t>& loop_map,
                                   const std::vector<TokenId>* token_map) {
      NlrProgram out;
      out.reserve(program.size());
      for (const auto& item : program) {
        if (item.is_loop())
          out.push_back(NlrItem::loop(loop_map[item.id], item.count));
        else
          out.push_back(NlrItem::token(token_map ? (*token_map)[item.id] : item.id));
      }
      return out;
    };

    NlrProgram committed;
    if (slot.artifact) {
      const auto& art = *slot.artifact;
      const auto& tmap = token_maps[u];
      std::vector<std::uint32_t> loop_map(art.loop_bodies.size());
      for (std::size_t l = 0; l < art.loop_bodies.size(); ++l)
        loop_map[l] = loops_.intern(remap_program(art.loop_bodies[l], loop_map, &tmap));
      committed = remap_program(art.program, loop_map, &tmap);
    } else {
      const auto& table = private_tables[u];
      std::vector<std::uint32_t> loop_map(table.size());
      for (std::size_t l = 0; l < table.size(); ++l)
        loop_map[l] = loops_.intern(
            remap_program(table.body(static_cast<std::uint32_t>(l)), loop_map, nullptr));
      committed = remap_program(private_programs[u], loop_map, nullptr);
    }
    (u < n ? normal_ : faulty_).push_back(std::move(committed));
  }
}

void Session::build_serial(const trace::TraceStore& normal, const trace::TraceStore& faulty) {
  // Decode tolerantly: salvaged or tail-corrupt blobs contribute their clean
  // prefix and flag the trace as degraded instead of aborting the session.
  health_.reserve(traces_.size());
  std::vector<trace::TraceStore::DecodedTrace> normal_events;
  std::vector<trace::TraceStore::DecodedTrace> faulty_events;
  normal_events.reserve(traces_.size());
  faulty_events.reserve(traces_.size());
  {
    obs::Span span_decode("decode");
    for (const auto& key : traces_) {
      normal_events.push_back(normal.decode_tolerant(key));
      faulty_events.push_back(faulty.decode_tolerant(key));
      TraceHealth h{key, false, ""};
      const auto& n = normal_events.back();
      const auto& f = faulty_events.back();
      if (!n.complete || !f.complete) {
        h.degraded = true;
        if (!n.complete) h.note = "normal run: " + n.note;
        if (!f.complete) h.note += (h.note.empty() ? "" : "; ") + ("faulty run: " + f.note);
      }
      health_.push_back(std::move(h));
    }
  }

  // Normal run first, then faulty: formation-order interning makes loop ids
  // deterministic, and the normal run primes the table (§III-A heuristic).
  obs::Span span_nlr("nlr");
  normal_.reserve(traces_.size());
  faulty_.reserve(traces_.size());
  for (std::size_t i = 0; i < traces_.size(); ++i) {
    const auto ids = tokens_.intern_all(filter_.apply(normal_events[i].events, normal.registry()));
    normal_.push_back(build_nlr(ids, loops_, nlr_config_));
  }
  for (std::size_t i = 0; i < traces_.size(); ++i) {
    const auto ids = tokens_.intern_all(filter_.apply(faulty_events[i].events, faulty.registry()));
    faulty_.push_back(build_nlr(ids, loops_, nlr_config_));
  }
}

bool Session::any_degraded() const noexcept {
  if (!dropped_.empty()) return true;
  return std::any_of(health_.begin(), health_.end(),
                     [](const TraceHealth& h) { return h.degraded; });
}

std::vector<TraceHealth> store_health(const trace::TraceStore& normal,
                                      const trace::TraceStore& faulty) {
  std::vector<TraceHealth> out;
  for (const auto& key : normal.keys()) {
    if (!faulty.contains(key)) {
      out.push_back({key, true, "missing in faulty run"});
      continue;
    }
    std::string note;
    if (normal.blob(key).salvaged) note = "normal run: salvaged blob";
    if (faulty.blob(key).salvaged)
      note += (note.empty() ? "" : "; ") + std::string("faulty run: salvaged blob");
    if (!note.empty()) out.push_back({key, true, std::move(note)});
  }
  for (const auto& key : faulty.keys())
    if (!normal.contains(key)) out.push_back({key, true, "missing in normal run"});
  return out;
}

std::size_t Session::index_of(trace::TraceKey key) const {
  const auto it = std::find(traces_.begin(), traces_.end(), key);
  if (it == traces_.end()) throw std::out_of_range("Session: trace " + key.label() + " not in session");
  return static_cast<std::size_t>(it - traces_.begin());
}

DiffNlr Session::diffnlr(trace::TraceKey key) const {
  const auto i = index_of(key);
  return diff_nlr(normal_[i], faulty_[i], tokens_, loops_);
}

double Session::progress_ratio(std::size_t i) const {
  const auto normal_len = expand_nlr(normal_.at(i), loops_).size();
  const auto faulty_len = expand_nlr(faulty_.at(i), loops_).size();
  if (normal_len == 0) return 1.0;
  return static_cast<double>(faulty_len) / static_cast<double>(normal_len);
}

std::vector<double> Session::progress_ratios() const {
  std::vector<double> out(traces_.size());
  for (std::size_t i = 0; i < traces_.size(); ++i) out[i] = progress_ratio(i);
  return out;
}

std::size_t Session::least_progressed() const {
  if (traces_.empty()) throw std::logic_error("Session::least_progressed: empty session");
  const auto ratios = progress_ratios();
  std::size_t best = 0;
  for (std::size_t i = 1; i < ratios.size(); ++i)
    if (ratios[i] < ratios[best]) best = i;
  return best;
}

std::string Session::label() const {
  return filter_.name() + ".0K" + std::to_string(nlr_config_.k);
}

// --- Evaluation -------------------------------------------------------------

Evaluation evaluate(const Session& session, const AttrConfig& attr, Linkage linkage_method) {
  obs::Span span_evaluate("evaluate");
  Evaluation out;
  out.attr = attr;

  const std::size_t n = session.traces().size();
  std::vector<std::set<std::string>> attrs_normal(n);
  std::vector<std::set<std::string>> attrs_faulty(n);
  {
    obs::Span span_attrs("attributes");
    for (std::size_t i = 0; i < n; ++i) {
      attrs_normal[i] =
          mine_attributes(session.normal_nlr(i), session.tokens(), session.loops(), attr);
      attrs_faulty[i] =
          mine_attributes(session.faulty_nlr(i), session.tokens(), session.loops(), attr);
    }
  }
  {
    obs::Span span_jsm("jsm");
    out.jsm_normal = jsm_from_attributes(attrs_normal);
    out.jsm_faulty = jsm_from_attributes(attrs_faulty);
    out.jsm_d = jsm_diff(out.jsm_normal, out.jsm_faulty);
    out.scores = suspicion_scores(out.jsm_d);
  }

  if (n >= 2) {
    obs::Span span_cluster("cluster");
    out.dend_normal = linkage(similarity_to_distance(out.jsm_normal), linkage_method);
    out.dend_faulty = linkage(similarity_to_distance(out.jsm_faulty), linkage_method);
    out.bscore = bscore(out.dend_normal, out.dend_faulty, n);
  }
  return out;
}

Evaluation evaluate_weighted(const Session& session, AttrKind kind, Linkage linkage_method) {
  obs::Span span_evaluate("evaluate");
  Evaluation out;
  out.attr = AttrConfig{kind, FreqMode::Actual};

  const std::size_t n = session.traces().size();
  std::vector<std::map<std::string, std::uint64_t>> freqs_normal(n);
  std::vector<std::map<std::string, std::uint64_t>> freqs_faulty(n);
  for (std::size_t i = 0; i < n; ++i) {
    freqs_normal[i] = mine_frequencies(session.normal_nlr(i), session.tokens(), session.loops(), kind);
    freqs_faulty[i] = mine_frequencies(session.faulty_nlr(i), session.tokens(), session.loops(), kind);
  }
  out.jsm_normal = jsm_from_frequencies(freqs_normal);
  out.jsm_faulty = jsm_from_frequencies(freqs_faulty);
  out.jsm_d = jsm_diff(out.jsm_normal, out.jsm_faulty);
  out.scores = suspicion_scores(out.jsm_d);

  if (n >= 2) {
    out.dend_normal = linkage(similarity_to_distance(out.jsm_normal), linkage_method);
    out.dend_faulty = linkage(similarity_to_distance(out.jsm_faulty), linkage_method);
    out.bscore = bscore(out.dend_normal, out.dend_faulty, n);
  }
  return out;
}

SingleRunEvaluation evaluate_single_run(const trace::TraceStore& store, const FilterSpec& filter,
                                        const AttrConfig& attr, const NlrConfig& nlr,
                                        Linkage linkage_method) {
  obs::Span span_evaluate("evaluate");
  SingleRunEvaluation out;
  out.traces = store.keys();

  TokenTable tokens;
  LoopTable loops;
  std::vector<std::set<std::string>> attrs;
  attrs.reserve(out.traces.size());
  for (const auto& key : out.traces) {
    const auto program = build_nlr(tokens.intern_all(filter.apply(store, key)), loops, nlr);
    attrs.push_back(mine_attributes(program, tokens, loops, attr));
  }
  out.jsm = jsm_from_attributes(attrs);

  const std::size_t n = out.traces.size();
  out.outlier_scores.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double total = 0.0;
    for (std::size_t j = 0; j < n; ++j)
      if (j != i) total += out.jsm(i, j);
    out.outlier_scores[i] = n > 1 ? 1.0 - total / static_cast<double>(n - 1) : 0.0;
  }
  if (n >= 2) out.dendrogram = linkage(similarity_to_distance(out.jsm), linkage_method);
  return out;
}

// --- suspicious selection -------------------------------------------------------

std::vector<std::size_t> select_suspicious(const std::vector<double>& scores, std::size_t top_n,
                                           double sigmas) {
  constexpr double kEps = 1e-9;
  const auto summary = util::summarize(scores);
  const double threshold = summary.mean + sigmas * summary.stddev;

  std::vector<std::size_t> order(scores.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });

  std::vector<std::size_t> picked;
  for (const auto i : order) {
    if (picked.size() >= top_n) break;
    if (scores[i] <= kEps) break;
    if (scores[i] < threshold && !picked.empty()) break;
    picked.push_back(i);
  }
  return picked;
}

// --- RankingTable -------------------------------------------------------------

std::string RankingTable::render() const {
  util::TextTable table({"Filter", "Attributes", "B-score", "Top Processes", "Top Threads"});
  for (const auto& row : rows) {
    std::vector<std::string> procs;
    for (const auto p : row.top_processes) procs.push_back(std::to_string(p));
    table.add_row({row.filter_label, row.attr_label, util::format_double(row.bscore),
                   util::join(procs, ", "), util::join(row.top_threads, ", ")});
  }
  return table.render();
}

std::string RankingTable::consensus_thread() const {
  // First-place finishes weigh 3, second 2, anything else in the list 1.
  std::map<std::string, int> votes;
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.top_threads.size(); ++i)
      votes[row.top_threads[i]] += i == 0 ? 3 : (i == 1 ? 2 : 1);
  }
  std::string best;
  int best_votes = 0;
  for (const auto& [label, v] : votes) {
    if (v > best_votes) {
      best = label;
      best_votes = v;
    }
  }
  return best;
}

int RankingTable::consensus_process() const {
  std::map<int, int> votes;
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.top_processes.size(); ++i)
      votes[row.top_processes[i]] += i == 0 ? 3 : (i == 1 ? 2 : 1);
  }
  int best = -1;
  int best_votes = 0;
  for (const auto& [proc, v] : votes) {
    if (v > best_votes) {
      best = proc;
      best_votes = v;
    }
  }
  return best;
}

// --- sweep ---------------------------------------------------------------------

namespace {

/// One ranking row from an Evaluation. `traces` is the session trace list
/// (keys present in both stores, sorted) — computable without any decode,
/// which is what lets fully cached rows skip Session construction entirely.
RankingRow make_row(const Evaluation& eval, const SweepConfig& config,
                    const std::vector<trace::TraceKey>& traces, std::size_t filter_index,
                    std::size_t attr_index) {
  RankingRow row;
  row.filter_label =
      config.filters[filter_index].name() + ".0K" + std::to_string(config.pipeline.nlr.k);
  row.attr_label = config.attributes[attr_index].name();
  row.bscore = eval.bscore;
  row.filter_index = filter_index;
  row.attr_index = attr_index;

  const auto top = select_suspicious(eval.scores, config.pipeline.top_n,
                                     config.pipeline.threshold_sigmas);
  for (const auto i : top) row.top_threads.push_back(traces[i].label());

  // Process-level aggregation: mean suspicion across the process's
  // threads, then the same selection rule.
  std::map<int, std::pair<double, int>> per_proc;  // proc -> (sum, count)
  for (std::size_t i = 0; i < traces.size(); ++i) {
    auto& [sum, count] = per_proc[traces[i].proc];
    sum += eval.scores[i];
    ++count;
  }
  std::vector<int> procs;
  std::vector<double> proc_scores;
  for (const auto& [proc, agg] : per_proc) {
    procs.push_back(proc);
    proc_scores.push_back(agg.first / agg.second);
  }
  const auto top_procs = select_suspicious(proc_scores, config.pipeline.top_n,
                                           config.pipeline.threshold_sigmas);
  for (const auto i : top_procs) row.top_processes.push_back(procs[i]);
  return row;
}

}  // namespace

RankingTable sweep(const trace::TraceStore& normal, const trace::TraceStore& faulty,
                   const SweepConfig& config) {
  obs::Span span_sweep("sweep");
  sched::Pool pool(sched::resolve_jobs(config.analysis_threads));
  sched::Cache* cache = config.cache;

  const std::size_t n_filters = config.filters.size();
  const std::size_t n_attrs = config.attributes.size();

  // The session trace list (keys in both stores, sorted) — needed for row
  // labels even when every Evaluation comes from the cache.
  std::vector<trace::TraceKey> common;
  for (const auto& key : normal.keys())
    if (faulty.contains(key)) common.push_back(key);

  // Evaluation pre-pass: rows whose cached artifact rehydrates need no
  // recompute; filters where EVERY row hits skip Session construction (and
  // with it every decode and NLR build) — the warm-rerun fast path.
  std::vector<std::vector<std::optional<Evaluation>>> results(
      n_filters, std::vector<std::optional<Evaluation>>(n_attrs));
  std::vector<std::string> eval_keys(n_filters * n_attrs);
  if (cache != nullptr) {
    const auto normal_fp = store_fingerprint(normal);
    const auto faulty_fp = store_fingerprint(faulty);
    for (std::size_t f = 0; f < n_filters; ++f) {
      for (std::size_t a = 0; a < n_attrs; ++a) {
        auto& key = eval_keys[f * n_attrs + a];
        key = eval_artifact_key(normal_fp, faulty_fp, config.filters[f], config.pipeline.nlr,
                                config.attributes[a], config.pipeline.linkage);
        if (auto payload = cache->lookup(key, kArtifactEval)) {
          if (auto eval = decode_evaluation(*payload)) results[f][a] = std::move(*eval);
        }
      }
    }
  }

  // Task graph: one Session task per filter that still needs one, one
  // Evaluation task per missing row depending on its filter's Session.
  // Submission order (filter 0's session, its evaluations, filter 1, ...)
  // is exactly the serial execution order, which Graph::run reproduces at
  // jobs == 1; at higher job counts only scheduling changes — results land
  // in (f, a) slots and are committed below in submission order.
  std::vector<std::unique_ptr<Session>> sessions(n_filters);
  sched::Graph graph;
  for (std::size_t f = 0; f < n_filters; ++f) {
    bool all_cached = n_attrs > 0;
    for (std::size_t a = 0; a < n_attrs && all_cached; ++a)
      if (!results[f][a]) all_cached = false;
    if (all_cached) continue;

    const auto session_task = graph.add({}, [&, f] {
      SessionOptions session_options;
      session_options.pool = &pool;
      session_options.cache = cache;
      sessions[f] = std::make_unique<Session>(normal, faulty, config.filters[f],
                                              config.pipeline.nlr, session_options);
    });
    for (std::size_t a = 0; a < n_attrs; ++a) {
      if (results[f][a]) continue;
      graph.add({session_task}, [&, f, a] {
        auto eval = evaluate(*sessions[f], config.attributes[a], config.pipeline.linkage);
        if (cache != nullptr)
          cache->store(eval_keys[f * n_attrs + a], kArtifactEval, encode_evaluation(eval));
        results[f][a] = std::move(eval);
      });
    }
  }
  graph.run(pool, "sweep");

  RankingTable table;
  table.rows.reserve(n_filters * n_attrs);
  for (std::size_t f = 0; f < n_filters; ++f)
    for (std::size_t a = 0; a < n_attrs; ++a)
      table.rows.push_back(make_row(*results[f][a], config, common, f, a));
  std::sort(table.rows.begin(), table.rows.end(), [](const RankingRow& a, const RankingRow& b) {
    if (a.bscore != b.bscore) return a.bscore < b.bscore;
    if (a.filter_index != b.filter_index) return a.filter_index < b.filter_index;
    return a.attr_index < b.attr_index;
  });
  return table;
}

// --- DiffTrace facade --------------------------------------------------------------

DiffTrace::DiffTrace(trace::TraceStore normal, trace::TraceStore faulty)
    : normal_(std::move(normal)), faulty_(std::move(faulty)) {}

Session DiffTrace::make_session(const FilterSpec& filter, const NlrConfig& nlr) const {
  return Session(normal_, faulty_, filter, nlr);
}

RankingTable DiffTrace::rank(const SweepConfig& config) const {
  return sweep(normal_, faulty_, config);
}

analyze::CheckReport DiffTrace::check_normal(const analyze::CheckOptions& options) const {
  return analyze::run_checks(normal_, options);
}

analyze::CheckReport DiffTrace::check_faulty(const analyze::CheckOptions& options) const {
  return analyze::run_checks(faulty_, options);
}

}  // namespace difftrace::core
