// Attribute mining from NLR programs — Table V of the paper.
//
// attr:   "Single" = each NLR entry (function name or loop id L<n>),
//         "Double" = each consecutive pair of entries "A>B" (calling-context
//         flavoured, as in Weber et al.'s structural clustering).
// freq:   "Actual" = the observed frequency, "Log10" = floor(log10(freq)),
//         "NoFreq" = presence only.
// The mined attribute strings are "<attr>" (NoFreq) or "<attr>:<freq>", so
// a frequency change makes a *different* attribute — the knob that controls
// how sensitive the Jaccard similarity is to behavioural drift.
//
// A loop entry L^c contributes c to its attribute's frequency (the loop ran
// c times); a plain entry contributes 1 per occurrence.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/nlr.hpp"

namespace difftrace::core {

enum class AttrKind : std::uint8_t { Single, Double };
enum class FreqMode : std::uint8_t { Actual, Log10, NoFreq };

struct AttrConfig {
  AttrKind kind = AttrKind::Single;
  FreqMode freq = FreqMode::NoFreq;
  /// Deep single mining: besides the top-level NLR entries, every token is
  /// credited its *observed* frequency in the expanded trace (a token inside
  /// a loop body counts once per iteration). This keeps single attributes
  /// invariant to how the reducer happened to segment a phase-shifted loop,
  /// which otherwise fabricates attribute churn between asynchronous runs.
  /// Off = literal Table V ("each entry of the trace NLR" only), used by the
  /// walkthrough to print Table IV exactly.
  bool deep = true;

  /// "sing.noFreq" / "doub.log10" — the paper's ranking-table notation.
  [[nodiscard]] std::string name() const;
};

/// All (kind, freq) combinations, the sweep axis of Tables VI-IX.
[[nodiscard]] std::vector<AttrConfig> all_attr_configs();

/// Raw frequency map before the freq-mode transform: attr label -> count.
/// Loop entries are labelled by their count-insensitive *shape* id
/// ("L<shape>"), so asynchronous runs whose loops merely iterate different
/// numbers of times mine the same attribute vocabulary (see LoopTable).
[[nodiscard]] std::map<std::string, std::uint64_t> mine_frequencies(const NlrProgram& program,
                                                                    const TokenTable& tokens,
                                                                    const LoopTable& loops,
                                                                    AttrKind kind, bool deep = true);

/// Final attribute set per Table V ({attr} or {attr:freq}).
[[nodiscard]] std::set<std::string> mine_attributes(const NlrProgram& program, const TokenTable& tokens,
                                                    const LoopTable& loops, const AttrConfig& config);

}  // namespace difftrace::core
