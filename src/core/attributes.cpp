#include "core/attributes.hpp"

#include <cmath>

namespace difftrace::core {

std::string AttrConfig::name() const {
  std::string out = kind == AttrKind::Single ? "sing" : "doub";
  out += '.';
  switch (freq) {
    case FreqMode::Actual: out += "actual"; break;
    case FreqMode::Log10: out += "log10"; break;
    case FreqMode::NoFreq: out += "noFreq"; break;
  }
  return out;
}

std::vector<AttrConfig> all_attr_configs() {
  std::vector<AttrConfig> out;
  for (const auto kind : {AttrKind::Single, AttrKind::Double})
    for (const auto freq : {FreqMode::Actual, FreqMode::Log10, FreqMode::NoFreq})
      out.push_back(AttrConfig{kind, freq});
  return out;
}

namespace {

/// Deep single mining: tokens accumulate their observed (expanded)
/// frequency; each loop entry accumulates its iteration count under its
/// shape label, at every nesting level.
void mine_deep(const NlrItem& item, std::uint64_t multiplier, const TokenTable& tokens,
               const LoopTable& loops, std::map<std::string, std::uint64_t>& freqs) {
  if (!item.is_loop()) {
    freqs[tokens.name(item.id)] += multiplier;
    return;
  }
  freqs["L" + std::to_string(loops.shape_id(item.id))] += item.count * multiplier;
  for (const auto& inner : loops.body(item.id))
    mine_deep(inner, multiplier * item.count, tokens, loops, freqs);
}

}  // namespace

std::map<std::string, std::uint64_t> mine_frequencies(const NlrProgram& program,
                                                      const TokenTable& tokens,
                                                      const LoopTable& loops, AttrKind kind,
                                                      bool deep) {
  std::map<std::string, std::uint64_t> freqs;
  const auto weight = [](const NlrItem& item) { return item.is_loop() ? item.count : 1; };
  const auto label_of = [&](const NlrItem& item) {
    if (item.is_loop()) return "L" + std::to_string(loops.shape_id(item.id));
    return tokens.name(item.id);
  };
  if (kind == AttrKind::Single) {
    if (deep) {
      for (const auto& item : program) mine_deep(item, 1, tokens, loops, freqs);
    } else {
      for (const auto& item : program) freqs[label_of(item)] += weight(item);
    }
  } else {
    for (std::size_t i = 0; i + 1 < program.size(); ++i)
      freqs[label_of(program[i]) + ">" + label_of(program[i + 1])] += 1;
  }
  return freqs;
}

std::set<std::string> mine_attributes(const NlrProgram& program, const TokenTable& tokens,
                                      const LoopTable& loops, const AttrConfig& config) {
  std::set<std::string> attrs;
  for (const auto& [label, freq] :
       mine_frequencies(program, tokens, loops, config.kind, config.deep)) {
    switch (config.freq) {
      case FreqMode::NoFreq:
        attrs.insert(label);
        break;
      case FreqMode::Actual:
        attrs.insert(label + ":" + std::to_string(freq));
        break;
      case FreqMode::Log10: {
        const auto bucket = static_cast<std::uint64_t>(std::floor(std::log10(static_cast<double>(freq))));
        attrs.insert(label + ":e" + std::to_string(bucket));
        break;
      }
    }
  }
  return attrs;
}

}  // namespace difftrace::core
