#include "core/filter.hpp"

#include <array>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/str.hpp"

namespace difftrace::core {

using util::contains_insensitive;
using util::ends_with;
using util::starts_with;

std::string_view category_short_name(Category c) noexcept {
  switch (c) {
    case Category::MpiAll: return "mpiall";
    case Category::MpiCollectives: return "mpicol";
    case Category::MpiSendRecv: return "mpisr";
    case Category::MpiInternal: return "mpiint";
    case Category::OmpAll: return "omp";
    case Category::OmpCritical: return "ompcrit";
    case Category::OmpMutex: return "ompmutex";
    case Category::Memory: return "mem";
    case Category::Network: return "net";
    case Category::Poll: return "poll";
    case Category::String: return "string";
  }
  return "unknown";
}

bool category_matches(Category c, std::string_view name) {
  switch (c) {
    case Category::MpiAll:
      return starts_with(name, "MPI_");
    case Category::MpiCollectives: {
      static constexpr std::array kCollectives = {
          std::string_view{"MPI_Barrier"},   std::string_view{"MPI_Bcast"},
          std::string_view{"MPI_Reduce"},    std::string_view{"MPI_Allreduce"},
          std::string_view{"MPI_Gather"},    std::string_view{"MPI_Allgather"},
          std::string_view{"MPI_Scatter"},   std::string_view{"MPI_Alltoall"},
          std::string_view{"MPI_Reduce_scatter"},
      };
      for (const auto coll : kCollectives)
        if (name == coll) return true;
      return false;
    }
    case Category::MpiSendRecv:
      return name == "MPI_Send" || name == "MPI_Isend" || name == "MPI_Recv" ||
             name == "MPI_Irecv" || name == "MPI_Wait" || name == "MPI_Waitall";
    case Category::MpiInternal:
      return starts_with(name, "MPID") || starts_with(name, "MPIR_") || starts_with(name, "MPIDI_");
    case Category::OmpAll:
      return starts_with(name, "GOMP_");
    case Category::OmpCritical:
      return name == "GOMP_critical_start" || name == "GOMP_critical_end";
    case Category::OmpMutex:
      return contains_insensitive(name, "mutex");
    case Category::Memory:
      return contains_insensitive(name, "memcpy") || contains_insensitive(name, "memchk") ||
             contains_insensitive(name, "memset") || contains_insensitive(name, "alloc") ||
             contains_insensitive(name, "free");
    case Category::Network:
      return contains_insensitive(name, "network") || contains_insensitive(name, "tcp") ||
             contains_insensitive(name, "sock") || contains_insensitive(name, "send_pkt") ||
             contains_insensitive(name, "recv_pkt");
    case Category::Poll:
      return contains_insensitive(name, "poll") || contains_insensitive(name, "yield") ||
             contains_insensitive(name, "sched");
    case Category::String:
      return starts_with(name, "str") || starts_with(name, "ret:str");
  }
  return false;
}

FilterSpec& FilterSpec::keep_custom(std::string regex) {
  custom_regexes_.emplace_back(regex, std::regex::ECMAScript);
  custom_patterns_.push_back(std::move(regex));
  return *this;
}

bool FilterSpec::keeps_name(std::string_view name) const {
  if (categories_.empty() && custom_regexes_.empty()) return true;  // Everything
  for (const auto c : categories_)
    if (category_matches(c, name)) return true;
  for (const auto& re : custom_regexes_)
    if (std::regex_search(name.begin(), name.end(), re)) return true;
  return false;
}

std::string FilterSpec::name() const {
  std::string out;
  out += drop_returns_ ? '1' : '0';
  out += drop_plt_ ? '1' : '0';
  if (drop_plt_) out += ".plt";
  for (const auto c : categories_) {
    out += '.';
    out += category_short_name(c);
  }
  if (!custom_patterns_.empty()) out += ".cust";
  if (categories_.empty() && custom_patterns_.empty()) out += ".all";
  return out;
}

std::string FilterSpec::fingerprint() const {
  std::string out = name();
  for (const auto& pattern : custom_patterns_) {
    out += '\x1f';  // unit separator: pattern text may contain any printable
    out += pattern;
  }
  return out;
}

std::vector<std::string> FilterSpec::apply(const std::vector<trace::TraceEvent>& events,
                                           const trace::FunctionRegistry& registry) const {
  // One registry snapshot instead of a mutex-guarded lookup per event —
  // this is the hot path of every analysis, and parallel sweeps would
  // otherwise serialize on the registry lock.
  const auto functions = registry.snapshot();
  std::vector<std::string> tokens;
  tokens.reserve(events.size());
  for (const auto& event : events) {
    if (event.fid >= functions.size())
      throw std::out_of_range("FilterSpec::apply: event references unknown function id " +
                              std::to_string(event.fid));
    const auto& fn = functions[event.fid];
    if (drop_plt_ && ends_with(fn.name, "@plt")) continue;
    if (event.kind == trace::EventKind::Return) {
      if (drop_returns_) continue;
      if (!keeps_name(fn.name)) continue;
      tokens.push_back(std::string(kReturnPrefix) + fn.name);
    } else {
      if (!keeps_name(fn.name)) continue;
      tokens.push_back(fn.name);
    }
  }
  // Charged per apply() call, not per event, to keep the sweep hot path flat.
  static auto& events_in = obs::counter("filter.events_in");
  static auto& tokens_kept = obs::counter("filter.tokens_kept");
  events_in.add(events.size());
  tokens_kept.add(tokens.size());
  return tokens;
}

std::vector<std::string> FilterSpec::apply(const trace::TraceStore& store, trace::TraceKey key) const {
  // Tolerant decode: a salvaged or tail-corrupt blob contributes its clean
  // prefix (the ParLOT killed-job property) instead of aborting the
  // analysis. Callers that must distinguish degraded traces use
  // decode_tolerant directly (see core::Session).
  return apply(store.decode_tolerant(key).events, store.registry());
}

FilterSpec FilterSpec::mpi_all() { return FilterSpec{}.keep(Category::MpiAll); }
FilterSpec FilterSpec::mpi_collectives() { return FilterSpec{}.keep(Category::MpiCollectives); }
FilterSpec FilterSpec::mpi_send_recv() { return FilterSpec{}.keep(Category::MpiSendRecv); }
FilterSpec FilterSpec::omp_all() { return FilterSpec{}.keep(Category::OmpAll); }
FilterSpec FilterSpec::omp_critical() { return FilterSpec{}.keep(Category::OmpCritical); }
FilterSpec FilterSpec::memory() { return FilterSpec{}.keep(Category::Memory); }
FilterSpec FilterSpec::everything() { return FilterSpec{}; }

}  // namespace difftrace::core
