#include "core/diffnlr.hpp"

#include <map>
#include <set>
#include <sstream>

namespace difftrace::core {

bool DiffNlr::identical() const noexcept {
  for (const auto& block : blocks)
    if (block.op != EditOp::Equal) return false;
  return true;
}

std::size_t DiffNlr::distance() const noexcept {
  std::size_t d = 0;
  for (const auto& block : blocks)
    if (block.op != EditOp::Equal) d += block.normal_items.size() + block.faulty_items.size();
  return d;
}

std::string DiffNlr::render(bool color) const {
  const char* kGreen = color ? "\x1b[32m" : "";
  const char* kBlue = color ? "\x1b[34m" : "";
  const char* kRed = color ? "\x1b[31m" : "";
  const char* kReset = color ? "\x1b[0m" : "";
  std::ostringstream os;
  for (const auto& block : blocks) {
    switch (block.op) {
      case EditOp::Equal:
        for (const auto& item : block.normal_items) os << kGreen << "  = " << item << kReset << '\n';
        break;
      case EditOp::Delete:
        for (const auto& item : block.normal_items)
          os << kBlue << "  - " << item << "   (normal only)" << kReset << '\n';
        break;
      case EditOp::Insert:
        for (const auto& item : block.faulty_items)
          os << kRed << "  + " << item << "   (faulty only)" << kReset << '\n';
        break;
    }
  }
  if (!legend.empty()) {
    os << "  where:\n";
    for (const auto& line : legend) os << "    " << line << '\n';
  }
  return os.str();
}

namespace {

/// Collects `id` and every loop id its body references, depth-first.
void collect_loop_ids(std::uint32_t id, const LoopTable& loops, std::set<std::uint32_t>& out) {
  if (!out.insert(id).second) return;
  for (const auto& item : loops.body(id))
    if (item.is_loop()) collect_loop_ids(item.id, loops, out);
}

}  // namespace

std::string DiffNlr::render_side_by_side() const {
  // Column width: widest item on either side.
  std::size_t width = 12;
  for (const auto& block : blocks) {
    for (const auto& item : block.normal_items) width = std::max(width, item.size());
    for (const auto& item : block.faulty_items) width = std::max(width, item.size());
  }

  std::ostringstream os;
  const auto center = [&](const std::string& text, std::size_t total) {
    const std::size_t pad = total > text.size() ? total - text.size() : 0;
    return std::string(pad / 2, ' ') + text + std::string(pad - pad / 2, ' ');
  };
  const std::size_t full = 2 * width + 3;  // two columns + middle separator

  os << '|' << center("normal", width) << " | " << center("faulty", width) << "|\n";
  os << '|' << std::string(full, '-') << "|\n";
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const auto& block = blocks[b];
    if (block.op == EditOp::Equal) {
      // Main stem: common items span both columns.
      for (const auto& item : block.normal_items) os << '|' << center(item, full) << "|\n";
      continue;
    }
    // Pair a Delete block with an immediately following Insert block (or
    // vice versa) so the two sides line up, like the figures.
    std::vector<std::string> left;
    std::vector<std::string> right;
    if (block.op == EditOp::Delete) {
      left = block.normal_items;
      if (b + 1 < blocks.size() && blocks[b + 1].op == EditOp::Insert) {
        right = blocks[b + 1].faulty_items;
        ++b;
      }
    } else {
      right = block.faulty_items;
      if (b + 1 < blocks.size() && blocks[b + 1].op == EditOp::Delete) {
        left = blocks[b + 1].normal_items;
        ++b;
      }
    }
    const std::size_t rows = std::max(left.size(), right.size());
    for (std::size_t r = 0; r < rows; ++r) {
      os << '|' << center(r < left.size() ? left[r] : "", width) << " | "
         << center(r < right.size() ? right[r] : "", width) << "|\n";
    }
  }
  if (!legend.empty()) {
    os << "where:\n";
    for (const auto& line : legend) os << "  " << line << '\n';
  }
  return os.str();
}

DiffNlr diff_nlr(const NlrProgram& normal, const NlrProgram& faulty, const TokenTable& tokens,
                 const LoopTable& loops) {
  DiffNlr result = diff_nlr(normal, faulty, tokens);
  std::set<std::uint32_t> ids;
  for (const auto& program : {&normal, &faulty})
    for (const auto& item : *program)
      if (item.is_loop()) collect_loop_ids(item.id, loops, ids);
  for (const auto id : ids) {
    std::string line = "L" + std::to_string(id) + " = [";
    const auto& body = loops.body(id);
    for (std::size_t i = 0; i < body.size(); ++i) {
      if (i != 0) line += ' ';
      line += item_label(body[i], tokens);
    }
    line += ']';
    result.legend.push_back(std::move(line));
  }
  return result;
}

DiffNlr diff_nlr(const NlrProgram& normal, const NlrProgram& faulty, const TokenTable& tokens) {
  // Map each distinct NLR item (exact, count included) to a diff token id.
  std::map<NlrItem, std::uint32_t> ids;
  const auto to_ids = [&](const NlrProgram& program) {
    std::vector<std::uint32_t> out;
    out.reserve(program.size());
    for (const auto& item : program) {
      const auto [it, _] = ids.emplace(item, static_cast<std::uint32_t>(ids.size()));
      out.push_back(it->second);
    }
    return out;
  };
  const auto a = to_ids(normal);
  const auto b = to_ids(faulty);
  const auto script = myers_diff(a, b);

  DiffNlr result;
  for (const auto& chunk : script) {
    DiffNlrBlock block;
    block.op = chunk.op;
    for (std::size_t i = 0; i < chunk.length; ++i) {
      switch (chunk.op) {
        case EditOp::Equal: {
          const auto label = item_label(normal[chunk.a_begin + i], tokens);
          block.normal_items.push_back(label);
          block.faulty_items.push_back(label);
          break;
        }
        case EditOp::Delete:
          block.normal_items.push_back(item_label(normal[chunk.a_begin + i], tokens));
          break;
        case EditOp::Insert:
          block.faulty_items.push_back(item_label(faulty[chunk.b_begin + i], tokens));
          break;
      }
    }
    result.blocks.push_back(std::move(block));
  }
  return result;
}

}  // namespace difftrace::core
