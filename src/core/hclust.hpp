// Agglomerative hierarchical clustering (§III-C).
//
// A from-scratch replacement for the SciPy `linkage` the paper uses:
// Lance–Williams updates over a pairwise distance matrix, with the same
// seven methods SciPy exposes (single, complete, average, weighted, ward,
// centroid, median) and SciPy's formulas (ward/centroid/median operate on
// Euclidean-style distances; DiffTrace feeds 1 − JSM, as the paper does).
// The output mirrors SciPy's Z matrix: merge i joins clusters a and b
// (original observations are 0..n-1, merge i creates cluster n+i) at the
// given height.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/matrix.hpp"

namespace difftrace::core {

enum class Linkage : std::uint8_t { Single, Complete, Average, Weighted, Ward, Centroid, Median };

[[nodiscard]] std::string_view linkage_name(Linkage l) noexcept;
[[nodiscard]] std::vector<Linkage> all_linkages();

struct Merge {
  std::size_t a = 0;  // cluster ids (observation < n, else n + merge index)
  std::size_t b = 0;
  double height = 0.0;
  std::size_t size = 0;  // observations in the merged cluster
};

using Dendrogram = std::vector<Merge>;  // n-1 merges

/// `dist` must be a symmetric square matrix with zero diagonal.
[[nodiscard]] Dendrogram linkage(const util::Matrix& dist, Linkage method);

/// Cuts a dendrogram into exactly k flat clusters (1 <= k <= n); returns a
/// label in [0, k) per observation, labelled in first-appearance order.
[[nodiscard]] std::vector<int> cut_to_k(const Dendrogram& dendrogram, std::size_t n, std::size_t k);

/// Distance matrix helper: 1 - similarity, forced symmetric, zero diagonal.
[[nodiscard]] util::Matrix similarity_to_distance(const util::Matrix& similarity);

/// Cophenetic distance matrix: entry (i, j) is the height of the merge at
/// which observations i and j first share a cluster (SciPy `cophenet`).
[[nodiscard]] util::Matrix cophenetic(const Dendrogram& dendrogram, std::size_t n);

/// ASCII dendrogram, merges bottom-up with heights and member labels:
///   [5.0 7.0] + [3.0]  @ 0.241
/// `labels` must have n entries (defaults to indices when empty).
[[nodiscard]] std::string render_dendrogram(const Dendrogram& dendrogram, std::size_t n,
                                            const std::vector<std::string>& labels = {});

}  // namespace difftrace::core
