// Front-end trace filters — Table I of the paper.
//
// A FilterSpec is (a) two primary switches (drop returns, drop @plt stubs),
// (b) a union of keep-categories (MPI/OMP/System sub-rows of Table I), and
// (c) optional custom regular expressions. An empty keep-set with no
// regexes means "Everything". The canonical name mirrors the paper's
// ranking-table notation: "11.mpiall.cust" = drop returns, drop plt, keep
// MPI-all plus the custom patterns.
//
// Filtering is the first pipeline stage: it turns a decoded event stream
// into the token sequence NLR consumes. Kept Return events become tokens
// prefixed "ret:" so loop detection still sees them as distinct entries.
#pragma once

#include <cstdint>
#include <regex>
#include <string>
#include <string_view>
#include <vector>

#include "trace/event.hpp"
#include "trace/registry.hpp"
#include "trace/store.hpp"

namespace difftrace::core {

enum class Category : std::uint8_t {
  MpiAll,
  MpiCollectives,
  MpiSendRecv,
  MpiInternal,
  OmpAll,
  OmpCritical,
  OmpMutex,
  Memory,
  Network,
  Poll,
  String,
};

[[nodiscard]] std::string_view category_short_name(Category c) noexcept;

/// True when `name` (a function name) belongs to `c` per Table I.
[[nodiscard]] bool category_matches(Category c, std::string_view name);

class FilterSpec {
 public:
  FilterSpec() = default;

  FilterSpec& drop_returns(bool v) { drop_returns_ = v; return *this; }
  FilterSpec& drop_plt(bool v) { drop_plt_ = v; return *this; }
  FilterSpec& keep(Category c) { categories_.push_back(c); return *this; }
  /// Adds a custom ECMAScript regex; a name matching ANY regex is kept.
  FilterSpec& keep_custom(std::string regex);

  [[nodiscard]] bool drops_returns() const noexcept { return drop_returns_; }
  [[nodiscard]] bool drops_plt() const noexcept { return drop_plt_; }

  /// True when the (call-event) function name survives the keep-set.
  [[nodiscard]] bool keeps_name(std::string_view name) const;

  /// "11.mpiall.cust"-style canonical name (paper ranking-table notation).
  [[nodiscard]] std::string name() const;

  /// Cache-key form: name() plus the custom regex texts, which the short
  /// name elides (two different ".cust" filters must not share a key).
  [[nodiscard]] std::string fingerprint() const;

  /// Applies the filter to one decoded trace: returns the retained token
  /// sequence ("foo" for calls, "ret:foo" for kept returns).
  [[nodiscard]] std::vector<std::string> apply(const std::vector<trace::TraceEvent>& events,
                                               const trace::FunctionRegistry& registry) const;

  /// Convenience: decode + apply for one trace of a store.
  [[nodiscard]] std::vector<std::string> apply(const trace::TraceStore& store, trace::TraceKey key) const;

  // --- the pre-defined rows of Table I ------------------------------------
  [[nodiscard]] static FilterSpec mpi_all();
  [[nodiscard]] static FilterSpec mpi_collectives();
  [[nodiscard]] static FilterSpec mpi_send_recv();
  [[nodiscard]] static FilterSpec omp_all();
  [[nodiscard]] static FilterSpec omp_critical();
  [[nodiscard]] static FilterSpec memory();
  [[nodiscard]] static FilterSpec everything();

 private:
  bool drop_returns_ = true;
  bool drop_plt_ = true;
  std::vector<Category> categories_;
  std::vector<std::string> custom_patterns_;
  std::vector<std::regex> custom_regexes_;
};

/// Prefix marking a kept Return event in the token stream.
inline constexpr std::string_view kReturnPrefix = "ret:";

}  // namespace difftrace::core
