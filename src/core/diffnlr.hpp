// diffNLR (§II-F1): Myers diff over two NLR programs, rendered as a main
// stem of common blocks with normal-only / faulty-only diff blocks — the
// textual analogue of the paper's Figures 5-7.
//
// Tokens are whole NLR items compared exactly (loop id AND count), so
// "L1^16" vs "L1^7" shows up as a diff — which is precisely how swapBug
// (Figure 5) and the truncated dlBug run (Figure 6) become visible.
#pragma once

#include <string>
#include <vector>

#include "core/diff.hpp"
#include "core/nlr.hpp"

namespace difftrace::core {

struct DiffNlrBlock {
  EditOp op = EditOp::Equal;
  std::vector<std::string> normal_items;  // Equal/Delete blocks
  std::vector<std::string> faulty_items;  // Equal blocks mirror normal; Insert blocks fill this
};

struct DiffNlr {
  std::vector<DiffNlrBlock> blocks;
  /// "L0 = [MPI_Send MPI_Recv]"-style definitions of every loop id the
  /// blocks reference (recursively). Filled when a LoopTable is supplied.
  std::vector<std::string> legend;

  [[nodiscard]] bool identical() const noexcept;
  /// Inserted + deleted NLR items.
  [[nodiscard]] std::size_t distance() const noexcept;

  /// Text rendering:  "= item" common stem, "- item" normal-only,
  /// "+ item" faulty-only, followed by the loop legend; optional ANSI
  /// colors (green/blue/red).
  [[nodiscard]] std::string render(bool color = false) const;

  /// The paper's figure layout: common blocks span both columns (the "main
  /// stem"); diff blocks sit side by side, normal left, faulty right.
  ///
  ///   |            MPI_Init             |
  ///   | L1^16            | L1^7         |
  ///   |                  | L0^9         |
  ///   |           MPI_Finalize          |
  [[nodiscard]] std::string render_side_by_side() const;
};

/// Diffs the NLR of trace x between the normal and faulty run — the paper's
/// diffNLR(x) ≡ diff(T_x, T'_x). Both programs must come from the same
/// analysis session (shared TokenTable/LoopTable). The overload taking the
/// session's LoopTable also emits the loop-body legend.
[[nodiscard]] DiffNlr diff_nlr(const NlrProgram& normal, const NlrProgram& faulty,
                               const TokenTable& tokens);
[[nodiscard]] DiffNlr diff_nlr(const NlrProgram& normal, const NlrProgram& faulty,
                               const TokenTable& tokens, const LoopTable& loops);

}  // namespace difftrace::core
