#include "core/jsm.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace difftrace::core {
namespace {

/// Cells above the diagonal actually computed for an n-object matrix.
void charge_jsm_cells(std::size_t n) {
  static auto& cells = obs::counter("jsm.cells");
  if (n > 1) cells.add(n * (n - 1) / 2);
}

}  // namespace
}  // namespace difftrace::core

namespace difftrace::core {

double jaccard(const std::set<std::string>& a, const std::set<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::size_t intersection = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++intersection;
      ++ia;
      ++ib;
    }
  }
  const std::size_t uni = a.size() + b.size() - intersection;
  return static_cast<double>(intersection) / static_cast<double>(uni);
}

double weighted_jaccard(const std::map<std::string, std::uint64_t>& a,
                        const std::map<std::string, std::uint64_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  double min_sum = 0.0;
  double max_sum = 0.0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() || ib != b.end()) {
    if (ib == b.end() || (ia != a.end() && ia->first < ib->first)) {
      max_sum += static_cast<double>(ia->second);
      ++ia;
    } else if (ia == a.end() || ib->first < ia->first) {
      max_sum += static_cast<double>(ib->second);
      ++ib;
    } else {
      min_sum += static_cast<double>(std::min(ia->second, ib->second));
      max_sum += static_cast<double>(std::max(ia->second, ib->second));
      ++ia;
      ++ib;
    }
  }
  return max_sum == 0.0 ? 1.0 : min_sum / max_sum;
}

util::Matrix jsm_from_frequencies(const std::vector<std::map<std::string, std::uint64_t>>& freqs) {
  const std::size_t n = freqs.size();
  charge_jsm_cells(n);
  util::Matrix m = util::Matrix::square(n);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = 1.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double s = weighted_jaccard(freqs[i], freqs[j]);
      m(i, j) = s;
      m(j, i) = s;
    }
  }
  return m;
}

util::Matrix jsm_from_attributes(const std::vector<std::set<std::string>>& attrs) {
  const std::size_t n = attrs.size();
  charge_jsm_cells(n);
  util::Matrix m = util::Matrix::square(n);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = 1.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double s = jaccard(attrs[i], attrs[j]);
      m(i, j) = s;
      m(j, i) = s;
    }
  }
  return m;
}

util::Matrix jsm_from_lattice(const Lattice& lattice, std::size_t object_count) {
  charge_jsm_cells(object_count);
  util::Matrix m = util::Matrix::square(object_count);
  std::vector<util::DynamicBitset> intents;
  intents.reserve(object_count);
  for (std::size_t g = 0; g < object_count; ++g)
    intents.push_back(lattice.concepts[lattice.object_concept(g)].intent);
  for (std::size_t i = 0; i < object_count; ++i) {
    m(i, i) = 1.0;
    for (std::size_t j = i + 1; j < object_count; ++j) {
      const auto inter = (intents[i] & intents[j]).count();
      const auto uni = (intents[i] | intents[j]).count();
      const double s = uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
      m(i, j) = s;
      m(j, i) = s;
    }
  }
  return m;
}

util::Matrix jsm_diff(const util::Matrix& normal, const util::Matrix& faulty) {
  return abs_diff(faulty, normal);
}

std::vector<double> suspicion_scores(const util::Matrix& jsm_d) {
  std::vector<double> scores(jsm_d.rows());
  for (std::size_t i = 0; i < jsm_d.rows(); ++i) scores[i] = jsm_d.row_sum(i);
  return scores;
}

}  // namespace difftrace::core
