// Fowlkes–Mallows comparison of two hierarchical clusterings (§III-C, [17]).
//
// For each cut level k = 2..n-1, both dendrograms are flattened into k
// clusters and B_k = T_k / sqrt(P_k · Q_k) is computed from the k×k
// contingency table (T_k = Σ m_ij² − n, P_k = Σ row² − n, Q_k = Σ col² − n).
// The scalar B-score is the mean of B_k across cut levels: 1.0 for
// identical hierarchies, smaller as they diverge. DiffTrace ranks parameter
// combinations by ascending B-score — the combination under which the
// faulty run's clustering changed the most is the most informative.
#pragma once

#include <vector>

#include "core/hclust.hpp"

namespace difftrace::core {

/// B_k for one cut level, from two flat labelings of the same n objects.
[[nodiscard]] double fowlkes_mallows_bk(const std::vector<int>& labels_a, const std::vector<int>& labels_b);

/// Mean B_k over k = 2..n-1 (n < 4 degenerates to the single k = 2 cut;
/// n < 2 is defined as 1.0).
[[nodiscard]] double bscore(const Dendrogram& a, const Dendrogram& b, std::size_t n);

}  // namespace difftrace::core
