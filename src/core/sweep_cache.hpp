// Cache keys and typed artifact codecs for the sweep (`--cache`).
//
// sched::Cache stores opaque payloads under content digests; this header is
// where those payloads and digests get their meaning for the DiffTrace
// pipeline. Two artifact kinds exist:
//
//   kArtifactNlr  — one trace's filtered+reduced NLR program, in LOCAL id
//                   space: the token vocabulary (first-occurrence order) and
//                   loop bodies are stored alongside the program, so the
//                   artifact is self-contained and independent of which
//                   other traces share the Session. Session rehydration
//                   re-interns tokens/bodies into the shared tables in
//                   canonical trace order, which reproduces the exact ids a
//                   from-scratch serial build would assign.
//   kArtifactEval — one (filter × attribute) Evaluation: the three JSM
//                   matrices, suspicion scores, both dendrograms, B-score.
//                   Doubles are stored as raw bit patterns, so a warm run is
//                   bit-identical to a cold one.
//
// Key derivation (invalidation is purely by key):
//   NLR key  = digest(schema, "nlr", blob fingerprint [codec, payload CRC,
//              event count, truncated/salvaged flags], registry fingerprint,
//              filter fingerprint, NLR config)
//   Eval key = digest(schema, "eval", both stores' fingerprints [every key +
//              blob fingerprint + registry], filter fingerprint, NLR config,
//              attribute config, linkage)
// Post-processing knobs (top_n, threshold_sigmas) are NOT part of the eval
// key: they shape row rendering, not the Evaluation. Op records are also
// excluded — the sweep never reads them. The artifact schema version is
// mixed into every digest AND checked in the frame, so a codec change
// orphans old entries instead of misreading them.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/attributes.hpp"
#include "core/filter.hpp"
#include "core/hclust.hpp"
#include "core/nlr.hpp"
#include "core/pipeline.hpp"
#include "trace/store.hpp"

namespace difftrace::core {

inline constexpr std::uint64_t kArtifactNlr = 1;
inline constexpr std::uint64_t kArtifactEval = 2;

/// Digest of one trace's inputs: its blob + the store's function registry.
[[nodiscard]] std::uint64_t trace_fingerprint(const trace::TraceStore& store,
                                              trace::TraceKey key);

/// Digest of a whole store: every key's blob + the registry.
[[nodiscard]] std::uint64_t store_fingerprint(const trace::TraceStore& store);

[[nodiscard]] std::string nlr_artifact_key(std::uint64_t trace_fp, const FilterSpec& filter,
                                           const NlrConfig& nlr);

[[nodiscard]] std::string eval_artifact_key(std::uint64_t normal_fp, std::uint64_t faulty_fp,
                                            const FilterSpec& filter, const NlrConfig& nlr,
                                            const AttrConfig& attr, Linkage linkage);

/// One trace's reduction result in local id space (see file comment).
struct NlrArtifact {
  bool complete = true;   // decode_tolerant's verdict at build time
  std::string note;       // its degradation note ("" when healthy)
  std::vector<std::string> token_names;  // local TokenId -> name
  std::vector<NlrBody> loop_bodies;      // local loop id -> body (local ids)
  NlrProgram program;                    // local ids
};

[[nodiscard]] std::vector<std::uint8_t> encode_nlr_artifact(const NlrArtifact& artifact);
/// nullopt on any structural defect (the frame CRC already passed, so this
/// only fires on schema-logic mismatches; callers treat it as a miss).
[[nodiscard]] std::optional<NlrArtifact> decode_nlr_artifact(
    std::span<const std::uint8_t> payload);

[[nodiscard]] std::vector<std::uint8_t> encode_evaluation(const Evaluation& eval);
[[nodiscard]] std::optional<Evaluation> decode_evaluation(std::span<const std::uint8_t> payload);

}  // namespace difftrace::core
