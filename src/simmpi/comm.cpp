#include "simmpi/comm.hpp"

#include "instrument/tracer.hpp"
#include "simfault/injector.hpp"

namespace difftrace::simmpi {

namespace {

using instrument::TraceScope;
using trace::Image;

/// MPI API entry: "<name>@plt" stub + the API function itself.
[[nodiscard]] TraceScope api_scope(const char* name) { return TraceScope(name, Image::MpiLib, /*plt=*/true); }

/// Library-internal helper, visible only to all-images captures.
struct InternalScope {
  explicit InternalScope(const char* name) : scope(name, Image::Internal) {}
  TraceScope scope;
};

// Semantic op annotations (trace/op.hpp), emitted *before* the potentially
// blocking World call so a watchdog-frozen trace still records the pending
// operation's peer/tag/params. They land inside the MPI_* frame opened above.

void note_p2p(trace::OpCode code, int peer, int tag, std::uint64_t bytes = 0) {
  trace::OpRecord op;
  op.code = code;
  op.peer = peer;
  op.tag = tag;
  op.count = bytes;
  instrument::Tracer::instance().on_op(std::move(op));
}

void note_coll(const CollParams& params, const char* api_name) {
  trace::OpRecord op;
  op.code = trace::OpCode::CollEnter;
  op.peer = params.root;
  op.count = params.count;
  op.coll = static_cast<std::uint8_t>(params.type);
  op.dtype = static_cast<std::uint8_t>(params.dtype);
  op.redop = static_cast<std::uint8_t>(params.op);
  op.detail = api_name;
  instrument::Tracer::instance().on_op(std::move(op));
}

/// Injector prologue at every MPI API entry: advances this rank's op cursor
/// (the coordinate fault-plan predicates key on) and, when a Delay plan
/// fires, burns N virtual ticks as plt-visible system-library scopes — the
/// shape a descheduled rank leaves in a real trace.
void fault_prologue(int rank) {
  if (!simfault::hooks::active()) return;
  const int op = simfault::hooks::op_enter(rank);
  const int ticks = simfault::hooks::delay_ticks(rank, op);
  for (int i = 0; i < ticks; ++i) {
    const TraceScope tick("sched_yield", Image::SystemLib, /*plt=*/true);
  }
}

/// The op a wait on `request` amounts to: completing a send or a recv.
void note_wait(const Request& request) {
  note_p2p(request.kind() == Request::Kind::Send ? trace::OpCode::WaitSend : trace::OpCode::WaitRecv,
           request.peer(), request.tag());
}

}  // namespace

Comm::Comm(std::shared_ptr<World> world, int rank) : world_(std::move(world)), rank_(rank) {
  if (!world_) throw MpiError("Comm: world must not be null");
  if (rank_ < 0 || rank_ >= world_->nranks()) throw MpiError("Comm: rank out of range");
}

void Comm::init() {
  auto scope = api_scope("MPI_Init");
  fault_prologue(rank_);
  InternalScope a("MPID_Init");
  InternalScope b("MPIDI_CH3_Init");
}

int Comm::comm_rank() {
  auto scope = api_scope("MPI_Comm_rank");
  fault_prologue(rank_);
  return rank_;
}

int Comm::comm_size() {
  auto scope = api_scope("MPI_Comm_size");
  fault_prologue(rank_);
  return world_->nranks();
}

void Comm::finalize() {
  auto scope = api_scope("MPI_Finalize");
  fault_prologue(rank_);
  InternalScope a("MPID_Finalize");
  // Synchronizing, like most real implementations: a job with one
  // deadlocked rank hangs here, so the surviving ranks' traces show an
  // MPI_Finalize call with no return.
  const CollParams params{.type = CollType::Finalize};
  note_coll(params, "MPI_Finalize");
  world_->collective(rank_, params, {}, {});
  world_->mark_finished(rank_);
}

void Comm::send_bytes(std::span<const std::byte> data, int dest, int tag) {
  auto scope = api_scope("MPI_Send");
  fault_prologue(rank_);
  InternalScope a("MPID_Send");
  InternalScope b("MPIDI_CH3_iSend");
  note_p2p(trace::OpCode::SendPost, dest, tag, data.size());
  world_->send(rank_, dest, tag, data);
}

std::size_t Comm::recv_bytes(std::span<std::byte> out, int src, int tag) {
  auto scope = api_scope("MPI_Recv");
  fault_prologue(rank_);
  InternalScope a("MPID_Recv");
  InternalScope b("MPIDI_CH3U_Recvq_FDU_or_AEP");
  note_p2p(trace::OpCode::RecvPost, src, tag);
  return world_->recv(rank_, src, tag, out);
}

Request Comm::isend_bytes(std::span<const std::byte> data, int dest, int tag) {
  auto scope = api_scope("MPI_Isend");
  fault_prologue(rank_);
  InternalScope a("MPID_Isend");
  note_p2p(trace::OpCode::IsendPost, dest, tag, data.size());
  Request req;
  req.kind_ = Request::Kind::Send;
  req.peer_ = dest;
  req.tag_ = tag;
  req.msg_ = world_->post_send(rank_, dest, tag, data);
  req.complete_ = !req.msg_->rendezvous;
  return req;
}

Request Comm::irecv_bytes(std::span<std::byte> out, int src, int tag) {
  auto scope = api_scope("MPI_Irecv");
  fault_prologue(rank_);
  InternalScope a("MPID_Irecv");
  note_p2p(trace::OpCode::IrecvPost, src, tag);
  Request req;
  req.kind_ = Request::Kind::Recv;
  req.peer_ = src;
  req.tag_ = tag;
  req.recv_buffer_ = out;
  req.complete_ = world_->try_recv(rank_, src, tag, out).has_value();
  return req;
}

void Comm::wait(Request& request) {
  auto scope = api_scope("MPI_Wait");
  fault_prologue(rank_);
  InternalScope a("MPIR_Wait");
  if (request.kind_ == Request::Kind::None) {
    request.complete_ = true;
    return;
  }
  // Recorded before the completion check: whether the partner's message had
  // already landed when the wait ran is a scheduling accident, and the op
  // stream must be a function of the program alone (same seed + plan =>
  // byte-identical archives). The blocking wait is still the last op in the
  // frame, which is what pending-op attribution keys on.
  note_wait(request);
  if (request.complete_) return;
  switch (request.kind_) {
    case Request::Kind::Send:
      world_->await_send(rank_, request.msg_);
      break;
    case Request::Kind::Recv:
      world_->recv(rank_, request.peer_, request.tag_, request.recv_buffer_);
      break;
    case Request::Kind::None:
      break;
  }
  request.complete_ = true;
}

void Comm::waitall(std::span<Request> requests) {
  auto scope = api_scope("MPI_Waitall");
  fault_prologue(rank_);
  InternalScope a("MPIR_Waitall");
  for (auto& request : requests) {
    if (request.kind_ == Request::Kind::None) {
      request.complete_ = true;
      continue;
    }
    note_wait(request);  // unconditional — see Comm::wait
    if (request.complete_) continue;
    switch (request.kind_) {
      case Request::Kind::Send:
        world_->await_send(rank_, request.msg_);
        break;
      case Request::Kind::Recv:
        world_->recv(rank_, request.peer_, request.tag_, request.recv_buffer_);
        break;
      case Request::Kind::None:
        break;
    }
    request.complete_ = true;
  }
}

void Comm::barrier() {
  auto scope = api_scope("MPI_Barrier");
  fault_prologue(rank_);
  InternalScope a("MPIR_Barrier_intra");
  const CollParams params{.type = CollType::Barrier};
  note_coll(params, "MPI_Barrier");
  world_->collective(rank_, params, {}, {});
}

void Comm::bcast_bytes(std::span<std::byte> data, Dtype dtype, std::size_t count, int root) {
  auto scope = api_scope("MPI_Bcast");
  fault_prologue(rank_);
  InternalScope a("MPIR_Bcast_intra");
  const CollParams params{.type = CollType::Bcast, .dtype = dtype, .count = count, .root = root};
  note_coll(params, "MPI_Bcast");
  if (rank_ == root)
    world_->collective(rank_, params, std::span<const std::byte>(data.data(), data.size()), {});
  else
    world_->collective(rank_, params, {}, data);
}

void Comm::reduce_bytes(std::span<const std::byte> in, std::span<std::byte> out, Dtype dtype,
                        std::size_t count, ReduceOp op, int root) {
  auto scope = api_scope("MPI_Reduce");
  fault_prologue(rank_);
  InternalScope a("MPIR_Reduce_intra");
  const CollParams params{.type = CollType::Reduce, .dtype = dtype, .count = count, .root = root, .op = op};
  note_coll(params, "MPI_Reduce");
  world_->collective(rank_, params, in, rank_ == root ? out : std::span<std::byte>{});
}

void Comm::allreduce_bytes(std::span<const std::byte> in, std::span<std::byte> out, Dtype dtype,
                           std::size_t count, ReduceOp op) {
  auto scope = api_scope("MPI_Allreduce");
  fault_prologue(rank_);
  InternalScope a("MPIR_Allreduce_intra");
  InternalScope b("MPIDI_POSIX_progress");
  const CollParams params{.type = CollType::Allreduce, .dtype = dtype, .count = count, .op = op};
  note_coll(params, "MPI_Allreduce");
  world_->collective(rank_, params, in, out);
}

}  // namespace difftrace::simmpi
