// Comm: the per-rank MPI-like API the miniapps program against.
//
// Every operation emits the canonical MPI trace name (MPI_Send, MPI_Recv,
// MPI_Allreduce, ...) through the instrumentation layer, bracketed by a
// synthetic @plt stub — matching what ParLOT records when a main-image call
// enters libmpi. A handful of Image::Internal helper scopes are emitted
// inside each operation so ParLOT(all images) captures and Table I's
// "MPI Internal Library" filter have realistic content.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "simmpi/request.hpp"
#include "simmpi/types.hpp"
#include "simmpi/world.hpp"

namespace difftrace::simmpi {

class Comm {
 public:
  Comm(std::shared_ptr<World> world, int rank);

  /// Traced queries, named after the calls they record.
  void init();                       // MPI_Init
  [[nodiscard]] int comm_rank();     // MPI_Comm_rank
  [[nodiscard]] int comm_size();     // MPI_Comm_size
  void finalize();                   // MPI_Finalize (synchronizing, like a barrier)

  /// Untracked accessors for control logic that would not be a traced call.
  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return world_->nranks(); }
  [[nodiscard]] bool cancelled() const { return world_->cancelled(); }
  [[nodiscard]] World& world() noexcept { return *world_; }

  // --- point-to-point (typed) --------------------------------------------
  template <typename T>
  void send(std::span<const T> data, int dest, int tag) {
    send_bytes(std::as_bytes(data), dest, tag);
  }
  template <typename T>
  void send_value(const T& value, int dest, int tag) {
    send(std::span<const T>(&value, 1), dest, tag);
  }
  template <typename T>
  std::size_t recv(std::span<T> data, int src, int tag) {
    return recv_bytes(std::as_writable_bytes(data), src, tag) / sizeof(T);
  }
  template <typename T>
  [[nodiscard]] T recv_value(int src, int tag) {
    T value{};
    recv(std::span<T>(&value, 1), src, tag);
    return value;
  }

  template <typename T>
  [[nodiscard]] Request isend(std::span<const T> data, int dest, int tag) {
    return isend_bytes(std::as_bytes(data), dest, tag);
  }
  template <typename T>
  [[nodiscard]] Request irecv(std::span<T> data, int src, int tag) {
    return irecv_bytes(std::as_writable_bytes(data), src, tag);
  }
  void wait(Request& request);   // MPI_Wait
  void waitall(std::span<Request> requests);  // MPI_Waitall

  // --- collectives (typed) -------------------------------------------------
  void barrier();  // MPI_Barrier

  template <typename T>
  void bcast(std::span<T> data, int root) {
    bcast_bytes(std::as_writable_bytes(data), dtype_of_v<T>, data.size(), root);
  }
  template <typename T>
  void reduce(std::span<const T> in, std::span<T> out, ReduceOp op, int root) {
    reduce_bytes(std::as_bytes(in), std::as_writable_bytes(out), dtype_of_v<T>, in.size(), op, root);
  }
  template <typename T>
  void allreduce(std::span<const T> in, std::span<T> out, ReduceOp op) {
    allreduce_bytes(std::as_bytes(in), std::as_writable_bytes(out), dtype_of_v<T>, in.size(), op);
  }
  template <typename T>
  [[nodiscard]] T allreduce_value(const T& value, ReduceOp op) {
    T out{};
    allreduce(std::span<const T>(&value, 1), std::span<T>(&out, 1), op);
    return out;
  }

  // --- untyped entry points (used by fault injection to force a wrong
  // count without fabricating data) ----------------------------------------
  void send_bytes(std::span<const std::byte> data, int dest, int tag);
  std::size_t recv_bytes(std::span<std::byte> out, int src, int tag);
  [[nodiscard]] Request isend_bytes(std::span<const std::byte> data, int dest, int tag);
  [[nodiscard]] Request irecv_bytes(std::span<std::byte> out, int src, int tag);
  void bcast_bytes(std::span<std::byte> data, Dtype dtype, std::size_t count, int root);
  void reduce_bytes(std::span<const std::byte> in, std::span<std::byte> out, Dtype dtype,
                    std::size_t count, ReduceOp op, int root);
  void allreduce_bytes(std::span<const std::byte> in, std::span<std::byte> out, Dtype dtype,
                       std::size_t count, ReduceOp op);

 private:
  std::shared_ptr<World> world_;
  int rank_;
};

}  // namespace difftrace::simmpi
