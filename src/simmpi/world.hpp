// World: the shared state of one simulated MPI job.
//
// Semantics reproduced from real MPI that the paper's bugs depend on:
//  * Point-to-point messages are matched FIFO by (source, tag) per receiver.
//    Sends at or below the eager limit buffer and return immediately;
//    larger sends rendezvous (block until the matching receive drains them).
//    This is the MPI_EAGER behaviour behind the paper's "Send ‖ Send
//    deadlock under low-buffering" discussion (§II-B).
//  * Collectives match by *call order* per rank (a global sequence). A
//    collective instance completes only when every rank has joined it with
//    identical parameters (type, count, dtype, op, root). A wrong-size
//    MPI_Allreduce therefore hangs the whole job — exactly the fault in
//    Table VII.
//  * Deadlock detection: every blocking wait registers a re-evaluable
//    predicate. When all unfinished ranks are blocked and no predicate is
//    satisfiable, no rank thread can ever make progress again (helper
//    threads never touch MPI state), so the watchdog declares deadlock,
//    freezes the tracer (truncating traces the way a killed job does), and
//    cancels all blocked operations with DeadlockAbort.
//  * Threading model: MPI_THREAD_FUNNELED — at most one *blocking* MPI
//    operation per rank at a time (the per-rank blocked slot assumes it).
//    Nonblocking posts (isend/irecv) never block and are safe to mix; the
//    miniapps follow the same master-only communication discipline as
//    their real counterparts.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "simmpi/error.hpp"
#include "simmpi/types.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace difftrace::simmpi {

struct WorldConfig {
  int nranks = 4;
  /// Messages strictly larger than this rendezvous (block until received).
  std::size_t eager_limit = 4096;
  /// Watchdog poll period.
  std::chrono::milliseconds watchdog_poll{10};
  /// Hard wall-clock limit; exceeded => treated as deadlock. A backstop for
  /// livelocks the blocked-predicate analysis cannot see.
  std::chrono::milliseconds wall_timeout{60000};
};

enum class CollType : std::uint8_t { Barrier, Bcast, Reduce, Allreduce, Finalize };

[[nodiscard]] std::string_view coll_type_name(CollType t) noexcept;

struct CollParams {
  CollType type = CollType::Barrier;
  Dtype dtype = Dtype::Byte;
  std::size_t count = 0;
  int root = 0;
  ReduceOp op = ReduceOp::Sum;

  /// Structural agreement required for an instance to complete. `op` is
  /// deliberately excluded: real reductions with mismatched ops are
  /// erroneous-but-terminating (each rank combines with its own operator),
  /// which is exactly the paper's "wrong collective operation" silent bug
  /// (Table VIII). Mismatched type/count/dtype/root changes message sizes
  /// or sender identity and therefore hangs.
  [[nodiscard]] bool structurally_equal(const CollParams& other) const noexcept {
    return type == other.type && dtype == other.dtype && count == other.count && root == other.root;
  }
};

class World {
 public:
  explicit World(WorldConfig config);

  [[nodiscard]] int nranks() const noexcept { return config_.nranks; }
  [[nodiscard]] const WorldConfig& config() const noexcept { return config_; }

  // --- point-to-point ---------------------------------------------------
  /// Blocking-standard-mode send. Eager messages return immediately.
  void send(int src, int dst, int tag, std::span<const std::byte> data);
  /// Deposits a message and returns a handle to poll/await its consumption
  /// (the guts of isend).
  [[nodiscard]] std::shared_ptr<struct PendingMsg> post_send(int src, int dst, int tag,
                                                             std::span<const std::byte> data);
  void await_send(int src, const std::shared_ptr<struct PendingMsg>& msg);
  /// Blocking receive; fills `out` (must be >= message size, else MpiError).
  /// Returns the received byte count.
  std::size_t recv(int dst, int src, int tag, std::span<std::byte> out);
  /// Non-blocking probe-and-take; nullopt when no matching message is ready.
  [[nodiscard]] std::optional<std::size_t> try_recv(int dst, int src, int tag, std::span<std::byte> out);

  // --- collectives --------------------------------------------------------
  /// Joins the rank's next collective instance. `in` supplies this rank's
  /// contribution (bcast: meaningful only at root; barrier/finalize: empty).
  /// On completion copies the instance result into `out` per collective
  /// semantics. Blocks until all ranks join with identical parameters.
  void collective(int rank, const CollParams& params, std::span<const std::byte> in,
                  std::span<std::byte> out);

  // --- lifecycle / watchdog ----------------------------------------------
  void mark_finished(int rank);
  void mark_failed(int rank);

  /// True once cancel() ran; spinning application threads should poll this.
  [[nodiscard]] bool cancelled() const;
  [[nodiscard]] std::string cancel_reason() const;

  /// Wakes every blocked rank with DeadlockAbort. Idempotent.
  void cancel(std::string reason);

  /// One watchdog step: returns a reason string if the world is deadlocked
  /// (all unfinished ranks blocked with unsatisfiable predicates), else
  /// nullopt. Does not cancel by itself.
  [[nodiscard]] std::optional<std::string> detect_deadlock();

  /// True when every rank finished or failed.
  [[nodiscard]] bool all_done() const;

 private:
  struct Blocked {
    const char* what = nullptr;
    std::function<bool()> pred;  // re-evaluated under mutex_ by the watchdog
  };

  struct CollSlot {
    std::optional<CollParams> first;
    bool mismatch = false;
    int joined = 0;
    int departed = 0;
    bool complete = false;
    std::vector<std::vector<std::byte>> contribs;
  };

  /// A message held back by a Reorder fault plan, pending release.
  struct HeldMsg {
    int dst = 0;
    std::shared_ptr<PendingMsg> msg;
  };

  /// Blocks rank until pred() (or cancellation → DeadlockAbort). The caller
  /// holds mutex_; the wait releases and reacquires it. `pred` runs under
  /// mutex_ here and in the watchdog's detect_deadlock re-evaluation, so
  /// predicates touching guarded state carry their own DT_REQUIRES(mutex_).
  void blocking_wait(int rank, const char* what, const std::function<bool()>& pred)
      DT_REQUIRES(mutex_);

  /// Releases rank's held-back message (Reorder plans): called at the
  /// sender's next send, collective entry, and rank completion, so a held
  /// message cannot silently leak past the end of the run.
  void flush_held(int src) DT_REQUIRES(mutex_);

  [[nodiscard]] std::shared_ptr<PendingMsg> find_match(int dst, int src, int tag)
      DT_REQUIRES(mutex_);
  void check_rank(int rank, const char* who) const;

  WorldConfig config_;
  mutable util::Mutex mutex_;
  util::CondVar cv_;

  std::vector<std::deque<std::shared_ptr<PendingMsg>>> mailbox_
      DT_GUARDED_BY(mutex_);  // per destination
  std::vector<std::optional<HeldMsg>> held_ DT_GUARDED_BY(mutex_);  // per source
  std::map<std::uint64_t, std::shared_ptr<CollSlot>> collectives_ DT_GUARDED_BY(mutex_);
  /// Per-rank collective call counter.
  std::vector<std::uint64_t> coll_seq_ DT_GUARDED_BY(mutex_);

  std::vector<std::optional<Blocked>> blocked_ DT_GUARDED_BY(mutex_);  // per rank
  int finished_ DT_GUARDED_BY(mutex_) = 0;
  int failed_ DT_GUARDED_BY(mutex_) = 0;
  std::vector<bool> done_ DT_GUARDED_BY(mutex_);
  bool cancelled_ DT_GUARDED_BY(mutex_) = false;
  std::string cancel_reason_ DT_GUARDED_BY(mutex_);
  std::uint64_t next_msg_id_ DT_GUARDED_BY(mutex_) = 0;
};

/// A deposited point-to-point message. Exposed so isend requests can await
/// consumption.
struct PendingMsg {
  int src = 0;
  int tag = 0;
  std::vector<std::byte> payload;
  bool rendezvous = false;
  bool consumed = false;
  std::uint64_t id = 0;
};

}  // namespace difftrace::simmpi
