// Nonblocking-operation handles. Matching real MPI closely enough for the
// paper's traces: MPI_Isend deposits immediately (rendezvous completion is
// deferred to MPI_Wait); MPI_Irecv tries an immediate match and otherwise
// completes inside MPI_Wait.
#pragma once

#include <cstddef>
#include <memory>
#include <span>

namespace difftrace::simmpi {

struct PendingMsg;

class Request {
 public:
  enum class Kind { None, Send, Recv };

  Request() = default;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool complete() const noexcept { return complete_; }
  /// Destination rank for sends, source rank for recvs.
  [[nodiscard]] int peer() const noexcept { return peer_; }
  [[nodiscard]] int tag() const noexcept { return tag_; }

 private:
  friend class Comm;

  Kind kind_ = Kind::None;
  bool complete_ = true;
  int peer_ = 0;  // dest for sends, source for recvs
  int tag_ = 0;
  std::shared_ptr<PendingMsg> msg_;    // send side
  std::span<std::byte> recv_buffer_;   // recv side
};

}  // namespace difftrace::simmpi
