// Error types for the simulated MPI runtime.
#pragma once

#include <stdexcept>
#include <string>

namespace difftrace::simmpi {

/// Protocol/usage error (bad rank, truncating receive, type mismatch caught
/// at the API boundary, ...). Maps to what a real MPI would report through
/// MPI_ERRORS_ARE_FATAL.
class MpiError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown into a blocked rank when the watchdog kills a deadlocked world.
/// Deliberately NOT derived from std::exception: application-level
/// `catch (const std::exception&)` handlers must not swallow the abort —
/// it models the job scheduler killing the process.
struct DeadlockAbort {
  std::string reason;
};

}  // namespace difftrace::simmpi
