#include "simmpi/runtime.hpp"

#include <atomic>
#include <chrono>
#include <thread>

#include "instrument/tracer.hpp"

namespace difftrace::simmpi {

RunReport run_world(const WorldConfig& config, const RankFn& fn) {
  const auto world = std::make_shared<World>(config);
  RunReport report;
  report.ranks.resize(static_cast<std::size_t>(config.nranks));

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(config.nranks));
  for (int rank = 0; rank < config.nranks; ++rank) {
    threads.emplace_back([&, rank] {
      instrument::ScopedBinding binding(trace::TraceKey{rank, 0});
      Comm comm(world, rank);
      auto& result = report.ranks[static_cast<std::size_t>(rank)];
      try {
        fn(comm);
        result.status = RankStatus::Completed;
        world->mark_finished(rank);  // idempotent if finalize() already ran
      } catch (const DeadlockAbort&) {
        result.status = RankStatus::Aborted;
        world->mark_failed(rank);
      } catch (const std::exception& e) {
        result.status = RankStatus::Failed;
        result.error = e.what();
        world->mark_failed(rank);
      }
    });
  }

  // Watchdog: precise blocked-predicate analysis plus a wall-clock backstop.
  std::atomic<bool> stop_watchdog{false};
  std::thread watchdog([&] {
    const auto start = std::chrono::steady_clock::now();
    while (!stop_watchdog.load(std::memory_order_acquire)) {
      if (world->all_done()) return;
      auto reason = world->detect_deadlock();
      if (!reason && std::chrono::steady_clock::now() - start > config.wall_timeout)
        reason = "wall-clock timeout exceeded (treated as deadlock/livelock)";
      if (reason) {
        report.deadlock = true;
        report.deadlock_info = *reason;
        // Freeze first: a killed job stops writing traces before threads die.
        instrument::Tracer::instance().freeze_all();
        world->cancel(*reason);
        return;
      }
      std::this_thread::sleep_for(config.watchdog_poll);
    }
  });

  for (auto& t : threads) t.join();
  stop_watchdog.store(true, std::memory_order_release);
  watchdog.join();
  return report;
}

}  // namespace difftrace::simmpi
