// Shared datatype/op vocabulary for the simulated MPI.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace difftrace::simmpi {

enum class ReduceOp : std::uint8_t { Sum, Min, Max, Prod };

[[nodiscard]] constexpr std::string_view reduce_op_name(ReduceOp op) noexcept {
  switch (op) {
    case ReduceOp::Sum: return "MPI_SUM";
    case ReduceOp::Min: return "MPI_MIN";
    case ReduceOp::Max: return "MPI_MAX";
    case ReduceOp::Prod: return "MPI_PROD";
  }
  return "MPI_OP_UNKNOWN";
}

enum class Dtype : std::uint8_t { I32, I64, F64, Byte };

[[nodiscard]] constexpr std::size_t dtype_size(Dtype t) noexcept {
  switch (t) {
    case Dtype::I32: return 4;
    case Dtype::I64: return 8;
    case Dtype::F64: return 8;
    case Dtype::Byte: return 1;
  }
  return 1;
}

template <typename T>
struct dtype_of;
template <> struct dtype_of<std::int32_t> { static constexpr Dtype value = Dtype::I32; };
template <> struct dtype_of<std::int64_t> { static constexpr Dtype value = Dtype::I64; };
template <> struct dtype_of<double> { static constexpr Dtype value = Dtype::F64; };
template <> struct dtype_of<std::byte> { static constexpr Dtype value = Dtype::Byte; };

template <typename T>
inline constexpr Dtype dtype_of_v = dtype_of<T>::value;

}  // namespace difftrace::simmpi
