#include "simmpi/world.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "simfault/injector.hpp"

namespace difftrace::simmpi {

std::string_view coll_type_name(CollType t) noexcept {
  switch (t) {
    case CollType::Barrier: return "MPI_Barrier";
    case CollType::Bcast: return "MPI_Bcast";
    case CollType::Reduce: return "MPI_Reduce";
    case CollType::Allreduce: return "MPI_Allreduce";
    case CollType::Finalize: return "MPI_Finalize";
  }
  return "MPI_collective_unknown";
}

World::World(WorldConfig config) : config_(config) {
  if (config_.nranks <= 0) throw MpiError("World: nranks must be positive");
  mailbox_.resize(static_cast<std::size_t>(config_.nranks));
  held_.resize(static_cast<std::size_t>(config_.nranks));
  coll_seq_.assign(static_cast<std::size_t>(config_.nranks), 0);
  blocked_.resize(static_cast<std::size_t>(config_.nranks));
  done_.assign(static_cast<std::size_t>(config_.nranks), false);
}

void World::check_rank(int rank, const char* who) const {
  if (rank < 0 || rank >= config_.nranks)
    throw MpiError(std::string(who) + ": rank " + std::to_string(rank) + " out of range [0, " +
                   std::to_string(config_.nranks) + ")");
}

void World::blocking_wait(int rank, const char* what, const std::function<bool()>& pred) {
  if (cancelled_) throw DeadlockAbort{cancel_reason_};
  if (pred()) return;
  blocked_[static_cast<std::size_t>(rank)] = Blocked{what, pred};
  cv_.notify_all();  // let the watchdog re-sample blocked state promptly
  while (!cancelled_ && !pred()) cv_.wait(mutex_);
  blocked_[static_cast<std::size_t>(rank)].reset();
  if (cancelled_ && !pred()) throw DeadlockAbort{cancel_reason_};
}

std::shared_ptr<PendingMsg> World::find_match(int dst, int src, int tag) {
  auto& queue = mailbox_[static_cast<std::size_t>(dst)];
  for (const auto& msg : queue) {
    if (msg->src == src && msg->tag == tag) return msg;
  }
  return nullptr;
}

std::shared_ptr<PendingMsg> World::post_send(int src, int dst, int tag,
                                             std::span<const std::byte> data) {
  check_rank(src, "send");
  check_rank(dst, "send(dest)");
  auto msg = std::make_shared<PendingMsg>();
  msg->src = src;
  msg->tag = tag;
  msg->payload.assign(data.begin(), data.end());
  msg->rendezvous = data.size() > config_.eager_limit;

  const util::MutexLock lock(mutex_);
  if (cancelled_) throw DeadlockAbort{cancel_reason_};
  flush_held(src);  // a Reorder-held message is released by the next send
  msg->id = next_msg_id_++;
  const auto decision = simfault::hooks::on_message(src, dst, tag);
  switch (decision.action) {
    case simfault::hooks::MsgAction::Drop:
      // The network eats the message: the sender sees a completed send (so
      // rendezvous waits return immediately), the receiver never will.
      msg->consumed = true;
      cv_.notify_all();
      return msg;
    case simfault::hooks::MsgAction::HoldBack:
      held_[static_cast<std::size_t>(src)] = HeldMsg{dst, msg};
      return msg;
    case simfault::hooks::MsgAction::Misroute:
      dst = decision.new_dest;
      check_rank(dst, "send(misroute)");
      break;
    case simfault::hooks::MsgAction::Duplicate: {
      auto clone = std::make_shared<PendingMsg>();
      clone->src = msg->src;
      clone->tag = msg->tag;
      clone->payload = msg->payload;
      clone->rendezvous = false;  // the ghost copy never blocks the sender
      clone->id = next_msg_id_++;
      mailbox_[static_cast<std::size_t>(dst)].push_back(std::move(clone));
      break;
    }
    case simfault::hooks::MsgAction::Deliver:
      break;
  }
  mailbox_[static_cast<std::size_t>(dst)].push_back(msg);
  cv_.notify_all();
  return msg;
}

void World::flush_held(int src) {
  auto& slot = held_[static_cast<std::size_t>(src)];
  if (!slot.has_value()) return;
  mailbox_[static_cast<std::size_t>(slot->dst)].push_back(std::move(slot->msg));
  slot.reset();
  cv_.notify_all();
}

void World::await_send(int src, const std::shared_ptr<PendingMsg>& msg) {
  if (!msg->rendezvous) return;  // eager sends complete at deposit
  const util::MutexLock lock(mutex_);
  const PendingMsg* raw = msg.get();
  blocking_wait(src, "MPI_Send(rendezvous)", [raw] { return raw->consumed; });
}

void World::send(int src, int dst, int tag, std::span<const std::byte> data) {
  const auto msg = post_send(src, dst, tag, data);
  await_send(src, msg);
}

std::size_t World::recv(int dst, int src, int tag, std::span<std::byte> out) {
  check_rank(dst, "recv");
  check_rank(src, "recv(src)");
  const util::MutexLock lock(mutex_);
  std::shared_ptr<PendingMsg> found;
  // The predicate runs only with mutex_ held (here and in the watchdog), so
  // it carries the REQUIRES annotation its find_match call needs.
  blocking_wait(dst, "MPI_Recv", [&, dst, src, tag]() DT_REQUIRES(mutex_) {
    found = find_match(dst, src, tag);
    return found != nullptr;
  });
  auto& queue = mailbox_[static_cast<std::size_t>(dst)];
  queue.erase(std::find(queue.begin(), queue.end(), found));
  if (found->payload.size() > out.size())
    throw MpiError("MPI_Recv: message of " + std::to_string(found->payload.size()) +
                   " bytes truncates buffer of " + std::to_string(out.size()));
  std::copy(found->payload.begin(), found->payload.end(), out.begin());
  found->consumed = true;
  cv_.notify_all();
  return found->payload.size();
}

std::optional<std::size_t> World::try_recv(int dst, int src, int tag, std::span<std::byte> out) {
  check_rank(dst, "try_recv");
  check_rank(src, "try_recv(src)");
  const util::MutexLock lock(mutex_);
  if (cancelled_) throw DeadlockAbort{cancel_reason_};
  const auto found = find_match(dst, src, tag);
  if (!found) return std::nullopt;
  auto& queue = mailbox_[static_cast<std::size_t>(dst)];
  queue.erase(std::find(queue.begin(), queue.end(), found));
  if (found->payload.size() > out.size())
    throw MpiError("try_recv: message truncates buffer");
  std::copy(found->payload.begin(), found->payload.end(), out.begin());
  found->consumed = true;
  cv_.notify_all();
  return found->payload.size();
}

namespace {

template <typename T>
void reduce_typed(std::span<const std::byte> in, std::span<std::byte> acc, ReduceOp op) {
  const std::size_t n = acc.size() / sizeof(T);
  for (std::size_t i = 0; i < n; ++i) {
    T a{};
    T b{};
    std::memcpy(&a, acc.data() + i * sizeof(T), sizeof(T));
    std::memcpy(&b, in.data() + i * sizeof(T), sizeof(T));
    T r{};
    switch (op) {
      case ReduceOp::Sum: r = static_cast<T>(a + b); break;
      case ReduceOp::Min: r = std::min(a, b); break;
      case ReduceOp::Max: r = std::max(a, b); break;
      case ReduceOp::Prod: r = static_cast<T>(a * b); break;
    }
    std::memcpy(acc.data() + i * sizeof(T), &r, sizeof(T));
  }
}

void reduce_bytes(Dtype dtype, ReduceOp op, std::span<const std::byte> in, std::span<std::byte> acc) {
  switch (dtype) {
    case Dtype::I32: reduce_typed<std::int32_t>(in, acc, op); break;
    case Dtype::I64: reduce_typed<std::int64_t>(in, acc, op); break;
    case Dtype::F64: reduce_typed<double>(in, acc, op); break;
    case Dtype::Byte: throw MpiError("reduce: MPI_BYTE is not a reducible datatype");
  }
}

}  // namespace

void World::collective(int rank, const CollParams& params, std::span<const std::byte> in,
                       std::span<std::byte> out) {
  check_rank(rank, "collective");
  if (params.type == CollType::Bcast || params.type == CollType::Reduce)
    check_rank(params.root, "collective(root)");
  const std::size_t expected = params.count * dtype_size(params.dtype);
  const bool contributes =
      params.type == CollType::Reduce || params.type == CollType::Allreduce ||
      (params.type == CollType::Bcast && rank == params.root);
  if (contributes && in.size() != expected)
    throw MpiError(std::string(coll_type_name(params.type)) + ": contribution size " +
                   std::to_string(in.size()) + " != count*dtype " + std::to_string(expected));

  const util::MutexLock lock(mutex_);
  if (cancelled_) throw DeadlockAbort{cancel_reason_};
  flush_held(rank);  // collective entry also releases a Reorder-held message
  const std::uint64_t seq = coll_seq_[static_cast<std::size_t>(rank)]++;
  auto it = collectives_.find(seq);
  if (it == collectives_.end()) {
    auto slot = std::make_shared<CollSlot>();
    slot->contribs.resize(static_cast<std::size_t>(config_.nranks));
    it = collectives_.emplace(seq, std::move(slot)).first;
  }
  const std::shared_ptr<CollSlot> slot = it->second;

  if (!slot->first) {
    slot->first = params;
  } else if (!slot->first->structurally_equal(params)) {
    // Structurally mismatched collective (wrong size / root / type): the
    // instance can never complete — the realistic outcome is a hang, which
    // the watchdog later converts into truncated traces.
    slot->mismatch = true;
  }
  auto& contrib = slot->contribs[static_cast<std::size_t>(rank)];
  contrib.assign(in.begin(), in.end());
  if ((params.type == CollType::Reduce || params.type == CollType::Allreduce) &&
      !contrib.empty())
    simfault::hooks::corrupt_contribution(rank, contrib.data(), contrib.size());
  slot->joined++;
  if (slot->joined == config_.nranks && !slot->mismatch) {
    slot->complete = true;
    cv_.notify_all();
  }

  const CollSlot* raw = slot.get();
  blocking_wait(rank, coll_type_name(params.type).data(), [raw] { return raw->complete; });

  // Each rank materializes its own result — with ITS OWN reduction
  // operator, so an op-mismatched reduction terminates with inconsistent
  // values rather than hanging (the Table VIII silent-bug behaviour).
  switch (params.type) {
    case CollType::Barrier:
    case CollType::Finalize:
      break;
    case CollType::Bcast:
      if (rank != params.root) {
        const auto& payload = slot->contribs[static_cast<std::size_t>(params.root)];
        if (out.size() < payload.size()) throw MpiError("MPI_Bcast: output buffer too small");
        std::copy(payload.begin(), payload.end(), out.begin());
      }
      break;
    case CollType::Reduce:
    case CollType::Allreduce: {
      const bool wants_result = params.type == CollType::Allreduce || rank == params.root;
      if (wants_result) {
        std::vector<std::byte> acc = slot->contribs[0];
        for (std::size_t r = 1; r < slot->contribs.size(); ++r)
          reduce_bytes(params.dtype, params.op, slot->contribs[r], acc);
        if (out.size() < acc.size())
          throw MpiError(std::string(coll_type_name(params.type)) + ": output buffer too small");
        std::copy(acc.begin(), acc.end(), out.begin());
      }
      break;
    }
  }

  slot->departed++;
  if (slot->departed == config_.nranks) collectives_.erase(seq);
}

void World::mark_finished(int rank) {
  check_rank(rank, "mark_finished");
  const util::MutexLock lock(mutex_);
  flush_held(rank);
  if (!done_[static_cast<std::size_t>(rank)]) {
    done_[static_cast<std::size_t>(rank)] = true;
    ++finished_;
    cv_.notify_all();
  }
}

void World::mark_failed(int rank) {
  check_rank(rank, "mark_failed");
  const util::MutexLock lock(mutex_);
  flush_held(rank);
  if (!done_[static_cast<std::size_t>(rank)]) {
    done_[static_cast<std::size_t>(rank)] = true;
    ++failed_;
    cv_.notify_all();
  }
}

bool World::cancelled() const {
  const util::MutexLock lock(mutex_);
  return cancelled_;
}

std::string World::cancel_reason() const {
  const util::MutexLock lock(mutex_);
  return cancel_reason_;
}

void World::cancel(std::string reason) {
  const util::MutexLock lock(mutex_);
  if (cancelled_) return;
  cancelled_ = true;
  cancel_reason_ = std::move(reason);
  cv_.notify_all();
}

std::optional<std::string> World::detect_deadlock() {
  const util::MutexLock lock(mutex_);
  if (cancelled_) return std::nullopt;
  int blocked_count = 0;
  for (int r = 0; r < config_.nranks; ++r) {
    const auto idx = static_cast<std::size_t>(r);
    if (done_[idx]) continue;
    if (!blocked_[idx].has_value()) return std::nullopt;  // someone is runnable
    ++blocked_count;
  }
  if (blocked_count == 0) return std::nullopt;  // everyone finished
  // All unfinished ranks are blocked. If any predicate is satisfied the rank
  // just has not woken yet — not a deadlock.
  for (int r = 0; r < config_.nranks; ++r) {
    const auto idx = static_cast<std::size_t>(r);
    if (done_[idx] || !blocked_[idx].has_value()) continue;
    if (blocked_[idx]->pred()) return std::nullopt;
  }
  std::ostringstream os;
  os << "deadlock: " << blocked_count << " rank(s) blocked forever [";
  bool sep = false;
  for (int r = 0; r < config_.nranks; ++r) {
    const auto idx = static_cast<std::size_t>(r);
    if (done_[idx] || !blocked_[idx].has_value()) continue;
    if (sep) os << ", ";
    os << "rank " << r << " in " << blocked_[idx]->what;
    sep = true;
  }
  os << "]";
  return os.str();
}

bool World::all_done() const {
  const util::MutexLock lock(mutex_);
  return finished_ + failed_ == config_.nranks;
}

}  // namespace difftrace::simmpi
