// Runtime: spawns one thread per rank, runs the application function, and
// supervises the world with a deadlock watchdog.
//
// On deadlock the watchdog (1) freezes all trace writers — the moment the
// job "gets killed", so traces truncate exactly where each rank stopped
// making progress — then (2) cancels the world, waking every blocked rank
// with DeadlockAbort so threads unwind and join cleanly.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "simmpi/comm.hpp"
#include "simmpi/world.hpp"

namespace difftrace::simmpi {

enum class RankStatus { Completed, Aborted, Failed };

struct RankResult {
  RankStatus status = RankStatus::Completed;
  std::string error;  // for Failed: the exception message
};

struct RunReport {
  std::vector<RankResult> ranks;
  bool deadlock = false;
  std::string deadlock_info;

  [[nodiscard]] bool all_completed() const noexcept {
    for (const auto& r : ranks)
      if (r.status != RankStatus::Completed) return false;
    return true;
  }
};

using RankFn = std::function<void(Comm&)>;

/// Runs `fn` once per rank on its own thread; each rank thread binds itself
/// to the tracer (as thread 0 of its process) when a tracing session is
/// active. Returns when every rank completed, failed, or was aborted by the
/// watchdog.
[[nodiscard]] RunReport run_world(const WorldConfig& config, const RankFn& fn);

}  // namespace difftrace::simmpi
