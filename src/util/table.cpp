#include "util/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/str.hpp"

namespace difftrace::util {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TextTable: header must not be empty");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("TextTable: row has " + std::to_string(cells.size()) + " cells, expected " +
                                std::to_string(header_.size()));
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  const auto rule = [&] {
    os << '+';
    for (const auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << ' ' << cells[c] << std::string(widths[c] - cells[c].size(), ' ') << " |";
    os << '\n';
  };
  rule();
  line(header_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
  return os.str();
}

std::string render_heatmap(const Matrix& m, const std::string& title) {
  // Five shade levels from empty to full block, darker = closer to 1.
  static const char* kShades[] = {"  ", "░░", "▒▒", "▓▓", "██"};
  std::ostringstream os;
  if (!title.empty()) os << title << '\n';
  os << "    ";
  for (std::size_t c = 0; c < m.cols(); ++c) os << (c % 10) << ' ';
  os << '\n';
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << (r < 10 ? " " : "") << r << "  ";
    for (std::size_t c = 0; c < m.cols(); ++c) {
      const double v = std::clamp(m(r, c), 0.0, 1.0);
      const int level = std::min(4, static_cast<int>(v * 5.0));
      os << kShades[level];
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace difftrace::util
