// Clang Thread Safety Analysis attribute macros (DT_ prefix).
//
// These expand to Clang's `capability`/`guarded_by`/`acquire_capability`/...
// attributes under clang and to nothing elsewhere, so gcc builds are
// unaffected while `clang++ -Wthread-safety -Werror` turns every unguarded
// access to an annotated member into a *compile error*. The repo's locking
// contracts (who holds sched::Pool::mu_, which obs::MetricsRegistry members
// are lock-free, ...) used to live in comments and TSan's runtime luck;
// these macros make them machine-checked at build time — the same
// analysis-over-reproduction stance the difftrace checkers take toward
// application traces (PAPER.md §III).
//
// Naming follows the Clang documentation / Abseil convention:
//   DT_CAPABILITY("mutex")  on a lock type (see util/mutex.hpp)
//   DT_GUARDED_BY(mu_)      on data members a lock protects
//   DT_REQUIRES(mu_)        on functions that must be called with a lock held
//   DT_ACQUIRE / DT_RELEASE on functions that take / drop a lock
//   DT_EXCLUDES(mu_)        on functions that must NOT hold a lock (self-deadlock)
//
// DT_NO_THREAD_SAFETY_ANALYSIS exists for test doubles only; production code
// must not use it (enforced by review + the acceptance bar, not the linter,
// so the escape stays greppable).
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define DT_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define DT_THREAD_ANNOTATION_(x)  // no-op off-clang
#endif

#define DT_CAPABILITY(x) DT_THREAD_ANNOTATION_(capability(x))
#define DT_SCOPED_CAPABILITY DT_THREAD_ANNOTATION_(scoped_lockable)

#define DT_GUARDED_BY(x) DT_THREAD_ANNOTATION_(guarded_by(x))
#define DT_PT_GUARDED_BY(x) DT_THREAD_ANNOTATION_(pt_guarded_by(x))

#define DT_ACQUIRED_BEFORE(...) DT_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define DT_ACQUIRED_AFTER(...) DT_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

#define DT_REQUIRES(...) DT_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define DT_REQUIRES_SHARED(...) DT_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

#define DT_ACQUIRE(...) DT_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define DT_ACQUIRE_SHARED(...) DT_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define DT_RELEASE(...) DT_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define DT_RELEASE_SHARED(...) DT_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

#define DT_TRY_ACQUIRE(...) DT_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define DT_TRY_ACQUIRE_SHARED(...) DT_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

#define DT_EXCLUDES(...) DT_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define DT_ASSERT_CAPABILITY(x) DT_THREAD_ANNOTATION_(assert_capability(x))
#define DT_RETURN_CAPABILITY(x) DT_THREAD_ANNOTATION_(lock_returned(x))

#define DT_NO_THREAD_SAFETY_ANALYSIS DT_THREAD_ANNOTATION_(no_thread_safety_analysis)
