#include "util/file.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "util/crc32.hpp"

namespace difftrace::util {

std::vector<std::uint8_t> read_file_bytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path.string());
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file_bytes(const std::filesystem::path& path, std::span<const std::uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path.string());
  out.write(reinterpret_cast<const char*>(bytes.data()), static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("write failed for " + path.string());
}

void write_file_atomic(const std::filesystem::path& path, std::span<const std::uint8_t> bytes) {
  // Thread-unique staging name: concurrent writers to the same destination
  // must not interleave into one temporary; rename() then publishes whole
  // files only (last writer wins).
  std::ostringstream tmp_name;
  tmp_name << path.filename().string() << ".tmp." << std::this_thread::get_id();
  const auto tmp_path = path.parent_path() / tmp_name.str();
  try {
    write_file_bytes(tmp_path, bytes);
    std::filesystem::rename(tmp_path, path);
  } catch (const std::exception&) {
    std::error_code ec;
    std::filesystem::remove(tmp_path, ec);
    throw;
  }
}

FileDigest digest_file_bytes(const std::filesystem::path& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("cannot open " + path.string());
  std::vector<char> buffer(1 << 16);
  std::uint32_t state = crc32_init();
  FileDigest digest;
  while (file) {
    file.read(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    const auto got = file.gcount();
    if (got <= 0) break;
    state = crc32_update(state, std::span(reinterpret_cast<const std::uint8_t*>(buffer.data()),
                                          static_cast<std::size_t>(got)));
    digest.bytes += static_cast<std::uint64_t>(got);
  }
  digest.crc32 = crc32_final(state);
  return digest;
}

std::string hex32(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", v);
  return buf;
}

}  // namespace difftrace::util
