// Minimal JSON support for difftrace's machine-readable artifacts (the run
// manifest, `info --json`, benchmark outputs).
//
// JsonWriter is a streaming emitter with automatic comma/indent handling so
// every producer (manifest, store info, bench output) writes structurally
// valid documents from the same code path. JsonValue + parse_json is the
// matching reader — a small recursive-descent parser, sufficient for the
// documents difftrace itself writes (`difftrace stats`, manifest round-trip
// tests), not a general-purpose validator.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace difftrace::util {

/// Escapes and quotes `s` as a JSON string literal.
void write_json_string(std::ostream& out, std::string_view s);

/// Streaming JSON emitter. Call begin_object/begin_array to open containers,
/// key() before each object member, value() for scalars; commas and
/// indentation are inserted automatically. Misuse (value with a pending key
/// missing, end without begin) is a logic error, checked with assertions in
/// debug builds only — the producers are all difftrace code.
class JsonWriter {
 public:
  /// `indent` < 0 selects compact mode: the document is emitted on a single
  /// line with no newlines or indentation — the framing used by
  /// line-delimited protocols (serve responses are one document per line).
  explicit JsonWriter(std::ostream& out, int indent = 2) : out_(out), indent_(indent) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  void key(std::string_view k);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(bool v);
  void value(double v);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(std::uint32_t v) { value(static_cast<std::uint64_t>(v)); }
  void value(int v) { value(static_cast<std::int64_t>(v)); }

  /// Emits `literal` verbatim as one value token; the caller guarantees it
  /// is valid JSON. Exists for producers that need exact decimal rendering
  /// the double path cannot give (chrome-trace microsecond timestamps are
  /// written as "<ns/1000>.<ns%1000 zero-padded>" so byte-identical inputs
  /// export byte-identically).
  void raw_value(std::string_view literal);

  /// key + scalar value in one call.
  template <typename T>
  void field(std::string_view k, T v) {
    key(k);
    value(v);
  }

 private:
  void before_item();
  void newline_indent();

  std::ostream& out_;
  int indent_;
  struct Level {
    bool array = false;
    bool empty = true;
  };
  std::vector<Level> stack_;
  bool pending_key_ = false;
};

/// Parsed JSON document node.
struct JsonValue {
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order kept

  [[nodiscard]] bool is_object() const noexcept { return kind == Kind::Object; }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::Array; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view k) const noexcept;
  /// Object member lookup; throws std::runtime_error naming the key.
  [[nodiscard]] const JsonValue& at(std::string_view k) const;

  /// Scalar accessors; throw std::runtime_error on a kind mismatch.
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] bool as_bool() const;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
/// Throws std::runtime_error with a byte offset on malformed input.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace difftrace::util
