// Plain-text table rendering for the ranking tables and walkthrough output.
// Produces aligned ASCII tables comparable to the paper's Tables II-IX, plus
// a greyscale heatmap renderer for JSM matrices (Figure 4 analogue).
#pragma once

#include <string>
#include <vector>

#include "util/matrix.hpp"

namespace difftrace::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with column alignment and +--+ separators.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a square matrix of values in [0,1] as a unicode-shaded heatmap
/// with row/column indices ("Figure 4"-style). Values outside [0,1] clamp.
[[nodiscard]] std::string render_heatmap(const Matrix& m, const std::string& title = {});

}  // namespace difftrace::util
