// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) used by the v2 trace-store
// archive to detect bit flips and torn writes per frame. Streaming form:
// crc32_update lets callers checksum a payload in pieces; crc32 is the
// one-shot convenience.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace difftrace::util {

/// Continues a CRC-32 computation. Start from `crc32_init()`, feed bytes,
/// then finalize with `crc32_final()`.
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t state, std::span<const std::uint8_t> data) noexcept;

[[nodiscard]] constexpr std::uint32_t crc32_init() noexcept { return 0xFFFFFFFFu; }
[[nodiscard]] constexpr std::uint32_t crc32_final(std::uint32_t state) noexcept { return state ^ 0xFFFFFFFFu; }

/// One-shot CRC-32 of a buffer.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept;

}  // namespace difftrace::util
