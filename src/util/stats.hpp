// Summary statistics over numeric samples, used for the §V LULESH trace
// statistics (averages per process/thread) and the benchmark reports.
#pragma once

#include <cstddef>
#include <span>

namespace difftrace::util {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double total = 0.0;
};

[[nodiscard]] Summary summarize(std::span<const double> samples);

}  // namespace difftrace::util
