// Dense row-major matrix of doubles. Used for Jaccard similarity matrices and
// pairwise-distance inputs to hierarchical clustering. Header-only.
#pragma once

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace difftrace::util {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] static Matrix square(std::size_t n, double fill = 0.0) { return Matrix(n, n, fill); }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    check(r, c);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    check(r, c);
    return data_[r * cols_ + c];
  }

  /// Element-wise |a - b|; both matrices must have identical shape.
  [[nodiscard]] friend Matrix abs_diff(const Matrix& a, const Matrix& b) {
    if (a.rows_ != b.rows_ || a.cols_ != b.cols_)
      throw std::invalid_argument("Matrix::abs_diff: shape mismatch");
    Matrix out(a.rows_, a.cols_);
    for (std::size_t i = 0; i < a.data_.size(); ++i) out.data_[i] = std::abs(a.data_[i] - b.data_[i]);
    return out;
  }

  /// Sum of row `r` (used for JSM_D per-trace suspicion scores).
  [[nodiscard]] double row_sum(std::size_t r) const {
    check(r, 0);
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += data_[r * cols_ + c];
    return s;
  }

  [[nodiscard]] double max_abs() const noexcept {
    double m = 0.0;
    for (const auto v : data_) m = std::max(m, std::abs(v));
    return m;
  }

  [[nodiscard]] bool operator==(const Matrix& other) const noexcept = default;

 private:
  void check(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_)
      throw std::out_of_range("Matrix: (" + std::to_string(r) + "," + std::to_string(c) + ") out of " +
                              std::to_string(rows_) + "x" + std::to_string(cols_));
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace difftrace::util
