#include "util/bitset.hpp"

#include <bit>
#include <sstream>
#include <stdexcept>

namespace difftrace::util {

void DynamicBitset::check_index(std::size_t i) const {
  if (i >= nbits_) throw std::out_of_range("DynamicBitset: index " + std::to_string(i) + " >= size " + std::to_string(nbits_));
}

void DynamicBitset::check_same_size(const DynamicBitset& other) const {
  if (nbits_ != other.nbits_) throw std::invalid_argument("DynamicBitset: size mismatch");
}

void DynamicBitset::set(std::size_t i, bool value) {
  check_index(i);
  const std::uint64_t mask = std::uint64_t{1} << (i % 64);
  if (value)
    words_[i / 64] |= mask;
  else
    words_[i / 64] &= ~mask;
}

bool DynamicBitset::test(std::size_t i) const {
  check_index(i);
  return (words_[i / 64] >> (i % 64)) & 1;
}

std::size_t DynamicBitset::count() const noexcept {
  std::size_t n = 0;
  for (const auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool DynamicBitset::any() const noexcept {
  for (const auto w : words_)
    if (w != 0) return true;
  return false;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  check_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  check_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

bool DynamicBitset::is_subset_of(const DynamicBitset& other) const {
  check_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i)
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  return true;
}

std::vector<std::size_t> DynamicBitset::to_indices() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      out.push_back(w * 64 + static_cast<std::size_t>(bit));
      word &= word - 1;
    }
  }
  return out;
}

std::string DynamicBitset::to_string() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const auto i : to_indices()) {
    if (!first) os << ", ";
    os << i;
    first = false;
  }
  os << '}';
  return os.str();
}

std::size_t DynamicBitset::hash() const noexcept {
  // FNV-1a over the words; size participates so {}, sized 3 vs 5, differ.
  std::uint64_t h = 14695981039346656037ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  mix(nbits_);
  for (const auto w : words_) mix(w);
  return static_cast<std::size_t>(h);
}

}  // namespace difftrace::util
