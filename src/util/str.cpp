#include "util/str.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace difftrace::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool contains_insensitive(std::string_view haystack, std::string_view needle) noexcept {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  const auto lower = [](unsigned char c) { return static_cast<char>(std::tolower(c)); };
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    bool match = true;
    for (std::size_t j = 0; j < needle.size(); ++j) {
      if (lower(static_cast<unsigned char>(haystack[i + j])) != lower(static_cast<unsigned char>(needle[j]))) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace difftrace::util
