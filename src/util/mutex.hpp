// Annotated locking primitives: the only mutex vocabulary the difftrace
// tree uses (enforced by tools/lint/difftrace_lint.py rule `raw-mutex`).
//
// std::mutex carries no thread-safety attributes, so Clang's analysis cannot
// see what it protects. util::Mutex wraps it as a DT_CAPABILITY, MutexLock
// replaces std::lock_guard as a DT_SCOPED_CAPABILITY, and CondVar wraps
// std::condition_variable so waits release/reacquire the *annotated* lock.
// Under `clang++ -Wthread-safety -Werror` every access to a DT_GUARDED_BY
// member outside a MutexLock scope (or a DT_REQUIRES function) is a build
// break; under gcc everything compiles to exactly the std primitives the
// code used before.
//
// CondVar deliberately has no predicate overloads: a predicate lambda is
// analyzed as a separate function with no lock context, so it would need a
// DT_NO_THREAD_SAFETY_ANALYSIS escape on every wait. Callers write the
// standard `while (!condition) cv.wait(mu);` loop instead, which keeps the
// condition inside the annotated caller where the analysis can see it
// (spurious wakeups are handled identically either way).
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace difftrace::util {

class CondVar;

/// An exclusive capability backed by std::mutex. Prefer MutexLock over
/// manual lock()/unlock() pairs.
class DT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DT_ACQUIRE() { mu_.lock(); }
  void unlock() DT_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() DT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock of one Mutex (std::lock_guard with capability tracking).
class DT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DT_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() DT_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII lock of two *distinct* Mutexes, acquired in address order so
/// concurrent cross-object operations (a = b; ‖ b = a;) cannot deadlock —
/// the std::scoped_lock(a, b) replacement. Precondition: &a != &b; callers
/// (e.g. TraceStore::operator=) reject self-assignment first.
class DT_SCOPED_CAPABILITY MutexLock2 {
 public:
  MutexLock2(Mutex& a, Mutex& b) DT_ACQUIRE(a, b) : a_(a), b_(b) {
    if (std::less<const Mutex*>{}(&a, &b)) {
      a.lock();
      b.lock();
    } else {
      b.lock();
      a.lock();
    }
  }
  ~MutexLock2() DT_RELEASE() {
    a_.unlock();
    b_.unlock();
  }

  MutexLock2(const MutexLock2&) = delete;
  MutexLock2& operator=(const MutexLock2&) = delete;

 private:
  Mutex& a_;
  Mutex& b_;
};

/// Condition variable bound to util::Mutex. wait() atomically releases the
/// annotated capability, sleeps, and reacquires it before returning, so the
/// caller's DT_REQUIRES/MutexLock context stays truthful across the wait.
/// Implemented over std::condition_variable on the wrapped std::mutex —
/// no extra synchronization versus the pre-annotation code.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Caller must hold `mu` (checked by TSA); holds it again on return.
  /// Spurious wakeups happen — always wait in a `while (!cond)` loop.
  void wait(Mutex& mu) DT_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // ownership stays with the caller's MutexLock
  }

  /// Timed wait; returns std::cv_status::timeout when `dur` elapsed first.
  template <class Rep, class Period>
  std::cv_status wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& dur)
      DT_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const auto status = cv_.wait_for(native, dur);
    native.release();
    return status;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace difftrace::util
