// Torn-line-free status output for concurrent pipelines.
//
// CLI progress chatter ("[salvage] ...", "[degraded] ...") goes to stderr
// while results go to stdout (PR 3's stream discipline). Once sweep workers
// run concurrently, two threads composing a line out of several `<<`
// insertions can interleave mid-line. status_line() composes the full line
// first and writes it — newline included — as ONE stream insertion under a
// process-wide mutex, so lines stay whole at any job count.
#pragma once

#include <ostream>
#include <string_view>

namespace difftrace::util {

/// Writes `text` plus a trailing newline to `out` as a single, mutex-held
/// insertion. `text` must not itself contain a newline.
void status_line(std::ostream& out, std::string_view text);

}  // namespace difftrace::util
