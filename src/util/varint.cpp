#include "util/varint.hpp"

#include <stdexcept>

namespace difftrace::util {

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

std::uint64_t get_varint(std::span<const std::uint8_t> in, std::size_t& pos) {
  std::uint64_t result = 0;
  int shift = 0;
  for (;;) {
    if (pos >= in.size()) throw std::out_of_range("varint: truncated input");
    if (shift >= 64) throw std::overflow_error("varint: value exceeds 64 bits");
    const std::uint8_t byte = in[pos++];
    result |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return result;
    shift += 7;
  }
}

void put_svarint(std::vector<std::uint8_t>& out, std::int64_t value) {
  put_varint(out, zigzag_encode(value));
}

std::int64_t get_svarint(std::span<const std::uint8_t> in, std::size_t& pos) {
  return zigzag_decode(get_varint(in, pos));
}

}  // namespace difftrace::util
