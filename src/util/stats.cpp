#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace difftrace::util {

Summary summarize(std::span<const double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  s.min = samples[0];
  s.max = samples[0];
  for (const auto v : samples) {
    s.total += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = s.total / static_cast<double>(s.count);
  double ss = 0.0;
  for (const auto v : samples) ss += (v - s.mean) * (v - s.mean);
  s.stddev = s.count > 1 ? std::sqrt(ss / static_cast<double>(s.count - 1)) : 0.0;
  return s;
}

}  // namespace difftrace::util
