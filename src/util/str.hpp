// Small string helpers shared by the filter front-end and table renderers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace difftrace::util {

[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);
[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view sep);
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) noexcept;
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix) noexcept;
[[nodiscard]] bool contains_insensitive(std::string_view haystack, std::string_view needle) noexcept;
[[nodiscard]] std::string to_lower(std::string_view s);

/// Fixed-precision double rendering ("0.244"), for table cells.
[[nodiscard]] std::string format_double(double v, int precision = 3);

}  // namespace difftrace::util
