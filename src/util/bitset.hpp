// Dynamically sized bitset used for FCA extents/intents. Capacity is fixed at
// construction; set operations require equal sizes (checked).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace difftrace::util {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t nbits) : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return nbits_; }

  void set(std::size_t i, bool value = true);
  [[nodiscard]] bool test(std::size_t i) const;

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept;
  [[nodiscard]] bool any() const noexcept;
  [[nodiscard]] bool none() const noexcept { return !any(); }

  DynamicBitset& operator&=(const DynamicBitset& other);
  DynamicBitset& operator|=(const DynamicBitset& other);
  [[nodiscard]] friend DynamicBitset operator&(DynamicBitset a, const DynamicBitset& b) { return a &= b; }
  [[nodiscard]] friend DynamicBitset operator|(DynamicBitset a, const DynamicBitset& b) { return a |= b; }
  [[nodiscard]] bool operator==(const DynamicBitset& other) const noexcept = default;

  /// True if every set bit of *this is also set in `other`.
  [[nodiscard]] bool is_subset_of(const DynamicBitset& other) const;

  /// Indices of set bits, ascending.
  [[nodiscard]] std::vector<std::size_t> to_indices() const;

  /// "{0, 2, 5}"-style rendering for diagnostics.
  [[nodiscard]] std::string to_string() const;

  /// Stable hash of the bit contents (for hash-map keys).
  [[nodiscard]] std::size_t hash() const noexcept;

 private:
  void check_index(std::size_t i) const;
  void check_same_size(const DynamicBitset& other) const;

  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

struct DynamicBitsetHash {
  std::size_t operator()(const DynamicBitset& b) const noexcept { return b.hash(); }
};

}  // namespace difftrace::util
