#include "util/json.hpp"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace difftrace::util {

void write_json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

// --- JsonWriter --------------------------------------------------------------

void JsonWriter::newline_indent() {
  if (indent_ < 0) return;  // compact mode: one line, no whitespace framing
  out_ << '\n';
  for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(indent_); ++i) out_ << ' ';
}

void JsonWriter::before_item() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already placed the comma/indent
  }
  if (stack_.empty()) return;  // document root
  if (!stack_.back().empty) out_ << ',';
  stack_.back().empty = false;
  newline_indent();
}

void JsonWriter::begin_object() {
  before_item();
  out_ << '{';
  stack_.push_back({false, true});
}

void JsonWriter::end_object() {
  assert(!stack_.empty() && !stack_.back().array && !pending_key_);
  const bool was_empty = stack_.back().empty;
  stack_.pop_back();
  if (!was_empty) newline_indent();
  out_ << '}';
}

void JsonWriter::begin_array() {
  before_item();
  out_ << '[';
  stack_.push_back({true, true});
}

void JsonWriter::end_array() {
  assert(!stack_.empty() && stack_.back().array && !pending_key_);
  const bool was_empty = stack_.back().empty;
  stack_.pop_back();
  if (!was_empty) newline_indent();
  out_ << ']';
}

void JsonWriter::key(std::string_view k) {
  assert(!stack_.empty() && !stack_.back().array && !pending_key_);
  if (!stack_.back().empty) out_ << ',';
  stack_.back().empty = false;
  newline_indent();
  write_json_string(out_, k);
  out_ << ": ";
  pending_key_ = true;
}

void JsonWriter::value(std::string_view v) {
  before_item();
  write_json_string(out_, v);
}

void JsonWriter::raw_value(std::string_view literal) {
  before_item();
  out_ << literal;
}

void JsonWriter::value(bool v) {
  before_item();
  out_ << (v ? "true" : "false");
}

void JsonWriter::value(double v) {
  before_item();
  if (!std::isfinite(v)) {
    out_ << "null";  // JSON has no NaN/Inf
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ << buf;
}

void JsonWriter::value(std::int64_t v) {
  before_item();
  out_ << v;
}

void JsonWriter::value(std::uint64_t v) {
  before_item();
  out_ << v;
}

// --- JsonValue ---------------------------------------------------------------

const JsonValue* JsonValue::find(std::string_view k) const noexcept {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [key, value] : object)
    if (key == k) return &value;
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view k) const {
  const auto* v = find(k);
  if (v == nullptr) throw std::runtime_error("json: missing key '" + std::string(k) + "'");
  return *v;
}

std::int64_t JsonValue::as_int() const {
  if (kind != Kind::Number) throw std::runtime_error("json: expected a number");
  return static_cast<std::int64_t>(number);
}

std::uint64_t JsonValue::as_uint() const {
  if (kind != Kind::Number || number < 0) throw std::runtime_error("json: expected a non-negative number");
  return static_cast<std::uint64_t>(number);
}

double JsonValue::as_double() const {
  if (kind != Kind::Number) throw std::runtime_error("json: expected a number");
  return number;
}

const std::string& JsonValue::as_string() const {
  if (kind != Kind::String) throw std::runtime_error("json: expected a string");
  return string;
}

bool JsonValue::as_bool() const {
  if (kind != Kind::Bool) throw std::runtime_error("json: expected a boolean");
  return boolean;
}

// --- parser ------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    auto v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json parse error at byte " + std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
                                   text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.string = parse_string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail("bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail("bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        v.boolean = false;
        return v;
      }
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      auto key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          // difftrace only emits \u00xx control escapes; encode as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    try {
      v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace difftrace::util
