#include "util/log.hpp"

#include <string>

#include "util/mutex.hpp"

namespace difftrace::util {

void status_line(std::ostream& out, std::string_view text) {
  // One mutex for every stream: interleaving across streams pointing at the
  // same terminal would tear just as badly as same-stream races.
  static Mutex mutex;
  std::string line;
  line.reserve(text.size() + 1);
  line.append(text);
  line.push_back('\n');
  const MutexLock lock(mutex);
  out << line;
  out.flush();
}

}  // namespace difftrace::util
