// Deterministic PRNGs for the miniapps and workload generators.
// splitmix64 seeds xoshiro256**; both are tiny, fast, and reproducible across
// platforms (unlike std::default_random_engine).
#pragma once

#include <cstdint>

namespace difftrace::util {

[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x853C49E6748FEA9BULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept { return (*this)() % bound; }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept { return (x << k) | (x >> (64 - k)); }
  std::uint64_t state_[4] = {};
};

}  // namespace difftrace::util
