// Whole-file byte I/O shared by the layers that move archives and framed
// artifacts around (trace/chaos, sched/cache, serve's sharded store).
//
// The write side distinguishes plain writes from *atomic publishes*:
// write_file_atomic stages the bytes in a thread-uniquely named sibling and
// renames it over the destination, so a reader (or a crashed writer) can
// never observe a half-written file — torn output is either the old file or
// a leftover staging file that recovery scans ignore.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

namespace difftrace::util {

/// Reads an entire file; throws std::runtime_error when it cannot be opened.
[[nodiscard]] std::vector<std::uint8_t> read_file_bytes(const std::filesystem::path& path);

/// Writes (truncating) an entire file; throws std::runtime_error on failure.
void write_file_bytes(const std::filesystem::path& path, std::span<const std::uint8_t> bytes);

/// Atomic publish: writes to a thread-uniquely named temporary sibling and
/// renames it over `path`. Throws std::runtime_error on failure, removing
/// the temporary first; on success the destination transitions atomically
/// from its previous content (or absence) to `bytes`.
void write_file_atomic(const std::filesystem::path& path, std::span<const std::uint8_t> bytes);

/// Size + CRC-32 of a file, computed streaming (no whole-file buffer).
struct FileDigest {
  std::uint64_t bytes = 0;
  std::uint32_t crc32 = 0;
};

/// Throws std::runtime_error when the file cannot be opened.
[[nodiscard]] FileDigest digest_file_bytes(const std::filesystem::path& path);

/// Lower-case zero-padded "%08x" rendering — the digest spelling used by
/// run manifests and serve responses.
[[nodiscard]] std::string hex32(std::uint32_t v);

}  // namespace difftrace::util
