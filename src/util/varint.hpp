// Variable-length integer coding (unsigned LEB128) used by the streaming
// trace codecs. Encoding is append-only into a byte vector; decoding walks a
// span with an explicit cursor so callers can interleave other fields.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace difftrace::util {

/// Appends `value` to `out` as unsigned LEB128 (7 bits per byte, MSB = more).
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value);

/// Reads one unsigned LEB128 value from `in` starting at `pos`.
/// Advances `pos` past the value. Throws std::out_of_range on truncated
/// input and std::overflow_error if the value exceeds 64 bits.
[[nodiscard]] std::uint64_t get_varint(std::span<const std::uint8_t> in, std::size_t& pos);

/// Maps signed to unsigned so small-magnitude values stay short (zigzag).
[[nodiscard]] constexpr std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] constexpr std::int64_t zigzag_decode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

void put_svarint(std::vector<std::uint8_t>& out, std::int64_t value);
[[nodiscard]] std::int64_t get_svarint(std::span<const std::uint8_t> in, std::size_t& pos);

}  // namespace difftrace::util
