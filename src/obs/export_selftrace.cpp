// Self-trace exporters (chrome / csv): replay a recorded pipeline archive
// into per-thread span timelines. Lives in difftrace_selftrace, not
// difftrace_obs, because it links the trace layer (obs itself must not).
//
// Trace events carry no timestamps, so a per-stream logical clock advances
// one tick (exported as one microsecond) per event: structure and event
// ordering are exact, durations are event counts.
//
// Worker-id canonicalization: the SelfTrace stream index is the racy order
// in which threads first recorded a span, but a pool worker's span names
// embed its stable sched::Pool id ("worker3"). Lanes are therefore ordered
// main-streams-first, then workers by embedded id (ties by content), and
// the original stream keys are deliberately left out of the output — the
// same workload exports byte-identically at any DIFFTRACE_JOBS and however
// the stream-index race resolved.
#include "obs/export.hpp"

#include <algorithm>
#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "trace/store.hpp"
#include "util/json.hpp"

namespace difftrace::obs {

namespace {

struct SpanEvent {
  std::uint64_t ts = 0;   // logical ticks == event index within the stream
  std::uint64_t dur = 0;
  std::size_t depth = 0;
  std::string name;
  bool unclosed = false;  // synthesized close at end-of-stream
};

struct Lane {
  std::vector<SpanEvent> events;
  std::uint64_t ticks = 0;   // total events in the stream
  int worker_id = -1;        // from a "worker<N>" span name; -1 = main-ish
  bool complete = true;
  std::string note;
  std::string sort_key;      // content fingerprint for deterministic ties
};

std::string function_name(const trace::TraceStore& store, trace::FunctionId fid) {
  // Salvaged archives can reference ids the (damaged) registry lost.
  if (fid >= store.registry().size()) return "?fn" + std::to_string(fid);
  return store.registry().name(fid);
}

/// "worker<digits>" -> N, else -1.
int parse_worker_id(std::string_view name) {
  constexpr std::string_view kPrefix = "worker";
  if (name.size() <= kPrefix.size() || name.substr(0, kPrefix.size()) != kPrefix) return -1;
  int id = 0;
  for (const char c : name.substr(kPrefix.size())) {
    if (c < '0' || c > '9') return -1;
    id = id * 10 + (c - '0');
  }
  return id;
}

Lane build_lane(const trace::TraceStore& store, trace::TraceKey key) {
  Lane lane;
  const auto decoded = store.decode_tolerant(key);
  lane.complete = decoded.complete;
  lane.note = decoded.note;
  lane.ticks = decoded.events.size();

  struct Open {
    std::string name;
    std::uint64_t start = 0;
  };
  std::vector<Open> stack;
  std::uint64_t clock = 0;
  for (const auto& event : decoded.events) {
    auto name = function_name(store, event.fid);
    if (event.kind == trace::EventKind::Call) {
      if (lane.worker_id < 0) lane.worker_id = parse_worker_id(name);
      lane.sort_key += name;
      lane.sort_key += ';';
      stack.push_back({std::move(name), clock});
    } else if (!stack.empty()) {
      // Returns close the innermost open span; a name mismatch cannot
      // happen in a well-formed self-trace and is tolerated like one.
      Open open = std::move(stack.back());
      stack.pop_back();
      lane.events.push_back({open.start, clock - open.start, stack.size(), std::move(open.name), false});
    }
    ++clock;
  }
  // Truncated streams (watchdog, crash): close what is still open at the
  // final tick so the lane renders, and say so.
  while (!stack.empty()) {
    Open open = std::move(stack.back());
    stack.pop_back();
    lane.events.push_back({open.start, clock - open.start, stack.size(), std::move(open.name), true});
  }
  std::sort(lane.events.begin(), lane.events.end(), [](const SpanEvent& a, const SpanEvent& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    if (a.dur != b.dur) return a.dur > b.dur;  // parents before children
    return a.depth < b.depth;
  });
  return lane;
}

std::vector<Lane> build_lanes(const trace::TraceStore& store) {
  std::vector<Lane> lanes;
  for (const auto& key : store.keys()) lanes.push_back(build_lane(store, key));
  // Main streams first (stream-key order is irrelevant once worker streams
  // are identified, and main streams are compared by content so the output
  // does not depend on racy stream indices).
  std::stable_sort(lanes.begin(), lanes.end(), [](const Lane& a, const Lane& b) {
    const bool a_worker = a.worker_id >= 0;
    const bool b_worker = b.worker_id >= 0;
    if (a_worker != b_worker) return !a_worker;
    if (a_worker && a.worker_id != b.worker_id) return a.worker_id < b.worker_id;
    if (a.ticks != b.ticks) return a.ticks > b.ticks;
    return a.sort_key < b.sort_key;
  });
  return lanes;
}

std::string lane_name(const Lane& lane, std::size_t tid, std::size_t main_lanes) {
  if (lane.worker_id >= 0) return "pool worker " + std::to_string(lane.worker_id);
  if (main_lanes == 1) return "main";
  return "thread " + std::to_string(tid);
}

std::string csv_field(std::string_view s) {
  if (s.find_first_of(",\"\n") == std::string_view::npos) return std::string(s);
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void export_selftrace_chrome(const trace::TraceStore& store, std::ostream& out) {
  const auto lanes = build_lanes(store);
  std::size_t main_lanes = 0;
  for (const auto& lane : lanes)
    if (lane.worker_id < 0) ++main_lanes;

  util::JsonWriter w(out);
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();
  {
    w.begin_object();
    w.field("name", "process_name");
    w.field("ph", "M");
    w.field("pid", 1);
    w.field("tid", 0);
    w.key("args");
    w.begin_object();
    w.field("name", "difftrace self-trace");
    w.end_object();
    w.end_object();
  }
  for (std::size_t tid = 0; tid < lanes.size(); ++tid) {
    w.begin_object();
    w.field("name", "thread_name");
    w.field("ph", "M");
    w.field("pid", 1);
    w.field("tid", tid);
    w.key("args");
    w.begin_object();
    w.field("name", lane_name(lanes[tid], tid, main_lanes));
    w.end_object();
    w.end_object();
  }
  for (std::size_t tid = 0; tid < lanes.size(); ++tid) {
    const auto& lane = lanes[tid];
    for (const auto& event : lane.events) {
      w.begin_object();
      w.field("name", event.name);
      w.field("ph", "X");
      w.field("pid", 1);
      w.field("tid", tid);
      w.field("ts", event.ts);
      w.field("dur", event.dur);
      w.field("cat", "span");
      if (event.unclosed) {
        w.key("args");
        w.begin_object();
        w.field("unclosed", true);
        w.end_object();
      }
      w.end_object();
    }
    if (!lane.complete) {
      // Degraded stream: flag it in-timeline instead of silently rendering
      // a clean-looking prefix.
      w.begin_object();
      w.field("name", "truncated");
      w.field("ph", "i");
      w.field("pid", 1);
      w.field("tid", tid);
      w.field("ts", lane.ticks);
      w.field("s", "t");
      w.key("args");
      w.begin_object();
      w.field("note", lane.note);
      w.end_object();
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
  out << '\n';
}

void export_selftrace_csv(const trace::TraceStore& store, std::ostream& out) {
  const auto lanes = build_lanes(store);
  out << "tid,ts,dur,depth,name,unclosed\n";
  for (std::size_t tid = 0; tid < lanes.size(); ++tid)
    for (const auto& event : lanes[tid].events)
      out << tid << ',' << event.ts << ',' << event.dur << ',' << event.depth << ','
          << csv_field(event.name) << ',' << (event.unclosed ? 1 : 0) << '\n';
}

}  // namespace difftrace::obs
