// Process-wide metrics for the DiffTrace pipeline: named counters and
// log2-bucketed histograms, aggregated into the run manifest (obs/manifest).
//
// Design for the hot path: instruments cache a reference once
// (`static auto& c = obs::counter("nlr.tokens_in");`) and then touch only a
// relaxed atomic — no locks, no lookups. The registry mutex guards
// registration and snapshots only. Entries live behind stable pointers for
// the process lifetime; reset() zeroes values but never invalidates
// references, so cached call-site statics stay valid across CLI commands
// executed in one process (the test harness does exactly that).
//
// Counting convention: instruments count *aggregates* per operation (events
// per decoded blob, tokens per NLR build), not per element, so a fully
// instrumented pipeline costs a handful of atomic adds per stage invocation.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace difftrace::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Histogram over non-negative integer samples with fixed log2 buckets:
/// bucket 0 holds the value 0, bucket i (i >= 1) holds [2^(i-1), 2^i).
/// 65 buckets cover the full uint64 range, so record() never clamps.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  /// Bucket index of a sample: 0 for 0, otherwise std::bit_width(v).
  [[nodiscard]] static constexpr std::size_t bucket_index(std::uint64_t v) noexcept {
    return static_cast<std::size_t>(std::bit_width(v));
  }
  /// Inclusive lower bound of bucket i (0, 1, 2, 4, 8, ...).
  [[nodiscard]] static constexpr std::uint64_t bucket_lower_bound(std::size_t i) noexcept {
    return i <= 1 ? i : std::uint64_t{1} << (i - 1);
  }

  void record(std::uint64_t v) noexcept {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::array<std::uint64_t, kBuckets> buckets{};
  };
  [[nodiscard]] Snapshot snapshot() const noexcept;
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct HistogramSample {
  std::string name;
  Histogram::Snapshot data;
};

class MetricsRegistry {
 public:
  [[nodiscard]] static MetricsRegistry& instance();

  /// Returns the counter/histogram named `name`, registering it on first
  /// use. The returned reference is valid for the process lifetime.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  /// Sorted-by-name snapshots. `nonzero_only` drops entries that never
  /// fired — the manifest records what the run actually did.
  [[nodiscard]] std::vector<CounterSample> counters(bool nonzero_only = false) const;
  [[nodiscard]] std::vector<HistogramSample> histograms(bool nonzero_only = false) const;

  /// Zeroes every value; registered names and cached references survive.
  void reset();

 private:
  MetricsRegistry() = default;

  // The registry map structure is the only guarded state; Counter/Histogram
  // *values* are relaxed atomics behind stable unique_ptrs, touched lock-free
  // on the hot path (the whole point of the cached-reference idiom above).
  mutable util::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_ DT_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_ DT_GUARDED_BY(mutex_);
};

/// Quantile estimate (q in [0, 1]) from a log2-bucketed snapshot: find the
/// bucket holding the q-th sample and interpolate linearly inside it. Exact
/// for bucket 0 (the value 0); elsewhere accurate to within the bucket's
/// width, which is all a log2 histogram can promise. Returns 0 on an empty
/// snapshot. Used by the stats renderer and the chrome-trace exporter to
/// materialize p50/p95/p99 per phase.
[[nodiscard]] double histogram_percentile(const Histogram::Snapshot& snapshot, double q) noexcept;

/// Call-site helpers: obs::counter("x").add(n).
[[nodiscard]] inline Counter& counter(std::string_view name) {
  return MetricsRegistry::instance().counter(name);
}
[[nodiscard]] inline Histogram& histogram(std::string_view name) {
  return MetricsRegistry::instance().histogram(name);
}

}  // namespace difftrace::obs
