// Manifest exporters (chrome / csv). The self-trace exporters live in
// export_selftrace.cpp, which links the trace layer; this TU stays inside
// difftrace_obs (util + obs only).
#include "obs/export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/str.hpp"

namespace difftrace::obs {

std::optional<ExportFormat> parse_export_format(std::string_view name) {
  if (name == "chrome") return ExportFormat::Chrome;
  if (name == "csv") return ExportFormat::Csv;
  return std::nullopt;
}

namespace {

/// ns -> exact "<µs>.<frac>" decimal literal (chrome ts/dur are µs). snprintf
/// of two integers, not a double round-trip, so export is byte-deterministic.
std::string us_literal(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

std::uint64_t rounded_percentile(const Histogram::Snapshot& data, double q) {
  const double v = histogram_percentile(data, q);
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(v));
}

/// The manifest's span tree, re-linked from the flat phase list. Children
/// are laid out sequentially from the parent's start so durations and
/// nesting survive even though the manifest stores aggregates only.
struct PhaseNode {
  const PhaseStats* phase = nullptr;
  std::uint64_t start_ns = 0;
  std::vector<PhaseNode*> children;
};

struct PhaseTree {
  std::vector<PhaseNode> nodes;    // one per phase, stable addresses
  std::vector<PhaseNode*> roots;   // depth-0, main (largest wall) first
};

PhaseTree build_tree(const RunManifest& manifest) {
  PhaseTree tree;
  tree.nodes.reserve(manifest.phases.size());
  std::map<std::string_view, PhaseNode*> by_path;
  for (const auto& phase : manifest.phases) {
    tree.nodes.push_back({&phase, 0, {}});
    by_path[phase.path] = &tree.nodes.back();
  }
  for (auto& node : tree.nodes) {
    const auto& path = node.phase->path;
    const auto slash = path.rfind('/');
    if (slash == std::string::npos) {
      tree.roots.push_back(&node);
      continue;
    }
    const auto parent = by_path.find(std::string_view(path).substr(0, slash));
    if (parent != by_path.end())
      parent->second->children.push_back(&node);
    else
      tree.roots.push_back(&node);  // orphaned path: promote, never drop
  }
  // Lanes: the command's main tree (largest wall) first, then the
  // worker-rooted trees, largest first, ties broken by path.
  std::sort(tree.roots.begin(), tree.roots.end(), [](const PhaseNode* a, const PhaseNode* b) {
    if (a->phase->wall_ns != b->phase->wall_ns) return a->phase->wall_ns > b->phase->wall_ns;
    return a->phase->path < b->phase->path;
  });
  for (auto& node : tree.nodes) {
    std::sort(node.children.begin(), node.children.end(),
              [](const PhaseNode* a, const PhaseNode* b) { return a->phase->path < b->phase->path; });
    std::uint64_t cursor = 0;
    for (auto* child : node.children) {
      child->start_ns = cursor;  // relative; made absolute during layout
      cursor += child->phase->wall_ns;
    }
  }
  return tree;
}

void layout(PhaseNode* node, std::uint64_t base_ns) {
  node->start_ns += base_ns;
  for (auto* child : node->children) layout(child, node->start_ns);
}

const HistogramSample* find_histogram(const RunManifest& manifest, const std::string& name) {
  for (const auto& histogram : manifest.histograms)
    if (histogram.name == name) return &histogram;
  return nullptr;
}

void write_phase_event(util::JsonWriter& w, const RunManifest& manifest, const PhaseNode& node,
                       int tid, bool is_main_root) {
  const auto& phase = *node.phase;
  w.begin_object();
  w.field("name", phase.name);
  w.field("ph", "X");
  w.field("pid", 1);
  w.field("tid", tid);
  w.key("ts");
  w.raw_value(us_literal(node.start_ns));
  w.key("dur");
  w.raw_value(us_literal(phase.wall_ns));
  w.field("cat", "phase");
  w.key("args");
  w.begin_object();
  w.field("path", phase.path);
  w.field("count", phase.count);
  w.field("cpu_ns", phase.cpu_ns);
  if (const auto* histogram = find_histogram(manifest, "span." + phase.path)) {
    w.field("p50_ns", rounded_percentile(histogram->data, 0.50));
    w.field("p95_ns", rounded_percentile(histogram->data, 0.95));
    w.field("p99_ns", rounded_percentile(histogram->data, 0.99));
  }
  if (is_main_root && !manifest.counters.empty()) {
    // The run's counter snapshot rides on the root span: hovering the
    // command lane answers "how many cache hits / salvages happened here".
    w.key("counters");
    w.begin_object();
    for (const auto& counter : manifest.counters) w.field(counter.name, counter.value);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

void write_tree_events(util::JsonWriter& w, const RunManifest& manifest, const PhaseNode& node,
                       int tid, bool is_main_root) {
  write_phase_event(w, manifest, node, tid, is_main_root);
  for (const auto* child : node.children) write_tree_events(w, manifest, *child, tid, false);
}

void write_metadata(util::JsonWriter& w, std::string_view name, std::string_view value, int tid) {
  w.begin_object();
  w.field("name", name);
  w.field("ph", "M");
  w.field("pid", 1);
  w.field("tid", tid);
  w.key("args");
  w.begin_object();
  w.field("name", value);
  w.end_object();
  w.end_object();
}

std::string csv_field(std::string_view s) {
  if (s.find_first_of(",\"\n") == std::string_view::npos) return std::string(s);
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void export_manifest_chrome(const RunManifest& manifest, std::ostream& out) {
  auto tree = build_tree(manifest);
  for (auto* root : tree.roots) layout(root, 0);

  util::JsonWriter w(out);
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();
  write_metadata(w, "process_name", "difftrace " + util::join(manifest.command, " "), 0);
  for (std::size_t tid = 0; tid < tree.roots.size(); ++tid)
    write_metadata(w, "thread_name", tree.roots[tid]->phase->name, static_cast<int>(tid));
  for (std::size_t tid = 0; tid < tree.roots.size(); ++tid)
    write_tree_events(w, manifest, *tree.roots[tid], static_cast<int>(tid), tid == 0);
  w.end_array();
  w.end_object();
  out << '\n';
}

void export_manifest_csv(const RunManifest& manifest, std::ostream& out) {
  out << "path,name,depth,count,wall_ns,cpu_ns,p50_ns,p95_ns,p99_ns\n";
  for (const auto& phase : manifest.phases) {
    const auto* histogram = find_histogram(manifest, "span." + phase.path);
    out << csv_field(phase.path) << ',' << csv_field(phase.name) << ',' << phase.depth << ','
        << phase.count << ',' << phase.wall_ns << ',' << phase.cpu_ns << ',';
    if (histogram != nullptr) {
      out << rounded_percentile(histogram->data, 0.50) << ','
          << rounded_percentile(histogram->data, 0.95) << ','
          << rounded_percentile(histogram->data, 0.99);
    } else {
      out << ",,";
    }
    out << '\n';
  }
}

}  // namespace difftrace::obs
