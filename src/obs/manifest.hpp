// RunManifest: the machine-readable record of what one difftrace run did —
// tool version, command line, input archive digests, per-phase wall/CPU
// times from the span layer, peak RSS, and every nonzero pipeline counter
// and histogram. Written by the CLI's global `--stats[=path]` flag and by
// the perf benches; rendered as human tables by `difftrace stats`; validated
// in CI by tools/check_manifest.py.
//
// The JSON schema (version 1) is stable and documented in DESIGN.md
// ("Observability"). Summary of the top-level object:
//   manifest_version  int     schema version (1)
//   tool_version      string  difftrace version
//   command           [string]  argv of the run (difftrace itself omitted)
//   exit_code         int
//   wall_ns           int     wall time of the run's root phase
//   cpu_ns            int     process CPU time consumed so far
//   peak_rss_kb       int     ru_maxrss at manifest collection
//   jobs              int     resolved sched::Pool size (0 = not recorded)
//   cache_dir         string  artifact cache directory ("" = no cache)
//   cache_hits        int     sched.cache_hit total at collection
//   cache_misses      int     sched.cache_miss total at collection
//   check_engine      string  fact engine of a `check` run ("" elsewhere)
//   summary_cache_hits   int  check.summary_cache_hit total at collection
//   summary_cache_misses int  check.summary_cache_miss total at collection
//   self_trace        string  path of the run's --self-trace archive ("" = none)
//   inputs            [{path, bytes, crc32, ok}]  input archive digests
//   phases            [{path, name, depth, count, wall_ns, cpu_ns}]
//   counters          [{name, value}]             nonzero counters only
//   histograms        [{name, count, sum, buckets: [{le_log2, count}]}]
// The four execution-engine fields were added after the schema's first
// release; the version stays 1 because they are additive and the parser
// tolerates their absence.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace difftrace::util {
struct JsonValue;
}

namespace difftrace::obs {

inline constexpr int kManifestVersion = 1;
inline constexpr std::string_view kToolVersion = "1.0.0";

/// Identity digest of one input archive. `ok` is false when the file could
/// not be read (the manifest still records that it was named).
struct ManifestInput {
  std::string path;
  std::uint64_t bytes = 0;
  std::uint32_t crc32 = 0;
  bool ok = false;
};

struct RunManifest {
  int manifest_version = kManifestVersion;
  std::string tool_version{kToolVersion};
  std::vector<std::string> command;
  int exit_code = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t cpu_ns = 0;
  std::uint64_t peak_rss_kb = 0;
  /// Execution-engine telemetry: resolved job count (CLI-filled; 0 when the
  /// command has no sweep), cache directory ("" = no cache), and the
  /// process-wide cache hit/miss totals (auto-filled from the sched
  /// counters by collect_manifest).
  std::uint64_t jobs = 0;
  std::string cache_dir;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// Fact-engine provenance of a `check` run: which engine derived the
  /// checker facts ("replay" / "summary" / "auto"; "" for other commands)
  /// and the summary-cache traffic (auto-filled from the check.summary_*
  /// counters by collect_manifest). Additive like the engine fields above.
  std::string check_engine;
  std::uint64_t summary_cache_hits = 0;
  std::uint64_t summary_cache_misses = 0;
  /// Path of the self-trace archive the run wrote under `--self-trace[=path]`
  /// ("" when the run recorded none). `perf diff` follows these paths to
  /// localize *where* two runs' phase structures diverged via diffNLR.
  /// Additive like the engine fields above.
  std::string self_trace;
  std::vector<ManifestInput> inputs;
  std::vector<PhaseStats> phases;
  std::vector<CounterSample> counters;
  std::vector<HistogramSample> histograms;

  void write_json(std::ostream& out) const;
  [[nodiscard]] std::string to_json() const;

  /// Human-readable summary tables (`difftrace stats`).
  [[nodiscard]] std::string render() const;

  /// Fraction of the root phase's wall time covered by its direct
  /// children — the "no dark time" health indicator. 1.0 when there are no
  /// depth-1 phases to judge (trivial runs).
  [[nodiscard]] double phase_coverage() const;

  /// Inverse of write_json; throws std::runtime_error on malformed or
  /// schema-incompatible documents.
  [[nodiscard]] static RunManifest from_json(const util::JsonValue& doc);
  [[nodiscard]] static RunManifest from_json_text(std::string_view text);
};

/// Snapshots the process-wide telemetry (phase table, metrics registry,
/// rusage) into a manifest. `input_paths` are digested with CRC-32;
/// wall_ns is taken from the largest depth-0 phase (the command root span).
[[nodiscard]] RunManifest collect_manifest(std::vector<std::string> command,
                                           const std::vector<std::string>& input_paths,
                                           int exit_code);

[[nodiscard]] std::uint64_t peak_rss_kb();
[[nodiscard]] std::uint64_t process_cpu_ns();
[[nodiscard]] ManifestInput digest_file(const std::string& path);

}  // namespace difftrace::obs
