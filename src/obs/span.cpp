#include "obs/span.hpp"

#include <atomic>
#include <ctime>

#include "obs/metrics.hpp"

namespace difftrace::obs {

namespace {

std::uint64_t clock_ns(clockid_t clock) noexcept {
  timespec ts{};
  clock_gettime(clock, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

// Per-thread stack of open span paths; the top is the parent of a new span.
thread_local std::vector<std::string> tl_span_stack;

std::atomic<SpanHook> g_span_hook{nullptr};

}  // namespace

std::uint64_t wall_now_ns() noexcept { return clock_ns(CLOCK_MONOTONIC); }
std::uint64_t thread_cpu_now_ns() noexcept { return clock_ns(CLOCK_THREAD_CPUTIME_ID); }

void set_span_hook(SpanHook hook) noexcept { g_span_hook.store(hook, std::memory_order_release); }

PhaseTable& PhaseTable::instance() {
  static PhaseTable table;
  return table;
}

void PhaseTable::add(const std::string& path, std::string_view name, std::size_t depth,
                     std::uint64_t wall_ns, std::uint64_t cpu_ns) {
  const util::MutexLock lock(mutex_);
  auto& stats = phases_[path];
  if (stats.count == 0) {
    stats.path = path;
    stats.name = std::string(name);
    stats.depth = depth;
  }
  ++stats.count;
  stats.wall_ns += wall_ns;
  stats.cpu_ns += cpu_ns;
}

std::vector<PhaseStats> PhaseTable::snapshot() const {
  const util::MutexLock lock(mutex_);
  std::vector<PhaseStats> out;
  out.reserve(phases_.size());
  for (const auto& [path, stats] : phases_) out.push_back(stats);
  return out;
}

void PhaseTable::reset() {
  const util::MutexLock lock(mutex_);
  phases_.clear();
}

Span::Span(std::string_view name) {
  depth_ = tl_span_stack.size();
  if (depth_ == 0) {
    path_ = std::string(name);
  } else {
    path_ = tl_span_stack.back();
    path_ += '/';
    name_offset_ = path_.size();
    path_ += name;
  }
  tl_span_stack.push_back(path_);
  if (const auto hook = g_span_hook.load(std::memory_order_acquire)) hook(name, true);
  start_wall_ = wall_now_ns();
  start_cpu_ = thread_cpu_now_ns();
}

Span::~Span() {
  const auto wall = wall_now_ns() - start_wall_;
  const auto cpu = thread_cpu_now_ns() - start_cpu_;
  const std::string_view name = std::string_view(path_).substr(name_offset_);
  if (const auto hook = g_span_hook.load(std::memory_order_acquire)) hook(name, false);
  tl_span_stack.pop_back();
  PhaseTable::instance().add(path_, name, depth_, wall, cpu);
  // Per-phase duration distribution ("span.<path>"), the source of the
  // p50/p95/p99 columns in `difftrace stats` and chrome-trace span args.
  // Same per-span-close cost class as the PhaseTable add above (one lock +
  // map lookup); spans mark phases, not events, so this is off the hot path.
  histogram("span." + path_).record(wall);
}

}  // namespace difftrace::obs
