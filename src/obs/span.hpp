// RAII phase timers for the DiffTrace pipeline.
//
// A Span marks one pipeline phase (load, sweep, session, evaluate, ...) on
// the thread that opens it. Spans nest: each thread keeps a stack, and a
// span's *path* is the '/'-joined names of the enclosing spans plus its own
// ("rank/sweep/session"). On destruction the wall and thread-CPU time are
// aggregated into the process-wide PhaseTable, keyed by path — repeated
// phases (one Session per filter) accumulate count and totals instead of
// producing one record each.
//
// A span opened on a worker thread with no enclosing span roots its own
// tree (depth 0) — the parallel sweep's per-filter sessions appear as
// independent roots, which the manifest's coverage accounting ignores (it
// reasons over the main thread's tree: the depth-0 phase with the largest
// wall time and its depth-1 children).
//
// The span begin/end hook is how obs::SelfTrace observes phases without the
// span layer depending on the trace layer (which itself depends on obs for
// counters): selftrace installs a function pointer, spans invoke it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace difftrace::obs {

/// Aggregated timings of one phase path.
struct PhaseStats {
  std::string path;   // "rank/sweep/session"
  std::string name;   // "session"
  std::size_t depth = 0;  // 0 = root of its thread's tree
  std::uint64_t count = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t cpu_ns = 0;  // thread CPU time
};

class PhaseTable {
 public:
  [[nodiscard]] static PhaseTable& instance();

  void add(const std::string& path, std::string_view name, std::size_t depth,
           std::uint64_t wall_ns, std::uint64_t cpu_ns);

  /// Snapshot sorted by path.
  [[nodiscard]] std::vector<PhaseStats> snapshot() const;
  void reset();

 private:
  PhaseTable() = default;

  mutable util::Mutex mutex_;
  std::map<std::string, PhaseStats> phases_ DT_GUARDED_BY(mutex_);
};

/// Monotonic wall clock / calling thread's CPU clock, in nanoseconds.
[[nodiscard]] std::uint64_t wall_now_ns() noexcept;
[[nodiscard]] std::uint64_t thread_cpu_now_ns() noexcept;

/// Span begin/end observer (used by SelfTrace). `enter` is true at span
/// begin. The hook runs on the span's thread; nullptr disables.
using SpanHook = void (*)(std::string_view name, bool enter);
void set_span_hook(SpanHook hook) noexcept;

class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::string path_;  // full path including this span's name
  std::size_t name_offset_ = 0;  // path_.substr(name_offset_) == name
  std::size_t depth_ = 0;
  std::uint64_t start_wall_ = 0;
  std::uint64_t start_cpu_ = 0;
};

}  // namespace difftrace::obs
