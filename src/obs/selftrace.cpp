#include "obs/selftrace.hpp"

#include <stdexcept>

#include "obs/span.hpp"

namespace difftrace::obs {

namespace {

void selftrace_span_hook(std::string_view name, bool enter) {
  SelfTrace::instance().on_span(name, enter);
}

}  // namespace

SelfTrace& SelfTrace::instance() {
  static SelfTrace self;
  return self;
}

void SelfTrace::start(std::string codec_name) {
  {
    const util::MutexLock lock(mutex_);
    if (active_) throw std::logic_error("SelfTrace::start: already active");
    active_ = true;
    codec_name_ = std::move(codec_name);
    registry_ = std::make_shared<trace::FunctionRegistry>();
    writers_.clear();
    next_thread_index_ = 0;
  }
  set_span_hook(&selftrace_span_hook);
}

trace::TraceStore SelfTrace::stop() {
  set_span_hook(nullptr);
  const util::MutexLock lock(mutex_);
  if (!active_) throw std::logic_error("SelfTrace::stop: not active");
  active_ = false;
  trace::TraceStore store(registry_);
  for (const auto& [tid, writer] : writers_) store.absorb(*writer);
  writers_.clear();
  registry_.reset();
  return store;
}

bool SelfTrace::active() const {
  const util::MutexLock lock(mutex_);
  return active_;
}

void SelfTrace::on_span(std::string_view name, bool enter) {
  const util::MutexLock lock(mutex_);
  if (!active_) return;  // hook raced a stop(); drop the event
  auto it = writers_.find(std::this_thread::get_id());
  if (it == writers_.end()) {
    const trace::TraceKey key{0, next_thread_index_++};
    it = writers_
             .emplace(std::this_thread::get_id(),
                      std::make_unique<trace::TraceWriter>(key, codec_name_))
             .first;
  }
  const auto fid = registry_->intern(name, trace::Image::Main);
  it->second->record(enter ? trace::EventKind::Call : trace::EventKind::Return, fid);
}

}  // namespace difftrace::obs
