// Telemetry exporters: turn a RunManifest's aggregated span tree or a
// self-trace archive into artifacts external tools consume.
//
// Chrome Trace Event JSON ("chrome" format) loads in chrome://tracing and
// Perfetto: one synthetic process, one chrome "thread" lane per depth-0 span
// root (the command's main tree plus each worker-rooted tree), "X" complete
// events for phases. The manifest records *aggregates* (no per-instance
// timestamps), so the manifest exporter lays phases out sequentially —
// each child starts where its previous sibling ended under its parent's
// start — which preserves durations, nesting, and proportions exactly, and
// ordering approximately. Span args carry the per-phase duration percentiles
// (p50/p95/p99 from the "span.<path>" histograms) and the run's counter
// snapshot rides on the root span, so hovering a lane answers "how many
// cache hits / salvages / summary hits happened here".
//
// The self-trace exporter replays a recorded pipeline archive (a genuine v2
// archive of Call/Return phase events). Trace events carry no timestamps, so
// it uses a per-thread logical clock (one microsecond per event) — the
// *structure* is exact, durations are event counts. Worker streams are
// canonicalized by the sched::Pool worker id embedded in their span names
// ("worker3"), not by the racy order in which threads first recorded a span,
// so the same workload exports byte-identically regardless of which OS
// thread won the stream-index race.
//
// CSV ("csv" format) is the flat-file spelling of the same data for
// spreadsheet/pandas consumption.
//
// All exporters write results to the given stream (the CLI passes stdout or
// --out FILE) and never chatter: stream discipline is enforced by the
// obs-sink-discipline lint rule.
#pragma once

#include <iosfwd>
#include <optional>
#include <string_view>

#include "obs/manifest.hpp"

namespace difftrace::trace {
class TraceStore;
}

namespace difftrace::obs {

enum class ExportFormat : std::uint8_t { Chrome, Csv };

/// "chrome" / "csv"; nullopt for anything else.
[[nodiscard]] std::optional<ExportFormat> parse_export_format(std::string_view name);

/// Manifest span tree -> Chrome Trace Event JSON / CSV (one row per phase,
/// with percentile columns).
void export_manifest_chrome(const RunManifest& manifest, std::ostream& out);
void export_manifest_csv(const RunManifest& manifest, std::ostream& out);

/// Self-trace archive -> Chrome Trace Event JSON / CSV (one row per span
/// instance, logical-clock timestamps). Tolerant of damaged archives: each
/// stream contributes its longest decodable prefix, unclosed spans are
/// closed at the stream's final tick and tagged `"unclosed": true`.
void export_selftrace_chrome(const trace::TraceStore& store, std::ostream& out);
void export_selftrace_csv(const trace::TraceStore& store, std::ostream& out);

}  // namespace difftrace::obs
