// Noise-aware comparison of two RunManifests, phase by phase — the engine
// behind `difftrace perf diff` and the CI perf gate (tools/perf_gate.py).
//
// Noise model: a phase only counts as changed when it moves by BOTH a
// relative threshold (default 25% of the base wall time) AND an absolute
// floor (default 1 ms). The floor keeps microsecond phases from flapping —
// a 0.1 ms phase that doubles is still noise; the relative threshold keeps
// big phases from tripping on scheduler jitter. Phases present on only one
// side report added/removed (structural change, never a gate failure by
// itself). The report's exit_code() is 3 on any regression, 0 otherwise,
// matching the check-command convention "3 = the tool worked and found a
// problem".
//
// The differ itself is pure manifest math; localizing *where* the phase
// structure diverged (running diffNLR over the two runs' self-trace
// archives) needs the core pipeline, so the CLI fills `selftrace` in after
// the fact.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/manifest.hpp"

namespace difftrace::obs {

inline constexpr int kPerfDiffVersion = 1;

struct PerfDiffOptions {
  double rel_threshold = 0.25;             // fraction of base wall
  std::uint64_t abs_floor_ns = 1'000'000;  // 1 ms
};

enum class PhaseVerdict : std::uint8_t { Unchanged, Improved, Regressed, Added, Removed };
[[nodiscard]] std::string_view phase_verdict_name(PhaseVerdict verdict) noexcept;

struct PhaseDelta {
  std::string path;
  std::uint64_t base_wall_ns = 0;
  std::uint64_t head_wall_ns = 0;
  std::uint64_t base_count = 0;
  std::uint64_t head_count = 0;
  PhaseVerdict verdict = PhaseVerdict::Unchanged;

  /// head/base wall ratio; 0 when the phase is added or removed.
  [[nodiscard]] double ratio() const noexcept;
};

struct CounterDelta {
  std::string name;
  std::uint64_t base = 0;
  std::uint64_t head = 0;
};

/// Self-trace divergence localization, filled by the CLI when both
/// manifests name a readable self-trace archive.
struct SelfTraceDiff {
  bool ran = false;
  bool identical = false;
  std::size_t distance = 0;  // diffNLR edit distance over the main stream
  std::string note;          // why it was skipped, or a one-line summary
  std::string rendered;      // diffNLR block output ("" when identical)
};

struct PerfDiffReport {
  PerfDiffOptions options;
  std::string base_label;
  std::string head_label;
  std::uint64_t base_wall_ns = 0;
  std::uint64_t head_wall_ns = 0;
  std::vector<PhaseDelta> phases;      // union of both sides, by path
  std::vector<CounterDelta> counters;  // counters whose values differ
  SelfTraceDiff selftrace;

  [[nodiscard]] std::size_t count(PhaseVerdict verdict) const noexcept;
  [[nodiscard]] bool regressed() const noexcept { return count(PhaseVerdict::Regressed) != 0; }
  [[nodiscard]] int exit_code() const noexcept { return regressed() ? 3 : 0; }

  /// Human tables (stdout of `perf diff`).
  [[nodiscard]] std::string render() const;
  /// Machine output (`perf diff --json`), validated by
  /// tools/check_manifest.py --perfdiff.
  void write_json(std::ostream& out) const;
};

[[nodiscard]] PerfDiffReport diff_manifests(const RunManifest& base, const RunManifest& head,
                                            const PerfDiffOptions& options = {},
                                            std::string base_label = "base",
                                            std::string head_label = "head");

}  // namespace difftrace::obs
