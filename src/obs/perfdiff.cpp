#include "obs/perfdiff.hpp"

#include <map>
#include <ostream>
#include <sstream>

#include "util/json.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

namespace difftrace::obs {

std::string_view phase_verdict_name(PhaseVerdict verdict) noexcept {
  switch (verdict) {
    case PhaseVerdict::Unchanged: return "unchanged";
    case PhaseVerdict::Improved: return "improved";
    case PhaseVerdict::Regressed: return "regressed";
    case PhaseVerdict::Added: return "added";
    case PhaseVerdict::Removed: return "removed";
  }
  return "unchanged";
}

double PhaseDelta::ratio() const noexcept {
  if (verdict == PhaseVerdict::Added || verdict == PhaseVerdict::Removed) return 0.0;
  if (base_wall_ns == 0) return head_wall_ns == 0 ? 1.0 : 0.0;
  return static_cast<double>(head_wall_ns) / static_cast<double>(base_wall_ns);
}

std::size_t PerfDiffReport::count(PhaseVerdict verdict) const noexcept {
  std::size_t n = 0;
  for (const auto& phase : phases)
    if (phase.verdict == verdict) ++n;
  return n;
}

namespace {

PhaseVerdict judge(std::uint64_t base, std::uint64_t head, const PerfDiffOptions& options) {
  const auto delta = head > base ? head - base : base - head;
  if (delta <= options.abs_floor_ns) return PhaseVerdict::Unchanged;
  const double rel = base == 0 ? 1.0 : static_cast<double>(delta) / static_cast<double>(base);
  if (rel <= options.rel_threshold) return PhaseVerdict::Unchanged;
  return head > base ? PhaseVerdict::Regressed : PhaseVerdict::Improved;
}

std::string format_ms(std::uint64_t ns) {
  return util::format_double(static_cast<double>(ns) / 1e6, 3);
}

}  // namespace

PerfDiffReport diff_manifests(const RunManifest& base, const RunManifest& head,
                              const PerfDiffOptions& options, std::string base_label,
                              std::string head_label) {
  PerfDiffReport report;
  report.options = options;
  report.base_label = std::move(base_label);
  report.head_label = std::move(head_label);
  report.base_wall_ns = base.wall_ns;
  report.head_wall_ns = head.wall_ns;

  struct Sides {
    PhaseDelta delta;
    bool in_base = false;
    bool in_head = false;
  };
  std::map<std::string, Sides> by_path;  // ordered: report rows sort by path
  for (const auto& phase : base.phases) {
    auto& sides = by_path[phase.path];
    sides.delta.path = phase.path;
    sides.delta.base_wall_ns = phase.wall_ns;
    sides.delta.base_count = phase.count;
    sides.in_base = true;
  }
  for (const auto& phase : head.phases) {
    auto& sides = by_path[phase.path];
    sides.delta.path = phase.path;
    sides.delta.head_wall_ns = phase.wall_ns;
    sides.delta.head_count = phase.count;
    sides.in_head = true;
  }
  for (auto& [path, sides] : by_path) {
    if (sides.in_base && sides.in_head)
      sides.delta.verdict = judge(sides.delta.base_wall_ns, sides.delta.head_wall_ns, options);
    else
      sides.delta.verdict = sides.in_base ? PhaseVerdict::Removed : PhaseVerdict::Added;
    report.phases.push_back(sides.delta);
  }

  std::map<std::string, CounterDelta> counters;
  for (const auto& counter : base.counters) {
    auto& delta = counters[counter.name];
    delta.name = counter.name;
    delta.base = counter.value;
  }
  for (const auto& counter : head.counters) {
    auto& delta = counters[counter.name];
    delta.name = counter.name;
    delta.head = counter.value;
  }
  for (auto& [name, delta] : counters)
    if (delta.base != delta.head) report.counters.push_back(delta);

  return report;
}

std::string PerfDiffReport::render() const {
  std::ostringstream out;
  out << "perf diff: " << base_label << " -> " << head_label << " (threshold "
      << util::format_double(options.rel_threshold * 100.0, 0) << "% and "
      << format_ms(options.abs_floor_ns) << " ms)\n";
  out << "total wall:  " << format_ms(base_wall_ns) << " ms -> " << format_ms(head_wall_ns)
      << " ms\n";

  if (!phases.empty()) {
    util::TextTable table({"Phase", "Base ms", "Head ms", "Ratio", "Verdict"});
    for (const auto& phase : phases) {
      const bool structural =
          phase.verdict == PhaseVerdict::Added || phase.verdict == PhaseVerdict::Removed;
      table.add_row({phase.path,
                     phase.verdict == PhaseVerdict::Added ? "-" : format_ms(phase.base_wall_ns),
                     phase.verdict == PhaseVerdict::Removed ? "-" : format_ms(phase.head_wall_ns),
                     structural ? "-" : util::format_double(phase.ratio(), 2),
                     std::string(phase_verdict_name(phase.verdict))});
    }
    out << "\n" << table.render();
  }

  if (!counters.empty()) {
    util::TextTable table({"Counter", "Base", "Head"});
    for (const auto& counter : counters)
      table.add_row({counter.name, std::to_string(counter.base), std::to_string(counter.head)});
    out << "\n" << table.render();
  }

  if (selftrace.ran) {
    out << "\nself-trace divergence (diffNLR over the two runs' pipelines):\n";
    if (selftrace.identical) {
      out << "  phase structures are identical\n";
    } else {
      out << "  distance " << selftrace.distance << "\n";
      if (!selftrace.rendered.empty()) out << selftrace.rendered;
    }
  } else if (!selftrace.note.empty()) {
    out << "\nself-trace divergence: " << selftrace.note << "\n";
  }

  out << "\n"
      << count(PhaseVerdict::Regressed) << " regressed, " << count(PhaseVerdict::Improved)
      << " improved, " << count(PhaseVerdict::Unchanged) << " unchanged, "
      << count(PhaseVerdict::Added) << " added, " << count(PhaseVerdict::Removed) << " removed\n";
  out << "verdict: " << (regressed() ? "REGRESSED" : "ok") << "\n";
  return std::move(out).str();
}

void PerfDiffReport::write_json(std::ostream& out) const {
  util::JsonWriter w(out);
  w.begin_object();
  w.field("perfdiff_version", kPerfDiffVersion);
  w.field("base", base_label);
  w.field("head", head_label);
  w.field("rel_threshold", options.rel_threshold);
  w.field("abs_floor_ns", options.abs_floor_ns);
  w.field("base_wall_ns", base_wall_ns);
  w.field("head_wall_ns", head_wall_ns);
  w.field("verdict", regressed() ? "regressed" : "ok");
  w.field("exit_code", exit_code());

  w.key("summary");
  w.begin_object();
  for (const auto verdict : {PhaseVerdict::Unchanged, PhaseVerdict::Improved,
                             PhaseVerdict::Regressed, PhaseVerdict::Added, PhaseVerdict::Removed})
    w.field(phase_verdict_name(verdict), static_cast<std::uint64_t>(count(verdict)));
  w.end_object();

  w.key("phases");
  w.begin_array();
  for (const auto& phase : phases) {
    w.begin_object();
    w.field("path", phase.path);
    w.field("base_wall_ns", phase.base_wall_ns);
    w.field("head_wall_ns", phase.head_wall_ns);
    w.field("base_count", phase.base_count);
    w.field("head_count", phase.head_count);
    w.field("ratio", phase.ratio());
    w.field("verdict", phase_verdict_name(phase.verdict));
    w.end_object();
  }
  w.end_array();

  w.key("counters");
  w.begin_array();
  for (const auto& counter : counters) {
    w.begin_object();
    w.field("name", counter.name);
    w.field("base", counter.base);
    w.field("head", counter.head);
    w.end_object();
  }
  w.end_array();

  w.key("selftrace");
  w.begin_object();
  w.field("ran", selftrace.ran);
  w.field("identical", selftrace.identical);
  w.field("distance", static_cast<std::uint64_t>(selftrace.distance));
  w.field("note", selftrace.note);
  w.end_object();

  w.end_object();
  out << '\n';
}

}  // namespace difftrace::obs
