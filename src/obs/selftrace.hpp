// SelfTrace: difftrace tracing itself.
//
// When started, every obs::Span begin/end is recorded as a Call/Return
// event of a function named after the phase, through the same machinery
// application traces use: phase names are interned into a
// trace::FunctionRegistry, events go through per-thread trace::TraceWriter
// streams (incremental codec, crash-survivable flushing), and stop()
// harvests a genuine trace::TraceStore. Saved with TraceStore::save it is a
// v2 framed+checksummed archive that `difftrace fsck` verifies and
// `difftrace nlr` / `diffnlr` analyze — so a structural regression in the
// pipeline (a stage that stopped running, a loop that changed shape) shows
// up as a diffNLR between two self-traces, exactly the paper's method
// pointed at its own implementation.
//
// Streams are keyed {0, thread-index}: the first thread to open a span is
// 0.0 (the CLI main thread), sweep workers become 0.1, 0.2, ... in order of
// first span. Span frequency is per pipeline stage, not per trace event, so
// the singleton's mutex is uncontended in practice.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>

#include "trace/registry.hpp"
#include "trace/store.hpp"
#include "trace/writer.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace difftrace::obs {

class SelfTrace {
 public:
  [[nodiscard]] static SelfTrace& instance();

  SelfTrace(const SelfTrace&) = delete;
  SelfTrace& operator=(const SelfTrace&) = delete;

  /// Installs the span hook and begins recording. Throws std::logic_error
  /// if already active.
  void start(std::string codec_name = "parlot");

  /// Uninstalls the hook and harvests the per-thread streams into a store.
  /// Throws std::logic_error if not active.
  [[nodiscard]] trace::TraceStore stop();

  [[nodiscard]] bool active() const;

  /// Span-hook entry point (public for the free-function trampoline).
  void on_span(std::string_view name, bool enter);

 private:
  SelfTrace() = default;

  mutable util::Mutex mutex_;
  bool active_ DT_GUARDED_BY(mutex_) = false;
  std::string codec_name_ DT_GUARDED_BY(mutex_) = "parlot";
  std::shared_ptr<trace::FunctionRegistry> registry_ DT_GUARDED_BY(mutex_);
  std::map<std::thread::id, std::unique_ptr<trace::TraceWriter>> writers_ DT_GUARDED_BY(mutex_);
  int next_thread_index_ DT_GUARDED_BY(mutex_) = 0;
};

}  // namespace difftrace::obs
