#include "obs/metrics.hpp"

namespace difftrace::obs {

Histogram::Snapshot Histogram::snapshot() const noexcept {
  Snapshot out;
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kBuckets; ++i)
    out.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

double histogram_percentile(const Histogram::Snapshot& snapshot, double q) noexcept {
  if (snapshot.count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample, 1-based; q=0 picks the first sample.
  const double rank = q * static_cast<double>(snapshot.count - 1) + 1.0;
  double seen = 0.0;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    const auto in_bucket = snapshot.buckets[i];
    if (in_bucket == 0) continue;
    if (seen + static_cast<double>(in_bucket) < rank) {
      seen += static_cast<double>(in_bucket);
      continue;
    }
    if (i == 0) return 0.0;  // bucket 0 holds only the value 0
    const auto lb = static_cast<double>(Histogram::bucket_lower_bound(i));
    const double ub = i + 1 < Histogram::kBuckets
                          ? static_cast<double>(Histogram::bucket_lower_bound(i + 1))
                          : lb * 2.0;
    // Place each sample at the middle of its 1/in_bucket slot so a lone
    // sample reports the bucket midpoint, not the upper bound.
    const double frac = (rank - seen - 0.5) / static_cast<double>(in_bucket);
    return lb + (frac < 0.0 ? 0.0 : frac) * (ub - lb);
  }
  // Unreachable with a consistent snapshot; fall back to the mean.
  return static_cast<double>(snapshot.sum) / static_cast<double>(snapshot.count);
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const util::MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const util::MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  return *it->second;
}

std::vector<CounterSample> MetricsRegistry::counters(bool nonzero_only) const {
  const util::MutexLock lock(mutex_);
  std::vector<CounterSample> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    const auto value = counter->value();
    if (nonzero_only && value == 0) continue;
    out.push_back({name, value});
  }
  return out;
}

std::vector<HistogramSample> MetricsRegistry::histograms(bool nonzero_only) const {
  const util::MutexLock lock(mutex_);
  std::vector<HistogramSample> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    auto data = histogram->snapshot();
    if (nonzero_only && data.count == 0) continue;
    out.push_back({name, data});
  }
  return out;
}

void MetricsRegistry::reset() {
  const util::MutexLock lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

}  // namespace difftrace::obs
