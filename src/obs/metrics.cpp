#include "obs/metrics.hpp"

namespace difftrace::obs {

Histogram::Snapshot Histogram::snapshot() const noexcept {
  Snapshot out;
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kBuckets; ++i)
    out.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const util::MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const util::MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  return *it->second;
}

std::vector<CounterSample> MetricsRegistry::counters(bool nonzero_only) const {
  const util::MutexLock lock(mutex_);
  std::vector<CounterSample> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    const auto value = counter->value();
    if (nonzero_only && value == 0) continue;
    out.push_back({name, value});
  }
  return out;
}

std::vector<HistogramSample> MetricsRegistry::histograms(bool nonzero_only) const {
  const util::MutexLock lock(mutex_);
  std::vector<HistogramSample> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    auto data = histogram->snapshot();
    if (nonzero_only && data.count == 0) continue;
    out.push_back({name, data});
  }
  return out;
}

void MetricsRegistry::reset() {
  const util::MutexLock lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

}  // namespace difftrace::obs
