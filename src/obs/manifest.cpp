#include "obs/manifest.hpp"

#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/file.hpp"
#include "util/json.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

namespace difftrace::obs {

std::uint64_t peak_rss_kb() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // KiB on Linux
}

std::uint64_t process_cpu_ns() {
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

ManifestInput digest_file(const std::string& path) {
  ManifestInput input;
  input.path = path;
  try {
    const auto digest = util::digest_file_bytes(path);
    input.bytes = digest.bytes;
    input.crc32 = digest.crc32;
    input.ok = true;
  } catch (const std::exception&) {
    // Unreadable inputs are still recorded by name, just not vouched for.
  }
  return input;
}

RunManifest collect_manifest(std::vector<std::string> command,
                             const std::vector<std::string>& input_paths, int exit_code) {
  RunManifest m;
  m.command = std::move(command);
  m.exit_code = exit_code;
  m.phases = PhaseTable::instance().snapshot();
  for (const auto& phase : m.phases)
    if (phase.depth == 0) m.wall_ns = std::max(m.wall_ns, phase.wall_ns);
  m.cpu_ns = process_cpu_ns();
  m.peak_rss_kb = peak_rss_kb();
  const auto& registry = MetricsRegistry::instance();
  m.counters = registry.counters(/*nonzero_only=*/true);
  m.histograms = registry.histograms(/*nonzero_only=*/true);
  for (const auto& counter : m.counters) {
    if (counter.name == "sched.cache_hit") m.cache_hits = counter.value;
    if (counter.name == "sched.cache_miss") m.cache_misses = counter.value;
    if (counter.name == "check.summary_cache_hit") m.summary_cache_hits = counter.value;
    if (counter.name == "check.summary_cache_miss") m.summary_cache_misses = counter.value;
  }
  for (const auto& path : input_paths) m.inputs.push_back(digest_file(path));
  return m;
}

// --- JSON --------------------------------------------------------------------

namespace {

std::string crc_hex(std::uint32_t crc) { return util::hex32(crc); }

}  // namespace

void RunManifest::write_json(std::ostream& out) const {
  util::JsonWriter w(out);
  w.begin_object();
  w.field("manifest_version", manifest_version);
  w.field("tool_version", tool_version);
  w.key("command");
  w.begin_array();
  for (const auto& arg : command) w.value(arg);
  w.end_array();
  w.field("exit_code", exit_code);
  w.field("wall_ns", wall_ns);
  w.field("cpu_ns", cpu_ns);
  w.field("peak_rss_kb", peak_rss_kb);
  w.field("jobs", jobs);
  w.field("cache_dir", cache_dir);
  w.field("cache_hits", cache_hits);
  w.field("cache_misses", cache_misses);
  w.field("check_engine", check_engine);
  w.field("summary_cache_hits", summary_cache_hits);
  w.field("summary_cache_misses", summary_cache_misses);
  w.field("self_trace", self_trace);

  w.key("inputs");
  w.begin_array();
  for (const auto& input : inputs) {
    w.begin_object();
    w.field("path", input.path);
    w.field("bytes", input.bytes);
    w.field("crc32", crc_hex(input.crc32));
    w.field("ok", input.ok);
    w.end_object();
  }
  w.end_array();

  w.key("phases");
  w.begin_array();
  for (const auto& phase : phases) {
    w.begin_object();
    w.field("path", phase.path);
    w.field("name", phase.name);
    w.field("depth", phase.depth);
    w.field("count", phase.count);
    w.field("wall_ns", phase.wall_ns);
    w.field("cpu_ns", phase.cpu_ns);
    w.end_object();
  }
  w.end_array();

  w.key("counters");
  w.begin_array();
  for (const auto& counter : counters) {
    w.begin_object();
    w.field("name", counter.name);
    w.field("value", counter.value);
    w.end_object();
  }
  w.end_array();

  w.key("histograms");
  w.begin_array();
  for (const auto& histogram : histograms) {
    w.begin_object();
    w.field("name", histogram.name);
    w.field("count", histogram.data.count);
    w.field("sum", histogram.data.sum);
    w.key("buckets");
    w.begin_array();
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (histogram.data.buckets[i] == 0) continue;
      w.begin_object();
      w.field("le_log2", i);
      w.field("count", histogram.data.buckets[i]);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
}

std::string RunManifest::to_json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

RunManifest RunManifest::from_json(const util::JsonValue& doc) {
  if (!doc.is_object()) throw std::runtime_error("manifest: document is not an object");
  RunManifest m;
  m.manifest_version = static_cast<int>(doc.at("manifest_version").as_int());
  if (m.manifest_version != kManifestVersion)
    throw std::runtime_error("manifest: unsupported manifest_version " +
                             std::to_string(m.manifest_version));
  m.tool_version = doc.at("tool_version").as_string();
  m.command.clear();
  for (const auto& arg : doc.at("command").array) m.command.push_back(arg.as_string());
  m.exit_code = static_cast<int>(doc.at("exit_code").as_int());
  m.wall_ns = doc.at("wall_ns").as_uint();
  m.cpu_ns = doc.at("cpu_ns").as_uint();
  m.peak_rss_kb = doc.at("peak_rss_kb").as_uint();
  // Additive post-release fields: absent in manifests written before the
  // execution engine existed, so parse them tolerantly.
  if (const auto* jobs_field = doc.find("jobs")) m.jobs = jobs_field->as_uint();
  if (const auto* dir_field = doc.find("cache_dir")) m.cache_dir = dir_field->as_string();
  if (const auto* hits_field = doc.find("cache_hits")) m.cache_hits = hits_field->as_uint();
  if (const auto* misses_field = doc.find("cache_misses")) m.cache_misses = misses_field->as_uint();
  if (const auto* engine_field = doc.find("check_engine"))
    m.check_engine = engine_field->as_string();
  if (const auto* shits_field = doc.find("summary_cache_hits"))
    m.summary_cache_hits = shits_field->as_uint();
  if (const auto* smisses_field = doc.find("summary_cache_misses"))
    m.summary_cache_misses = smisses_field->as_uint();
  if (const auto* selftrace_field = doc.find("self_trace"))
    m.self_trace = selftrace_field->as_string();

  for (const auto& entry : doc.at("inputs").array) {
    ManifestInput input;
    input.path = entry.at("path").as_string();
    input.bytes = entry.at("bytes").as_uint();
    input.crc32 = static_cast<std::uint32_t>(std::stoul(entry.at("crc32").as_string(), nullptr, 16));
    input.ok = entry.at("ok").as_bool();
    m.inputs.push_back(std::move(input));
  }
  for (const auto& entry : doc.at("phases").array) {
    PhaseStats phase;
    phase.path = entry.at("path").as_string();
    phase.name = entry.at("name").as_string();
    phase.depth = static_cast<std::size_t>(entry.at("depth").as_uint());
    phase.count = entry.at("count").as_uint();
    phase.wall_ns = entry.at("wall_ns").as_uint();
    phase.cpu_ns = entry.at("cpu_ns").as_uint();
    m.phases.push_back(std::move(phase));
  }
  for (const auto& entry : doc.at("counters").array)
    m.counters.push_back({entry.at("name").as_string(), entry.at("value").as_uint()});
  for (const auto& entry : doc.at("histograms").array) {
    HistogramSample histogram;
    histogram.name = entry.at("name").as_string();
    histogram.data.count = entry.at("count").as_uint();
    histogram.data.sum = entry.at("sum").as_uint();
    for (const auto& bucket : entry.at("buckets").array) {
      const auto index = static_cast<std::size_t>(bucket.at("le_log2").as_uint());
      if (index >= Histogram::kBuckets) throw std::runtime_error("manifest: bucket index out of range");
      histogram.data.buckets[index] = bucket.at("count").as_uint();
    }
    m.histograms.push_back(std::move(histogram));
  }
  return m;
}

RunManifest RunManifest::from_json_text(std::string_view text) {
  return from_json(util::parse_json(text));
}

// --- rendering ---------------------------------------------------------------

double RunManifest::phase_coverage() const {
  // Root = the largest depth-0 phase (the command span; worker-thread span
  // trees are smaller by construction, since the root encloses the join).
  const PhaseStats* root = nullptr;
  for (const auto& phase : phases)
    if (phase.depth == 0 && (root == nullptr || phase.wall_ns > root->wall_ns)) root = &phase;
  if (root == nullptr || root->wall_ns == 0) return 1.0;
  std::uint64_t covered = 0;
  bool any_children = false;
  for (const auto& phase : phases) {
    if (phase.depth != 1) continue;
    if (!util::starts_with(phase.path, root->path + "/")) continue;
    covered += phase.wall_ns;
    any_children = true;
  }
  if (!any_children) return 1.0;
  return static_cast<double>(covered) / static_cast<double>(root->wall_ns);
}

namespace {

std::string format_ms(std::uint64_t ns) {
  return util::format_double(static_cast<double>(ns) / 1e6, 3);
}

}  // namespace

std::string RunManifest::render() const {
  std::ostringstream out;
  out << "difftrace run manifest (schema v" << manifest_version << ", tool " << tool_version << ")\n";
  out << "command:        " << util::join(command, " ") << "\n";
  out << "exit code:      " << exit_code << "\n";
  out << "wall time:      " << format_ms(wall_ns) << " ms\n";
  out << "cpu time:       " << format_ms(cpu_ns) << " ms\n";
  out << "peak rss:       " << peak_rss_kb << " KiB\n";
  if (jobs != 0) out << "jobs:           " << jobs << "\n";
  // Surface cache and engine telemetry whenever there is anything to say:
  // a recorded directory/engine, or nonzero traffic (older manifests carry
  // the counters without the directory).
  if (!cache_dir.empty() || cache_hits + cache_misses != 0) {
    if (!cache_dir.empty()) out << "cache dir:      " << cache_dir << "\n";
    out << "cache hits:     " << cache_hits << "\n";
    out << "cache misses:   " << cache_misses << "\n";
  }
  if (!check_engine.empty() || summary_cache_hits + summary_cache_misses != 0) {
    if (!check_engine.empty()) out << "check engine:   " << check_engine << "\n";
    out << "summary cache:  " << summary_cache_hits << " hit(s), " << summary_cache_misses
        << " miss(es)\n";
  }
  if (!self_trace.empty()) out << "self trace:     " << self_trace << "\n";
  out << "phase coverage: " << util::format_double(phase_coverage() * 100.0, 1) << "% of root wall\n";

  if (!inputs.empty()) {
    util::TextTable table({"Input", "Bytes", "CRC-32", "Readable"});
    for (const auto& input : inputs)
      table.add_row({input.path, std::to_string(input.bytes), crc_hex(input.crc32),
                     input.ok ? "yes" : "no"});
    out << "\n" << table.render();
  }

  if (!phases.empty()) {
    util::TextTable table({"Phase", "Count", "Wall ms", "CPU ms", "% of run"});
    for (const auto& phase : phases) {
      std::string label(phase.depth * 2, ' ');
      label += phase.name;
      const double share = wall_ns == 0 ? 0.0
                                        : 100.0 * static_cast<double>(phase.wall_ns) /
                                              static_cast<double>(wall_ns);
      table.add_row({label, std::to_string(phase.count), format_ms(phase.wall_ns),
                     format_ms(phase.cpu_ns), util::format_double(share, 1)});
    }
    out << "\n" << table.render();
  }

  if (!counters.empty()) {
    util::TextTable table({"Counter", "Value"});
    for (const auto& counter : counters) table.add_row({counter.name, std::to_string(counter.value)});
    out << "\n" << table.render();
  }

  if (!histograms.empty()) {
    // Percentiles (interpolated within the winning log2 bucket) instead of
    // raw bucket dumps: the bucket layout is an implementation detail, the
    // distribution shape is what a reader wants.
    util::TextTable table({"Histogram", "Count", "Mean", "p50", "p95", "p99"});
    for (const auto& histogram : histograms) {
      const double mean = histogram.data.count == 0
                              ? 0.0
                              : static_cast<double>(histogram.data.sum) /
                                    static_cast<double>(histogram.data.count);
      table.add_row({histogram.name, std::to_string(histogram.data.count),
                     util::format_double(mean, 1),
                     util::format_double(histogram_percentile(histogram.data, 0.50), 1),
                     util::format_double(histogram_percentile(histogram.data, 0.95), 1),
                     util::format_double(histogram_percentile(histogram.data, 0.99), 1)});
    }
    out << "\n" << table.render();
  }
  return std::move(out).str();
}

}  // namespace difftrace::obs
