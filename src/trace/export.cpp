#include "trace/export.hpp"

namespace difftrace::trace {

namespace {

/// Minimal JSON string escaping (function names are identifiers, but @plt
/// and template names can carry punctuation; quotes/backslashes must not
/// break the document).
void write_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

void export_csv(const TraceStore& store, std::ostream& out) {
  out << "proc,thread,logical_ts,kind,function,image\n";
  for (const auto& key : store.keys()) {
    std::uint64_t ts = 0;
    for (const auto& event : store.decode(key)) {  // NOLINT-DT(unbounded-decode-reach): full-fidelity export is strict by contract
      const auto fn = store.registry().info(event.fid);
      out << key.proc << ',' << key.thread << ',' << ts++ << ','
          << (event.kind == EventKind::Call ? "call" : "return") << ',' << fn.name << ','
          << image_name(fn.image) << '\n';
    }
  }
}

void export_json(const TraceStore& store, std::ostream& out) {
  out << "{\n  \"functions\": [\n";
  const auto functions = store.registry().snapshot();
  for (std::size_t i = 0; i < functions.size(); ++i) {
    out << "    {\"id\": " << functions[i].id << ", \"name\": ";
    write_json_string(out, functions[i].name);
    out << ", \"image\": ";
    write_json_string(out, std::string(image_name(functions[i].image)));
    out << '}' << (i + 1 < functions.size() ? "," : "") << '\n';
  }
  out << "  ],\n  \"traces\": [\n";
  const auto keys = store.keys();
  for (std::size_t k = 0; k < keys.size(); ++k) {
    const auto& blob = store.blob(keys[k]);
    out << "    {\"proc\": " << keys[k].proc << ", \"thread\": " << keys[k].thread
        << ", \"truncated\": " << (blob.truncated ? "true" : "false") << ", \"events\": [";
    std::uint64_t ts = 0;
    const auto events = store.decode(keys[k]);  // NOLINT-DT(unbounded-decode-reach): full-fidelity export is strict by contract
    for (std::size_t e = 0; e < events.size(); ++e) {
      out << '[' << ts++ << ',' << (events[e].kind == EventKind::Call ? 0 : 1) << ','
          << events[e].fid << ']' << (e + 1 < events.size() ? "," : "");
    }
    out << "]}" << (k + 1 < keys.size() ? "," : "") << '\n';
  }
  out << "  ]\n}\n";
}

void export_store(const TraceStore& store, std::ostream& out, ExportFormat format) {
  switch (format) {
    case ExportFormat::Csv: export_csv(store, out); break;
    case ExportFormat::Json: export_json(store, out); break;
  }
}

}  // namespace difftrace::trace
