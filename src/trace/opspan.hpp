// Op-span indexing for one stream's side-channel records.
//
// OpRecords anchor to the event stream by `event_index` (= events recorded
// before the op), and the writer appends them in anchor order, so the ops
// of any event range [begin, end) form one contiguous slice. This index
// exposes that slice by binary search, which is what lets the abstract
// checker engine attribute ops to loop-body event spans without expanding
// the NLR program. Salvaged archives can in principle present ops out of
// anchor order; `ordered()` reports that so callers can fall back to a
// linear walk instead of trusting the search.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "trace/op.hpp"

namespace difftrace::trace {

class OpSpanIndex {
 public:
  OpSpanIndex() = default;
  /// Indexes `ops`, which must outlive the index (a view, not a copy).
  explicit OpSpanIndex(std::span<const OpRecord> ops);

  /// True when anchors are nondecreasing — the precondition for the
  /// binary-search accessors below (they return empty spans otherwise).
  [[nodiscard]] bool ordered() const noexcept { return ordered_; }
  [[nodiscard]] std::size_t size() const noexcept { return ops_.size(); }

  /// Index of the first op anchored at or after `event_index`
  /// (ops_.size() when none).
  [[nodiscard]] std::size_t first_at_or_after(std::uint64_t event_index) const noexcept;

  /// Ops anchored inside the event range [begin, end).
  [[nodiscard]] std::span<const OpRecord> in_span(std::uint64_t begin_event,
                                                  std::uint64_t end_event) const noexcept;

  /// Ops anchored exactly at `event_index` (recorded before that event).
  [[nodiscard]] std::span<const OpRecord> at(std::uint64_t event_index) const noexcept;

 private:
  std::span<const OpRecord> ops_;
  bool ordered_ = true;
};

}  // namespace difftrace::trace
