// Trace export — the paper's future-work item (2): "Converting ParLOT
// traces into Open Trace Format (OTF2) by logically timestamping trace
// entries". OTF2 itself is a binary format with its own library; we export
// the same information content in two open formats:
//
//   CSV:  proc,thread,logical_ts,kind,function,image   (one event per row)
//   JSON: { functions: [...], traces: [ {proc, thread, truncated,
//           events: [[ts, kind, fid], ...]} ] }
//
// The logical timestamp is the per-thread event index — the total order
// ParLOT preserves within a stream (§II-F1); cross-thread ordering is a
// consumer concern (happens-before mining, Lamport clocks).
#pragma once

#include <ostream>

#include "trace/store.hpp"

namespace difftrace::trace {

enum class ExportFormat { Csv, Json };

void export_csv(const TraceStore& store, std::ostream& out);
void export_json(const TraceStore& store, std::ostream& out);
void export_store(const TraceStore& store, std::ostream& out, ExportFormat format);

}  // namespace difftrace::trace
