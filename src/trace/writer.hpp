// Per-thread trace writer: absorbs call/return events into an incremental
// codec, flushing periodically so the encoded bytes are decodable even if
// the owning thread never terminates cleanly (deadlock truncation).
//
// freeze() is the watchdog hook: after freeze, record() becomes a no-op.
// The simmpi watchdog freezes every writer *before* it cancels blocked
// ranks, so stack unwinding cannot fabricate Return events that a killed
// process would never have emitted. record() is called only by the owning
// thread, but freeze()/bytes() may come from the watchdog or the harness, so
// the encoder is guarded by a mutex (uncontended on the hot path).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "compress/codec.hpp"
#include "trace/event.hpp"
#include "trace/op.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace difftrace::trace {

class TraceWriter {
 public:
  /// `flush_interval`: events between automatic incremental flushes.
  explicit TraceWriter(TraceKey key, std::string codec_name = "parlot",
                       std::uint64_t flush_interval = 256);

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void record(EventKind kind, FunctionId fid);

  /// Attaches a semantic op record to the stream at the current event index
  /// (the op's own `event_index` is overwritten). Ops land *inside* whatever
  /// frames are open when they are emitted — runtimes annotate just before
  /// a potentially blocking step so a frozen trace still names the pending
  /// operation. No-op once frozen, mirroring record().
  void annotate(OpRecord op);

  /// Permanently stops recording (idempotent, thread-safe) and flushes what
  /// was recorded so far.
  void freeze();
  [[nodiscard]] bool frozen() const;

  /// Finalizes the encoded stream. Safe to call repeatedly.
  void flush();

  [[nodiscard]] const TraceKey& key() const noexcept { return key_; }
  [[nodiscard]] const std::string& codec_name() const noexcept { return codec_name_; }
  [[nodiscard]] std::uint64_t event_count() const;
  /// Copy of the encoded bytes (flushing first so the tail is decodable).
  [[nodiscard]] std::vector<std::uint8_t> bytes() const;
  /// Copy of the semantic op records annotated so far.
  [[nodiscard]] std::vector<OpRecord> ops() const;

 private:
  /// Advances the obs counters (events recorded, encoded bytes out) to the
  /// current encoder state; called after a flush.
  void charge_locked() const DT_REQUIRES(mutex_);

  TraceKey key_;
  std::string codec_name_;
  mutable util::Mutex mutex_;
  std::unique_ptr<compress::SymbolEncoder> encoder_ DT_GUARDED_BY(mutex_);
  const std::uint64_t flush_interval_;
  std::uint64_t events_ DT_GUARDED_BY(mutex_) = 0;
  std::vector<OpRecord> ops_ DT_GUARDED_BY(mutex_);
  bool frozen_ DT_GUARDED_BY(mutex_) = false;
  // Already-charged watermarks for the obs counters (mutable: bytes() is
  // const but flushes the encoder).
  mutable std::uint64_t counted_events_ DT_GUARDED_BY(mutex_) = 0;
  mutable std::uint64_t counted_bytes_ DT_GUARDED_BY(mutex_) = 0;
};

}  // namespace difftrace::trace
