// Deterministic chaos harness for the resilient-ingestion subsystem: every
// fault a killed or misbehaving job can inflict on a trace archive, injected
// reproducibly from a seed so fuzz failures replay exactly.
//
// Faults modelled (§II-B/§V of the paper — traces from killed jobs are the
// *normal* input, not an error case):
//   Truncate    — the file ends at byte N (job killed mid-write, torn copy).
//   BitFlip     — a single bit flipped (storage/network corruption).
//   DropBlob    — one whole blob frame excised (a per-thread file lost).
//   FreezeMidFlush — the archive ends inside the *last blob's* encoded
//                 stream: what a writer frozen mid-flush leaves on disk.
//
// All mutators are pure byte-level functions plus path-based convenience
// wrappers; `chaos_random` picks fault + location from the seed.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

namespace difftrace::trace {

enum class ChaosFault : std::uint8_t { Truncate, BitFlip, DropBlob, FreezeMidFlush };

[[nodiscard]] std::string_view chaos_fault_name(ChaosFault fault) noexcept;

/// One injected fault: the mutated archive plus a human-readable record of
/// exactly what was done (for fsck reports and failing-seed replay).
struct ChaosResult {
  std::vector<std::uint8_t> bytes;
  ChaosFault fault = ChaosFault::Truncate;
  std::string description;
};

/// Cuts the archive at byte `at` (clamped to the input size).
[[nodiscard]] ChaosResult chaos_truncate(std::span<const std::uint8_t> archive, std::size_t at);

/// Flips bit `bit` (clamped to the input's bit count; empty input unchanged).
[[nodiscard]] ChaosResult chaos_bit_flip(std::span<const std::uint8_t> archive, std::uint64_t bit);

/// Removes the `index`-th blob frame of a v2 archive (modulo the blob
/// count). On a v1 or frameless archive falls back to truncation at the
/// seed-chosen point.
[[nodiscard]] ChaosResult chaos_drop_blob(std::span<const std::uint8_t> archive, std::size_t index);

/// Ends the archive inside the last blob frame's encoded stream — the bytes
/// a writer frozen mid-flush would have left on disk. Archives without a
/// blob frame fall back to plain truncation.
[[nodiscard]] ChaosResult chaos_freeze_mid_flush(std::span<const std::uint8_t> archive,
                                                 std::uint64_t seed);

/// Picks a fault kind and location deterministically from `seed` and
/// applies it. Equal seeds on equal archives yield identical mutations.
[[nodiscard]] ChaosResult chaos_random(std::span<const std::uint8_t> archive, std::uint64_t seed);

/// Applies a specific fault kind at a seed-chosen location.
[[nodiscard]] ChaosResult chaos_inject(std::span<const std::uint8_t> archive, ChaosFault fault,
                                       std::uint64_t seed);

// --- path-based wrappers (CLI / tests) --------------------------------------

[[nodiscard]] std::vector<std::uint8_t> chaos_read_file(const std::filesystem::path& path);
void chaos_write_file(const std::filesystem::path& path, std::span<const std::uint8_t> bytes);

}  // namespace difftrace::trace
