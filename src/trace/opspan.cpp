#include "trace/opspan.hpp"

#include <algorithm>

namespace difftrace::trace {

OpSpanIndex::OpSpanIndex(std::span<const OpRecord> ops) : ops_(ops) {
  for (std::size_t i = 1; i < ops_.size(); ++i) {
    if (ops_[i].event_index < ops_[i - 1].event_index) {
      ordered_ = false;
      break;
    }
  }
}

std::size_t OpSpanIndex::first_at_or_after(std::uint64_t event_index) const noexcept {
  if (!ordered_) return ops_.size();
  const auto it = std::lower_bound(
      ops_.begin(), ops_.end(), event_index,
      [](const OpRecord& op, std::uint64_t at) { return op.event_index < at; });
  return static_cast<std::size_t>(it - ops_.begin());
}

std::span<const OpRecord> OpSpanIndex::in_span(std::uint64_t begin_event,
                                               std::uint64_t end_event) const noexcept {
  if (!ordered_ || begin_event >= end_event) return {};
  const auto first = first_at_or_after(begin_event);
  const auto last = first_at_or_after(end_event);
  return ops_.subspan(first, last - first);
}

std::span<const OpRecord> OpSpanIndex::at(std::uint64_t event_index) const noexcept {
  if (event_index == UINT64_MAX) return {};
  return in_span(event_index, event_index + 1);
}

}  // namespace difftrace::trace
