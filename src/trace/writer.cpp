#include "trace/writer.hpp"

namespace difftrace::trace {

TraceWriter::TraceWriter(TraceKey key, std::string codec_name, std::uint64_t flush_interval)
    : key_(key),
      codec_name_(std::move(codec_name)),
      encoder_(compress::make_codec(codec_name_).encoder),
      flush_interval_(flush_interval == 0 ? 1 : flush_interval) {}

void TraceWriter::record(EventKind kind, FunctionId fid) {
  std::lock_guard lock(mutex_);
  if (frozen_) return;
  encoder_->push(event_to_symbol(TraceEvent{fid, kind}));
  if (++events_ % flush_interval_ == 0) encoder_->flush();
}

void TraceWriter::annotate(OpRecord op) {
  std::lock_guard lock(mutex_);
  if (frozen_) return;
  op.event_index = events_;
  ops_.push_back(std::move(op));
}

void TraceWriter::freeze() {
  std::lock_guard lock(mutex_);
  if (!frozen_) {
    encoder_->flush();
    frozen_ = true;
  }
}

bool TraceWriter::frozen() const {
  std::lock_guard lock(mutex_);
  return frozen_;
}

void TraceWriter::flush() {
  std::lock_guard lock(mutex_);
  if (!frozen_) encoder_->flush();
}

std::uint64_t TraceWriter::event_count() const {
  std::lock_guard lock(mutex_);
  return events_;
}

std::vector<std::uint8_t> TraceWriter::bytes() const {
  std::lock_guard lock(mutex_);
  if (!frozen_) encoder_->flush();
  return encoder_->bytes();
}

std::vector<OpRecord> TraceWriter::ops() const {
  std::lock_guard lock(mutex_);
  return ops_;
}

}  // namespace difftrace::trace
