#include "trace/writer.hpp"

#include "obs/metrics.hpp"

namespace difftrace::trace {

namespace {

/// Encoder-side byte/event accounting, charged on flush boundaries so the
/// per-event hot path stays a single codec push. `counted_*` live in the
/// writer and advance monotonically under its mutex.
void charge_encode_delta(std::uint64_t events_delta, std::uint64_t bytes_delta) {
  static auto& events = obs::counter("trace.events_recorded");
  static auto& bytes_out = obs::counter("compress.encode_bytes_out");
  if (events_delta != 0) events.add(events_delta);
  if (bytes_delta != 0) bytes_out.add(bytes_delta);
}

}  // namespace

TraceWriter::TraceWriter(TraceKey key, std::string codec_name, std::uint64_t flush_interval)
    : key_(key),
      codec_name_(std::move(codec_name)),
      encoder_(compress::make_codec(codec_name_).encoder),
      flush_interval_(flush_interval == 0 ? 1 : flush_interval) {}

void TraceWriter::record(EventKind kind, FunctionId fid) {
  const util::MutexLock lock(mutex_);
  if (frozen_) return;
  encoder_->push(event_to_symbol(TraceEvent{fid, kind}));
  if (++events_ % flush_interval_ == 0) {
    encoder_->flush();
    charge_locked();
  }
}

void TraceWriter::annotate(OpRecord op) {
  const util::MutexLock lock(mutex_);
  if (frozen_) return;
  op.event_index = events_;
  ops_.push_back(std::move(op));
}

void TraceWriter::freeze() {
  const util::MutexLock lock(mutex_);
  if (!frozen_) {
    encoder_->flush();
    charge_locked();
    frozen_ = true;
  }
}

bool TraceWriter::frozen() const {
  const util::MutexLock lock(mutex_);
  return frozen_;
}

void TraceWriter::flush() {
  const util::MutexLock lock(mutex_);
  if (!frozen_) {
    encoder_->flush();
    charge_locked();
  }
}

std::uint64_t TraceWriter::event_count() const {
  const util::MutexLock lock(mutex_);
  return events_;
}

std::vector<std::uint8_t> TraceWriter::bytes() const {
  const util::MutexLock lock(mutex_);
  if (!frozen_) {
    encoder_->flush();
    charge_locked();
  }
  return encoder_->bytes();
}

void TraceWriter::charge_locked() const {
  const auto events_now = events_;
  const auto bytes_now = static_cast<std::uint64_t>(encoder_->bytes().size());
  charge_encode_delta(events_now - counted_events_, bytes_now - counted_bytes_);
  counted_events_ = events_now;
  counted_bytes_ = bytes_now;
}

std::vector<OpRecord> TraceWriter::ops() const {
  const util::MutexLock lock(mutex_);
  return ops_;
}

}  // namespace difftrace::trace
