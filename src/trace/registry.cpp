#include "trace/registry.hpp"

#include <stdexcept>

namespace difftrace::trace {

std::string_view image_name(Image image) noexcept {
  switch (image) {
    case Image::Main: return "main";
    case Image::MpiLib: return "mpi";
    case Image::OmpLib: return "omp";
    case Image::SystemLib: return "system";
    case Image::Internal: return "internal";
  }
  return "unknown";
}

FunctionId FunctionRegistry::intern(std::string_view name, Image image) {
  const util::MutexLock lock(mutex_);
  if (const auto it = by_name_.find(std::string(name)); it != by_name_.end()) return it->second;
  const auto id = static_cast<FunctionId>(infos_.size());
  infos_.push_back(FunctionInfo{id, std::string(name), image});
  by_name_.emplace(std::string(name), id);
  return id;
}

std::optional<FunctionId> FunctionRegistry::find(std::string_view name) const {
  const util::MutexLock lock(mutex_);
  const auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

FunctionInfo FunctionRegistry::info(FunctionId id) const {
  const util::MutexLock lock(mutex_);
  if (id >= infos_.size()) throw std::out_of_range("FunctionRegistry: unknown id " + std::to_string(id));
  return infos_[id];
}

std::size_t FunctionRegistry::size() const {
  const util::MutexLock lock(mutex_);
  return infos_.size();
}

std::vector<FunctionInfo> FunctionRegistry::snapshot() const {
  const util::MutexLock lock(mutex_);
  return infos_;
}

}  // namespace difftrace::trace
