#include "trace/store.hpp"

#include <algorithm>
#include <array>
#include <fstream>
#include <optional>
#include <span>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/crc32.hpp"
#include "util/table.hpp"
#include "util/varint.hpp"

namespace difftrace::trace {

namespace {

// --- v1 (legacy): one flat varint stream, no framing, no checksums --------
constexpr std::uint32_t kMagicV1 = 0x44545243;  // "DTRC"
constexpr std::uint32_t kVersionV1 = 1;

// --- v2: fixed header + self-describing checksummed frames ----------------
constexpr std::array<std::uint8_t, 4> kMagicV2 = {'D', 'T', 'R', '2'};
constexpr std::uint32_t kVersionV2 = 2;
/// Marker opening every frame; salvage scans for it to resynchronize after
/// a corrupted length field.
constexpr std::uint32_t kFrameSync = 0xD1FFC0DEu;
constexpr std::uint8_t kTagRegistry = 1;
constexpr std::uint8_t kTagBlob = 2;
/// sync(4) + tag(1) + crc(4) + payload_len(4)
constexpr std::size_t kFrameHeaderBytes = 13;

constexpr std::uint64_t kFlagTruncated = 1;
constexpr std::uint64_t kFlagSalvaged = 2;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

/// Caller guarantees pos + 4 <= in.size().
std::uint32_t read_u32(std::span<const std::uint8_t> in, std::size_t pos) {
  return static_cast<std::uint32_t>(in[pos]) | static_cast<std::uint32_t>(in[pos + 1]) << 8 |
         static_cast<std::uint32_t>(in[pos + 2]) << 16 | static_cast<std::uint32_t>(in[pos + 3]) << 24;
}

std::string at_offset(std::size_t pos) { return " at byte " + std::to_string(pos); }

std::string read_string(std::span<const std::uint8_t> in, std::size_t& pos, std::size_t len,
                        const std::string& section) {
  if (len > in.size() || pos > in.size() - len)
    throw std::runtime_error("TraceStore: truncated " + section + at_offset(pos) + " (need " +
                             std::to_string(len) + " bytes, " + std::to_string(in.size() - pos) +
                             " left)");
  std::string s(in.begin() + static_cast<std::ptrdiff_t>(pos),
                in.begin() + static_cast<std::ptrdiff_t>(pos + len));
  pos += len;
  return s;
}

void encode_registry_payload(std::vector<std::uint8_t>& out, const std::vector<FunctionInfo>& functions) {
  util::put_varint(out, functions.size());
  for (const auto& fn : functions) {
    util::put_varint(out, fn.name.size());
    out.insert(out.end(), fn.name.begin(), fn.name.end());
    util::put_varint(out, static_cast<std::uint64_t>(fn.image));
  }
}

/// Parses registry functions from `payload`. Strict mode throws on any
/// damage; best-effort mode stops at the first bad byte and reports how many
/// functions were readable. Returns true when the whole payload parsed.
bool parse_registry_payload(std::span<const std::uint8_t> payload, bool best_effort,
                            std::vector<FunctionInfo>& out) {
  std::size_t pos = 0;
  try {
    const auto count = util::get_varint(payload, pos);
    for (std::uint64_t i = 0; i < count; ++i) {
      FunctionInfo fn;
      const auto len = util::get_varint(payload, pos);
      fn.name = read_string(payload, pos, len, "registry function name");
      fn.image = static_cast<Image>(util::get_varint(payload, pos));
      out.push_back(std::move(fn));
    }
  } catch (const std::exception&) {
    if (!best_effort) throw;
    return false;
  }
  return true;
}

void encode_blob_payload(std::vector<std::uint8_t>& out, TraceKey key, const TraceBlob& blob) {
  util::put_svarint(out, key.proc);
  util::put_svarint(out, key.thread);
  util::put_varint(out, blob.codec_name.size());
  out.insert(out.end(), blob.codec_name.begin(), blob.codec_name.end());
  util::put_varint(out, blob.event_count);
  util::put_varint(out, (blob.truncated ? kFlagTruncated : 0) | (blob.salvaged ? kFlagSalvaged : 0));
  util::put_varint(out, blob.bytes.size());
  out.insert(out.end(), blob.bytes.begin(), blob.bytes.end());
  encode_ops(out, blob.ops);
}

struct ParsedBlob {
  TraceKey key;
  TraceBlob blob;
  /// True when `blob.bytes` holds fewer bytes than the payload declared
  /// (torn frame): the blob is a prefix of what the writer emitted.
  bool bytes_short = false;
  /// Payload bytes consumed (v1 salvage walks blobs back-to-back with this).
  std::size_t consumed = 0;
};

/// Parses one blob payload. In best-effort mode a payload whose encoded
/// stream is cut short still yields the available prefix (`bytes_short`);
/// damage before the byte stream begins yields nullopt.
///
/// `with_ops` is set for v2 frames (payload boundary exact): the op section
/// follows the encoded bytes, and a payload ending right after them — an
/// archive predating the op side-channel — parses as zero ops. v1 archives
/// pack blobs back-to-back with no op section, so their callers pass false.
std::optional<ParsedBlob> parse_blob_payload(std::span<const std::uint8_t> payload, bool best_effort,
                                             bool with_ops) {
  ParsedBlob out;
  std::size_t pos = 0;
  try {
    out.key.proc = static_cast<int>(util::get_svarint(payload, pos));
    out.key.thread = static_cast<int>(util::get_svarint(payload, pos));
    const auto codec_len = util::get_varint(payload, pos);
    out.blob.codec_name = read_string(payload, pos, codec_len, "blob codec name");
    out.blob.event_count = util::get_varint(payload, pos);
    const auto flags = util::get_varint(payload, pos);
    out.blob.truncated = (flags & kFlagTruncated) != 0;
    out.blob.salvaged = (flags & kFlagSalvaged) != 0;
    const auto nbytes = util::get_varint(payload, pos);
    const auto available = std::min<std::uint64_t>(nbytes, payload.size() - pos);
    if (available < nbytes && !best_effort)
      throw std::runtime_error("TraceStore: truncated blob bytes" + at_offset(pos) + " (need " +
                               std::to_string(nbytes) + " bytes, " +
                               std::to_string(payload.size() - pos) + " left)");
    out.bytes_short = available < nbytes;
    out.blob.bytes.assign(payload.begin() + static_cast<std::ptrdiff_t>(pos),
                          payload.begin() + static_cast<std::ptrdiff_t>(pos + available));
    pos += static_cast<std::size_t>(available);
    if (with_ops && !out.bytes_short && pos < payload.size()) {
      if (!decode_ops(payload, pos, best_effort, out.blob.ops)) out.blob.ops.clear();
    }
    out.consumed = pos;
  } catch (const std::exception&) {
    if (!best_effort) throw;
    return std::nullopt;
  }
  return out;
}

void write_file(const std::filesystem::path& path, std::span<const std::uint8_t> buf,
                const char* who) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error(std::string(who) + ": cannot open " + path.string());
  out.write(reinterpret_cast<const char*>(buf.data()), static_cast<std::streamsize>(buf.size()));
  if (!out) throw std::runtime_error(std::string(who) + ": write failed for " + path.string());
}

std::vector<std::uint8_t> read_file(const std::filesystem::path& path, const char* who) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error(std::string(who) + ": cannot open " + path.string());
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

bool is_v2(std::span<const std::uint8_t> buf) {
  return buf.size() >= kMagicV2.size() && std::equal(kMagicV2.begin(), kMagicV2.end(), buf.begin());
}

/// Verifies that a salvaged-candidate blob decodes, trimming it to its
/// longest decodable prefix. Returns false when nothing decodes (or the
/// codec name itself is damaged) — the blob is then worthless.
bool trim_to_decodable_prefix(TraceBlob& blob) {
  try {
    const auto codec = compress::make_codec(blob.codec_name);
    const auto cap = std::max(blob.event_count, compress::kDefaultSymbolCap);
    auto result = codec.decoder->decode_prefix(blob.bytes, cap);
    if (result.symbols.empty() && !blob.bytes.empty()) return false;
    blob.bytes.resize(result.consumed);
    return true;
  } catch (const std::exception&) {
    return false;  // unknown codec name
  }
}

void note_entry(LoadReport& report, LoadReport::Status status, std::string section,
                std::uint64_t offset, std::uint64_t bytes, std::string reason) {
  if (status == LoadReport::Status::Recovered) {
    ++report.recovered;
  } else if (status == LoadReport::Status::Salvaged) {
    ++report.salvaged;
  } else {
    ++report.dropped;
    static auto& dropped_bytes = obs::counter("trace.salvage_bytes_dropped");
    dropped_bytes.add(bytes);
  }
  report.entries.push_back({status, std::move(section), offset, bytes, std::move(reason)});
}

}  // namespace

// --- LoadReport --------------------------------------------------------------

std::string LoadReport::render() const {
  std::ostringstream os;
  os << "archive version " << version << ": " << recovered << " blob(s) intact, " << salvaged
     << " salvaged, " << dropped << " dropped; registry "
     << (registry_ok ? "ok (" + std::to_string(registry_functions) + " functions)"
                     : "damaged (" + std::to_string(registry_functions) + " functions readable)");
  if (placeholder_functions > 0) os << ", " << placeholder_functions << " placeholder name(s)";
  os << "\n";
  if (!entries.empty()) {
    util::TextTable table({"Section", "Status", "Offset", "Bytes", "Reason"});
    for (const auto& e : entries) {
      const char* status = e.status == Status::Recovered ? "recovered"
                           : e.status == Status::Salvaged ? "salvaged"
                                                          : "dropped";
      table.add_row({e.section, status, std::to_string(e.offset), std::to_string(e.bytes),
                     e.reason.empty() ? "-" : e.reason});
    }
    os << table.render();
  }
  return os.str();
}

// --- TraceStore basics -------------------------------------------------------

TraceStore::TraceStore(const TraceStore& other) : registry_(other.registry_) {
  const util::MutexLock lock(other.mutex_);
  blobs_ = other.blobs_;
}

TraceStore& TraceStore::operator=(const TraceStore& other) {
  if (this == &other) return *this;
  const util::MutexLock2 lock(mutex_, other.mutex_);
  registry_ = other.registry_;
  blobs_ = other.blobs_;
  return *this;
}

TraceStore::TraceStore(TraceStore&& other) noexcept : registry_(std::move(other.registry_)) {
  const util::MutexLock lock(other.mutex_);
  blobs_ = std::move(other.blobs_);
}

TraceStore& TraceStore::operator=(TraceStore&& other) noexcept {
  if (this == &other) return *this;
  const util::MutexLock2 lock(mutex_, other.mutex_);
  registry_ = std::move(other.registry_);
  blobs_ = std::move(other.blobs_);
  return *this;
}

void TraceStore::absorb(const TraceWriter& writer) {
  TraceBlob blob;
  blob.codec_name = writer.codec_name();
  blob.bytes = writer.bytes();
  blob.event_count = writer.event_count();
  blob.ops = writer.ops();
  blob.truncated = writer.frozen();
  add_blob(writer.key(), std::move(blob));
}

void TraceStore::add_blob(TraceKey key, TraceBlob blob) {
  const util::MutexLock lock(mutex_);
  blobs_[key] = std::move(blob);
}

std::vector<TraceKey> TraceStore::keys() const {
  const util::MutexLock lock(mutex_);
  std::vector<TraceKey> out;
  out.reserve(blobs_.size());
  for (const auto& [key, _] : blobs_) out.push_back(key);
  return out;
}

bool TraceStore::contains(TraceKey key) const {
  const util::MutexLock lock(mutex_);
  return blobs_.contains(key);
}

const TraceBlob& TraceStore::blob(TraceKey key) const {
  const util::MutexLock lock(mutex_);
  const auto it = blobs_.find(key);
  if (it == blobs_.end()) throw std::out_of_range("TraceStore: no trace for " + key.label());
  return it->second;
}

std::size_t TraceStore::size() const {
  const util::MutexLock lock(mutex_);
  return blobs_.size();
}

namespace {

/// One charge per decoded blob: the stage counters the manifest reports
/// ("events decoded") plus a per-blob size histogram, all off the per-event
/// hot path.
void charge_decode(std::size_t event_count) {
  static auto& blobs = obs::counter("trace.blobs_decoded");
  static auto& events = obs::counter("trace.events_decoded");
  static auto& sizes = obs::histogram("trace.blob_events");
  blobs.add(1);
  events.add(event_count);
  sizes.record(event_count);
}

}  // namespace

std::vector<TraceEvent> TraceStore::decode(TraceKey key) const {
  TraceBlob copy;
  {
    const util::MutexLock lock(mutex_);
    const auto it = blobs_.find(key);
    if (it == blobs_.end()) throw std::out_of_range("TraceStore: no trace for " + key.label());
    copy = it->second;
  }
  const auto codec = compress::make_codec(copy.codec_name);
  // TraceStore::decode is the one sanctioned strict entry point: its contract
  // is "throw on any damage", and callers wanting resilience use
  // decode_tolerant (bounded decode_prefix) instead.
  const auto symbols = codec.decoder->decode(copy.bytes);  // NOLINT-DT(bounded-decode): strict-by-contract API

  std::vector<TraceEvent> events;
  events.reserve(symbols.size());
  for (const auto s : symbols) events.push_back(symbol_to_event(s));
  charge_decode(events.size());
  return events;
}

TraceStore::DecodedTrace TraceStore::decode_tolerant(TraceKey key) const {
  TraceBlob copy;
  {
    const util::MutexLock lock(mutex_);
    const auto it = blobs_.find(key);
    if (it == blobs_.end()) throw std::out_of_range("TraceStore: no trace for " + key.label());
    copy = it->second;
  }
  DecodedTrace out;
  compress::PrefixDecode decoded;
  try {
    const auto codec = compress::make_codec(copy.codec_name);
    decoded = codec.decoder->decode_prefix(copy.bytes,
                                           std::max(copy.event_count, compress::kDefaultSymbolCap));
  } catch (const std::exception& e) {
    out.complete = false;
    out.note = e.what();
    return out;
  }
  out.events.reserve(decoded.symbols.size());
  for (const auto s : decoded.symbols) out.events.push_back(symbol_to_event(s));
  charge_decode(out.events.size());
  if (!decoded.complete) {
    out.complete = false;
    out.note = decoded.error;
  } else if (copy.salvaged) {
    out.complete = false;
    out.note = "salvaged from damaged archive";
  }
  return out;
}

StoreStats TraceStore::stats() const {
  const util::MutexLock lock(mutex_);
  StoreStats s;
  s.trace_count = blobs_.size();
  for (const auto& [_, blob] : blobs_) {
    s.total_events += blob.event_count;
    s.total_compressed_bytes += blob.bytes.size();
  }
  if (s.trace_count > 0) {
    s.mean_events_per_trace = static_cast<double>(s.total_events) / static_cast<double>(s.trace_count);
    s.mean_compressed_bytes_per_trace =
        static_cast<double>(s.total_compressed_bytes) / static_cast<double>(s.trace_count);
  }
  if (s.total_compressed_bytes > 0)
    s.compression_ratio =
        static_cast<double>(s.total_events * sizeof(compress::Symbol)) / static_cast<double>(s.total_compressed_bytes);
  return s;
}

// --- save (always writes v2) -------------------------------------------------

namespace {

/// Re-encodes a blob's symbol stream with function ids remapped through
/// `remap` (old id -> canonical id). Flags, ops, codec, and the declared
/// event count are preserved; an undecodable tail (already-salvaged blobs)
/// is dropped — those bytes were unreadable under the old ids too.
TraceBlob remap_blob(const TraceBlob& blob, const std::vector<FunctionId>& remap) {
  const auto decoded = compress::make_codec(blob.codec_name)
                           .decoder->decode_prefix(
                               blob.bytes, std::max(blob.event_count, compress::kDefaultSymbolCap));
  TraceBlob out = blob;
  auto codec = compress::make_codec(blob.codec_name);
  for (const auto symbol : decoded.symbols) {
    auto event = symbol_to_event(symbol);
    if (event.fid < remap.size()) event.fid = remap[event.fid];
    codec.encoder->push(event_to_symbol(event));
  }
  codec.encoder->flush();
  out.bytes = codec.encoder->bytes();
  return out;
}

}  // namespace

void TraceStore::save(const std::filesystem::path& path) const {
  // Archives are canonical: functions serialize in name order, and the blob
  // streams are remapped to match. In-memory ids are assigned by first
  // intern, which races between rank threads — without this remap the same
  // run would save different bytes depending on thread scheduling, breaking
  // the determinism contract (same seed + plan => byte-identical archives).
  auto functions = registry_->snapshot();
  std::vector<std::size_t> order(functions.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&functions](std::size_t a, std::size_t b) {
    return functions[a].name < functions[b].name;
  });
  bool identity = true;
  std::vector<FunctionId> remap(functions.size());
  std::vector<FunctionInfo> sorted;
  sorted.reserve(order.size());
  for (std::size_t new_id = 0; new_id < order.size(); ++new_id) {
    identity = identity && order[new_id] == new_id;
    remap[functions[order[new_id]].id] = static_cast<FunctionId>(new_id);
    sorted.push_back(functions[order[new_id]]);
  }

  std::vector<std::uint8_t> buf;
  buf.insert(buf.end(), kMagicV2.begin(), kMagicV2.end());
  put_u32(buf, kVersionV2);

  const auto append_frame = [&buf](std::uint8_t tag, const std::vector<std::uint8_t>& payload) {
    put_u32(buf, kFrameSync);
    buf.push_back(tag);
    put_u32(buf, util::crc32(payload));
    put_u32(buf, static_cast<std::uint32_t>(payload.size()));
    buf.insert(buf.end(), payload.begin(), payload.end());
  };

  std::vector<std::uint8_t> payload;
  encode_registry_payload(payload, sorted);
  append_frame(kTagRegistry, payload);

  const util::MutexLock lock(mutex_);
  for (const auto& [key, blob] : blobs_) {
    payload.clear();
    if (identity) {
      encode_blob_payload(payload, key, blob);
    } else {
      encode_blob_payload(payload, key, remap_blob(blob, remap));
    }
    append_frame(kTagBlob, payload);
  }
  write_file(path, buf, "TraceStore::save");  // NOLINT-DT(blocking-under-lock): save snapshots under the store lock for a consistent frame
}

// --- strict load -------------------------------------------------------------

namespace {

TraceStore load_v1_strict(std::span<const std::uint8_t> buf) {
  std::size_t pos = 0;
  if (util::get_varint(buf, pos) != kMagicV1)
    throw std::runtime_error("TraceStore::load: bad magic in header at byte 0");
  if (const auto version = util::get_varint(buf, pos); version != kVersionV1)
    throw std::runtime_error("TraceStore::load: unsupported version " + std::to_string(version) +
                             " in header" + at_offset(pos));

  TraceStore store;
  const auto nfunctions = util::get_varint(buf, pos);
  for (std::uint64_t i = 0; i < nfunctions; ++i) {
    const auto fn_offset = pos;
    const auto len = util::get_varint(buf, pos);
    const auto name = read_string(buf, pos, len, "registry (function " + std::to_string(i) + ")");
    const auto image = static_cast<Image>(util::get_varint(buf, pos));
    const auto id = store.registry().intern(name, image);
    if (id != i)
      throw std::runtime_error("TraceStore::load: duplicate function name in registry dump" +
                               at_offset(fn_offset));
  }

  const auto nblobs = util::get_varint(buf, pos);
  for (std::uint64_t i = 0; i < nblobs; ++i) {
    const auto blob_offset = pos;
    TraceKey key;
    key.proc = static_cast<int>(util::get_svarint(buf, pos));
    key.thread = static_cast<int>(util::get_svarint(buf, pos));
    TraceBlob blob;
    const auto codec_len = util::get_varint(buf, pos);
    blob.codec_name = read_string(buf, pos, codec_len, "blob " + key.label() + " codec name");
    blob.event_count = util::get_varint(buf, pos);
    blob.truncated = util::get_varint(buf, pos) != 0;
    const auto nbytes = util::get_varint(buf, pos);
    if (nbytes > buf.size() || pos > buf.size() - nbytes)
      throw std::runtime_error("TraceStore::load: truncated blob " + key.label() + " (frame" +
                               at_offset(blob_offset) + ", need " + std::to_string(nbytes) +
                               " payload bytes, " + std::to_string(buf.size() - pos) + " left)");
    blob.bytes.assign(buf.begin() + static_cast<std::ptrdiff_t>(pos),
                      buf.begin() + static_cast<std::ptrdiff_t>(pos + nbytes));
    pos += nbytes;
    store.add_blob(key, std::move(blob));
  }
  return store;
}

TraceStore load_v2_strict(std::span<const std::uint8_t> buf) {
  if (buf.size() < kMagicV2.size() + 4)
    throw std::runtime_error("TraceStore::load: truncated header at byte 0");
  if (const auto version = read_u32(buf, kMagicV2.size()); version != kVersionV2)
    throw std::runtime_error("TraceStore::load: unsupported version " + std::to_string(version) +
                             " in header at byte 4");

  TraceStore store;
  bool seen_registry = false;
  std::size_t pos = kMagicV2.size() + 4;
  while (pos < buf.size()) {
    if (buf.size() - pos < kFrameHeaderBytes)
      throw std::runtime_error("TraceStore::load: truncated frame header" + at_offset(pos));
    if (read_u32(buf, pos) != kFrameSync)
      throw std::runtime_error("TraceStore::load: bad frame sync marker" + at_offset(pos));
    const auto tag = buf[pos + 4];
    const auto crc = read_u32(buf, pos + 5);
    const auto len = read_u32(buf, pos + 9);
    const auto payload_at = pos + kFrameHeaderBytes;
    if (len > buf.size() - payload_at)
      throw std::runtime_error("TraceStore::load: truncated frame payload (frame" + at_offset(pos) +
                               ", need " + std::to_string(len) + " bytes, " +
                               std::to_string(buf.size() - payload_at) + " left)");
    const auto payload = buf.subspan(payload_at, len);
    if (util::crc32(payload) != crc) {
      obs::counter("trace.crc_failures").add(1);
      throw std::runtime_error("TraceStore::load: checksum mismatch in " +
                               std::string(tag == kTagRegistry ? "registry" : "blob") + " frame" +
                               at_offset(pos));
    }
    if (tag == kTagRegistry) {
      if (seen_registry)
        throw std::runtime_error("TraceStore::load: duplicate registry frame" + at_offset(pos));
      seen_registry = true;
      std::vector<FunctionInfo> functions;
      parse_registry_payload(payload, /*best_effort=*/false, functions);
      for (const auto& fn : functions) store.registry().intern(fn.name, fn.image);
    } else if (tag == kTagBlob) {
      auto parsed = parse_blob_payload(payload, /*best_effort=*/false, /*with_ops=*/true);
      store.add_blob(parsed->key, std::move(parsed->blob));
    } else {
      throw std::runtime_error("TraceStore::load: unknown frame tag " + std::to_string(tag) +
                               at_offset(pos));
    }
    pos = payload_at + len;
  }
  if (!seen_registry) throw std::runtime_error("TraceStore::load: archive has no registry frame");
  return store;
}

}  // namespace

TraceStore TraceStore::load(const std::filesystem::path& path) {
  const auto buf = read_file(path, "TraceStore::load");
  auto store = is_v2(buf) ? load_v2_strict(buf) : load_v1_strict(buf);
  obs::counter("trace.blobs_loaded").add(store.size());
  return store;
}

// --- salvage -----------------------------------------------------------------

namespace {

/// Interns "?fn<id>" placeholders for every function id referenced by the
/// store's decodable blobs but missing from the (damaged) registry, so
/// degraded analysis keeps running instead of tripping on unknown ids.
void fill_placeholder_names(TraceStore& store, LoadReport& report) {
  FunctionId max_fid = 0;
  bool any = false;
  for (const auto& key : store.keys()) {
    const auto decoded = store.decode_tolerant(key);
    for (const auto& event : decoded.events) {
      max_fid = std::max(max_fid, event.fid);
      any = true;
    }
  }
  if (!any) return;
  auto& registry = store.registry();
  for (FunctionId id = static_cast<FunctionId>(registry.size()); id <= max_fid; ++id) {
    registry.intern("?fn" + std::to_string(id), Image::Main);
    ++report.placeholder_functions;
  }
}

void salvage_v1(std::span<const std::uint8_t> buf, TraceStore& store, LoadReport& report) {
  report.version = 1;
  std::size_t pos = 0;
  try {
    if (util::get_varint(buf, pos) != kMagicV1) {
      note_entry(report, LoadReport::Status::Dropped, "header", 0, 0, "bad magic");
      return;
    }
    if (util::get_varint(buf, pos) != kVersionV1) {
      note_entry(report, LoadReport::Status::Dropped, "header", 0, 0, "unsupported version");
      return;
    }
  } catch (const std::exception&) {
    note_entry(report, LoadReport::Status::Dropped, "header", 0, 0, "truncated header");
    return;
  }

  // Registry: keep every function readable before the stream breaks.
  const auto registry_offset = pos;
  try {
    const auto nfunctions = util::get_varint(buf, pos);
    std::uint64_t i = 0;
    try {
      for (; i < nfunctions; ++i) {
        const auto len = util::get_varint(buf, pos);
        const auto name = read_string(buf, pos, len, "registry function name");
        const auto image = static_cast<Image>(util::get_varint(buf, pos));
        store.registry().intern(name, image);
      }
      report.registry_ok = true;
    } catch (const std::exception&) {
      note_entry(report, LoadReport::Status::Salvaged, "registry", registry_offset,
                 pos - registry_offset,
                 "truncated after " + std::to_string(i) + " of " + std::to_string(nfunctions) +
                     " functions");
      report.registry_functions = store.registry().size();
      return;  // the blob section is unreachable once the registry breaks
    }
  } catch (const std::exception&) {
    note_entry(report, LoadReport::Status::Dropped, "registry", registry_offset, 0,
               "unreadable function count");
    return;
  }
  report.registry_functions = store.registry().size();

  std::uint64_t nblobs = 0;
  const auto count_offset = pos;
  try {
    nblobs = util::get_varint(buf, pos);
  } catch (const std::exception&) {
    note_entry(report, LoadReport::Status::Dropped, "blob count", count_offset, 0, "truncated");
    return;
  }
  for (std::uint64_t i = 0; i < nblobs; ++i) {
    const auto blob_offset = pos;
    auto parsed = parse_blob_payload(buf.subspan(pos), /*best_effort=*/true, /*with_ops=*/false);
    if (!parsed) {
      note_entry(report, LoadReport::Status::Dropped, "blob #" + std::to_string(i), blob_offset,
                 buf.size() - blob_offset, "truncated mid-frame; v1 has no resync markers");
      return;  // without framing there is no way to find the next blob
    }
    // v1 has no checksums: verify by decoding, and trim to the clean prefix.
    const auto declared = parsed->blob.bytes.size();
    TraceBlob candidate = parsed->blob;
    if (!trim_to_decodable_prefix(candidate)) {
      note_entry(report, LoadReport::Status::Dropped, "blob " + parsed->key.label(), blob_offset,
                 declared, "encoded stream undecodable");
    } else if (parsed->bytes_short || candidate.bytes.size() < declared) {
      candidate.salvaged = true;
      note_entry(report, LoadReport::Status::Salvaged, "blob " + parsed->key.label(), blob_offset,
                 candidate.bytes.size(),
                 parsed->bytes_short ? "file ends mid-blob" : "undecodable tail trimmed");
      store.add_blob(parsed->key, std::move(candidate));
    } else {
      note_entry(report, LoadReport::Status::Recovered, "blob " + parsed->key.label(), blob_offset,
                 declared, "");
      store.add_blob(parsed->key, std::move(parsed->blob));
    }
    if (parsed->bytes_short) return;  // nothing follows a torn final blob
    pos += parsed->consumed;
  }
}

void salvage_v2(std::span<const std::uint8_t> buf, TraceStore& store, LoadReport& report) {
  report.version = 2;
  if (buf.size() < kMagicV2.size() + 4) {
    note_entry(report, LoadReport::Status::Dropped, "header", 0, buf.size(), "truncated header");
    return;
  }
  if (const auto version = read_u32(buf, kMagicV2.size()); version != kVersionV2) {
    note_entry(report, LoadReport::Status::Dropped, "header", 4, 4,
               "unsupported version " + std::to_string(version));
    return;
  }

  const auto handle_registry = [&](std::span<const std::uint8_t> payload, std::size_t frame_offset,
                                   bool crc_ok) {
    std::vector<FunctionInfo> functions;
    const bool parsed_all = parse_registry_payload(payload, /*best_effort=*/true, functions);
    for (const auto& fn : functions) store.registry().intern(fn.name, fn.image);
    report.registry_functions = store.registry().size();
    if (crc_ok && parsed_all) {
      report.registry_ok = true;
    } else {
      note_entry(report, LoadReport::Status::Salvaged, "registry", frame_offset, payload.size(),
                 crc_ok ? "malformed payload (prefix kept)"
                        : "checksum mismatch; " + std::to_string(functions.size()) +
                              " function name(s) readable");
    }
  };

  const auto handle_blob = [&](std::span<const std::uint8_t> payload, std::size_t frame_offset,
                               bool crc_ok, bool frame_torn) {
    auto parsed = parse_blob_payload(payload, /*best_effort=*/true, /*with_ops=*/true);
    if (!parsed) {
      note_entry(report, LoadReport::Status::Dropped, "blob frame", frame_offset, payload.size(),
                 crc_ok ? "malformed payload" : "checksum mismatch and unparsable header");
      return;
    }
    const auto section = "blob " + parsed->key.label();
    if (crc_ok && !frame_torn) {
      note_entry(report, LoadReport::Status::Recovered, section, frame_offset, payload.size(), "");
      store.add_blob(parsed->key, std::move(parsed->blob));
      return;
    }
    // Damaged frame: keep the longest decodable prefix of the stream, if
    // any. The op section is dropped wholesale — with the checksum broken
    // there is no way to tell a genuine op record from corrupted bytes, and
    // the semantic checkers must not reason from fabricated peers/tags.
    TraceBlob candidate = std::move(parsed->blob);
    candidate.ops.clear();
    if (!trim_to_decodable_prefix(candidate)) {
      note_entry(report, LoadReport::Status::Dropped, section, frame_offset, payload.size(),
                 frame_torn ? "file ends mid-frame; no decodable prefix"
                            : "checksum mismatch; no decodable prefix");
      return;
    }
    candidate.salvaged = true;
    note_entry(report, LoadReport::Status::Salvaged, section, frame_offset, candidate.bytes.size(),
               frame_torn ? "file ends mid-frame; decodable prefix kept"
                          : "checksum mismatch; decodable prefix kept");
    store.add_blob(parsed->key, std::move(candidate));
  };

  /// Scans for the next frame sync marker at or after `from`.
  const auto find_sync = [&buf](std::size_t from) -> std::size_t {
    for (std::size_t p = from; p + 4 <= buf.size(); ++p)
      if (read_u32(buf, p) == kFrameSync) return p;
    return buf.size();
  };

  std::size_t pos = kMagicV2.size() + 4;
  while (pos < buf.size()) {
    if (buf.size() - pos < kFrameHeaderBytes || read_u32(buf, pos) != kFrameSync) {
      // Lost framing: either trailing garbage or a corrupted header. Scan
      // forward for the next sync marker and report the skipped span.
      const auto resync = find_sync(buf.size() - pos < 4 ? buf.size() : pos + 1);
      note_entry(report, LoadReport::Status::Dropped, "framing", pos, resync - pos,
                 resync < buf.size() ? "unreadable bytes skipped to next frame marker"
                                     : "unreadable bytes through end of file");
      pos = resync;
      continue;
    }
    const auto tag = buf[pos + 4];
    const auto crc = read_u32(buf, pos + 5);
    const auto len = read_u32(buf, pos + 9);
    const auto payload_at = pos + kFrameHeaderBytes;
    const bool frame_torn = len > buf.size() - payload_at;
    const auto available = frame_torn ? buf.size() - payload_at : static_cast<std::size_t>(len);

    // A corrupted length field can masquerade as a huge torn frame and
    // swallow every following one. If another sync marker sits inside the
    // claimed payload, trust the marker over the length.
    auto payload_end = payload_at + available;
    if (const auto inner = find_sync(payload_at); inner < payload_end) payload_end = inner;

    const auto payload = buf.subspan(payload_at, payload_end - payload_at);
    const bool torn = frame_torn || payload.size() < len;
    const bool crc_ok = !torn && util::crc32(payload) == crc;
    if (!torn && !crc_ok) obs::counter("trace.crc_failures").add(1);
    if (tag == kTagRegistry) {
      if (crc_ok && report.registry_ok) {
        note_entry(report, LoadReport::Status::Dropped, "registry", pos, payload.size(),
                   "duplicate registry frame ignored");
      } else {
        handle_registry(payload, pos, crc_ok);
      }
    } else if (tag == kTagBlob) {
      handle_blob(payload, pos, crc_ok, torn);
    } else {
      note_entry(report, LoadReport::Status::Dropped, "frame", pos, payload.size(),
                 "unknown frame tag " + std::to_string(tag));
    }
    pos = payload_end;
  }
}

}  // namespace

SalvageResult TraceStore::salvage(const std::filesystem::path& path) {
  SalvageResult result;
  std::vector<std::uint8_t> buf;
  try {
    buf = read_file(path, "TraceStore::salvage");
  } catch (const std::exception& e) {
    note_entry(result.report, LoadReport::Status::Dropped, "file", 0, 0, e.what());
    return result;
  }
  if (is_v2(buf))
    salvage_v2(buf, result.store, result.report);
  else
    salvage_v1(buf, result.store, result.report);
  // A lost registry obviously needs placeholder names, but so does a
  // *salvaged blob* next to an intact registry: its decodable prefix can
  // contain corrupted function ids past the registry's end, and analysis
  // must not trip on them.
  if (!result.report.registry_ok || result.report.salvaged > 0)
    fill_placeholder_names(result.store, result.report);
  return result;
}

}  // namespace difftrace::trace
