#include "trace/store.hpp"

#include <fstream>
#include <stdexcept>

#include "util/varint.hpp"

namespace difftrace::trace {

namespace {
constexpr std::uint32_t kMagic = 0x44545243;  // "DTRC"
constexpr std::uint32_t kVersion = 1;
}  // namespace

TraceStore::TraceStore(const TraceStore& other) : registry_(other.registry_) {
  std::lock_guard lock(other.mutex_);
  blobs_ = other.blobs_;
}

TraceStore& TraceStore::operator=(const TraceStore& other) {
  if (this == &other) return *this;
  std::scoped_lock lock(mutex_, other.mutex_);
  registry_ = other.registry_;
  blobs_ = other.blobs_;
  return *this;
}

TraceStore::TraceStore(TraceStore&& other) noexcept : registry_(std::move(other.registry_)) {
  std::lock_guard lock(other.mutex_);
  blobs_ = std::move(other.blobs_);
}

TraceStore& TraceStore::operator=(TraceStore&& other) noexcept {
  if (this == &other) return *this;
  std::scoped_lock lock(mutex_, other.mutex_);
  registry_ = std::move(other.registry_);
  blobs_ = std::move(other.blobs_);
  return *this;
}

void TraceStore::absorb(const TraceWriter& writer) {
  TraceBlob blob;
  blob.codec_name = writer.codec_name();
  blob.bytes = writer.bytes();
  blob.event_count = writer.event_count();
  blob.truncated = writer.frozen();
  add_blob(writer.key(), std::move(blob));
}

void TraceStore::add_blob(TraceKey key, TraceBlob blob) {
  std::lock_guard lock(mutex_);
  blobs_[key] = std::move(blob);
}

std::vector<TraceKey> TraceStore::keys() const {
  std::lock_guard lock(mutex_);
  std::vector<TraceKey> out;
  out.reserve(blobs_.size());
  for (const auto& [key, _] : blobs_) out.push_back(key);
  return out;
}

bool TraceStore::contains(TraceKey key) const {
  std::lock_guard lock(mutex_);
  return blobs_.contains(key);
}

const TraceBlob& TraceStore::blob(TraceKey key) const {
  std::lock_guard lock(mutex_);
  const auto it = blobs_.find(key);
  if (it == blobs_.end()) throw std::out_of_range("TraceStore: no trace for " + key.label());
  return it->second;
}

std::size_t TraceStore::size() const {
  std::lock_guard lock(mutex_);
  return blobs_.size();
}

std::vector<TraceEvent> TraceStore::decode(TraceKey key) const {
  TraceBlob copy;
  {
    std::lock_guard lock(mutex_);
    const auto it = blobs_.find(key);
    if (it == blobs_.end()) throw std::out_of_range("TraceStore: no trace for " + key.label());
    copy = it->second;
  }
  const auto codec = compress::make_codec(copy.codec_name);
  const auto symbols = codec.decoder->decode(copy.bytes);
  std::vector<TraceEvent> events;
  events.reserve(symbols.size());
  for (const auto s : symbols) events.push_back(symbol_to_event(s));
  return events;
}

StoreStats TraceStore::stats() const {
  std::lock_guard lock(mutex_);
  StoreStats s;
  s.trace_count = blobs_.size();
  for (const auto& [_, blob] : blobs_) {
    s.total_events += blob.event_count;
    s.total_compressed_bytes += blob.bytes.size();
  }
  if (s.trace_count > 0) {
    s.mean_events_per_trace = static_cast<double>(s.total_events) / static_cast<double>(s.trace_count);
    s.mean_compressed_bytes_per_trace =
        static_cast<double>(s.total_compressed_bytes) / static_cast<double>(s.trace_count);
  }
  if (s.total_compressed_bytes > 0)
    s.compression_ratio =
        static_cast<double>(s.total_events * sizeof(compress::Symbol)) / static_cast<double>(s.total_compressed_bytes);
  return s;
}

void TraceStore::save(const std::filesystem::path& path) const {
  std::vector<std::uint8_t> buf;
  util::put_varint(buf, kMagic);
  util::put_varint(buf, kVersion);

  const auto functions = registry_->snapshot();
  util::put_varint(buf, functions.size());
  for (const auto& fn : functions) {
    util::put_varint(buf, fn.name.size());
    buf.insert(buf.end(), fn.name.begin(), fn.name.end());
    util::put_varint(buf, static_cast<std::uint64_t>(fn.image));
  }

  std::lock_guard lock(mutex_);
  util::put_varint(buf, blobs_.size());
  for (const auto& [key, blob] : blobs_) {
    util::put_svarint(buf, key.proc);
    util::put_svarint(buf, key.thread);
    util::put_varint(buf, blob.codec_name.size());
    buf.insert(buf.end(), blob.codec_name.begin(), blob.codec_name.end());
    util::put_varint(buf, blob.event_count);
    util::put_varint(buf, blob.truncated ? 1 : 0);
    util::put_varint(buf, blob.bytes.size());
    buf.insert(buf.end(), blob.bytes.begin(), blob.bytes.end());
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("TraceStore::save: cannot open " + path.string());
  out.write(reinterpret_cast<const char*>(buf.data()), static_cast<std::streamsize>(buf.size()));
  if (!out) throw std::runtime_error("TraceStore::save: write failed for " + path.string());
}

TraceStore TraceStore::load(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("TraceStore::load: cannot open " + path.string());
  std::vector<std::uint8_t> buf((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

  std::size_t pos = 0;
  const auto read_string = [&](std::size_t len) {
    if (pos + len > buf.size()) throw std::runtime_error("TraceStore::load: truncated file");
    std::string s(buf.begin() + static_cast<std::ptrdiff_t>(pos), buf.begin() + static_cast<std::ptrdiff_t>(pos + len));
    pos += len;
    return s;
  };

  if (util::get_varint(buf, pos) != kMagic) throw std::runtime_error("TraceStore::load: bad magic");
  if (util::get_varint(buf, pos) != kVersion) throw std::runtime_error("TraceStore::load: unsupported version");

  TraceStore store;
  const auto nfunctions = util::get_varint(buf, pos);
  for (std::uint64_t i = 0; i < nfunctions; ++i) {
    const auto name = read_string(util::get_varint(buf, pos));
    const auto image = static_cast<Image>(util::get_varint(buf, pos));
    const auto id = store.registry().intern(name, image);
    if (id != i) throw std::runtime_error("TraceStore::load: duplicate function name in registry dump");
  }

  const auto nblobs = util::get_varint(buf, pos);
  for (std::uint64_t i = 0; i < nblobs; ++i) {
    TraceKey key;
    key.proc = static_cast<int>(util::get_svarint(buf, pos));
    key.thread = static_cast<int>(util::get_svarint(buf, pos));
    TraceBlob blob;
    blob.codec_name = read_string(util::get_varint(buf, pos));
    blob.event_count = util::get_varint(buf, pos);
    blob.truncated = util::get_varint(buf, pos) != 0;
    const auto nbytes = util::get_varint(buf, pos);
    if (pos + nbytes > buf.size()) throw std::runtime_error("TraceStore::load: truncated blob");
    blob.bytes.assign(buf.begin() + static_cast<std::ptrdiff_t>(pos),
                      buf.begin() + static_cast<std::ptrdiff_t>(pos + nbytes));
    pos += nbytes;
    store.add_blob(key, std::move(blob));
  }
  return store;
}

}  // namespace difftrace::trace
