// Semantic operation records: a per-thread side-channel that annotates the
// call/return event stream with what the runtime *meant* by a call — which
// peer an MPI_Recv waits on, which collective a rank entered, which lock a
// thread acquired. The event stream alone says "rank 3 called MPI_Recv";
// the op record adds "…from rank 5, tag 77", which is exactly what the
// offline verifier (src/analyze) needs to match sends against recvs, detect
// collective mismatches, and build wait-for graphs.
//
// Ops ride inside the trace archive next to the encoded event bytes (CRC
// covered by the same v2 blob frame), so `difftrace check` works on archived
// runs with no re-execution. Archives written before this side-channel
// existed simply load with zero ops; salvaged (damaged) blobs drop their ops
// because the checksum no longer vouches for them.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "trace/event.hpp"

namespace difftrace::trace {

enum class OpCode : std::uint8_t {
  None = 0,
  SendPost = 1,    // blocking send posted: peer = destination, tag, count = bytes
  RecvPost = 2,    // blocking recv posted: peer = source, tag
  IsendPost = 3,   // nonblocking send posted (never blocks by itself)
  IrecvPost = 4,   // nonblocking recv posted
  WaitSend = 5,    // wait on a pending send request: peer = destination, tag
  WaitRecv = 6,    // wait on a pending recv request: peer = source, tag
  CollEnter = 7,   // collective entered: coll/dtype/redop raw, peer = root, count
  LockAcquire = 8,  // named lock acquisition posted (may block): detail = lock name
  LockRelease = 9,  // named lock released: detail = lock name
  ThreadBarrier = 10,  // team-wide thread barrier entered
};

[[nodiscard]] std::string_view op_code_name(OpCode code) noexcept;

/// One semantic annotation, anchored into its thread's event stream by
/// `event_index` (the number of call/return events recorded before the op —
/// i.e. the op happened *inside* whichever frames are open at that index).
/// Field meaning depends on `code`; unused fields keep their defaults.
struct OpRecord {
  std::uint64_t event_index = 0;
  OpCode code = OpCode::None;
  std::int32_t peer = -1;   // partner rank (p2p) or root (collectives); -1 = n/a
  std::int32_t tag = -1;    // message tag; -1 = n/a
  std::uint64_t count = 0;  // payload bytes (p2p) or element count (collectives)
  // Collective identity, stored as raw bytes so the trace layer does not
  // depend on the simmpi enums: which collective, element type, reduction op.
  std::uint8_t coll = 0;
  std::uint8_t dtype = 0;
  std::uint8_t redop = 0;
  std::string detail{};  // human-readable: API name for collectives, lock name for locks

  [[nodiscard]] bool operator==(const OpRecord&) const = default;
};

/// Appends `ops` to `out` (varint count, then per-record varint fields).
void encode_ops(std::vector<std::uint8_t>& out, const std::vector<OpRecord>& ops);

/// Parses an op section written by `encode_ops` starting at `pos`, advancing
/// `pos` past it. Strict mode throws on damage; best-effort mode returns
/// false and leaves `out` with the records readable before the damage.
bool decode_ops(std::span<const std::uint8_t> in, std::size_t& pos, bool best_effort,
                std::vector<OpRecord>& out);

}  // namespace difftrace::trace
