#include "trace/op.hpp"

#include <stdexcept>

#include "util/varint.hpp"

namespace difftrace::trace {

std::string_view op_code_name(OpCode code) noexcept {
  switch (code) {
    case OpCode::None: return "none";
    case OpCode::SendPost: return "send";
    case OpCode::RecvPost: return "recv";
    case OpCode::IsendPost: return "isend";
    case OpCode::IrecvPost: return "irecv";
    case OpCode::WaitSend: return "wait-send";
    case OpCode::WaitRecv: return "wait-recv";
    case OpCode::CollEnter: return "collective";
    case OpCode::LockAcquire: return "lock-acquire";
    case OpCode::LockRelease: return "lock-release";
    case OpCode::ThreadBarrier: return "thread-barrier";
  }
  return "?op";
}

void encode_ops(std::vector<std::uint8_t>& out, const std::vector<OpRecord>& ops) {
  util::put_varint(out, ops.size());
  for (const auto& op : ops) {
    util::put_varint(out, op.event_index);
    util::put_varint(out, static_cast<std::uint64_t>(op.code));
    util::put_svarint(out, op.peer);
    util::put_svarint(out, op.tag);
    util::put_varint(out, op.count);
    util::put_varint(out, op.coll);
    util::put_varint(out, op.dtype);
    util::put_varint(out, op.redop);
    util::put_varint(out, op.detail.size());
    out.insert(out.end(), op.detail.begin(), op.detail.end());
  }
}

bool decode_ops(std::span<const std::uint8_t> in, std::size_t& pos, bool best_effort,
                std::vector<OpRecord>& out) {
  std::size_t cursor = pos;
  try {
    const auto count = util::get_varint(in, cursor);
    for (std::uint64_t i = 0; i < count; ++i) {
      OpRecord op;
      op.event_index = util::get_varint(in, cursor);
      op.code = static_cast<OpCode>(util::get_varint(in, cursor));
      op.peer = static_cast<std::int32_t>(util::get_svarint(in, cursor));
      op.tag = static_cast<std::int32_t>(util::get_svarint(in, cursor));
      op.count = util::get_varint(in, cursor);
      op.coll = static_cast<std::uint8_t>(util::get_varint(in, cursor));
      op.dtype = static_cast<std::uint8_t>(util::get_varint(in, cursor));
      op.redop = static_cast<std::uint8_t>(util::get_varint(in, cursor));
      const auto detail_len = util::get_varint(in, cursor);
      if (detail_len > in.size() || cursor > in.size() - detail_len)
        throw std::out_of_range("truncated op detail");
      op.detail.assign(in.begin() + static_cast<std::ptrdiff_t>(cursor),
                       in.begin() + static_cast<std::ptrdiff_t>(cursor + detail_len));
      cursor += detail_len;
      out.push_back(std::move(op));
      pos = cursor;  // commit record-by-record so best-effort keeps the prefix
    }
  } catch (const std::exception&) {
    if (!best_effort) throw;
    return false;
  }
  pos = cursor;
  return true;
}

}  // namespace difftrace::trace
