// Trace event model shared by the tracer (producer) and DiffTrace (consumer).
//
// A trace is an ordered per-thread sequence of function call/return events.
// Events are stored compressed as symbols: symbol = fid * 2 + kind.
#pragma once

#include <cstdint>
#include <string>

#include "compress/codec.hpp"

namespace difftrace::trace {

using FunctionId = std::uint32_t;

enum class EventKind : std::uint8_t { Call = 0, Return = 1 };

struct TraceEvent {
  FunctionId fid = 0;
  EventKind kind = EventKind::Call;

  [[nodiscard]] bool operator==(const TraceEvent&) const = default;
};

[[nodiscard]] constexpr compress::Symbol event_to_symbol(TraceEvent e) noexcept {
  return e.fid * 2 + static_cast<compress::Symbol>(e.kind);
}

[[nodiscard]] constexpr TraceEvent symbol_to_event(compress::Symbol s) noexcept {
  return TraceEvent{s / 2, static_cast<EventKind>(s & 1)};
}

/// Identifies one trace stream: process rank and thread index within it.
/// Thread 0 is the process's master thread (for pure-MPI apps the only one).
struct TraceKey {
  int proc = 0;
  int thread = 0;

  [[nodiscard]] auto operator<=>(const TraceKey&) const = default;

  /// "6.4"-style label matching the paper's process.thread notation.
  [[nodiscard]] std::string label() const {
    return std::to_string(proc) + "." + std::to_string(thread);
  }
};

}  // namespace difftrace::trace
