// TraceStore: the collected output of one traced execution — one compressed
// blob per (process, thread) plus the shared function registry. This is the
// in-memory equivalent of ParLOT's per-thread trace files, with binary
// save/load so executions can be archived and re-analyzed offline with
// different filters (the paper's "repeatedly analyze the traces offline"
// workflow).
//
// On-disk format (v2, see DESIGN.md "Archive format v2"): a fixed header
// followed by self-describing frames (sync marker, tag, CRC-32, length,
// payload) — one frame for the registry, one per blob. Because traces come
// from *killed* jobs (deadlocks, aborts, truncated flushes), loading has two
// modes: `load` is strict (any damage throws, with the byte offset and
// section named), while `salvage` is best-effort — it recovers every intact
// frame from a truncated or bit-flipped archive, resynchronizes on the
// frame markers, and returns a structured LoadReport instead of throwing.
// v1 archives (no framing, no checksums) still load and salvage.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "trace/event.hpp"
#include "trace/op.hpp"
#include "trace/registry.hpp"
#include "trace/writer.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace difftrace::trace {

struct TraceBlob {
  std::string codec_name;
  std::vector<std::uint8_t> bytes;
  std::uint64_t event_count = 0;  // pre-compression events
  /// Semantic op annotations (src/trace/op.hpp), ordered by event_index.
  /// Persisted inside the same v2 blob frame as `bytes` (CRC covered);
  /// archives written before the side-channel load with zero ops, and
  /// salvaged blobs drop theirs — the checksum no longer vouches for them.
  std::vector<OpRecord> ops;
  bool truncated = false;  // frozen by the watchdog (deadlock/abort)
  /// Recovered from a damaged archive (checksum mismatch or torn frame):
  /// `bytes` may hold only a decodable prefix of the original stream.
  /// Downstream analysis treats the trace as degraded, not authoritative.
  bool salvaged = false;
};

struct StoreStats {
  std::size_t trace_count = 0;
  std::uint64_t total_events = 0;
  std::uint64_t total_compressed_bytes = 0;
  double mean_events_per_trace = 0.0;
  double mean_compressed_bytes_per_trace = 0.0;
  /// raw bytes (4 per event symbol) / compressed bytes
  double compression_ratio = 0.0;
};

/// Outcome of one archive ingestion (strict or salvage). One Entry per
/// section encountered — every blob frame gets a row, so `difftrace fsck`
/// can print a per-blob verdict with byte offsets.
struct LoadReport {
  enum class Status : std::uint8_t {
    Recovered,  // intact: checksum verified (v2) / parsed cleanly (v1)
    Salvaged,   // damaged but a decodable prefix was kept (blob.salvaged set)
    Dropped,    // unusable: nothing of this section reached the store
  };
  struct Entry {
    Status status = Status::Recovered;
    std::string section;       // "header", "registry", "blob 2.3", "framing"
    std::uint64_t offset = 0;  // byte offset of the frame / failure point
    std::uint64_t bytes = 0;   // payload bytes present in the file
    std::string reason;        // empty for a clean recovery
  };

  int version = 0;
  bool registry_ok = false;
  std::size_t registry_functions = 0;
  /// "?fn<id>" names invented for function ids referenced by recovered
  /// blobs but lost with a damaged registry section.
  std::size_t placeholder_functions = 0;
  std::size_t recovered = 0;
  std::size_t salvaged = 0;
  std::size_t dropped = 0;
  std::vector<Entry> entries;

  [[nodiscard]] bool ok() const noexcept { return registry_ok && salvaged == 0 && dropped == 0; }
  [[nodiscard]] std::string render() const;
};

struct SalvageResult;

class TraceStore {
 public:
  /// Best-effort decode of one trace (never throws on corrupt bytes).
  struct DecodedTrace {
    std::vector<TraceEvent> events;
    /// False when the blob was salvaged or its tail failed to decode —
    /// `events` is then the longest clean prefix.
    bool complete = true;
    std::string note;  // why the trace is degraded, when !complete
  };

  TraceStore() : registry_(std::make_shared<FunctionRegistry>()) {}
  explicit TraceStore(std::shared_ptr<FunctionRegistry> registry) : registry_(std::move(registry)) {}

  // Copy/move take the source's lock; the registry is shared, blobs copied.
  TraceStore(const TraceStore& other);
  TraceStore& operator=(const TraceStore& other);
  TraceStore(TraceStore&& other) noexcept;
  TraceStore& operator=(TraceStore&& other) noexcept;

  [[nodiscard]] FunctionRegistry& registry() noexcept { return *registry_; }
  [[nodiscard]] const FunctionRegistry& registry() const noexcept { return *registry_; }
  [[nodiscard]] std::shared_ptr<FunctionRegistry> registry_ptr() const noexcept { return registry_; }

  /// Harvests a writer's encoded stream into the store (thread-safe).
  void absorb(const TraceWriter& writer);
  void add_blob(TraceKey key, TraceBlob blob);

  [[nodiscard]] std::vector<TraceKey> keys() const;
  [[nodiscard]] bool contains(TraceKey key) const;
  [[nodiscard]] const TraceBlob& blob(TraceKey key) const;
  [[nodiscard]] std::size_t size() const;

  /// Decompresses one trace back into its ordered event sequence. Strict:
  /// throws std::runtime_error on corrupt bytes.
  [[nodiscard]] std::vector<TraceEvent> decode(TraceKey key) const;

  /// Decompresses as much of one trace as is readable. Corrupt or salvaged
  /// blobs yield the longest decodable prefix with `complete = false`
  /// instead of throwing (only a missing key still throws out_of_range).
  [[nodiscard]] DecodedTrace decode_tolerant(TraceKey key) const;

  [[nodiscard]] StoreStats stats() const;

  /// Writes a v2 framed+checksummed archive.
  void save(const std::filesystem::path& path) const;
  /// Strict load of a v1 or v2 archive; throws std::runtime_error naming the
  /// failing section and byte offset on any damage.
  [[nodiscard]] static TraceStore load(const std::filesystem::path& path);
  /// Best-effort load: recovers every intact blob from a truncated or
  /// bit-flipped archive. Never throws on damage — the report says what was
  /// recovered, what was dropped, and why.
  [[nodiscard]] static SalvageResult salvage(const std::filesystem::path& path);

 private:
  // registry_ is unguarded by design: it is set in constructors/assignment
  // only (single-writer by contract) and FunctionRegistry is internally
  // thread-safe; blobs_ is the cross-thread harvest target.
  std::shared_ptr<FunctionRegistry> registry_;
  mutable util::Mutex mutex_;
  std::map<TraceKey, TraceBlob> blobs_ DT_GUARDED_BY(mutex_);
};

struct SalvageResult {
  TraceStore store;
  LoadReport report;
};

}  // namespace difftrace::trace
