// TraceStore: the collected output of one traced execution — one compressed
// blob per (process, thread) plus the shared function registry. This is the
// in-memory equivalent of ParLOT's per-thread trace files, with binary
// save/load so executions can be archived and re-analyzed offline with
// different filters (the paper's "repeatedly analyze the traces offline"
// workflow).
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "trace/event.hpp"
#include "trace/registry.hpp"
#include "trace/writer.hpp"

namespace difftrace::trace {

struct TraceBlob {
  std::string codec_name;
  std::vector<std::uint8_t> bytes;
  std::uint64_t event_count = 0;  // pre-compression events
  bool truncated = false;         // frozen by the watchdog (deadlock/abort)
};

struct StoreStats {
  std::size_t trace_count = 0;
  std::uint64_t total_events = 0;
  std::uint64_t total_compressed_bytes = 0;
  double mean_events_per_trace = 0.0;
  double mean_compressed_bytes_per_trace = 0.0;
  /// raw bytes (4 per event symbol) / compressed bytes
  double compression_ratio = 0.0;
};

class TraceStore {
 public:
  TraceStore() : registry_(std::make_shared<FunctionRegistry>()) {}
  explicit TraceStore(std::shared_ptr<FunctionRegistry> registry) : registry_(std::move(registry)) {}

  // Copy/move take the source's lock; the registry is shared, blobs copied.
  TraceStore(const TraceStore& other);
  TraceStore& operator=(const TraceStore& other);
  TraceStore(TraceStore&& other) noexcept;
  TraceStore& operator=(TraceStore&& other) noexcept;

  [[nodiscard]] FunctionRegistry& registry() noexcept { return *registry_; }
  [[nodiscard]] const FunctionRegistry& registry() const noexcept { return *registry_; }
  [[nodiscard]] std::shared_ptr<FunctionRegistry> registry_ptr() const noexcept { return registry_; }

  /// Harvests a writer's encoded stream into the store (thread-safe).
  void absorb(const TraceWriter& writer);
  void add_blob(TraceKey key, TraceBlob blob);

  [[nodiscard]] std::vector<TraceKey> keys() const;
  [[nodiscard]] bool contains(TraceKey key) const;
  [[nodiscard]] const TraceBlob& blob(TraceKey key) const;
  [[nodiscard]] std::size_t size() const;

  /// Decompresses one trace back into its ordered event sequence.
  [[nodiscard]] std::vector<TraceEvent> decode(TraceKey key) const;

  [[nodiscard]] StoreStats stats() const;

  void save(const std::filesystem::path& path) const;
  [[nodiscard]] static TraceStore load(const std::filesystem::path& path);

 private:
  std::shared_ptr<FunctionRegistry> registry_;
  mutable std::mutex mutex_;
  std::map<TraceKey, TraceBlob> blobs_;
};

}  // namespace difftrace::trace
