#include "trace/chaos.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "util/file.hpp"
#include "util/prng.hpp"

namespace difftrace::trace {

namespace {

// Mirrors the v2 layout constants in store.cpp (kept private there; the
// chaos harness reads frames only to pick realistic mutation sites, and
// must keep working even if handed a non-archive byte soup).
constexpr std::uint32_t kFrameSync = 0xD1FFC0DEu;
constexpr std::uint8_t kTagBlob = 2;
constexpr std::size_t kHeaderBytes = 8;
constexpr std::size_t kFrameHeaderBytes = 13;

std::uint32_t read_u32(std::span<const std::uint8_t> in, std::size_t pos) {
  return static_cast<std::uint32_t>(in[pos]) | static_cast<std::uint32_t>(in[pos + 1]) << 8 |
         static_cast<std::uint32_t>(in[pos + 2]) << 16 | static_cast<std::uint32_t>(in[pos + 3]) << 24;
}

struct FrameRef {
  std::size_t offset = 0;   // frame start (sync marker)
  std::size_t end = 0;      // one past the payload
  std::uint8_t tag = 0;
};

/// Walks a well-formed v2 archive's frames; returns empty for anything else.
std::vector<FrameRef> scan_frames(std::span<const std::uint8_t> buf) {
  std::vector<FrameRef> frames;
  if (buf.size() < kHeaderBytes || buf[0] != 'D' || buf[1] != 'T' || buf[2] != 'R' || buf[3] != '2')
    return frames;
  std::size_t pos = kHeaderBytes;
  while (buf.size() - pos >= kFrameHeaderBytes) {
    if (read_u32(buf, pos) != kFrameSync) break;
    const auto len = read_u32(buf, pos + 9);
    if (len > buf.size() - pos - kFrameHeaderBytes) break;
    frames.push_back({pos, pos + kFrameHeaderBytes + len, buf[pos + 4]});
    pos = frames.back().end;
  }
  return frames;
}

std::vector<FrameRef> blob_frames(std::span<const std::uint8_t> buf) {
  auto frames = scan_frames(buf);
  std::erase_if(frames, [](const FrameRef& f) { return f.tag != kTagBlob; });
  return frames;
}

}  // namespace

std::string_view chaos_fault_name(ChaosFault fault) noexcept {
  switch (fault) {
    case ChaosFault::Truncate: return "truncate";
    case ChaosFault::BitFlip: return "bitflip";
    case ChaosFault::DropBlob: return "dropblob";
    case ChaosFault::FreezeMidFlush: return "freeze";
  }
  return "?";
}

ChaosResult chaos_truncate(std::span<const std::uint8_t> archive, std::size_t at) {
  ChaosResult result;
  result.fault = ChaosFault::Truncate;
  at = std::min(at, archive.size());
  result.bytes.assign(archive.begin(), archive.begin() + static_cast<std::ptrdiff_t>(at));
  result.description = "truncated to " + std::to_string(at) + " of " +
                       std::to_string(archive.size()) + " bytes";
  return result;
}

ChaosResult chaos_bit_flip(std::span<const std::uint8_t> archive, std::uint64_t bit) {
  ChaosResult result;
  result.fault = ChaosFault::BitFlip;
  result.bytes.assign(archive.begin(), archive.end());
  if (archive.empty()) {
    result.description = "bit flip skipped: empty archive";
    return result;
  }
  bit %= archive.size() * 8;
  result.bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  result.description = "flipped bit " + std::to_string(bit % 8) + " of byte " +
                       std::to_string(bit / 8);
  return result;
}

ChaosResult chaos_drop_blob(std::span<const std::uint8_t> archive, std::size_t index) {
  const auto blobs = blob_frames(archive);
  if (blobs.empty()) return chaos_truncate(archive, archive.size() / 2);
  const auto& frame = blobs[index % blobs.size()];
  ChaosResult result;
  result.fault = ChaosFault::DropBlob;
  result.bytes.assign(archive.begin(), archive.begin() + static_cast<std::ptrdiff_t>(frame.offset));
  result.bytes.insert(result.bytes.end(), archive.begin() + static_cast<std::ptrdiff_t>(frame.end),
                      archive.end());
  result.description = "dropped blob frame " + std::to_string(index % blobs.size()) + " (bytes " +
                       std::to_string(frame.offset) + ".." + std::to_string(frame.end) + ")";
  return result;
}

ChaosResult chaos_freeze_mid_flush(std::span<const std::uint8_t> archive, std::uint64_t seed) {
  const auto blobs = blob_frames(archive);
  if (blobs.empty()) return chaos_truncate(archive, archive.size() / 2);
  const auto& last = blobs.back();
  // Cut strictly inside the payload, after the frame header: the on-disk
  // state of a writer that died between flush and a complete frame write.
  const auto payload_at = last.offset + kFrameHeaderBytes;
  util::Xoshiro256 rng(seed);
  const auto span = last.end - payload_at;
  const auto cut = payload_at + (span > 1 ? 1 + rng.below(span - 1) : 0);
  auto result = chaos_truncate(archive, cut);
  result.fault = ChaosFault::FreezeMidFlush;
  result.description = "froze writer mid-flush: archive ends " + std::to_string(last.end - cut) +
                       " byte(s) into the final blob frame's stream";
  return result;
}

ChaosResult chaos_inject(std::span<const std::uint8_t> archive, ChaosFault fault,
                         std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  switch (fault) {
    case ChaosFault::Truncate:
      return chaos_truncate(archive, archive.empty() ? 0 : rng.below(archive.size()));
    case ChaosFault::BitFlip:
      return chaos_bit_flip(archive, rng());
    case ChaosFault::DropBlob:
      return chaos_drop_blob(archive, static_cast<std::size_t>(rng()));
    case ChaosFault::FreezeMidFlush:
      return chaos_freeze_mid_flush(archive, rng());
  }
  throw std::invalid_argument("chaos_inject: unknown fault kind");
}

ChaosResult chaos_random(std::span<const std::uint8_t> archive, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const auto fault = static_cast<ChaosFault>(rng.below(4));
  return chaos_inject(archive, fault, rng());
}

std::vector<std::uint8_t> chaos_read_file(const std::filesystem::path& path) {
  try {
    return util::read_file_bytes(path);
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string("chaos: ") + e.what());
  }
}

void chaos_write_file(const std::filesystem::path& path, std::span<const std::uint8_t> bytes) {
  try {
    util::write_file_bytes(path, bytes);
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string("chaos: ") + e.what());
  }
}

}  // namespace difftrace::trace
