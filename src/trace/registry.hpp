// Function registry: interns function names to dense IDs and records where
// each function lives (which binary "image") — the information Pin has when
// ParLOT decides what to instrument, and which the front-end filters use.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "trace/event.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace difftrace::trace {

/// Which binary image a function belongs to. ParLOT distinguishes the *main
/// image* (application code, including `@plt` stubs for external calls) from
/// library images captured only in all-images mode.
enum class Image : std::uint8_t {
  Main,      // application code + @plt stubs
  MpiLib,    // MPI API entry points (MPI_Send, ...)
  OmpLib,    // OpenMP runtime entry points (GOMP_*)
  SystemLib, // libc-style functions (memcpy, malloc, poll, strlen, ...)
  Internal,  // library-internal helpers, visible only in all-images captures
};

[[nodiscard]] std::string_view image_name(Image image) noexcept;

struct FunctionInfo {
  FunctionId id = 0;
  std::string name;
  Image image = Image::Main;
};

/// Thread-safe intern table. IDs are dense and stable for the lifetime of
/// the registry; the same name always maps to the same ID.
class FunctionRegistry {
 public:
  /// Returns the ID for `name`, creating it with `image` on first sight.
  /// A later intern of an existing name ignores the image argument.
  FunctionId intern(std::string_view name, Image image = Image::Main);

  [[nodiscard]] std::optional<FunctionId> find(std::string_view name) const;
  /// Returns by value: interning from other threads may reallocate storage,
  /// so references would not be stable.
  [[nodiscard]] FunctionInfo info(FunctionId id) const;
  [[nodiscard]] std::string name(FunctionId id) const { return info(id).name; }
  [[nodiscard]] std::size_t size() const;

  /// Snapshot of all functions, ordered by ID (for serialization/reports).
  [[nodiscard]] std::vector<FunctionInfo> snapshot() const;

 private:
  mutable util::Mutex mutex_;
  std::unordered_map<std::string, FunctionId> by_name_ DT_GUARDED_BY(mutex_);
  std::vector<FunctionInfo> infos_ DT_GUARDED_BY(mutex_);
};

}  // namespace difftrace::trace
