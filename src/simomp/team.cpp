#include "simomp/team.hpp"

#include <exception>
#include <map>
#include <stdexcept>
#include <thread>
#include <vector>

#include "instrument/tracer.hpp"
#include "simfault/injector.hpp"
#include "trace/op.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace difftrace::simomp {

namespace {

using instrument::TraceScope;
using trace::Image;

struct TeamState {
  int size = 0;
  // barrier state
  int arrived = 0;
  std::uint64_t generation = 0;
};

struct Registry {
  util::Mutex mutex;
  util::CondVar cv;
  std::map<int, TeamState> teams DT_GUARDED_BY(mutex);  // proc -> active region
  /// (proc, name) -> section mutex. Entries are created on first use and
  /// never erased, so a pointer handed out under `mutex` stays valid for the
  /// process lifetime (Critical holds one across its own lock/unlock).
  std::map<std::pair<int, std::string>, util::Mutex> criticals DT_GUARDED_BY(mutex);
};

Registry& registry() {
  static Registry r;
  return r;
}

/// Team thread id of the calling thread (-1 outside a parallel region).
/// Critical reads it so LockHold fault plans can predicate on the thread
/// without threading a tid through every Critical construction site.
thread_local int t_team_tid = -1;

struct TidGuard {
  int prev;
  explicit TidGuard(int tid) noexcept : prev(t_team_tid) { t_team_tid = tid; }
  ~TidGuard() { t_team_tid = prev; }
  TidGuard(const TidGuard&) = delete;
  TidGuard& operator=(const TidGuard&) = delete;
};

/// Semantic op annotation (trace/op.hpp) on the current thread's stream.
/// Lock acquisitions are annotated *before* blocking on the mutex, so a
/// frozen trace still names the lock a thread is stuck on.
void note_lock_op(trace::OpCode code, std::string_view lock_name) {
  trace::OpRecord op;
  op.code = code;
  op.detail = std::string(lock_name);
  instrument::Tracer::instance().on_op(std::move(op));
}

}  // namespace

namespace detail {

void note_region_begin(int proc, int num_threads) {
  auto& r = registry();
  const util::MutexLock lock(r.mutex);
  auto [it, inserted] = r.teams.emplace(proc, TeamState{num_threads, 0, 0});
  if (!inserted) throw std::logic_error("simomp: nested parallel regions are not supported");
}

void note_region_end(int proc) {
  auto& r = registry();
  const util::MutexLock lock(r.mutex);
  r.teams.erase(proc);
}

}  // namespace detail

void parallel_region(int proc, int num_threads, const std::function<void(int)>& fn) {
  if (num_threads <= 0) throw std::invalid_argument("parallel_region: num_threads must be positive");

  // GOMP_parallel_start is emitted by the master (the forking thread).
  instrument::Tracer::instance().on_call("GOMP_parallel_start@plt", Image::Main);
  instrument::Tracer::instance().on_call("GOMP_parallel_start", Image::OmpLib);
  {
    TraceScope internal("gomp_team_start", Image::Internal);
  }
  instrument::Tracer::instance().on_return("GOMP_parallel_start", Image::OmpLib);
  instrument::Tracer::instance().on_return("GOMP_parallel_start@plt", Image::Main);

  detail::note_region_begin(proc, num_threads);

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(num_threads - 1));
  util::Mutex error_mutex;
  std::exception_ptr first_error;

  const auto capture_error = [&](std::exception_ptr e) {
    const util::MutexLock lock(error_mutex);
    if (!first_error) first_error = e;
  };

  for (int tid = 1; tid < num_threads; ++tid) {
    workers.emplace_back([&, tid] {
      instrument::ScopedBinding binding(trace::TraceKey{proc, tid});
      const TidGuard team_tid(tid);
      try {
        fn(tid);
      } catch (...) {
        capture_error(std::current_exception());
      }
    });
  }

  // Master participates as thread 0, on the calling thread (which is
  // already bound as {proc, 0} by the MPI runtime).
  try {
    const TidGuard team_tid(0);
    fn(0);
  } catch (...) {
    capture_error(std::current_exception());
  }

  for (auto& w : workers) w.join();
  detail::note_region_end(proc);

  instrument::Tracer::instance().on_call("GOMP_parallel_end@plt", Image::Main);
  instrument::Tracer::instance().on_call("GOMP_parallel_end", Image::OmpLib);
  instrument::Tracer::instance().on_return("GOMP_parallel_end", Image::OmpLib);
  instrument::Tracer::instance().on_return("GOMP_parallel_end@plt", Image::Main);

  if (first_error) std::rethrow_exception(first_error);
}

Critical::Critical(int proc, std::string_view name) : name_(name) {
  auto& r = registry();
  {
    const util::MutexLock lock(r.mutex);
    section_ = &r.criticals[{proc, std::string(name)}];
  }
  {
    // GOMP_critical_start returns once the lock is held.
    TraceScope scope("GOMP_critical_start", Image::OmpLib, /*plt=*/true);
    note_lock_op(trace::OpCode::LockAcquire, name_);
    section_->lock();
  }
  // LockHold fault plans: burn N traced virtual ticks while the section is
  // held, stretching the critical region the way a descheduled holder would.
  if (simfault::hooks::active()) {
    const int hold = simfault::hooks::lock_hold_ticks(proc, t_team_tid < 0 ? 0 : t_team_tid);
    for (int i = 0; i < hold; ++i) {
      const TraceScope tick("sched_yield", Image::SystemLib, /*plt=*/true);
    }
  }
}

Critical::~Critical() {
  TraceScope scope("GOMP_critical_end", Image::OmpLib, /*plt=*/true);
  note_lock_op(trace::OpCode::LockRelease, name_);
  section_->unlock();
}

void team_barrier(int proc) {
  TraceScope scope("GOMP_barrier", Image::OmpLib, /*plt=*/true);
  instrument::Tracer::instance().on_op(trace::OpRecord{.code = trace::OpCode::ThreadBarrier});
  auto& r = registry();
  const util::MutexLock lock(r.mutex);
  const auto it = r.teams.find(proc);
  if (it == r.teams.end()) throw std::logic_error("team_barrier: no active parallel region for proc");
  TeamState& team = it->second;
  const std::uint64_t my_generation = team.generation;
  if (++team.arrived == team.size) {
    team.arrived = 0;
    ++team.generation;
    r.cv.notify_all();
  } else {
    while (team.generation == my_generation) r.cv.wait(r.mutex);
  }
}

}  // namespace difftrace::simomp
