// simomp: a fork/join shared-memory team runtime playing the role OpenMP
// plays in the paper's hybrid miniapps.
//
// parallel_region(n, fn) runs fn(0..n-1): fn(0) on the calling thread (the
// "master", like OpenMP's thread 0) and fn(1..n-1) on freshly spawned
// threads, exactly the `#pragma omp parallel num_threads(n)` structure of
// ILCS Listing 1. Worker threads bind to the tracer as process `proc`,
// threads 1..n-1, producing the paper's "6.4"-style trace keys.
//
// Trace vocabulary matches libgomp so Table I's OMP filters apply:
// GOMP_parallel_start/end, GOMP_critical_start/end, GOMP_barrier, plus
// gomp_team_* internals for all-images captures.
//
// Exception safety: if the master or any worker throws (including the
// watchdog's DeadlockAbort), all workers are still joined before the first
// exception is rethrown — a parallel region never leaks threads.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace difftrace::simomp {

/// Runs `fn(tid)` for tid in [0, num_threads). `proc` is the owning MPI
/// rank, used for trace keys and critical-section scoping.
void parallel_region(int proc, int num_threads, const std::function<void(int)>& fn);

/// Named critical section, scoped per process (two processes' sections are
/// independent, like OpenMP named criticals within separate jobs). Emits
/// GOMP_critical_start/GOMP_critical_end around the lock.
class DT_SCOPED_CAPABILITY Critical {
 public:
  /// Looks up (creating on first use) the process-scoped section mutex and
  /// acquires it; the constructor returns with the section held.
  Critical(int proc, std::string_view name) DT_ACQUIRE(section_);
  ~Critical() DT_RELEASE();
  Critical(const Critical&) = delete;
  Critical& operator=(const Critical&) = delete;

 private:
  std::string name_;  // kept for the release annotation
  util::Mutex* section_ = nullptr;  // owned by the simomp registry, never null after ctor
};

/// Team-wide barrier for the current region (GOMP_barrier). All
/// `num_threads` of the process's active region must call it.
void team_barrier(int proc);

/// The traced entry/exit that an `omp parallel` pragma compiles into;
/// exposed for tests. parallel_region calls these internally.
namespace detail {
void note_region_begin(int proc, int num_threads);
void note_region_end(int proc);
}  // namespace detail

}  // namespace difftrace::simomp
