#include "cli/args.hpp"

#include "util/str.hpp"

namespace difftrace::cli {

Args::Args(const std::vector<std::string>& tokens) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const auto& token = tokens[i];
    if (!util::starts_with(token, "--")) {
      positional_.push_back(token);
      continue;
    }
    const auto body = token.substr(2);
    if (body.empty()) throw ArgError("empty option name '--'");
    if (const auto eq = body.find('='); eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--key value" unless the next token is another option (or absent):
    // then it is a boolean flag.
    if (i + 1 < tokens.size() && !util::starts_with(tokens[i + 1], "--")) {
      options_[body] = tokens[i + 1];
      ++i;
    } else {
      options_[body] = "";
    }
  }
}

std::string Args::required(const std::string& key) const {
  const auto it = options_.find(key);
  if (it == options_.end() || it->second.empty()) throw ArgError("missing required option --" + key);
  return it->second;
}

std::string Args::get_or(const std::string& key, const std::string& fallback) const {
  const auto it = options_.find(key);
  return it == options_.end() || it->second.empty() ? fallback : it->second;
}

std::optional<std::string> Args::get(const std::string& key) const {
  const auto it = options_.find(key);
  if (it == options_.end() || it->second.empty()) return std::nullopt;
  return it->second;
}

std::int64_t Args::int_or(const std::string& key, std::int64_t fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end() || it->second.empty()) return fallback;
  try {
    std::size_t used = 0;
    const auto value = std::stoll(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument("trailing junk");
    return value;
  } catch (const std::exception&) {
    throw ArgError("option --" + key + " expects an integer, got '" + it->second + "'");
  }
}

bool Args::flag(const std::string& key) const { return options_.contains(key); }

std::string Args::positional_at(std::size_t index, const std::string& what) const {
  if (index >= positional_.size()) throw ArgError("missing " + what);
  return positional_[index];
}

}  // namespace difftrace::cli
