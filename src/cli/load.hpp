// The one archive-load → salvage → health-report sequence every
// archive-consuming entry point shares: CLI commands and the serve daemon's
// ingest path both call load_tolerant, so "how difftrace treats a damaged
// archive" is defined exactly once. Strict load is attempted first; on
// damage the loader falls back to salvage, reports what was recovered on
// the caller's chatter stream, and marks the result degraded. Only an
// archive with nothing recoverable is an error (ArgError, exit 2).
#pragma once

#include <ostream>
#include <string>

#include "trace/store.hpp"

namespace difftrace::cli {

struct TolerantLoad {
  trace::TraceStore store;
  /// True when strict load failed and the store holds salvaged remains —
  /// downstream consumers treat the evidence as degraded, not authoritative.
  bool salvaged = false;
};

/// Loads `path` strictly, falling back to salvage with a "[salvage] ..."
/// status line on `err`. Throws ArgError when nothing is recoverable.
[[nodiscard]] TolerantLoad load_tolerant(const std::string& path, std::ostream& err);

/// load_tolerant, keeping only the store (the historical helper shape).
[[nodiscard]] trace::TraceStore load_store(const std::string& path, std::ostream& err);

/// load_store under a "load" span, so every archive-consuming command's
/// manifest has a depth-1 load phase and `perf diff` can compare load time
/// across any pair of runs. The span closes after the return value is
/// constructed (guaranteed copy elision), so it covers the whole load.
[[nodiscard]] trace::TraceStore load_store_span(const std::string& path, std::ostream& err);

}  // namespace difftrace::cli
