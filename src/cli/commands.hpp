// The difftrace command-line tool, as a testable library. Each command
// takes parsed Args and an output stream, returns a process exit code, and
// throws cli::ArgError for usage mistakes (main converts those to exit 2).
//
// Commands (see usage_text() for the full synopsis):
//   collect   run a catalog miniapp under the tracer (optionally with a
//             fault plan armed), save the store to a file
//   matrix    run the apps x fault-plans accuracy grid, print the verdict
//             wall, write a machine-readable matrix report
//   info      trace-store statistics and per-trace summary
//   decode    print a filtered token stream of one trace
//   nlr       print the NLR of one trace (with the loop legend)
//   rank      filter/attribute sweep over a normal/faulty store pair
//   diffnlr   diffNLR(x) between two stores
//   progress  per-trace progress ratios (least-progressed analysis)
//   outliers  single-run JSM outlier analysis (no baseline needed)
//   check     semantic verifier: stream well-formedness, MPI matching and
//             deadlock detection, lock discipline (exit 0/1/3)
//   fsck      archive integrity check / best-effort salvage report
//   chaos     inject a deterministic fault into an archive (testing aid)
//   stats     render a run manifest (--stats=FILE output) as tables
//   cache     inspect/maintain the --cache artifact cache (stats|clear|verify)
//   perf      performance observability: export a manifest/self-trace as
//             Chrome Trace Event JSON or CSV; noise-aware diff of two run
//             manifests (exit 3 on regression)
//   serve     resident sharded trace service: ingest archives into an
//             on-disk store and answer rank/check/diff queries over a
//             line-delimited JSON socket protocol (see src/serve)
//   query     thin client for a running serve daemon
//
// Global flags (any command): --stats=FILE writes a JSON run manifest
// (bare --stats renders it to err), --self-trace=FILE records the
// pipeline's own phases as a v2 trace archive (see obs/selftrace.hpp).
// Use the '=' forms — a separated value would be eaten as the option's
// argument ahead of the positionals.
//
// Stream discipline: command *results* go to `out`; progress/salvage
// chatter, degraded-mode warnings, and telemetry summaries go to `err`.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "cli/args.hpp"
#include "core/filter.hpp"

namespace difftrace::cli {

[[nodiscard]] std::string usage_text();

/// Parses the tool's filter mini-language: '+'-joined category names
/// (mpiall, mpicol, mpisr, mpiint, omp, ompcrit, ompmutex, mem, net, poll,
/// string, all) and "cust=<regex>" terms, with optional leading "rets," /
/// "plt," modifiers that KEEP returns / @plt stubs.
/// Examples: "mpiall", "mem+ompcrit+cust=^CPU_", "rets,mpiall".
[[nodiscard]] core::FilterSpec parse_filter(const std::string& spec);

/// Dispatches argv[1..]; returns the exit code.
int run_command(const std::vector<std::string>& argv, std::ostream& out, std::ostream& err);

// Individual commands (exposed for tests). Results go to `out`; chatter
// (salvage notes, watchdog and degraded-mode warnings) goes to `err`.
int cmd_collect(const Args& args, std::ostream& out, std::ostream& err);
int cmd_matrix(const Args& args, std::ostream& out, std::ostream& err);
int cmd_info(const Args& args, std::ostream& out, std::ostream& err);
int cmd_decode(const Args& args, std::ostream& out, std::ostream& err);
int cmd_nlr(const Args& args, std::ostream& out, std::ostream& err);
int cmd_rank(const Args& args, std::ostream& out, std::ostream& err);
int cmd_diffnlr(const Args& args, std::ostream& out, std::ostream& err);
int cmd_progress(const Args& args, std::ostream& out, std::ostream& err);
int cmd_outliers(const Args& args, std::ostream& out, std::ostream& err);
int cmd_export(const Args& args, std::ostream& out, std::ostream& err);
int cmd_triage(const Args& args, std::ostream& out, std::ostream& err);
int cmd_report(const Args& args, std::ostream& out, std::ostream& err);
int cmd_check(const Args& args, std::ostream& out, std::ostream& err);
int cmd_fsck(const Args& args, std::ostream& out, std::ostream& err);
int cmd_chaos(const Args& args, std::ostream& out, std::ostream& err);
int cmd_stats(const Args& args, std::ostream& out, std::ostream& err);
int cmd_cache(const Args& args, std::ostream& out, std::ostream& err);
int cmd_perf(const Args& args, std::ostream& out, std::ostream& err);
int cmd_serve(const Args& args, std::ostream& out, std::ostream& err);
int cmd_query(const Args& args, std::ostream& out, std::ostream& err);

}  // namespace difftrace::cli
