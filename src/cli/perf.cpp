// `difftrace perf` — the performance-observability command group.
//
//   perf export INPUT [--format {chrome|csv}] [--out FILE]
//   perf diff BASE HEAD [--rel-threshold F] [--abs-floor-ms F] [--json]
//        [--no-selftrace] [--out FILE]
//
// export turns telemetry the pipeline already produces (a --stats=FILE run
// manifest, or a --self-trace archive) into artifacts external tools load:
// Chrome Trace Event JSON (chrome://tracing, Perfetto) or CSV. diff compares
// two run manifests phase by phase with the noise model documented in
// obs/perfdiff.hpp, and — when both manifests record a self-trace archive —
// reuses the core diffNLR pipeline on difftrace's own traces to localize
// *where* the two runs' phase structures diverged (DiffTrace diffing
// DiffTrace). This TU lives in the CLI because that localization needs
// difftrace_core; the exporters and differ themselves are obs-layer.
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "cli/commands.hpp"
#include "core/pipeline.hpp"
#include "obs/export.hpp"
#include "obs/perfdiff.hpp"
#include "obs/span.hpp"
#include "trace/store.hpp"
#include "util/log.hpp"

namespace difftrace::cli {

namespace {

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw ArgError("cannot open '" + path + "'");
  std::ostringstream text;
  text << file.rdbuf();
  return std::move(text).str();
}

/// A run manifest is a JSON object; everything else we try as an archive.
bool looks_like_json(const std::string& text) {
  for (const char c : text) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') continue;
    return c == '{';
  }
  return false;
}

/// Tolerant archive load, mirroring the main command loader: damaged
/// self-traces are salvaged and exported as far as they decode.
trace::TraceStore load_archive(const std::string& path, std::ostream& err) {
  try {
    return trace::TraceStore::load(path);
  } catch (const std::exception& e) {
    auto result = trace::TraceStore::salvage(path);
    if (result.store.size() == 0)
      throw ArgError("cannot load trace store '" + path + "': " + e.what());
    util::status_line(err, "[salvage] '" + path + "' is damaged (" + e.what() + "); exporting " +
                               std::to_string(result.store.size()) + " recovered stream(s)");
    return std::move(result.store);
  }
}

obs::RunManifest parse_manifest(const std::string& path, const std::string& text) {
  try {
    return obs::RunManifest::from_json_text(text);
  } catch (const std::exception& e) {
    throw ArgError("cannot parse manifest '" + path + "': " + e.what());
  }
}

double double_or(const Args& args, const std::string& key, double fallback) {
  const auto value = args.get(key);
  if (!value || value->empty()) return fallback;
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(*value, &pos);
    if (pos == value->size()) return parsed;
  } catch (const std::exception&) {
  }
  throw ArgError("bad --" + key + " value '" + *value + "' (expected a number)");
}

/// Writes `body(stream)` to --out FILE when given, else to `out`.
template <typename Body>
void emit(const Args& args, std::ostream& out, Body&& body) {
  if (const auto path = args.get("out"); path && !path->empty()) {
    std::ofstream file(*path, std::ios::trunc);
    if (!file) throw ArgError("cannot open output file '" + *path + "'");
    body(file);
  } else {
    body(out);
  }
}

int perf_export(const Args& args, std::ostream& out, std::ostream& err) {
  const auto input = args.positional_at(2, "input (run manifest JSON or self-trace archive)");
  const auto format_name = args.get_or("format", "chrome");
  const auto format = obs::parse_export_format(format_name);
  if (!format) throw ArgError("unknown perf export format '" + format_name + "' (chrome, csv)");

  const auto text = read_file(input);
  if (looks_like_json(text)) {
    obs::Span span_export("export-manifest");
    const auto manifest = parse_manifest(input, text);
    emit(args, out, [&](std::ostream& sink) {
      if (*format == obs::ExportFormat::Chrome)
        obs::export_manifest_chrome(manifest, sink);
      else
        obs::export_manifest_csv(manifest, sink);
    });
  } else {
    obs::Span span_export("export-selftrace");
    const auto store = load_archive(input, err);
    emit(args, out, [&](std::ostream& sink) {
      if (*format == obs::ExportFormat::Chrome)
        obs::export_selftrace_chrome(store, sink);
      else
        obs::export_selftrace_csv(store, sink);
    });
  }
  if (const auto path = args.get("out"); path && !path->empty())
    util::status_line(err, "[perf] " + format_name + " export written to " + *path);
  return 0;
}

/// Resolve a self_trace path recorded in a manifest: as written, then
/// relative to the manifest's own directory (manifests usually record the
/// path the run was given, which was relative to the run's cwd).
std::string resolve_selftrace(const std::string& recorded, const std::string& manifest_path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (fs::is_regular_file(recorded, ec)) return recorded;
  const auto sibling = fs::path(manifest_path).parent_path() / fs::path(recorded).filename();
  if (fs::is_regular_file(sibling, ec)) return sibling.string();
  return {};
}

void localize_divergence(obs::PerfDiffReport& report, const obs::RunManifest& base,
                         const obs::RunManifest& head, const std::string& base_path,
                         const std::string& head_path, std::ostream& err) {
  auto& selftrace = report.selftrace;
  if (base.self_trace.empty() || head.self_trace.empty()) {
    selftrace.note = "not run (both manifests must record --self-trace archives)";
    return;
  }
  const auto base_archive = resolve_selftrace(base.self_trace, base_path);
  const auto head_archive = resolve_selftrace(head.self_trace, head_path);
  if (base_archive.empty() || head_archive.empty()) {
    selftrace.note = "not run (self-trace archive '" +
                     (base_archive.empty() ? base.self_trace : head.self_trace) + "' not found)";
    return;
  }
  try {
    obs::Span span_localize("localize");
    const auto base_store = load_archive(base_archive, err);
    const auto head_store = load_archive(head_archive, err);
    // The self-trace is a genuine v2 archive, so the paper pipeline applies
    // unchanged: base plays "normal", head plays "faulty", and diffNLR over
    // the main stream (0.0, the command's own thread) names the first
    // structural divergence between the two runs' phase sequences.
    const core::Session session(base_store, head_store, parse_filter("all"), core::NlrConfig{});
    if (session.traces().empty()) {
      selftrace.note = "not run (the two self-traces share no stream)";
      return;
    }
    auto key = session.traces().front();
    for (const auto& candidate : session.traces())
      if (candidate == trace::TraceKey{0, 0}) key = candidate;
    const auto diff = session.diffnlr(key);
    selftrace.ran = true;
    selftrace.identical = diff.identical();
    selftrace.distance = diff.distance();
    if (!diff.identical()) selftrace.rendered = diff.render();
    selftrace.note = "diffNLR over stream " + key.label() + " of " + base_archive + " vs " +
                     head_archive;
  } catch (const std::exception& e) {
    selftrace.note = std::string("not run (") + e.what() + ")";
  }
}

int perf_diff(const Args& args, std::ostream& out, std::ostream& err) {
  const auto base_path = args.positional_at(2, "base manifest");
  const auto head_path = args.positional_at(3, "head manifest");

  obs::PerfDiffOptions options;
  options.rel_threshold = double_or(args, "rel-threshold", options.rel_threshold);
  const double floor_ms =
      double_or(args, "abs-floor-ms", static_cast<double>(options.abs_floor_ns) / 1e6);
  if (options.rel_threshold < 0.0) throw ArgError("--rel-threshold must be >= 0");
  if (floor_ms < 0.0) throw ArgError("--abs-floor-ms must be >= 0");
  options.abs_floor_ns = static_cast<std::uint64_t>(floor_ms * 1e6);

  obs::RunManifest base;
  obs::RunManifest head;
  {
    obs::Span span_load("load");
    base = parse_manifest(base_path, read_file(base_path));
    head = parse_manifest(head_path, read_file(head_path));
  }

  obs::PerfDiffReport report;
  {
    obs::Span span_diff("diff");
    report = obs::diff_manifests(base, head, options, base_path, head_path);
  }
  if (!args.flag("no-selftrace"))
    localize_divergence(report, base, head, base_path, head_path, err);
  else
    report.selftrace.note = "disabled (--no-selftrace)";

  emit(args, out, [&](std::ostream& sink) {
    if (args.flag("json"))
      report.write_json(sink);
    else
      sink << report.render();
  });
  return report.exit_code();
}

}  // namespace

int cmd_perf(const Args& args, std::ostream& out, std::ostream& err) {
  const auto action = args.positional_at(1, "perf action (export, diff)");
  if (action == "export") return perf_export(args, out, err);
  if (action == "diff") return perf_diff(args, out, err);
  throw ArgError("unknown perf action '" + action + "' (export, diff)");
}

}  // namespace difftrace::cli
