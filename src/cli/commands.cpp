#include "cli/commands.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "analyze/analyze.hpp"
#include "apps/catalog.hpp"
#include "apps/runner.hpp"
#include "cli/load.hpp"
#include "cli/ops.hpp"
#include "simfault/injector.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "core/triage.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/selftrace.hpp"
#include "obs/span.hpp"
#include "sched/cache.hpp"
#include "sched/pool.hpp"
#include "trace/chaos.hpp"
#include "trace/export.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

namespace difftrace::cli {

namespace {

using core::FilterSpec;

apps::FaultSpec parse_fault(const Args& args) {
  apps::FaultSpec fault;
  const auto name = args.get_or("fault", "none");
  const std::map<std::string, apps::FaultType> kinds = {
      {"none", apps::FaultType::None},
      {"swapBug", apps::FaultType::SwapBug},
      {"dlBug", apps::FaultType::DlBug},
      {"ompNoCritical", apps::FaultType::OmpNoCritical},
      {"wrongCollectiveSize", apps::FaultType::WrongCollectiveSize},
      {"wrongCollectiveOp", apps::FaultType::WrongCollectiveOp},
      {"skipLagrangeLeapFrog", apps::FaultType::SkipLagrangeLeapFrog},
  };
  const auto it = kinds.find(name);
  if (it == kinds.end()) throw ArgError("unknown fault '" + name + "'");
  fault.type = it->second;
  fault.proc = static_cast<int>(args.int_or("fault-proc", -1));
  fault.thread = static_cast<int>(args.int_or("fault-thread", -1));
  fault.iteration = static_cast<int>(args.int_or("fault-iteration", -1));
  if (fault.type != apps::FaultType::None && fault.proc < 0)
    throw ArgError("--fault requires --fault-proc");
  return fault;
}

/// Fault selection for `collect`: --plan SPEC (the unified grammar) wins;
/// the legacy --fault/--fault-* flags are converted to an equivalent plan.
simfault::FaultPlan plan_from(const Args& args) {
  if (args.has("plan")) {
    if (args.get_or("fault", "none") != "none")
      throw ArgError("--plan and --fault are mutually exclusive");
    try {
      return simfault::parse_plan(args.required("plan"));
    } catch (const simfault::PlanError& e) {
      throw ArgError(std::string("bad --plan: ") + e.what());
    }
  }
  return apps::to_fault_plan(parse_fault(args));
}

}  // namespace

FilterSpec parse_filter(const std::string& spec) {
  FilterSpec filter;
  bool any_term = false;
  for (const auto& term : util::split(spec, '+')) {
    if (term.empty()) throw ArgError("empty term in filter spec '" + spec + "'");
    if (term == "rets") {
      filter.drop_returns(false);
      continue;
    }
    if (term == "plt") {
      filter.drop_plt(false);
      continue;
    }
    if (util::starts_with(term, "cust=")) {
      filter.keep_custom(term.substr(5));
      any_term = true;
      continue;
    }
    if (term == "all") {
      any_term = true;  // keep-set stays empty = Everything
      continue;
    }
    static const std::map<std::string, core::Category> kCategories = {
        {"mpiall", core::Category::MpiAll},   {"mpicol", core::Category::MpiCollectives},
        {"mpisr", core::Category::MpiSendRecv}, {"mpiint", core::Category::MpiInternal},
        {"omp", core::Category::OmpAll},      {"ompcrit", core::Category::OmpCritical},
        {"ompmutex", core::Category::OmpMutex}, {"mem", core::Category::Memory},
        {"net", core::Category::Network},     {"poll", core::Category::Poll},
        {"string", core::Category::String},
    };
    const auto it = kCategories.find(term);
    if (it == kCategories.end()) throw ArgError("unknown filter term '" + term + "'");
    filter.keep(it->second);
    any_term = true;
  }
  if (!any_term) throw ArgError("filter spec '" + spec + "' selects nothing (use 'all' to keep everything)");
  return filter;
}

std::string usage_text() {
  return R"(difftrace — whole-program trace analysis and diffing
usage: difftrace <command> [options]

commands:
  collect --app NAME --out FILE [--nranks N] [--size N] [--workers N]
          [--iterations N] [--seed N] [--plan SPEC | --fault NAME
          --fault-proc P [--fault-thread T] [--fault-iteration I]]
          [--level {main|all}] [--codec {parlot|lz78|null}]
      run a catalog miniapp (oddeven, ilcs, lulesh, stencil, mwq, pcpipe,
      ring, redtree) under the tracer and save the trace store. --plan takes
      a fault-plan spec, e.g. 'drop@rank=1' or 'delay@rank=2,op=6,ticks=24'
      (classes: drop, dup, reorder, misroute, corrupt, skip, delay, lockhold,
      plus the app-side paper bugs swapBug, dlBug, ompNoCritical,
      wrongCollectiveSize, wrongCollectiveOp, skipLagrangeLeapFrog); the
      --fault flags are the legacy spelling of the app-side classes.
  matrix --out FILE [--apps A,B,...] [--faults SPEC;SPEC;...] [--nranks N]
         [--jobs N] [--cell-timeout-ms N] [--keep-archives DIR] [--quiet]
      run the apps x fault-plans grid: collect a clean baseline and one
      faulty run per cell (deadlocks bounded by the per-cell watchdog),
      then ask whether `rank` puts the injected rank first and whether
      `check` emits the right diagnostic class. Prints the verdict wall
      and writes a machine-readable matrix report to FILE (validate with
      tools/check_matrix.py). Faults are ';'-separated plan specs
      (default: one representative plan per class).
  info STORE [--json]
      store statistics: traces, events, compression, distinct functions.
      --json emits the same data as a machine-readable document.
  decode STORE --trace P.T [--filter SPEC]
      print the (filtered) token stream of one trace.
  nlr STORE --trace P.T [--filter SPEC] [--k N]
      print the nested-loop representation of one trace.
  rank NORMAL FAULTY [--filters SPEC,SPEC,...] [--attrs a,b,...] [--k N]
       [--linkage NAME] [--top N] [--jobs N] [--cache[=DIR]]
      filter x attribute sweep; prints the ranking table and consensus.
      --jobs N sizes the worker pool (default: DIFFTRACE_JOBS env, then the
      hardware concurrency; --jobs 1 forces serial; --threads is a legacy
      alias). --cache reuses per-trace NLR and per-row evaluation artifacts
      from DIR (default .difftrace-cache). Output is byte-identical at any
      job count and any cache state.
  diffnlr NORMAL FAULTY --trace P.T [--filter SPEC] [--k N] [--color]
          [--side-by-side]
      loop-structure diff of one trace between the two runs.
  progress NORMAL FAULTY [--filter SPEC]
      per-trace progress ratios; flags the least-progressed trace.
  outliers STORE [--filter SPEC] [--attr a] [--linkage NAME]
      single-run JSM outlier analysis (no baseline needed).
  export STORE [--format {csv|json}] [--out FILE]
      export decoded traces with logical timestamps (OTF-style).
  triage NORMAL FAULTY [--filter SPEC] [--k N]
      initial bug-class triage: hang / structural-change / frequency-change.
  report NORMAL FAULTY [--filters SPEC,...] [--detail-filter SPEC]
         [--diffs N] [--side-by-side] [--jobs N] [--cache[=DIR]]
      one-shot artifact: triage + ranking + progress + top diffNLRs.
  check STORE [--checkers NAME,NAME,...] [--engine {replay|summary|auto}]
        [--cache[=DIR]] [--list]
      semantic trace verifier: call/return well-formedness, MPI send/recv
      matching, collective agreement, deadlock cycles, and lock discipline.
      exits 0 when clean, 1 when any error-severity finding exists, 3 when
      only warnings/infos were found. --list prints the available checkers.
      --engine picks how facts are derived: 'replay' walks every decoded op
      (default), 'summary' analyzes loop-body effect summaries over the NLR
      form (widening undecidable bodies), 'auto' uses summaries but replays
      exactly the loops a summary cannot decide (logged to stderr) — same
      verdicts as replay, typically much faster on iterative traces.
      --cache keys exact per-stream summaries into the artifact cache so a
      warm re-check skips summarization entirely.
  fsck STORE [--rescue FILE]
      integrity-check an archive; prints a per-section salvage report and
      exits non-zero if anything is damaged. --rescue writes the recovered
      store (re-framed and re-checksummed) to FILE.
  chaos STORE --out FILE [--seed N] [--fault {truncate|bitflip|dropblob|
        freeze|random}]
      write a deterministically corrupted copy of an archive (testing aid).
  stats MANIFEST
      render a run manifest (the --stats=FILE output) as human tables.
  cache {stats|clear|verify} [--cache=DIR]
      inspect or maintain the content-addressed artifact cache written by
      rank/report --cache (default directory .difftrace-cache). verify
      frame-checks every entry and exits 1 if any is damaged.
  perf export INPUT [--format {chrome|csv}] [--out FILE]
      turn telemetry into external-tool artifacts. INPUT is a run manifest
      (--stats=FILE JSON) or a self-trace archive (--self-trace output),
      auto-detected. 'chrome' (default) emits Chrome Trace Event JSON for
      chrome://tracing / Perfetto — one lane per span-tree root, per-phase
      p50/p95/p99 and the counter snapshot in the span args; 'csv' a flat
      per-phase (manifest) or per-span (self-trace) table.
  perf diff BASE HEAD [--rel-threshold F] [--abs-floor-ms F] [--json]
       [--no-selftrace] [--out FILE]
      compare two run manifests phase by phase. A phase only counts as
      changed when its wall delta exceeds BOTH the relative threshold
      (default 0.25 of base) AND the absolute floor (default 1 ms); verdicts
      are improved/regressed/unchanged/added/removed. When both manifests
      record --self-trace archives, diffNLR runs over them to localize where
      the phase structure diverged (--no-selftrace skips this). --json emits
      the machine schema validated by tools/check_manifest.py --perfdiff.
      exits 0 when no phase regressed, 3 on any regression.
  serve --socket PATH [--store DIR] [--jobs N] [--idle-timeout-ms N]
      resident trace service: owns a sharded on-disk store of ingested
      archives (DIR defaults to .difftrace-store), keeps hot decoded stores
      and NLR sessions pinned in memory, and answers line-delimited JSON
      requests (ingest, list, rank, check, diff, stats, shutdown) on a local
      socket. Answers are byte-identical to the cold CLI commands; repeated
      queries skip load/decode/NLR work. Runs until a shutdown request (or
      SIGINT/SIGTERM). Daemon chatter goes to stderr; validate response
      framing with tools/check_manifest.py --serve.
  query --socket PATH OP [operands] [--timeout-ms N] [--id ID] [--raw]
      thin client for a running serve daemon. OP is one of:
        ingest FILE [--name NAME]   add an archive to the daemon's store
        list                        ingested runs (name, crc, shard, sizes)
        rank NORMAL FAULTY [...]    ranking table (same flags as 'rank')
        check RUN [...]             semantic checks (same flags as 'check')
        diff NORMAL FAULTY --trace P.T [...]   diffNLR (flags of 'diffnlr')
        stats                       daemon counters and cache occupancy
        shutdown                    ask the daemon to exit cleanly
      RUN operands name ingested runs, not filesystem paths. Exit code is
      the server-reported code for the operation; connection failures exit
      1 after a bounded retry. --raw prints the raw response JSON line.

global flags (any command; use the '=' forms):
  --stats[=FILE]      collect a run manifest: per-phase wall/CPU spans,
                      pipeline counters, input digests, peak RSS. Written as
                      JSON to FILE, or rendered to stderr without a FILE.
  --self-trace[=FILE] record difftrace's own pipeline phases as a v2 trace
                      archive (default difftrace-selftrace.dtrc) — analyzable
                      with 'difftrace nlr', 'diffnlr', and 'fsck'.

filter SPEC: '+'-joined terms from {mpiall, mpicol, mpisr, mpiint, omp,
ompcrit, ompmutex, mem, net, poll, string, all, cust=REGEX}; prefix terms
'rets' / 'plt' KEEP returns / @plt stubs. Example: mem+ompcrit+cust=^CPU_
)";
}

int cmd_collect(const Args& args, std::ostream& out, std::ostream& err) {
  const auto app_name = args.required("app");
  const auto path = args.required("out");
  const auto level = args.get_or("level", "main") == "all" ? instrument::CaptureLevel::AllImages
                                                           : instrument::CaptureLevel::MainImage;
  const auto codec = args.get_or("codec", "parlot");

  const auto* app = apps::find_app(app_name);
  if (!app) {
    std::string names;
    for (const auto& entry : apps::app_catalog()) {
      if (!names.empty()) names += ", ";
      names += entry.name;
    }
    throw ArgError("unknown app '" + app_name + "' (" + names + ")");
  }

  apps::AppParams params;
  params.nranks = static_cast<int>(args.int_or("nranks", 0));
  params.threads = static_cast<int>(args.int_or("workers", 0));
  // --cycles is the historical lulesh spelling; --iterations is the uniform one.
  params.iterations = static_cast<int>(args.int_or("iterations", args.int_or("cycles", 0)));
  params.size = static_cast<int>(args.int_or("size", 0));
  params.seed = static_cast<std::uint64_t>(args.int_or("seed", 42));
  params.plan = plan_from(args);

  simmpi::RankFn fn;
  try {
    fn = apps::make_rank_fn(*app, params);
  } catch (const simfault::PlanError& e) {
    throw ArgError(std::string("bad fault plan: ") + e.what());
  }
  const auto resolved = apps::resolve_params(*app, params);

  simmpi::WorldConfig world;
  world.nranks = resolved.nranks;

  // Runtime classes arm the injector for the duration of the run; app-side
  // classes were already baked into the rank program by make_rank_fn.
  std::optional<simfault::InjectorSession> session;
  if (simfault::is_runtime_class(resolved.plan.cls))
    session.emplace(resolved.plan, app->shape(resolved));

  auto run = apps::run_traced(world, fn, level, codec);

  if (run.report.deadlock) util::status_line(err, "[watchdog] " + run.report.deadlock_info);
  if (session && !session->fired())
    util::status_line(err, "[simfault] armed plan '" + resolved.plan.to_spec() + "' never fired");
  run.store.save(path);
  const auto stats = run.store.stats();
  out << "saved " << stats.trace_count << " trace(s), " << stats.total_events << " events, "
      << stats.total_compressed_bytes << " compressed bytes to " << path << "\n";
  return 0;
}

int cmd_info(const Args& args, std::ostream& out, std::ostream& err) {
  const auto store = load_store_span(args.positional_at(1, "trace-store path"), err);
  obs::Span span_render("render");
  const auto stats = store.stats();
  if (args.flag("json")) {
    util::JsonWriter json(out);
    json.begin_object();
    json.field("traces", stats.trace_count);
    json.field("events", stats.total_events);
    json.field("compressed_bytes", stats.total_compressed_bytes);
    json.field("compression_ratio", stats.compression_ratio);
    json.field("functions", store.registry().size());
    // Execution-engine context: what a sweep run with these flags/env would
    // use, plus the process-wide cache counters (nonzero when the in-process
    // harness ran cached commands earlier).
    json.field("jobs", sched::resolve_jobs(jobs_request_from(args)));
    json.field("cache_dir", cache_dir_from(args));
    json.field("cache_hits", obs::counter("sched.cache_hit").value());
    json.field("cache_misses", obs::counter("sched.cache_miss").value());
    json.key("blobs");
    json.begin_array();
    for (const auto& key : store.keys()) {
      const auto& blob = store.blob(key);
      json.begin_object();
      json.field("proc", key.proc);
      json.field("thread", key.thread);
      json.field("events", blob.event_count);
      json.field("bytes", blob.bytes.size());
      json.field("codec", blob.codec_name);
      json.field("truncated", blob.truncated);
      json.field("salvaged", blob.salvaged);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    out << "\n";
    return 0;
  }
  out << "traces:             " << stats.trace_count << "\n";
  out << "events:             " << stats.total_events << "\n";
  out << "compressed bytes:   " << stats.total_compressed_bytes << "\n";
  out << "compression ratio:  " << util::format_double(stats.compression_ratio, 1) << "x\n";
  out << "distinct functions: " << store.registry().size() << "\n\n";

  util::TextTable table({"Trace", "Events", "Bytes", "Codec", "Truncated"});
  for (const auto& key : store.keys()) {
    const auto& blob = store.blob(key);
    table.add_row({key.label(), std::to_string(blob.event_count), std::to_string(blob.bytes.size()),
                   blob.codec_name, blob.truncated ? "yes" : "no"});
  }
  out << table.render();
  return 0;
}

int cmd_decode(const Args& args, std::ostream& out, std::ostream& err) {
  const auto store = load_store_span(args.positional_at(1, "trace-store path"), err);
  const auto key = parse_trace_key(args.required("trace"));
  const auto filter = parse_filter(args.get_or("filter", "all"));
  obs::Span span_decode("decode");
  for (const auto& token : filter.apply(store, key)) out << token << "\n";
  return 0;
}

int cmd_nlr(const Args& args, std::ostream& out, std::ostream& err) {
  const auto store = load_store_span(args.positional_at(1, "trace-store path"), err);
  const auto key = parse_trace_key(args.required("trace"));
  const auto filter = parse_filter(args.get_or("filter", "all"));
  obs::Span span_nlr("nlr");
  core::TokenTable tokens;
  core::LoopTable loops;
  const auto program =
      core::build_nlr(tokens.intern_all(filter.apply(store, key)), loops, nlr_from(args));
  out << core::program_to_string(program, tokens);
  for (std::size_t l = 0; l < loops.size(); ++l) {
    out << "L" << l << " = [";
    const auto& body = loops.body(l);
    for (std::size_t i = 0; i < body.size(); ++i)
      out << (i ? " " : "") << core::item_label(body[i], tokens);
    out << "]\n";
  }
  return 0;
}

int cmd_rank(const Args& args, std::ostream& out, std::ostream& err) {
  // Phase accounting: "load" spans everything up to the sweep (store loads
  // and cache setup), core::sweep opens its own span inside rank_stores, and
  // "render" covers the rest — so the manifest's depth-1 phases tile the
  // command's wall time with no dark gaps.
  std::optional<trace::TraceStore> normal, faulty;
  std::optional<sched::Cache> cache;  // outlives the sweep that borrows it
  {
    obs::Span span_load("load");
    normal = load_store(args.positional_at(1, "normal trace store"), err);
    faulty = load_store(args.positional_at(2, "faulty trace store"), err);
    if (const auto dir = cache_dir_from(args); !dir.empty()) cache.emplace(dir);
  }
  return rank_stores(*normal, *faulty, args, cache ? &*cache : nullptr, out, err);
}

int cmd_diffnlr(const Args& args, std::ostream& out, std::ostream& err) {
  const auto normal = load_store_span(args.positional_at(1, "normal trace store"), err);
  const auto faulty = load_store_span(args.positional_at(2, "faulty trace store"), err);
  const auto session = make_session(normal, faulty, args);
  return render_diffnlr(*session, args.required("trace"), args, out);
}

int cmd_progress(const Args& args, std::ostream& out, std::ostream& err) {
  const auto normal = load_store_span(args.positional_at(1, "normal trace store"), err);
  const auto faulty = load_store_span(args.positional_at(2, "faulty trace store"), err);
  const core::Session session(normal, faulty, parse_filter(args.get_or("filter", "mpiall")),
                              nlr_from(args));
  obs::Span span_progress("progress");
  util::TextTable table({"Trace", "Progress ratio"});
  const auto ratios = session.progress_ratios();
  for (std::size_t i = 0; i < ratios.size(); ++i)
    table.add_row({session.traces()[i].label(), util::format_double(ratios[i], 3)});
  out << table.render();
  if (!session.traces().empty()) {
    const auto least = session.least_progressed();
    out << "least progressed: " << session.traces()[least].label() << " (ratio "
        << util::format_double(ratios[least], 3) << ")\n";
  }
  return 0;
}

int cmd_outliers(const Args& args, std::ostream& out, std::ostream& err) {
  const auto store = load_store_span(args.positional_at(1, "trace-store path"), err);
  const auto eval = core::evaluate_single_run(
      store, parse_filter(args.get_or("filter", "mpiall")),
      parse_attr(args.get_or("attr", "sing.actual")), nlr_from(args),
      parse_linkage(args.get_or("linkage", "ward")));
  obs::Span span_render("render");
  util::TextTable table({"Trace", "Outlier score"});
  for (std::size_t i = 0; i < eval.traces.size(); ++i)
    table.add_row({eval.traces[i].label(), util::format_double(eval.outlier_scores[i], 3)});
  out << table.render();
  std::vector<std::string> labels;
  for (const auto& key : eval.traces) labels.push_back(key.label());
  out << "dendrogram:\n" << core::render_dendrogram(eval.dendrogram, eval.traces.size(), labels);
  return 0;
}

int cmd_report(const Args& args, std::ostream& out, std::ostream& err) {
  const auto normal = load_store_span(args.positional_at(1, "normal trace store"), err);
  const auto faulty = load_store_span(args.positional_at(2, "faulty trace store"), err);
  core::ReportConfig config;
  config.sweep.filters = filters_from(args);
  config.sweep.pipeline.nlr = nlr_from(args);
  config.sweep.analysis_threads = jobs_request_from(args);
  std::optional<sched::Cache> cache;  // outlives build_report's sweep
  if (const auto dir = cache_dir_from(args); !dir.empty()) {
    cache.emplace(dir);
    config.sweep.cache = &*cache;
  }
  config.detail_filter = parse_filter(args.get_or("detail-filter", args.get_or("filters", "mpiall")));
  config.diffnlr_count = static_cast<std::size_t>(args.int_or("diffs", 2));
  config.side_by_side = args.flag("side-by-side");
  out << core::build_report(normal, faulty, config).text;
  return 0;
}

int cmd_triage(const Args& args, std::ostream& out, std::ostream& err) {
  const auto normal = load_store_span(args.positional_at(1, "normal trace store"), err);
  const auto faulty = load_store_span(args.positional_at(2, "faulty trace store"), err);
  const auto report = core::triage(normal, faulty, parse_filter(args.get_or("filter", "mpiall")),
                                   nlr_from(args));
  obs::Span span_render("render");
  out << report.render();
  return 0;
}

int cmd_export(const Args& args, std::ostream& out, std::ostream& err) {
  const auto store = load_store_span(args.positional_at(1, "trace-store path"), err);
  const auto format_name = args.get_or("format", "csv");
  trace::ExportFormat format;
  if (format_name == "csv")
    format = trace::ExportFormat::Csv;
  else if (format_name == "json")
    format = trace::ExportFormat::Json;
  else
    throw ArgError("unknown export format '" + format_name + "' (csv, json)");

  obs::Span span_export("export");
  if (const auto path = args.get("out")) {
    std::ofstream file(*path, std::ios::trunc);
    if (!file) throw ArgError("cannot open output file '" + *path + "'");
    trace::export_store(store, file, format);
    out << "exported to " << *path << "\n";
  } else {
    trace::export_store(store, out, format);
  }
  return 0;
}

int cmd_check(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.flag("list")) {
    util::TextTable table({"Checker", "Description"});
    for (const auto& info : analyze::available_checkers())
      table.add_row({std::string(info.name), std::string(info.description)});
    out << table.render();
    return 0;
  }
  const auto path = args.positional_at(1, "trace-store path");
  const auto store = load_store_span(path, err);
  return check_store(store, path, args, /*default_cache_dir=*/"", out, err);
}

int cmd_fsck(const Args& args, std::ostream& out, std::ostream& /*err*/) {
  const auto path = args.positional_at(1, "trace-store path");
  trace::SalvageResult result;
  try {
    obs::Span span_salvage("salvage");
    result = trace::TraceStore::salvage(path);
  } catch (const std::exception& e) {
    // salvage only throws on I/O problems (missing/unreadable file).
    throw ArgError("cannot read '" + path + "': " + e.what());
  }
  {
    obs::Span span_render("render");
    out << "fsck " << path << "\n" << result.report.render();
  }
  if (const auto rescue = args.get("rescue")) {
    obs::Span span_rescue("rescue");
    result.store.save(*rescue);
    out << "rescued store written to " << *rescue << " (" << result.store.size() << " trace(s))\n";
  }
  return result.report.ok() ? 0 : 1;
}

int cmd_chaos(const Args& args, std::ostream& out, std::ostream& /*err*/) {
  const auto path = args.positional_at(1, "trace-store path");
  const auto out_path = args.required("out");
  const auto seed = static_cast<std::uint64_t>(args.int_or("seed", 1));
  const auto fault_name = args.get_or("fault", "random");

  std::vector<std::uint8_t> archive;
  try {
    obs::Span span_load("load");
    archive = trace::chaos_read_file(path);
  } catch (const std::exception& e) {
    throw ArgError("cannot read '" + path + "': " + e.what());
  }

  obs::Span span_inject("inject");
  trace::ChaosResult result;
  if (fault_name == "random")
    result = trace::chaos_random(archive, seed);
  else if (fault_name == "truncate")
    result = trace::chaos_inject(archive, trace::ChaosFault::Truncate, seed);
  else if (fault_name == "bitflip")
    result = trace::chaos_inject(archive, trace::ChaosFault::BitFlip, seed);
  else if (fault_name == "dropblob")
    result = trace::chaos_inject(archive, trace::ChaosFault::DropBlob, seed);
  else if (fault_name == "freeze")
    result = trace::chaos_inject(archive, trace::ChaosFault::FreezeMidFlush, seed);
  else
    throw ArgError("unknown fault '" + fault_name +
                   "' (truncate, bitflip, dropblob, freeze, random)");

  trace::chaos_write_file(out_path, result.bytes);
  out << "injected " << trace::chaos_fault_name(result.fault) << " (seed " << seed << "): "
      << result.description << "\n";
  out << archive.size() << " -> " << result.bytes.size() << " bytes written to " << out_path << "\n";
  return 0;
}

int cmd_stats(const Args& args, std::ostream& out, std::ostream& /*err*/) {
  const auto path = args.positional_at(1, "manifest path (from --stats=FILE)");
  obs::RunManifest manifest;
  {
    obs::Span span_load("load");
    std::ifstream file(path);
    if (!file) throw ArgError("cannot open manifest '" + path + "'");
    std::ostringstream text;
    text << file.rdbuf();
    try {
      manifest = obs::RunManifest::from_json_text(text.str());
    } catch (const std::exception& e) {
      throw ArgError("cannot parse manifest '" + path + "': " + e.what());
    }
  }
  obs::Span span_render("render");
  out << manifest.render();
  return 0;
}

int cmd_cache(const Args& args, std::ostream& out, std::ostream& /*err*/) {
  const auto action = args.positional_at(1, "cache action (stats, clear, verify)");
  auto dir = cache_dir_from(args);
  if (dir.empty()) dir = kDefaultCacheDir;
  // One action span per subcommand ("cache/verify", ...), so cache
  // maintenance runs produce structured manifests too.
  obs::Span span_action(action);
  sched::Cache cache(dir);
  if (action == "stats") {
    const auto stats = cache.stats();
    out << "cache directory: " << cache.dir().string() << "\n";
    out << "entries:         " << stats.entries << "\n";
    out << "bytes:           " << stats.bytes << "\n";
    return 0;
  }
  if (action == "clear") {
    out << "removed " << cache.clear() << " entrie(s) from " << cache.dir().string() << "\n";
    return 0;
  }
  if (action == "verify") {
    const auto report = cache.verify();
    out << "verified " << report.checked << " entrie(s): " << report.ok << " ok, " << report.bad
        << " bad\n";
    for (const auto& name : report.bad_entries) out << "  bad: " << name << "\n";
    return report.bad == 0 ? 0 : 1;
  }
  throw ArgError("unknown cache action '" + action + "' (stats, clear, verify)");
}

namespace {

int dispatch(const std::string& command, const Args& args, std::ostream& out, std::ostream& err) {
  if (command == "collect") return cmd_collect(args, out, err);
  if (command == "matrix") return cmd_matrix(args, out, err);
  if (command == "info") return cmd_info(args, out, err);
  if (command == "decode") return cmd_decode(args, out, err);
  if (command == "nlr") return cmd_nlr(args, out, err);
  if (command == "rank") return cmd_rank(args, out, err);
  if (command == "diffnlr") return cmd_diffnlr(args, out, err);
  if (command == "progress") return cmd_progress(args, out, err);
  if (command == "outliers") return cmd_outliers(args, out, err);
  if (command == "export") return cmd_export(args, out, err);
  if (command == "triage") return cmd_triage(args, out, err);
  if (command == "report") return cmd_report(args, out, err);
  if (command == "check") return cmd_check(args, out, err);
  if (command == "fsck") return cmd_fsck(args, out, err);
  if (command == "chaos") return cmd_chaos(args, out, err);
  if (command == "stats") return cmd_stats(args, out, err);
  if (command == "cache") return cmd_cache(args, out, err);
  if (command == "perf") return cmd_perf(args, out, err);
  if (command == "serve") return cmd_serve(args, out, err);
  if (command == "query") return cmd_query(args, out, err);
  throw ArgError("unknown command '" + command + "' (see 'difftrace help')");
}

}  // namespace

int run_command(const std::vector<std::string>& argv, std::ostream& out, std::ostream& err) {
  if (argv.empty() || argv[0] == "help" || argv[0] == "--help") {
    out << usage_text();
    return 0;
  }

  int code = 0;
  bool want_stats = false;
  bool want_selftrace = false;
  std::string stats_path;
  std::string selftrace_path;
  std::vector<std::string> input_paths;
  std::uint64_t manifest_jobs = 0;
  std::string manifest_cache_dir;
  std::string manifest_check_engine;
  try {
    const Args args(argv);
    const auto& command = argv[0];
    want_stats = args.has("stats");
    stats_path = args.get_or("stats", "");
    want_selftrace = args.has("self-trace");
    selftrace_path = args.get_or("self-trace", "");
    if (want_selftrace && selftrace_path.empty()) selftrace_path = "difftrace-selftrace.dtrc";
    // Execution-engine provenance for the manifest: only sweep commands
    // spin up a pool, so jobs stays 0 (unrecorded) elsewhere.
    if (command == "rank" || command == "report" || command == "matrix" || command == "serve")
      manifest_jobs = sched::resolve_jobs(jobs_request_from(args));
    manifest_cache_dir = cache_dir_from(args);
    // Fact-engine provenance: which engine `check` derived its facts with
    // (recorded whether or not the flag parses — a bad value exits 2 anyway).
    if (command == "check")
      if (const auto engine = analyze::parse_check_engine(args.get_or("engine", "replay")))
        manifest_check_engine = analyze::check_engine_name(*engine);

    // One telemetry window per run: the process may host several in-process
    // run_command calls (tests), so start each instrumented run from zero.
    if (want_stats || want_selftrace) {
      obs::MetricsRegistry::instance().reset();
      obs::PhaseTable::instance().reset();
    }
    if (want_selftrace) obs::SelfTrace::instance().start();

    // Input digests for the manifest: positional operands that name files.
    for (std::size_t i = 1; i < args.positional().size(); ++i) {
      std::error_code ec;
      if (std::filesystem::is_regular_file(args.positional()[i], ec))
        input_paths.push_back(args.positional()[i]);
    }

    {
      // The command root span: every per-stage span nests under it, and the
      // manifest's wall time / coverage accounting is rooted here.
      obs::Span span_command(command);
      code = dispatch(command, args, out, err);
    }
  } catch (const ArgError& e) {
    util::status_line(err, std::string("error: ") + e.what());
    code = 2;
  } catch (const std::exception& e) {
    util::status_line(err, std::string("error: ") + e.what());
    code = 1;
  }

  // Telemetry epilogue — outside the root span so its own cost (CRC-32 of
  // the inputs, archive save) never pollutes the phase table.
  try {
    if (want_selftrace && obs::SelfTrace::instance().active()) {
      const auto store = obs::SelfTrace::instance().stop();
      store.save(selftrace_path);
      util::status_line(err, "[self-trace] " + std::to_string(store.size()) +
                                 " stream(s) written to " + selftrace_path);
    }
    if (want_stats) {
      auto manifest = obs::collect_manifest(argv, input_paths, code);
      manifest.jobs = manifest_jobs;
      manifest.cache_dir = manifest_cache_dir;
      manifest.check_engine = manifest_check_engine;
      // Cross-reference the archive saved above so `perf diff` can follow
      // two manifests to their self-traces and localize divergence.
      if (want_selftrace) manifest.self_trace = selftrace_path;
      if (stats_path.empty()) {
        err << manifest.render();
      } else {
        std::ofstream file(stats_path, std::ios::trunc);
        if (!file) throw std::runtime_error("cannot open stats file '" + stats_path + "'");
        manifest.write_json(file);
        util::status_line(err, "[stats] manifest written to " + stats_path);
      }
    }
  } catch (const std::exception& e) {
    util::status_line(err, std::string("error: ") + e.what());
    if (code == 0) code = 1;
  }
  return code;
}

}  // namespace difftrace::cli
