// The `serve` and `query` commands: process wiring for the serve subsystem.
//
// This file is where the byte-parity contract is closed: the QueryOps handed
// to serve::Service are thin adapters over the SAME command bodies the cold
// CLI dispatches to (cli::rank_stores, cli::check_store, cli::make_session,
// cli::render_diffnlr, cli::load_tolerant) — the daemon cannot drift from
// `difftrace rank` because they are one implementation. The adapters'
// only job is translating cli::ArgError (usage, exit 2) into serve::OpError
// so the typed error crosses the cli/serve layer boundary.
#include <csignal>
#include <set>
#include <sstream>
#include <utility>

#include "cli/commands.hpp"
#include "cli/load.hpp"
#include "cli/ops.hpp"
#include "sched/pool.hpp"
#include "serve/server.hpp"
#include "util/log.hpp"

namespace difftrace::cli {

namespace {

volatile std::sig_atomic_t g_serve_signal = 0;

void on_serve_signal(int /*sig*/) { g_serve_signal = 1; }

/// Adapter boilerplate: run a cli op body, converting usage errors to the
/// protocol's typed error.
template <typename Fn>
auto guard_usage(Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const ArgError& e) {
    throw serve::OpError(2, e.what());
  }
}

serve::QueryOps make_query_ops() {
  serve::QueryOps ops;
  ops.load_archive = [](const std::string& path, std::ostream& chatter) {
    return guard_usage([&] {
      auto loaded = load_tolerant(path, chatter);
      return serve::LoadedArchive{std::move(loaded.store), loaded.salvaged};
    });
  };
  ops.rank = [](const trace::TraceStore& normal, const trace::TraceStore& faulty,
                const std::vector<std::string>& opts, sched::Cache* cache, std::ostream& out,
                std::ostream& chatter) {
    return guard_usage(
        [&] { return rank_stores(normal, faulty, Args(opts), cache, out, chatter); });
  };
  ops.check = [](const trace::TraceStore& store, const std::string& label,
                 const std::vector<std::string>& opts, const std::string& default_cache_dir,
                 std::ostream& out, std::ostream& chatter) {
    return guard_usage(
        [&] { return check_store(store, label, Args(opts), default_cache_dir, out, chatter); });
  };
  ops.make_session = [](const trace::TraceStore& normal, const trace::TraceStore& faulty,
                        const std::vector<std::string>& opts) {
    return guard_usage([&] { return make_session(normal, faulty, Args(opts)); });
  };
  ops.diff = [](const core::Session& session, const std::string& trace,
                const std::vector<std::string>& opts, std::ostream& out) {
    return guard_usage([&] { return render_diffnlr(session, trace, Args(opts), out); });
  };
  return ops;
}

}  // namespace

int cmd_serve(const Args& args, std::ostream& /*out*/, std::ostream& err) {
  const auto socket_path = args.required("socket");

  serve::ServiceConfig config;
  config.store_root = args.get_or("store", ".difftrace-store");
  config.hot_capacity = static_cast<std::size_t>(args.int_or("hot", 8));
  serve::Service service(config, make_query_ops(), err);

  serve::ServerConfig server;
  server.jobs = sched::resolve_jobs(jobs_request_from(args));
  server.idle_timeout_ms = static_cast<int>(args.int_or("idle-timeout-ms", 30'000));
  server.interrupt = &g_serve_signal;

  // Bind before installing handlers so a bind failure leaves signal
  // disposition untouched.
  serve::Listener listener(socket_path);
  g_serve_signal = 0;
  const auto prev_int = std::signal(SIGINT, on_serve_signal);
  const auto prev_term = std::signal(SIGTERM, on_serve_signal);
  serve::run_server(service, listener, server, err);
  std::signal(SIGINT, prev_int);
  std::signal(SIGTERM, prev_term);
  return 0;
}

namespace {

/// Client options that configure the query itself (or are claimed by the
/// operand grammar); everything else is forwarded to the daemon verbatim.
const std::set<std::string>& reserved_query_options() {
  static const std::set<std::string> reserved = {
      "socket", "timeout-ms", "timeout", "retries", "raw",
      "id",     "name",       "trace",   "stats",   "self-trace",
  };
  return reserved;
}

serve::Request build_request(const Args& args) {
  serve::Request req;
  req.op = args.positional_at(1, "operation (ingest, list, rank, check, diff, stats, shutdown)");
  req.request_id = args.get_or("id", "q1");
  if (req.op == "ingest") {
    req.path = args.positional_at(2, "archive path to ingest");
    req.name = args.get_or("name", "");
  } else if (req.op == "rank" || req.op == "diff") {
    req.normal = args.positional_at(2, "normal run name");
    req.faulty = args.positional_at(3, "faulty run name");
    if (req.op == "diff") req.trace = args.required("trace");
  } else if (req.op == "check") {
    req.run = args.positional_at(2, "run name to check");
  }
  for (const auto& [key, value] : args.options()) {
    if (reserved_query_options().contains(key)) continue;
    req.opts.push_back(value.empty() ? "--" + key : "--" + key + "=" + value);
  }
  return req;
}

}  // namespace

int cmd_query(const Args& args, std::ostream& out, std::ostream& err) {
  const auto socket_path = args.required("socket");
  const auto req = build_request(args);
  int timeout_ms = static_cast<int>(args.int_or("timeout-ms", 0));
  if (timeout_ms <= 0) timeout_ms = static_cast<int>(args.int_or("timeout", 0)) * 1000;
  if (timeout_ms <= 0) timeout_ms = 30'000;
  const auto retries = static_cast<int>(args.int_or("retries", 5));

  serve::Socket conn;
  try {
    conn = serve::connect_with_retry(socket_path, retries, /*backoff_ms=*/50);
  } catch (const std::exception& e) {
    util::status_line(err, std::string("query: ") + e.what());
    return 1;
  }

  try {
    std::ostringstream framed;
    serve::write_request(framed, req);
    conn.send_all(framed.str());
    conn.set_recv_timeout_ms(timeout_ms);
    std::string line;
    switch (conn.recv_line(line)) {
      case serve::Socket::RecvStatus::Line: {
        const auto resp = serve::parse_response(line);
        if (resp.request_id != req.request_id)
          util::status_line(err, "query: response echoes request_id '" + resp.request_id +
                                     "', expected '" + req.request_id + "'");
        if (args.flag("raw")) {
          out << line << "\n";
        } else {
          out << resp.output;
          err << resp.chatter;
          if (resp.status != "ok")
            util::status_line(err, "query: server error: " + resp.error);
        }
        return resp.exit_code;
      }
      case serve::Socket::RecvStatus::Timeout:
        util::status_line(err, "query: no response within " + std::to_string(timeout_ms) + " ms");
        return 1;
      case serve::Socket::RecvStatus::Closed:
        util::status_line(err, "query: connection closed before a response arrived");
        return 1;
    }
  } catch (const std::exception& e) {
    util::status_line(err, std::string("query: ") + e.what());
    return 1;
  }
  return 1;  // unreachable; switch above covers every status
}

}  // namespace difftrace::cli
