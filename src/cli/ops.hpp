// Store-level command bodies and option parsers, factored out of the
// individual cmd_* functions so the serve daemon can answer rank / check /
// diff queries through EXACTLY the code path the cold-start CLI uses —
// byte-identical output is guaranteed by sharing the implementation, not by
// keeping two renderings in sync.
//
// Everything here operates on already-loaded TraceStores; archive loading
// stays with cli/load.hpp (CLI) and the serve shard store (daemon).
#pragma once

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "cli/args.hpp"
#include "core/pipeline.hpp"
#include "trace/store.hpp"

namespace difftrace::sched {
class Cache;
}

namespace difftrace::cli {

inline constexpr const char* kDefaultCacheDir = ".difftrace-cache";

/// "P" / "P.T" trace label -> TraceKey; ArgError on anything else.
[[nodiscard]] trace::TraceKey parse_trace_key(const std::string& label);

/// "sing.noFreq"-style attribute spec, matching the ranking tables.
[[nodiscard]] core::AttrConfig parse_attr(const std::string& spec);

[[nodiscard]] core::Linkage parse_linkage(const std::string& name);

/// NLR knobs from --k / --min-reps / --fold-known.
[[nodiscard]] core::NlrConfig nlr_from(const Args& args);

/// Comma-separated --filters list (default "mpiall"), each term parsed with
/// parse_filter.
[[nodiscard]] std::vector<core::FilterSpec> filters_from(const Args& args);

/// Requested job count: --jobs wins, --threads is the pre-engine spelling
/// kept as an alias, 0 (default) defers to DIFFTRACE_JOBS / the hardware.
[[nodiscard]] std::size_t jobs_request_from(const Args& args);

/// Cache directory selected by --cache[=DIR]; "" means caching is off.
/// (A bare `--cache` parses as a flag, i.e. an empty value — that selects
/// the default directory.)
[[nodiscard]] std::string cache_dir_from(const Args& args);

/// The body of `rank` after both stores are in memory: degraded-evidence
/// warnings to `err`, the filter × attribute sweep (with `cache` borrowed
/// for per-trace/per-row artifacts when non-null), the ranking table and
/// consensus lines to `out`. Returns the command exit code.
int rank_stores(const trace::TraceStore& normal, const trace::TraceStore& faulty, const Args& args,
                sched::Cache* cache, std::ostream& out, std::ostream& err);

/// The body of `check` after the store is in memory. `label` is the name
/// printed in the report header (the CLI passes the archive path; serve
/// passes the run name). `default_cache_dir` seeds the summary cache when
/// the request carries no --cache of its own ("" = no cache) — the daemon
/// points this at its resident cache directory.
int check_store(const trace::TraceStore& store, const std::string& label, const Args& args,
                const std::string& default_cache_dir, std::ostream& out, std::ostream& err);

/// Builds the filter-dependent Session `diffnlr` renders from. Shared so the
/// daemon can pin built sessions in its hot cache and answer later diff
/// queries without rebuilding NLR programs.
[[nodiscard]] std::shared_ptr<const core::Session> make_session(const trace::TraceStore& normal,
                                                                const trace::TraceStore& faulty,
                                                                const Args& args);

/// The body of `diffnlr` after the session exists: renders diffNLR(trace)
/// honoring --side-by-side / --color. Returns the command exit code.
int render_diffnlr(const core::Session& session, const std::string& trace_label, const Args& args,
                   std::ostream& out);

}  // namespace difftrace::cli
