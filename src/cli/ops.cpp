#include "cli/ops.hpp"

#include <algorithm>
#include <map>

#include "analyze/analyze.hpp"
#include "cli/commands.hpp"
#include "obs/span.hpp"
#include "sched/cache.hpp"
#include "util/log.hpp"
#include "util/str.hpp"

namespace difftrace::cli {

trace::TraceKey parse_trace_key(const std::string& label) {
  const auto parts = util::split(label, '.');
  try {
    if (parts.size() == 1) return {std::stoi(parts[0]), 0};
    if (parts.size() == 2) return {std::stoi(parts[0]), std::stoi(parts[1])};
  } catch (const std::exception&) {
  }
  throw ArgError("bad trace id '" + label + "' (expected P or P.T, e.g. 6.4)");
}

core::AttrConfig parse_attr(const std::string& spec) {
  core::AttrConfig config;
  const auto parts = util::split(spec, '.');
  if (parts.size() != 2) throw ArgError("bad attribute spec '" + spec + "' (expected e.g. sing.noFreq)");
  if (parts[0] == "sing")
    config.kind = core::AttrKind::Single;
  else if (parts[0] == "doub")
    config.kind = core::AttrKind::Double;
  else
    throw ArgError("unknown attribute kind '" + parts[0] + "'");
  if (parts[1] == "actual")
    config.freq = core::FreqMode::Actual;
  else if (parts[1] == "log10")
    config.freq = core::FreqMode::Log10;
  else if (parts[1] == "noFreq")
    config.freq = core::FreqMode::NoFreq;
  else
    throw ArgError("unknown frequency mode '" + parts[1] + "'");
  return config;
}

core::Linkage parse_linkage(const std::string& name) {
  for (const auto method : core::all_linkages())
    if (name == core::linkage_name(method)) return method;
  throw ArgError("unknown linkage '" + name + "'");
}

core::NlrConfig nlr_from(const Args& args) {
  core::NlrConfig nlr;
  nlr.k = static_cast<std::size_t>(args.int_or("k", 10));
  nlr.min_reps = static_cast<std::size_t>(args.int_or("min-reps", 2));
  nlr.fold_known_bodies = args.flag("fold-known");
  return nlr;
}

std::vector<core::FilterSpec> filters_from(const Args& args) {
  std::vector<core::FilterSpec> filters;
  for (const auto& spec : util::split(args.get_or("filters", "mpiall"), ','))
    filters.push_back(parse_filter(spec));
  return filters;
}

std::size_t jobs_request_from(const Args& args) {
  if (args.has("jobs")) return static_cast<std::size_t>(args.int_or("jobs", 0));
  return static_cast<std::size_t>(args.int_or("threads", 0));
}

std::string cache_dir_from(const Args& args) {
  if (!args.has("cache")) return {};
  const auto dir = args.get_or("cache", "");
  return dir.empty() ? std::string(kDefaultCacheDir) : dir;
}

int rank_stores(const trace::TraceStore& normal, const trace::TraceStore& faulty, const Args& args,
                sched::Cache* cache, std::ostream& out, std::ostream& err) {
  // Phase accounting: the caller's "load" span ends before this function, so
  // the pre-sweep work (config parsing + the store-health audit) gets its
  // own depth-1 span — the manifest's phases must tile the command's wall
  // time with no dark gaps (CI gates coverage >= 0.95).
  core::SweepConfig sweep;
  {
    obs::Span span_setup("setup");
    sweep.filters = filters_from(args);
    if (const auto attrs = args.get("attrs")) {
      sweep.attributes.clear();
      for (const auto& spec : util::split(*attrs, ','))
        sweep.attributes.push_back(parse_attr(spec));
    }
    sweep.pipeline.nlr = nlr_from(args);
    sweep.pipeline.linkage = parse_linkage(args.get_or("linkage", "ward"));
    sweep.pipeline.top_n = static_cast<std::size_t>(args.int_or("top", 6));
    sweep.analysis_threads = jobs_request_from(args);
    sweep.cache = cache;
    for (const auto& health : core::store_health(normal, faulty))
      util::status_line(err, "[degraded] trace " + health.key.label() + ": " + health.note);
  }
  const auto table = core::sweep(normal, faulty, sweep);
  obs::Span span_render("render");
  out << table.render();
  out << "consensus suspicious trace:   " << table.consensus_thread() << "\n";
  out << "consensus suspicious process: " << table.consensus_process() << "\n";
  return 0;
}

int check_store(const trace::TraceStore& store, const std::string& label, const Args& args,
                const std::string& default_cache_dir, std::ostream& out, std::ostream& err) {
  analyze::CheckOptions options;
  const auto engine_name = args.get_or("engine", "replay");
  const auto engine = analyze::parse_check_engine(engine_name);
  if (!engine) throw ArgError("unknown engine '" + engine_name + "' (replay, summary, auto)");
  options.engine = *engine;
  options.cache_dir = cache_dir_from(args);
  if (options.cache_dir.empty()) options.cache_dir = default_cache_dir;
  if (options.engine == analyze::CheckEngine::Auto) options.fallback_log = &err;
  if (const auto names = args.get("checkers")) {
    for (const auto& name : util::split(*names, ',')) {
      // An unknown checker is an analysis failure, not a usage error: name
      // the valid checkers and exit 1 before running anything.
      const auto known = analyze::available_checkers();
      if (std::none_of(known.begin(), known.end(),
                       [&name](const analyze::CheckerInfo& info) { return info.name == name; })) {
        std::string valid;
        for (const auto& info : known) {
          if (!valid.empty()) valid += ", ";
          valid += info.name;
        }
        err << "check: unknown checker '" << name << "' — valid checkers: " << valid << "\n";
        return 1;
      }
      options.checkers.push_back(name);
    }
  }
  const auto report = analyze::run_checks(store, options);
  out << "check " << label << "\n" << report.render();
  return report.exit_code();
}

std::shared_ptr<const core::Session> make_session(const trace::TraceStore& normal,
                                                  const trace::TraceStore& faulty,
                                                  const Args& args) {
  return std::make_shared<core::Session>(normal, faulty,
                                         parse_filter(args.get_or("filter", "mpiall")),
                                         nlr_from(args));
}

int render_diffnlr(const core::Session& session, const std::string& trace_label, const Args& args,
                   std::ostream& out) {
  const auto key = parse_trace_key(trace_label);
  obs::Span span_diff("diff");
  const auto diff = session.diffnlr(key);
  out << "diffNLR(" << key.label() << "):\n";
  if (args.flag("side-by-side"))
    out << diff.render_side_by_side();
  else
    out << diff.render(args.flag("color"));
  return 0;
}

}  // namespace difftrace::cli
