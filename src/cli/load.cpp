#include "cli/load.hpp"

#include <sstream>
#include <utility>

#include "cli/args.hpp"
#include "obs/span.hpp"
#include "util/log.hpp"

namespace difftrace::cli {

TolerantLoad load_tolerant(const std::string& path, std::ostream& err) {
  try {
    return {trace::TraceStore::load(path), /*salvaged=*/false};
  } catch (const std::exception& e) {
    // Damaged archives are the expected input of a debugging tool (the jobs
    // we trace get killed); fall back to salvage and analyze what survives
    // rather than refusing. fsck gives the full per-blob report.
    auto result = trace::TraceStore::salvage(path);
    if (result.store.size() == 0)
      throw ArgError("cannot load trace store '" + path + "': " + e.what());
    std::ostringstream msg;
    msg << "[salvage] '" << path << "' is damaged (" << e.what() << "); recovered "
        << result.report.recovered << " intact and " << result.report.salvaged
        << " partial blob(s), dropped " << result.report.dropped
        << " — run 'difftrace fsck' for details";
    util::status_line(err, msg.str());
    return {std::move(result.store), /*salvaged=*/true};
  }
}

trace::TraceStore load_store(const std::string& path, std::ostream& err) {
  return std::move(load_tolerant(path, err).store);
}

trace::TraceStore load_store_span(const std::string& path, std::ostream& err) {
  obs::Span span_load("load");
  return load_store(path, err);
}

}  // namespace difftrace::cli
