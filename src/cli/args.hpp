// Minimal command-line parsing for the difftrace tool: positional
// arguments plus --name value options and --name boolean flags. Kept as a
// library so the command layer is unit-testable without spawning processes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace difftrace::cli {

class ArgError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Args {
 public:
  /// Parses tokens (argv[1..]): "--key value" pairs, bare "--key" flags
  /// (when followed by another option or nothing), everything else
  /// positional. "--key=value" is also accepted.
  explicit Args(const std::vector<std::string>& tokens);

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept { return positional_; }
  [[nodiscard]] bool has(const std::string& key) const { return options_.contains(key); }

  /// Option value; throws ArgError when missing.
  [[nodiscard]] std::string required(const std::string& key) const;
  [[nodiscard]] std::string get_or(const std::string& key, const std::string& fallback) const;
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  [[nodiscard]] std::int64_t int_or(const std::string& key, std::int64_t fallback) const;
  [[nodiscard]] bool flag(const std::string& key) const;

  /// Positional at index; throws ArgError with `what` when absent.
  [[nodiscard]] std::string positional_at(std::size_t index, const std::string& what) const;

  /// Every parsed option in sorted key order (flags map to ""). The query
  /// client uses this view to forward options it does not itself consume to
  /// the serve daemon verbatim.
  [[nodiscard]] const std::map<std::string, std::string>& options() const noexcept {
    return options_;
  }

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> options_;  // flags map to ""
};

}  // namespace difftrace::cli
