// `difftrace matrix` — the apps x fault-plans accuracy wall.
//
// For every selected catalog app the command collects one clean baseline
// plus one faulty run per fault plan (collection is serial: the tracer is a
// process-global singleton; every run sits under a tight per-cell watchdog
// so injected deadlocks are bounded), then grades each cell on the
// sched::Pool: does `rank` put the injected rank first, and does `check`
// emit a diagnostic from the fault class's expected family?
//
// Verdict taxonomy (per cell):
//   clean           none-column run with a clean check report
//   false-positive  none-column run where check found something
//   hang            the run deadlocked / hit the watchdog (rank & check
//                   still run over the truncated archives — that is the
//                   paper's whole point — and their results are recorded)
//   detected        rank-first AND an expected diagnostic fired
//   rank-only       rank-first, but check stayed silent
//   check-only      expected diagnostic fired, but rank missed
//   silent          neither signal (the fault is below the tracer's horizon)
//   skipped         the plan does not apply to this app (structured
//                   PlanError, no silently-armed-nothing cells)
//   failed          the app or the analysis threw
//
// Cells on deterministic apps are marked `pinned`: their verdicts are
// reproducible run-to-run and tools/check_matrix.py --golden treats a
// pinned-cell change as a regression.
#include <cctype>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analyze/analyze.hpp"
#include "apps/catalog.hpp"
#include "apps/runner.hpp"
#include "cli/commands.hpp"
#include "core/pipeline.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sched/pool.hpp"
#include "simfault/injector.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

namespace difftrace::cli {

namespace {

using simfault::FaultClass;
using simfault::FaultPlan;

struct MatrixCell {
  const apps::AppInfo* app = nullptr;
  FaultPlan plan;
  std::string spec;  // column label (the plan spec as given; "none" for baseline)
  bool pinned = false;

  std::string run = "pending";  // completed | hang | failed | skipped
  std::string note;
  bool fired = false;

  int consensus = -1;       // rank's consensus process, -1 when not computed
  bool rank_first = false;  // consensus == injected rank
  int check_exit = -1;
  std::vector<std::string> check_rules;
  bool check_detected = false;  // an expected-family diagnostic fired
  bool check_ok = true;         // vacuously true for trace-silent classes
  std::string verdict = "pending";

  trace::TraceStore store;
};

/// One representative plan per fault class: the 8 runtime classes plus the 6
/// app-side paper bugs. Rank 1 exists in every catalog app at default shape
/// (and is never mwq's master), iteration 1 is inside every app's loop.
std::vector<std::string> default_fault_specs() {
  return {
      "none",
      "drop@rank=1",
      "dup@rank=1",
      "reorder@rank=1",
      "misroute@rank=1",
      "corrupt@rank=1",
      "skip@rank=1,iter=1",
      "delay@rank=1,op=6,ticks=24",
      "lockhold@rank=1,ticks=16",
      "swapBug@rank=1,iter=1",
      "dlBug@rank=1,iter=1",
      "ompNoCritical@rank=1,thread=1",
      "wrongCollectiveSize@rank=1",
      "wrongCollectiveOp@rank=1",
      "skipLagrangeLeapFrog@rank=1",
  };
}

/// The diagnostic family `check` is expected to raise for a fault class. An
/// empty set means the class is latent or below the tracer's horizon (the
/// trace records calls, not payload bytes or mailbox contents): check_ok is
/// then vacuous and detection rides on `rank` alone.
const std::set<std::string>& expected_rules(FaultClass cls) {
  // Starvation-shaped faults: the victim (or the whole job) blocks, so any
  // of the unmatched/deadlock/stall family counts as the right call.
  static const std::set<std::string> kStarve = {
      "mpi.deadlock-cycle", "mpi.unmatched-recv",    "mpi.unmatched-send",
      "mpi.collective-mismatch", "mpi.collective-stall", "stream.unclosed-call",
  };
  static const std::set<std::string> kWrongOp = {"mpi.collective-op-mismatch"};
  static const std::set<std::string> kNone;
  switch (cls) {
    case FaultClass::Drop:
    case FaultClass::Reorder:
    case FaultClass::Misroute:
    case FaultClass::SkipIter:
    case FaultClass::DlBug:
    case FaultClass::WrongCollectiveSize:
    case FaultClass::SkipLagrangeLeapFrog:
      return kStarve;
    case FaultClass::WrongCollectiveOp:
      return kWrongOp;
    default:
      return kNone;
  }
}

/// Structured inapplicability checks the catalog cannot express: these turn
/// would-be armed-but-inert cells into explicit skips.
std::optional<std::string> skip_reason(const apps::AppInfo& app, const FaultPlan& plan) {
  if (plan.cls == FaultClass::LockHold && !app.hybrid)
    return "lockhold needs simomp critical sections (non-hybrid app)";
  return std::nullopt;
}

void collect_cell(MatrixCell& cell, int nranks_override, int timeout_ms) {
  apps::AppParams params;
  params.nranks = nranks_override;
  params.plan = cell.plan;

  if (const auto reason = skip_reason(*cell.app, cell.plan)) {
    cell.run = cell.verdict = "skipped";
    cell.note = *reason;
    return;
  }

  simmpi::RankFn fn;
  try {
    fn = apps::make_rank_fn(*cell.app, params);
  } catch (const simfault::PlanError& e) {
    cell.run = cell.verdict = "skipped";
    cell.note = e.what();
    return;
  }
  const auto resolved = apps::resolve_params(*cell.app, params);

  simmpi::WorldConfig world;
  world.nranks = resolved.nranks;
  // The per-cell watchdog: poll fast, bound the wall clock, so DlBug-class
  // injections resolve to `hang` verdicts instead of stalling the grid.
  world.watchdog_poll = std::chrono::milliseconds(5);
  world.wall_timeout = std::chrono::milliseconds(timeout_ms);

  std::optional<simfault::InjectorSession> session;
  if (simfault::is_runtime_class(resolved.plan.cls))
    session.emplace(resolved.plan, cell.app->shape(resolved));

  try {
    auto run = apps::run_traced(world, fn);
    cell.store = std::move(run.store);
    if (run.report.deadlock) {
      cell.run = "hang";
      cell.note = run.report.deadlock_info;
      obs::counter("matrix.hangs").add();
    } else if (!run.report.all_completed()) {
      cell.run = "failed";
      for (const auto& r : run.report.ranks)
        if (!r.error.empty()) {
          cell.note = r.error;
          break;
        }
    } else {
      cell.run = "completed";
    }
  } catch (const std::exception& e) {
    cell.run = "failed";
    cell.note = e.what();
  }
  if (session) cell.fired = session->fired();
  if (cell.run == "failed") cell.verdict = "failed";
}

void grade_cell(MatrixCell& cell, const trace::TraceStore* baseline) {
  if (cell.run == "skipped" || cell.run == "failed") return;

  const auto report = analyze::run_checks(cell.store);
  cell.check_exit = report.exit_code();
  std::set<std::string> rules;
  for (const auto& diagnostic : report.diagnostics) rules.insert(diagnostic.rule);
  cell.check_rules.assign(rules.begin(), rules.end());

  if (cell.plan.cls == FaultClass::None) {
    cell.verdict = cell.check_exit == 0 ? "clean" : "false-positive";
    return;
  }

  const auto& expected = expected_rules(cell.plan.cls);
  for (const auto& rule : cell.check_rules)
    if (expected.count(rule)) cell.check_detected = true;
  cell.check_ok = expected.empty() || cell.check_detected;

  if (baseline != nullptr && baseline->size() > 0 && cell.store.size() > 0) {
    core::SweepConfig config;
    // The paper-default MPI view plus the catch-all view: delay/lock-hold
    // injections surface as non-MPI scopes the mpiall filter would drop.
    config.filters = {parse_filter("mpiall"), parse_filter("all")};
    config.analysis_threads = 1;  // the grid itself is the parallel axis
    const auto table = core::sweep(*baseline, cell.store, config);
    cell.consensus = table.consensus_process();
    cell.rank_first = cell.plan.rank >= 0 && cell.consensus == cell.plan.rank;
  }

  if (cell.run == "hang") {
    // Injected deadlocks always resolve to `hang`; rank/check results over
    // the truncated archives are recorded alongside, not folded in.
    cell.verdict = "hang";
    return;
  }
  if (cell.rank_first && cell.check_detected)
    cell.verdict = "detected";
  else if (cell.rank_first)
    cell.verdict = "rank-only";
  else if (cell.check_detected)
    cell.verdict = "check-only";
  else
    cell.verdict = "silent";
}

std::string verdict_glyph(const std::string& verdict) {
  if (verdict == "clean") return ".";
  if (verdict == "false-positive") return "F";
  if (verdict == "detected") return "D";
  if (verdict == "rank-only") return "R";
  if (verdict == "check-only") return "C";
  if (verdict == "hang") return "H";
  if (verdict == "silent") return "-";
  if (verdict == "skipped") return " ";
  return "!";  // failed / pending
}

std::string archive_name(const MatrixCell& cell) {
  std::string name = std::string(cell.app->name) + "-" + cell.spec;
  for (auto& c : name)
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-') c = '_';
  return name + ".dtrc";
}

void write_report(std::ostream& os, const std::vector<const apps::AppInfo*>& selected,
                  const std::vector<std::string>& columns, const std::vector<MatrixCell>& cells,
                  std::size_t jobs, int timeout_ms) {
  util::JsonWriter json(os);
  json.begin_object();
  json.field("matrix_version", 1);
  json.field("generator", "difftrace matrix");
  json.field("jobs", static_cast<std::uint64_t>(jobs));
  json.field("cell_timeout_ms", timeout_ms);
  json.key("apps");
  json.begin_array();
  for (const auto* app : selected) json.value(app->name);
  json.end_array();
  json.key("faults");
  json.begin_array();
  for (const auto& spec : columns) json.value(spec);
  json.end_array();

  std::uint64_t hangs = 0, skipped = 0, failed = 0, detected = 0, rank_first = 0, check_ok = 0;
  json.key("cells");
  json.begin_array();
  for (const auto& cell : cells) {
    json.begin_object();
    json.field("app", cell.app->name);
    json.field("fault", simfault::fault_class_name(cell.plan.cls));
    json.field("spec", cell.spec);
    json.field("pinned", cell.pinned);
    json.field("run", cell.run);
    json.field("fired", cell.fired);
    json.field("injected_rank", cell.plan.rank);
    json.field("consensus", cell.consensus);
    json.field("rank_first", cell.rank_first);
    json.field("check_exit", cell.check_exit);
    json.key("check_rules");
    json.begin_array();
    for (const auto& rule : cell.check_rules) json.value(rule);
    json.end_array();
    json.field("check_ok", cell.check_ok);
    json.field("verdict", cell.verdict);
    if (!cell.note.empty()) json.field("note", cell.note);
    json.end_object();

    if (cell.run == "hang") ++hangs;
    if (cell.run == "skipped") ++skipped;
    if (cell.run == "failed") ++failed;
    if (cell.verdict == "detected") ++detected;
    if (cell.rank_first) ++rank_first;
    if (cell.run == "completed" || cell.run == "hang") {
      if (cell.check_ok) ++check_ok;
    }
  }
  json.end_array();

  json.key("summary");
  json.begin_object();
  json.field("cells", static_cast<std::uint64_t>(cells.size()));
  json.field("hangs", hangs);
  json.field("skipped", skipped);
  json.field("failed", failed);
  json.field("detected", detected);
  json.field("rank_first", rank_first);
  json.field("check_ok", check_ok);
  json.end_object();
  json.end_object();
  os << "\n";
}

}  // namespace

int cmd_matrix(const Args& args, std::ostream& out, std::ostream& err) {
  const auto out_path = args.required("out");
  const int timeout_ms = static_cast<int>(args.int_or("cell-timeout-ms", 10000));
  if (timeout_ms <= 0) throw ArgError("--cell-timeout-ms must be positive");
  const int nranks_override = static_cast<int>(args.int_or("nranks", 0));
  const auto jobs = sched::resolve_jobs(static_cast<std::size_t>(args.int_or("jobs", 0)));
  const auto keep_dir = args.get_or("keep-archives", "");
  const bool quiet = args.flag("quiet");

  std::vector<const apps::AppInfo*> selected;
  if (args.has("apps")) {
    for (const auto& name : util::split(args.required("apps"), ',')) {
      const auto* app = apps::find_app(name);
      if (!app) throw ArgError("unknown app '" + name + "' in --apps");
      selected.push_back(app);
    }
  } else {
    for (const auto& app : apps::app_catalog()) selected.push_back(&app);
  }
  if (selected.empty()) throw ArgError("--apps selects nothing");

  std::vector<std::string> columns;
  std::vector<FaultPlan> plans;
  const auto specs = args.has("faults") ? util::split(args.required("faults"), ';')
                                        : default_fault_specs();
  for (const auto& spec : specs) {
    if (spec.empty()) continue;
    FaultPlan plan;
    if (spec != "none") {
      try {
        plan = simfault::parse_plan(spec);
      } catch (const simfault::PlanError& e) {
        throw ArgError("bad fault spec '" + spec + "': " + e.what());
      }
    }
    columns.push_back(spec);
    plans.push_back(plan);
  }
  if (columns.empty()) throw ArgError("--faults selects nothing");

  std::vector<MatrixCell> cells;
  cells.reserve(selected.size() * columns.size());
  for (const auto* app : selected)
    for (std::size_t c = 0; c < columns.size(); ++c) {
      MatrixCell cell;
      cell.app = app;
      cell.plan = plans[c];
      cell.spec = columns[c];
      cell.pinned = app->deterministic;
      cells.push_back(std::move(cell));
    }
  obs::counter("matrix.cells").add(cells.size());

  // Collection is serial: the tracer is a process-global singleton, and
  // serial collection is what keeps archives byte-stable for pinning.
  {
    obs::Span span_collect("collect");
    for (auto& cell : cells) {
      obs::Span span_cell(std::string(cell.app->name) + ":" + cell.spec);
      collect_cell(cell, nranks_override, timeout_ms);
      if (!quiet)
        util::status_line(err, "[matrix] " + std::string(cell.app->name) + " x " + cell.spec +
                                   ": " + cell.run);
    }
  }

  // Each app's none-column store is the baseline its faulty cells diff
  // against.
  const auto ncols = columns.size();
  std::vector<const trace::TraceStore*> baselines(cells.size(), nullptr);
  for (std::size_t a = 0; a < selected.size(); ++a) {
    const trace::TraceStore* baseline = nullptr;
    for (std::size_t c = 0; c < ncols; ++c) {
      const auto& cell = cells[a * ncols + c];
      if (cell.plan.cls == FaultClass::None && cell.run == "completed") {
        baseline = &cell.store;
        break;
      }
    }
    for (std::size_t c = 0; c < ncols; ++c) baselines[a * ncols + c] = baseline;
  }

  // Grading (rank sweep + check per cell) fans out on the pool; each cell's
  // sweep runs serially so the grid is the one parallel axis.
  {
    obs::Span span_analyze("analyze");
    sched::Pool pool(jobs);
    pool.parallel_for(cells.size(), [&](std::size_t i) {
      try {
        grade_cell(cells[i], baselines[i]);
      } catch (const std::exception& e) {
        cells[i].run = cells[i].verdict = "failed";
        cells[i].note = e.what();
      }
    });
  }

  for (const auto& cell : cells) {
    if (cell.rank_first) obs::counter("matrix.rank_first").add();
    if (cell.run == "skipped") obs::counter("matrix.skipped").add();
    if ((cell.run == "completed" || cell.run == "hang") && cell.check_ok)
      obs::counter("matrix.check_ok").add();
  }

  obs::Span span_render("render");

  if (!keep_dir.empty()) {
    std::filesystem::create_directories(keep_dir);
    for (const auto& cell : cells)
      if (cell.store.size() > 0)
        cell.store.save((std::filesystem::path(keep_dir) / archive_name(cell)).string());
  }

  // The wall: faults down, apps across, one glyph per cell.
  std::vector<std::string> header{"fault \\ app"};
  for (const auto* app : selected) header.emplace_back(app->name);
  util::TextTable table(header);
  for (std::size_t c = 0; c < ncols; ++c) {
    std::vector<std::string> row{columns[c]};
    for (std::size_t a = 0; a < selected.size(); ++a)
      row.push_back(verdict_glyph(cells[a * ncols + c].verdict));
    table.add_row(std::move(row));
  }
  out << table.render();
  out << "\nD detected   R rank-only   C check-only   H hang   - silent\n"
      << ". clean      F false-positive   ! failed   (blank) not applicable\n\n";

  std::uint64_t detected = 0, hangs = 0, skipped = 0, failed = 0;
  for (const auto& cell : cells) {
    if (cell.verdict == "detected") ++detected;
    if (cell.run == "hang") ++hangs;
    if (cell.run == "skipped") ++skipped;
    if (cell.run == "failed") ++failed;
  }
  out << "matrix: " << cells.size() << " cells (" << selected.size() << " apps x " << ncols
      << " faults), " << detected << " detected, " << hangs << " hang, " << skipped
      << " skipped, " << failed << " failed\n";

  std::ofstream file(out_path, std::ios::trunc);
  if (!file) throw ArgError("cannot open matrix report '" + out_path + "'");
  write_report(file, selected, columns, cells, jobs, timeout_ms);
  out << "report written to " << out_path << "\n";
  return failed > 0 ? 1 : 0;
}

}  // namespace difftrace::cli
