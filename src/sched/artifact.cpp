#include "sched/artifact.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

#include "util/crc32.hpp"
#include "util/varint.hpp"

namespace difftrace::sched {

namespace {
constexpr char kMagic[4] = {'D', 'T', 'A', '1'};
}  // namespace

void ArtifactWriter::put_u64(std::uint64_t v) { util::put_varint(buf_, v); }

void ArtifactWriter::put_i64(std::int64_t v) { util::put_svarint(buf_, v); }

void ArtifactWriter::put_str(std::string_view s) {
  put_u64(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ArtifactWriter::put_f64(double v) {
  const auto bits = std::bit_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
}

std::uint64_t ArtifactReader::get_u64() { return util::get_varint(data_, pos_); }

std::uint32_t ArtifactReader::get_u32() {
  const auto v = get_u64();
  if (v > 0xffffffffull) throw std::out_of_range("artifact: u32 overflow");
  return static_cast<std::uint32_t>(v);
}

std::int64_t ArtifactReader::get_i64() { return util::get_svarint(data_, pos_); }

std::string ArtifactReader::get_str() {
  const auto len = get_u64();
  if (len > data_.size() - pos_) throw std::out_of_range("artifact: string truncated");
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_),
                static_cast<std::size_t>(len));
  pos_ += static_cast<std::size_t>(len);
  return s;
}

double ArtifactReader::get_f64() {
  if (data_.size() - pos_ < 8) throw std::out_of_range("artifact: f64 truncated");
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) bits |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return std::bit_cast<double>(bits);
}

std::vector<std::uint8_t> seal_artifact(std::uint64_t kind,
                                        std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> frame;
  frame.reserve(payload.size() + 24);
  frame.insert(frame.end(), kMagic, kMagic + 4);
  util::put_varint(frame, kArtifactSchemaVersion);
  util::put_varint(frame, kind);
  util::put_varint(frame, payload.size());
  frame.insert(frame.end(), payload.begin(), payload.end());
  const std::uint32_t crc = util::crc32({frame.data(), frame.size()});
  for (int i = 0; i < 4; ++i) frame.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  return frame;
}

namespace {

/// Shared frame validation: on success fills kind and the payload's
/// [begin, end) offsets within `frame`.
bool check_frame(std::span<const std::uint8_t> frame, std::uint64_t& kind,
                 std::size_t& payload_begin, std::size_t& payload_end) {
  if (frame.size() < 4 + 1 + 1 + 1 + 4) return false;
  if (std::memcmp(frame.data(), kMagic, 4) != 0) return false;
  const std::size_t body_len = frame.size() - 4;
  std::uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i)
    stored_crc |= static_cast<std::uint32_t>(frame[body_len + i]) << (8 * i);
  if (util::crc32({frame.data(), body_len}) != stored_crc) return false;
  try {
    std::size_t pos = 4;
    const auto covered = frame.first(body_len);
    if (util::get_varint(covered, pos) != kArtifactSchemaVersion) return false;
    kind = util::get_varint(covered, pos);
    const auto payload_len = util::get_varint(covered, pos);
    if (payload_len != body_len - pos) return false;
    payload_begin = pos;
    payload_end = body_len;
    return true;
  } catch (const std::out_of_range&) {
    return false;
  }
}

}  // namespace

std::optional<std::vector<std::uint8_t>> open_artifact(
    std::span<const std::uint8_t> frame, std::uint64_t expected_kind) {
  std::uint64_t kind = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
  if (!check_frame(frame, kind, begin, end) || kind != expected_kind) return std::nullopt;
  return std::vector<std::uint8_t>(frame.begin() + static_cast<std::ptrdiff_t>(begin),
                                   frame.begin() + static_cast<std::ptrdiff_t>(end));
}

std::optional<std::uint64_t> probe_artifact(std::span<const std::uint8_t> frame) {
  std::uint64_t kind = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
  if (!check_frame(frame, kind, begin, end)) return std::nullopt;
  return kind;
}

}  // namespace difftrace::sched
