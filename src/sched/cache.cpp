#include "sched/cache.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <system_error>
#include <thread>

#include "obs/metrics.hpp"
#include "sched/artifact.hpp"

namespace difftrace::sched {

namespace {

constexpr const char* kEntryExtension = ".dta";

std::optional<std::vector<std::uint8_t>> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::uint8_t> bytes;
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  if (size < 0) return std::nullopt;
  bytes.resize(static_cast<std::size_t>(size));
  in.seekg(0, std::ios::beg);
  in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(bytes.size()));
  if (!in) return std::nullopt;
  return bytes;
}

}  // namespace

Cache::Cache(std::filesystem::path dir) : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
}

std::filesystem::path Cache::entry_path(const std::string& key) const {
  return dir_ / (key + kEntryExtension);
}

void Cache::retain_hot(std::size_t max_entries) {
  util::MutexLock lock(hot_mu_);
  hot_capacity_ = max_entries;
  while (hot_.size() > hot_capacity_) {
    auto victim = hot_.begin();
    for (auto it = hot_.begin(); it != hot_.end(); ++it)
      if (it->second.tick < victim->second.tick) victim = it;
    hot_.erase(victim);
  }
}

std::size_t Cache::hot_entries() const {
  util::MutexLock lock(hot_mu_);
  return hot_.size();
}

void Cache::hot_insert(const std::string& key, std::uint64_t kind,
                       std::span<const std::uint8_t> payload) {
  util::MutexLock lock(hot_mu_);
  if (hot_capacity_ == 0) return;
  auto& entry = hot_[key];
  entry.kind = kind;
  entry.tick = ++hot_tick_;
  entry.payload.assign(payload.begin(), payload.end());
  while (hot_.size() > hot_capacity_) {
    auto victim = hot_.begin();
    for (auto it = hot_.begin(); it != hot_.end(); ++it)
      if (it->second.tick < victim->second.tick) victim = it;
    hot_.erase(victim);
  }
}

std::optional<std::vector<std::uint8_t>> Cache::lookup(const std::string& key,
                                                       std::uint64_t kind) {
  {
    util::MutexLock lock(hot_mu_);
    if (hot_capacity_ != 0) {
      if (const auto it = hot_.find(key); it != hot_.end() && it->second.kind == kind) {
        it->second.tick = ++hot_tick_;
        hits_.fetch_add(1, std::memory_order_relaxed);
        obs::counter("sched.cache_hit").add(1);
        obs::counter("sched.cache_hot_hit").add(1);
        return it->second.payload;
      }
    }
  }
  auto frame = read_file(entry_path(key));
  if (frame) {
    if (auto payload = open_artifact({frame->data(), frame->size()}, kind)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      obs::counter("sched.cache_hit").add(1);
      hot_insert(key, kind, {payload->data(), payload->size()});
      return payload;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  obs::counter("sched.cache_miss").add(1);
  return std::nullopt;
}

void Cache::store(const std::string& key, std::uint64_t kind,
                  std::span<const std::uint8_t> payload) {
  const auto frame = seal_artifact(kind, payload);
  // Unique tmp name per writer thread: two workers racing to store the same
  // key must not interleave into one file. rename() then makes publication
  // atomic; last writer wins with an identical frame.
  std::ostringstream tmp_name;
  tmp_name << key << ".tmp." << std::this_thread::get_id();
  const auto tmp_path = dir_ / tmp_name.str();
  try {
    {
      std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
      if (!out) return;
      out.write(reinterpret_cast<const char*>(frame.data()),
                static_cast<std::streamsize>(frame.size()));
      if (!out) {
        out.close();
        std::error_code ec;
        std::filesystem::remove(tmp_path, ec);
        return;
      }
    }
    std::error_code ec;
    std::filesystem::rename(tmp_path, entry_path(key), ec);
    if (ec) std::filesystem::remove(tmp_path, ec);
  } catch (const std::exception&) {
    // Best-effort by contract: a failed store degrades to a future miss.
  }
  // Freshly computed payloads are the likeliest next lookups in a resident
  // process; pin them regardless of whether the disk write stuck.
  hot_insert(key, kind, payload);
}

CacheStats Cache::stats() const {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != kEntryExtension) continue;
    ++s.entries;
    std::error_code size_ec;
    const auto bytes = entry.file_size(size_ec);
    if (!size_ec) s.bytes += bytes;
  }
  return s;
}

std::size_t Cache::clear() {
  {
    // clear() promises subsequent lookups miss; pinned payloads must go too.
    util::MutexLock lock(hot_mu_);
    hot_.clear();
  }
  std::size_t removed = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != kEntryExtension) continue;
    std::error_code remove_ec;
    if (std::filesystem::remove(entry.path(), remove_ec)) ++removed;
  }
  return removed;
}

Cache::VerifyReport Cache::verify() const {
  VerifyReport report;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != kEntryExtension) continue;
    ++report.checked;
    const auto frame = read_file(entry.path());
    if (frame && probe_artifact({frame->data(), frame->size()})) {
      ++report.ok;
    } else {
      ++report.bad;
      report.bad_entries.push_back(entry.path().filename().string());
    }
  }
  std::sort(report.bad_entries.begin(), report.bad_entries.end());
  return report;
}

}  // namespace difftrace::sched
