// Content digests for the sweep cache (sched::Cache).
//
// A DigestBuilder folds a tagged byte stream into a 64-bit FNV-1a value.
// Every field is length-prefixed before it is mixed in, so ("ab", "c") and
// ("a", "bc") produce different digests — the key derivation in
// core/sweep_cache concatenates many small fingerprints and must never
// alias. 64 bits is plenty for a cache key: a collision costs a wrong hit
// only if the colliding entry also passes the artifact frame's kind check,
// and the cache is an accelerator, not a source of truth (corrupt or
// mismatched entries degrade to recomputes).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace difftrace::sched {

class DigestBuilder {
 public:
  /// Mixes in raw bytes, length-prefixed.
  DigestBuilder& add_bytes(std::span<const std::uint8_t> data);
  DigestBuilder& add(std::string_view s);
  DigestBuilder& add(std::uint64_t v);
  DigestBuilder& add(std::uint32_t v) { return add(static_cast<std::uint64_t>(v)); }
  DigestBuilder& add(int v) { return add(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }
  DigestBuilder& add(bool v) { return add(static_cast<std::uint64_t>(v ? 1 : 0)); }

  [[nodiscard]] std::uint64_t value() const noexcept { return state_; }
  /// 16 lowercase hex digits — the cache entry file stem.
  [[nodiscard]] std::string hex() const;

 private:
  void mix(std::uint8_t byte) noexcept;

  std::uint64_t state_ = 0xcbf29ce484222325ull;  // FNV-1a offset basis
};

}  // namespace difftrace::sched
