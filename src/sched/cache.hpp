// Content-addressed artifact cache backing `--cache`.
//
// A Cache is a flat directory of `<16-hex-digest>.dta` files, each one
// artifact frame (sched/artifact). Keys are content digests derived by the
// producing layer (core/sweep_cache) from everything that feeds the cached
// computation — input blob CRCs, filter/NLR/attribute fingerprints, schema
// version — so a stale entry is simply never looked up; there is no explicit
// invalidation.
//
// The failure contract mirrors PR 1's salvage rules: a missing, truncated,
// bit-flipped, or wrong-kind entry is a MISS (recompute and overwrite),
// never an error. store() is best-effort (tmp file + rename, failures
// swallowed) — a read-only cache directory degrades to a pass-through.
// lookup/store are safe to call from pool workers concurrently.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace difftrace::sched {

struct CacheStats {
  std::uint64_t entries = 0;  // files on disk
  std::uint64_t bytes = 0;    // total size on disk
  std::uint64_t hits = 0;     // this process, this Cache instance
  std::uint64_t misses = 0;
};

class Cache {
 public:
  /// Opens (creating if needed) the cache directory. Throws
  /// std::filesystem::filesystem_error if the directory cannot be created.
  explicit Cache(std::filesystem::path dir);

  [[nodiscard]] const std::filesystem::path& dir() const noexcept { return dir_; }

  /// Returns the payload stored under `key` with the given kind, or nullopt
  /// (counted as a miss) when absent or defective.
  std::optional<std::vector<std::uint8_t>> lookup(const std::string& key, std::uint64_t kind);

  /// Stores a payload under `key`, atomically (write tmp, rename).
  /// Best-effort: I/O failures leave the cache unchanged and are swallowed.
  void store(const std::string& key, std::uint64_t kind,
             std::span<const std::uint8_t> payload);

  [[nodiscard]] CacheStats stats() const;

  /// Removes every entry; returns how many were deleted.
  std::size_t clear();

  struct VerifyReport {
    std::uint64_t checked = 0;
    std::uint64_t ok = 0;
    std::uint64_t bad = 0;
    std::vector<std::string> bad_entries;  // file names that failed the frame check
  };
  /// Frame-checks every entry (magic/schema/length/CRC). Read-only.
  [[nodiscard]] VerifyReport verify() const;

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_.load(); }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_.load(); }

  /// Keeps up to `max_entries` recently served payloads resident in memory,
  /// so repeat lookups skip the disk read and frame re-verification. Off by
  /// default (0): a one-shot CLI run never re-reads an entry, only a
  /// resident process (difftrace serve, the perf benches) benefits. Passing
  /// 0 disables the layer and drops anything already pinned. The memo is a
  /// pure read-through copy of what open_artifact() returned, so answers are
  /// byte-identical with the layer on or off, and hits through it still
  /// count as cache hits (the hits + misses == lookups invariant holds).
  void retain_hot(std::size_t max_entries) DT_EXCLUDES(hot_mu_);

  /// Payloads currently pinned by the hot layer (0 when disabled).
  [[nodiscard]] std::size_t hot_entries() const DT_EXCLUDES(hot_mu_);

 private:
  [[nodiscard]] std::filesystem::path entry_path(const std::string& key) const;

  void hot_insert(const std::string& key, std::uint64_t kind,
                  std::span<const std::uint8_t> payload) DT_EXCLUDES(hot_mu_);

  // The disk path is lock-free: dir_ is immutable after construction and the
  // counters are independent relaxed atomics. Only the opt-in hot layer
  // below takes a lock, and only when enabled. The invariant worth pinning
  // regardless is hits + misses == lookups (every lookup() increments
  // exactly one counter on every path); tests/test_sched.cpp asserts it
  // under concurrent mixed traffic.
  std::filesystem::path dir_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};

  // In-memory hot layer (retain_hot). LRU over (key, kind) with a monotonic
  // tick, mirroring serve::HotCache; payload bytes are exactly what the
  // framed file decodes to, inserted only after a frame check passed.
  struct HotEntry {
    std::uint64_t kind = 0;
    std::uint64_t tick = 0;
    std::vector<std::uint8_t> payload;
  };
  mutable util::Mutex hot_mu_;
  std::size_t hot_capacity_ DT_GUARDED_BY(hot_mu_) = 0;
  std::uint64_t hot_tick_ DT_GUARDED_BY(hot_mu_) = 0;
  std::map<std::string, HotEntry> hot_ DT_GUARDED_BY(hot_mu_);
};

}  // namespace difftrace::sched
