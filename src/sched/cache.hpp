// Content-addressed artifact cache backing `--cache`.
//
// A Cache is a flat directory of `<16-hex-digest>.dta` files, each one
// artifact frame (sched/artifact). Keys are content digests derived by the
// producing layer (core/sweep_cache) from everything that feeds the cached
// computation — input blob CRCs, filter/NLR/attribute fingerprints, schema
// version — so a stale entry is simply never looked up; there is no explicit
// invalidation.
//
// The failure contract mirrors PR 1's salvage rules: a missing, truncated,
// bit-flipped, or wrong-kind entry is a MISS (recompute and overwrite),
// never an error. store() is best-effort (tmp file + rename, failures
// swallowed) — a read-only cache directory degrades to a pass-through.
// lookup/store are safe to call from pool workers concurrently.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace difftrace::sched {

struct CacheStats {
  std::uint64_t entries = 0;  // files on disk
  std::uint64_t bytes = 0;    // total size on disk
  std::uint64_t hits = 0;     // this process, this Cache instance
  std::uint64_t misses = 0;
};

class Cache {
 public:
  /// Opens (creating if needed) the cache directory. Throws
  /// std::filesystem::filesystem_error if the directory cannot be created.
  explicit Cache(std::filesystem::path dir);

  [[nodiscard]] const std::filesystem::path& dir() const noexcept { return dir_; }

  /// Returns the payload stored under `key` with the given kind, or nullopt
  /// (counted as a miss) when absent or defective.
  std::optional<std::vector<std::uint8_t>> lookup(const std::string& key, std::uint64_t kind);

  /// Stores a payload under `key`, atomically (write tmp, rename).
  /// Best-effort: I/O failures leave the cache unchanged and are swallowed.
  void store(const std::string& key, std::uint64_t kind,
             std::span<const std::uint8_t> payload);

  [[nodiscard]] CacheStats stats() const;

  /// Removes every entry; returns how many were deleted.
  std::size_t clear();

  struct VerifyReport {
    std::uint64_t checked = 0;
    std::uint64_t ok = 0;
    std::uint64_t bad = 0;
    std::vector<std::string> bad_entries;  // file names that failed the frame check
  };
  /// Frame-checks every entry (magic/schema/length/CRC). Read-only.
  [[nodiscard]] VerifyReport verify() const;

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_.load(); }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_.load(); }

 private:
  [[nodiscard]] std::filesystem::path entry_path(const std::string& key) const;

  // Lock-free by design: dir_ is immutable after construction and the
  // counters are independent relaxed atomics, so there is no capability for
  // thread-safety analysis to track. The invariant worth pinning instead is
  // hits + misses == lookups (every lookup() increments exactly one counter
  // on every path); tests/test_sched.cpp asserts it under concurrent mixed
  // traffic.
  std::filesystem::path dir_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace difftrace::sched
