// Small dependency-graph executor on top of sched::Pool.
//
// Tasks are added with explicit dependencies on previously added tasks, so
// task ids are already a topological order. run() executes the graph:
//
//   - jobs == 1: tasks run inline on the caller, strictly in id order. The
//     sweep adds its tasks in today's serial execution order (session for
//     filter f, then f's evaluations, then filter f+1, ...), so a 1-job run
//     reproduces the serial pipeline exactly, span nesting included.
//   - jobs > 1: ready tasks are posted to the pool; the caller participates
//     by draining ticks until every task completed. Completion order is
//     scheduling-dependent, which is fine because tasks communicate only
//     through pre-allocated result slots indexed by task — callers commit
//     results in submission order after run() returns.
//
// A task that throws marks itself failed; its dependents (transitively) are
// skipped, the rest of the graph still runs, and run() rethrows the failed
// task with the lowest id — matching what a serial in-order run would have
// thrown first.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "sched/pool.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace difftrace::sched {

class Graph {
 public:
  using TaskId = std::size_t;

  /// Registers a task. Every dep must be an id returned by an earlier add()
  /// (throws std::invalid_argument otherwise).
  TaskId add(const std::vector<TaskId>& deps, std::function<void()> fn) DT_EXCLUDES(mu_);

  [[nodiscard]] std::size_t size() const DT_EXCLUDES(mu_) {
    const util::MutexLock lock(mu_);
    return tasks_.size();
  }

  /// Executes all tasks; `scope` names the span under which pool workers run
  /// them. Single-use: run() consumes the graph.
  void run(Pool& pool, const std::string& scope) DT_EXCLUDES(mu_);

 private:
  enum class TaskState { Pending, Running, Done, Failed, Skipped };

  struct Task {
    std::function<void()> fn;
    std::vector<TaskId> dependents;
    std::size_t deps_remaining = 0;
    TaskState state = TaskState::Pending;
    std::exception_ptr error;
  };

  void run_serial() DT_EXCLUDES(mu_);
  void run_parallel(Pool& pool, const std::string& scope) DT_EXCLUDES(mu_);
  /// Posts/skips dependents of a finished task and returns ids that became
  /// ready.
  void finish_locked(TaskId id, TaskState outcome, std::vector<TaskId>& ready_out) DT_REQUIRES(mu_);
  void rethrow_first_error() const DT_EXCLUDES(mu_);

  // tasks_ is structurally frozen during run(): the vector never reallocates
  // and each Task's fn/error cells are touched only by the one worker that
  // claimed that id. The mutex serializes the scheduling metadata (state,
  // deps_remaining, completed_) that workers race on.
  mutable util::Mutex mu_;
  std::vector<Task> tasks_ DT_GUARDED_BY(mu_);
  std::size_t completed_ DT_GUARDED_BY(mu_) = 0;
};

}  // namespace difftrace::sched
