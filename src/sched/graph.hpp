// Small dependency-graph executor on top of sched::Pool.
//
// Tasks are added with explicit dependencies on previously added tasks, so
// task ids are already a topological order. run() executes the graph:
//
//   - jobs == 1: tasks run inline on the caller, strictly in id order. The
//     sweep adds its tasks in today's serial execution order (session for
//     filter f, then f's evaluations, then filter f+1, ...), so a 1-job run
//     reproduces the serial pipeline exactly, span nesting included.
//   - jobs > 1: ready tasks are posted to the pool; the caller participates
//     by draining ticks until every task completed. Completion order is
//     scheduling-dependent, which is fine because tasks communicate only
//     through pre-allocated result slots indexed by task — callers commit
//     results in submission order after run() returns.
//
// A task that throws marks itself failed; its dependents (transitively) are
// skipped, the rest of the graph still runs, and run() rethrows the failed
// task with the lowest id — matching what a serial in-order run would have
// thrown first.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "sched/pool.hpp"

namespace difftrace::sched {

class Graph {
 public:
  using TaskId = std::size_t;

  /// Registers a task. Every dep must be an id returned by an earlier add()
  /// (throws std::invalid_argument otherwise).
  TaskId add(const std::vector<TaskId>& deps, std::function<void()> fn);

  [[nodiscard]] std::size_t size() const noexcept { return tasks_.size(); }

  /// Executes all tasks; `scope` names the span under which pool workers run
  /// them. Single-use: run() consumes the graph.
  void run(Pool& pool, const std::string& scope);

 private:
  enum class TaskState { Pending, Running, Done, Failed, Skipped };

  struct Task {
    std::function<void()> fn;
    std::vector<TaskId> dependents;
    std::size_t deps_remaining = 0;
    TaskState state = TaskState::Pending;
    std::exception_ptr error;
  };

  void run_serial();
  void run_parallel(Pool& pool, const std::string& scope);
  /// Called with mu_ held; posts/skips dependents of a finished task and
  /// returns ids that became ready.
  void finish_locked(TaskId id, TaskState outcome, std::vector<TaskId>& ready_out);
  void rethrow_first_error() const;

  std::vector<Task> tasks_;
  std::mutex mu_;
  std::size_t completed_ = 0;
};

}  // namespace difftrace::sched
