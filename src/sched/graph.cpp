#include "sched/graph.hpp"

#include <stdexcept>
#include <utility>

namespace difftrace::sched {

Graph::TaskId Graph::add(const std::vector<TaskId>& deps, std::function<void()> fn) {
  const util::MutexLock lock(mu_);
  const TaskId id = tasks_.size();
  Task task;
  task.fn = std::move(fn);
  task.deps_remaining = deps.size();
  for (const TaskId dep : deps) {
    if (dep >= id) throw std::invalid_argument("sched::Graph: dep on a not-yet-added task");
    tasks_[dep].dependents.push_back(id);
  }
  tasks_.push_back(std::move(task));
  return id;
}

void Graph::run(Pool& pool, const std::string& scope) {
  {
    const util::MutexLock lock(mu_);
    if (tasks_.empty()) return;
  }
  if (pool.jobs() == 1) {
    run_serial();
  } else {
    run_parallel(pool, scope);
  }
  rethrow_first_error();
}

void Graph::run_serial() {
  // Single-threaded: no pool workers exist, so holding the lock across the
  // whole pass (task bodies included) cannot contend with anything.
  const util::MutexLock lock(mu_);
  // Id order is a topological order (deps precede dependents by
  // construction), and it is exactly the order a pre-sched serial sweep
  // executed these units in.
  for (auto& task : tasks_) {
    if (task.state == TaskState::Skipped) continue;
    try {
      task.fn();
      task.state = TaskState::Done;
    } catch (...) {
      task.state = TaskState::Failed;
      task.error = std::current_exception();
    }
    if (task.state == TaskState::Failed) {
      // Transitively skip: dependents have higher ids, so one forward pass
      // marking from the failed task suffices (done below via dependents).
      std::vector<TaskId> doomed = task.dependents;
      while (!doomed.empty()) {
        const TaskId d = doomed.back();
        doomed.pop_back();
        if (tasks_[d].state == TaskState::Skipped) continue;
        tasks_[d].state = TaskState::Skipped;
        doomed.insert(doomed.end(), tasks_[d].dependents.begin(), tasks_[d].dependents.end());
      }
    }
  }
}

void Graph::finish_locked(TaskId id, TaskState outcome, std::vector<TaskId>& ready_out) {
  tasks_[id].state = outcome;
  ++completed_;
  for (const TaskId dep_id : tasks_[id].dependents) {
    Task& dependent = tasks_[dep_id];
    if (outcome != TaskState::Done && dependent.state == TaskState::Pending) {
      // A failed or skipped dependency dooms the dependent; it completes as
      // Skipped once its remaining deps resolve (counted now if this was the
      // last one) so the caller's completion count still reaches size().
      dependent.state = TaskState::Skipped;
    }
    if (--dependent.deps_remaining == 0) {
      if (dependent.state == TaskState::Skipped) {
        finish_locked(dep_id, TaskState::Skipped, ready_out);
      } else {
        ready_out.push_back(dep_id);
      }
    }
  }
}

void Graph::run_parallel(Pool& pool, const std::string& scope) {
  // Posting a task must be able to re-post newly ready dependents from the
  // completion path, hence a copyable function object instead of a lambda.
  struct Runner {
    Graph* graph;
    Pool* pool;
    const std::string* scope;

    void post(TaskId id) const {
      Graph* g = graph;
      Pool* p = pool;
      const Runner self = *this;
      p->post(*scope, [g, self, id] {
        Task* task = nullptr;
        {
          const util::MutexLock lk(g->mu_);
          task = &g->tasks_[id];
        }
        // Unlocked use is safe: tasks_ never reallocates during run() and
        // this worker is the unique owner of entry `id` (fn/error) until it
        // reports completion through finish_locked below.
        TaskState outcome = TaskState::Done;
        try {
          task->fn();
        } catch (...) {
          task->error = std::current_exception();
          outcome = TaskState::Failed;
        }
        std::vector<TaskId> ready;
        {
          const util::MutexLock lk(g->mu_);
          g->finish_locked(id, outcome, ready);
        }
        for (const TaskId r : ready) self.post(r);
        self.pool->notify_all();
      });
    }
  };
  const Runner runner{this, &pool, &scope};

  std::vector<TaskId> initial;
  {
    const util::MutexLock lock(mu_);
    for (TaskId id = 0; id < tasks_.size(); ++id) {
      if (tasks_[id].deps_remaining == 0) initial.push_back(id);
    }
  }
  for (const TaskId id : initial) runner.post(id);

  for (;;) {
    {
      const util::MutexLock lock(mu_);
      if (completed_ == tasks_.size()) break;
    }
    if (!pool.try_run_one()) pool.wait_for_progress();
  }
}

void Graph::rethrow_first_error() const {
  const util::MutexLock lock(mu_);
  for (const auto& task : tasks_) {
    if (task.error) std::rethrow_exception(task.error);
  }
}

}  // namespace difftrace::sched
