// Deterministic fixed-size worker pool.
//
// The pool owns jobs-1 worker threads plus the calling thread, all draining
// one FIFO queue of ticks (small std::function<void()> units). Determinism
// is NOT provided here — ticks run in whatever order threads win the queue —
// it is provided by the layers above: sched::Graph commits results in task
// submission order and core::Session merges per-trace results in canonical
// trace order, so observable output is byte-identical at any job count.
//
// jobs == 1 spawns zero threads: post() is illegal (callers use run-inline
// paths), and parallel_for degenerates to a plain loop on the caller. This
// preserves today's exact serial behaviour including span nesting.
//
// Worker threads wrap each tick in obs spans ("worker<i>" under the scope
// the tick was posted with), so profile paths look like
// "sweep/worker3/session". Caller-executed ticks are NOT wrapped — they nest
// naturally under the caller's live span stack. Ticks executed by a thread
// other than the one that posted them increment the `sched.tasks_stolen`
// counter.
#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace difftrace::sched {

/// Number of jobs implied by the machine (>= 1).
std::size_t hardware_jobs();

/// Resolves a requested job count: explicit > 0 wins, then the
/// DIFFTRACE_JOBS environment variable (invalid/empty ignored), then
/// hardware_jobs(). Always >= 1.
std::size_t resolve_jobs(std::size_t requested);

class Pool {
 public:
  /// `jobs` must be >= 1 (callers resolve first). `jobs - 1` threads start
  /// immediately and live until destruction.
  explicit Pool(std::size_t jobs);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  [[nodiscard]] std::size_t jobs() const noexcept { return jobs_; }

  /// Enqueues a tick. `scope` names the span under which worker threads run
  /// it (e.g. "sweep" -> "sweep/worker3/..."). Requires jobs() > 1. The tick
  /// must not let an exception escape (workers have no handler; enforced by
  /// lint rule `task-throw`) — wrap fallible work the way Graph and
  /// parallel_for do, capturing the exception into shared state.
  void post(std::string scope, std::function<void()> fn) DT_EXCLUDES(mu_);

  /// Runs one queued tick on the calling thread if any is available.
  /// Returns false when the queue was empty.
  bool try_run_one() DT_EXCLUDES(mu_);

  /// Blocks the caller until woken by tick completion or timeout; used by
  /// callers waiting for posted work they cannot help with.
  void wait_for_progress() DT_EXCLUDES(mu_);

  /// Runs body(0..n-1) across the pool plus the calling thread; returns when
  /// all iterations finished. Iterations are claimed dynamically; the first
  /// exception (lowest claimed index wins ties arbitrarily) stops further
  /// claims and is rethrown on the caller. jobs == 1 runs a plain loop.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) DT_EXCLUDES(mu_);

  /// Wakes all sleeping participants; call after externally observable state
  /// changes that a waiter might be polling for (Graph completions).
  void notify_all();

 private:
  struct Tick {
    std::string scope;
    std::function<void()> fn;
    std::thread::id poster;
  };

  void worker_main(std::size_t index) DT_EXCLUDES(mu_);

  const std::size_t jobs_;
  util::Mutex mu_;
  util::CondVar cv_;
  std::deque<Tick> queue_ DT_GUARDED_BY(mu_);
  bool stop_ DT_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;  // written by ctor/dtor only
};

}  // namespace difftrace::sched
