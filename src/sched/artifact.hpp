// Byte-level codec for cached stage artifacts.
//
// An artifact is an opaque payload (encoded by the owning layer — see
// core/sweep_cache) wrapped in a self-checking frame:
//
//   "DTA1" | schema varint | kind varint | payload_len varint | payload | crc32 LE
//
// The CRC covers everything before it (magic through payload). open_artifact
// returns nullopt on ANY defect — short file, bad magic, wrong schema, wrong
// kind, truncated payload, CRC mismatch — because a defective cache entry is
// by contract a miss, never an error. The schema version is also folded into
// the cache key digest, so a version bump both changes the key (old entries
// are simply not found) and fails the frame check (stale files hit by key
// collision are rejected).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace difftrace::sched {

/// Bump when any artifact payload encoding changes shape.
inline constexpr std::uint64_t kArtifactSchemaVersion = 1;

// Artifact-kind registry. Kinds are defined in the layer that owns the
// payload encoding; they are listed here so a new kind cannot silently
// collide with an existing one:
//   1  core::kArtifactNlr            per-trace NLR program   (core/sweep_cache.hpp)
//   2  core::kArtifactEval           per-row sweep evaluation (core/sweep_cache.hpp)
//   3  analyze::kArtifactCheckSummary per-stream check summary (analyze/summary.hpp)
//   4  serve::kArtifactServeIndex    sharded trace-store index (serve/shard_store.hpp)

/// Little-endian varint/string/f64 payload writer.
class ArtifactWriter {
 public:
  void put_u64(std::uint64_t v);
  void put_u32(std::uint32_t v) { put_u64(v); }
  void put_bool(bool v) { put_u64(v ? 1 : 0); }
  void put_i64(std::int64_t v);  // zigzag
  void put_str(std::string_view s);
  /// Fixed 8-byte LE bit pattern — doubles round-trip bit-exactly.
  void put_f64(double v);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Mirror reader. Throws std::out_of_range on truncation; callers that open
/// cache entries go through open_artifact + a catch in the typed decoder, so
/// a short payload surfaces as a miss.
class ArtifactReader {
 public:
  explicit ArtifactReader(std::span<const std::uint8_t> bytes) : data_(bytes) {}

  std::uint64_t get_u64();
  std::uint32_t get_u32();
  bool get_bool() { return get_u64() != 0; }
  std::int64_t get_i64();
  std::string get_str();
  double get_f64();

  [[nodiscard]] bool at_end() const noexcept { return pos_ >= data_.size(); }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Wraps a payload in the framed, CRC-protected on-disk form.
std::vector<std::uint8_t> seal_artifact(std::uint64_t kind,
                                        std::span<const std::uint8_t> payload);

/// Unwraps a frame; nullopt on any defect or kind mismatch.
std::optional<std::vector<std::uint8_t>> open_artifact(
    std::span<const std::uint8_t> frame, std::uint64_t expected_kind);

/// Validates a frame without caring about the kind; returns the kind when
/// the frame is intact (magic, schema, length, CRC all good). Used by
/// `difftrace cache verify`.
std::optional<std::uint64_t> probe_artifact(std::span<const std::uint8_t> frame);

}  // namespace difftrace::sched
