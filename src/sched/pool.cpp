#include "sched/pool.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace difftrace::sched {

std::size_t hardware_jobs() {
  const auto hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t resolve_jobs(std::size_t requested) {
  if (requested > 0) return requested;
  // Reading the environment once at resolve time, before any worker exists;
  // getenv is not re-entrancy-safe but has no concurrent writer here.
  if (const char* env = std::getenv("DIFFTRACE_JOBS"); env != nullptr && *env != '\0') {  // NOLINT(concurrency-mt-unsafe)
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != nullptr && *end == '\0' && parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return hardware_jobs();
}

Pool::Pool(std::size_t jobs) : jobs_(jobs == 0 ? 1 : jobs) {
  threads_.reserve(jobs_ - 1);
  for (std::size_t i = 0; i < jobs_ - 1; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

Pool::~Pool() {
  {
    const util::MutexLock lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void Pool::post(std::string scope, std::function<void()> fn) {
  {
    const util::MutexLock lk(mu_);
    queue_.push_back(Tick{std::move(scope), std::move(fn), std::this_thread::get_id()});
  }
  cv_.notify_one();
}

bool Pool::try_run_one() {
  Tick tick;
  {
    const util::MutexLock lk(mu_);
    if (queue_.empty()) return false;
    tick = std::move(queue_.front());
    queue_.pop_front();
  }
  // Caller-executed ticks get no span wrapper: they nest under whatever the
  // calling thread already has open ("rank/sweep/..."), matching serial runs.
  tick.fn();
  cv_.notify_all();
  return true;
}

void Pool::wait_for_progress() {
  const util::MutexLock lk(mu_);
  if (!queue_.empty() || stop_) return;
  // Timed wait: completion signals race with going to sleep, and a missed
  // notify must not strand the caller.
  cv_.wait_for(mu_, std::chrono::milliseconds(2));
}

void Pool::notify_all() { cv_.notify_all(); }

void Pool::worker_main(std::size_t index) {
  const std::string worker_name = "worker" + std::to_string(index);
  for (;;) {
    Tick tick;
    {
      const util::MutexLock lk(mu_);
      while (!stop_ && queue_.empty()) cv_.wait(mu_);
      if (queue_.empty()) return;  // stop_ and drained
      tick = std::move(queue_.front());
      queue_.pop_front();
    }
    obs::counter("sched.tasks_stolen").add(1);
    {
      // Root the tick's spans under "<scope>/worker<i>/..." so profiles show
      // which grain ran off the calling thread.
      obs::Span scope_span(tick.scope);
      obs::Span worker_span(worker_name);
      tick.fn();
    }
    cv_.notify_all();
  }
}

void Pool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (jobs_ == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  struct State {
    explicit State(std::size_t total, const std::function<void(std::size_t)>& b)
        : n(total), body(b) {}
    const std::size_t n;
    const std::function<void(std::size_t)>& body;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> live{0};  // iterations claimed but not finished
    util::Mutex err_mu;
    std::exception_ptr error DT_GUARDED_BY(err_mu);
    std::size_t error_index DT_GUARDED_BY(err_mu) = static_cast<std::size_t>(-1);
  };
  // shared_ptr: helper ticks may outlive this frame only if the caller
  // abandons the wait, which it never does — but late-queued helpers that run
  // after completion must still find valid state to observe next >= n.
  auto state = std::make_shared<State>(n, body);

  // live is incremented BEFORE the claim: once the caller's own failed claim
  // proves next >= n, every in-flight valid claim has already published its
  // live increment (the claim RMWs on `next` order the two atomics), so
  // "next exhausted and live == 0" really means all iterations finished.
  const auto drain = [](const std::shared_ptr<State>& st) {
    for (;;) {
      st->live.fetch_add(1);
      const std::size_t i = st->next.fetch_add(1);
      if (i >= st->n) {
        st->live.fetch_sub(1);
        return;
      }
      try {
        st->body(i);
      } catch (...) {
        const util::MutexLock lk(st->err_mu);
        if (i < st->error_index) {
          st->error_index = i;
          st->error = std::current_exception();
        }
        st->next.store(st->n);  // stop further claims
      }
      st->live.fetch_sub(1);
    }
  };

  const std::size_t helpers = std::min(jobs_ - 1, n - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    post("parallel_for", [state, drain] { drain(state); });
  }
  drain(state);
  // All iterations are claimed; wait for helpers still inside one. Helping
  // with unrelated queued ticks while waiting keeps nested parallel sections
  // deadlock-free (no thread sleeps while claimable work exists).
  while (state->live.load() != 0) {
    if (!try_run_one()) wait_for_progress();
  }
  std::exception_ptr error;
  {
    const util::MutexLock lk(state->err_mu);
    error = state->error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace difftrace::sched
