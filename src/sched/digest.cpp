#include "sched/digest.hpp"

#include <cstdio>

namespace difftrace::sched {

void DigestBuilder::mix(std::uint8_t byte) noexcept {
  state_ ^= byte;
  state_ *= 0x00000100000001b3ull;  // FNV-1a prime
}

DigestBuilder& DigestBuilder::add_bytes(std::span<const std::uint8_t> data) {
  auto len = static_cast<std::uint64_t>(data.size());
  for (int i = 0; i < 8; ++i) mix(static_cast<std::uint8_t>(len >> (8 * i)));
  for (const auto b : data) mix(b);
  return *this;
}

DigestBuilder& DigestBuilder::add(std::string_view s) {
  return add_bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

DigestBuilder& DigestBuilder::add(std::uint64_t v) {
  std::uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));
  return add_bytes(bytes);
}

std::string DigestBuilder::hex() const {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(state_));
  return buf;
}

}  // namespace difftrace::sched
