// dtsa analyzer driver: discovers source files, indexes them (in parallel
// when --jobs allows — per-file results land in order-indexed slots, so the
// merged graph and therefore the output are byte-identical at any job
// count), builds the call graph and runs the rules.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "dtsa/rules.hpp"

namespace difftrace::dtsa {

struct AnalyzeOptions {
  std::string root = ".";          // paths in output are relative to this
  std::vector<std::string> paths;  // subpaths to scan; empty = the root itself
  int jobs = 1;                    // 0 = hardware concurrency (sched::resolve_jobs)
  RuleConfig rules;
};

struct AnalyzeResult {
  std::vector<Finding> findings;  // post-suppression, sorted, deduplicated
  std::size_t suppressed = 0;
  std::size_t files = 0;
  std::size_t functions = 0;
  std::vector<std::string> notes;  // lexer damage notes, "file: note"
};

/// Runs the full pipeline. Throws std::runtime_error on unusable input
/// (missing root, unreadable file).
[[nodiscard]] AnalyzeResult analyze(const AnalyzeOptions& options);

/// Deterministic text report: one "file:line: [rule] message" per finding
/// plus a one-line summary.
void render_text(std::ostream& out, const AnalyzeResult& result);

}  // namespace difftrace::dtsa
