#include "dtsa/sarif.hpp"

#include "util/json.hpp"

namespace difftrace::dtsa {

void write_sarif(std::ostream& out, std::string_view tool_name,
                 const std::vector<RuleInfo>& rules, const std::vector<Finding>& findings) {
  util::JsonWriter w(out, 2);
  w.begin_object();
  w.field("version", "2.1.0");
  w.field("$schema",
          "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/"
          "sarif-schema-2.1.0.json");
  w.key("runs");
  w.begin_array();
  w.begin_object();
  w.key("tool");
  w.begin_object();
  w.key("driver");
  w.begin_object();
  w.field("name", tool_name);
  w.field("informationUri", "https://github.com/difftrace/difftrace");
  w.key("rules");
  w.begin_array();
  for (const RuleInfo& r : rules) {
    w.begin_object();
    w.field("id", r.id);
    w.key("shortDescription");
    w.begin_object();
    w.field("text", r.summary);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();  // driver
  w.end_object();  // tool
  w.key("results");
  w.begin_array();
  for (const Finding& f : findings) {
    w.begin_object();
    w.field("ruleId", f.rule);
    w.field("level", "error");
    w.key("message");
    w.begin_object();
    w.field("text", f.message);
    w.end_object();
    w.key("locations");
    w.begin_array();
    w.begin_object();
    w.key("physicalLocation");
    w.begin_object();
    w.key("artifactLocation");
    w.begin_object();
    w.field("uri", f.file);
    w.end_object();
    w.key("region");
    w.begin_object();
    w.field("startLine", f.line);
    w.end_object();
    w.end_object();  // physicalLocation
    w.end_object();  // location
    w.end_array();   // locations
    w.end_object();  // result
  }
  w.end_array();  // results
  w.end_object();  // run
  w.end_array();   // runs
  w.end_object();
  out << "\n";
}

}  // namespace difftrace::dtsa
