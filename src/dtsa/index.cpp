#include "dtsa/index.hpp"

#include <algorithm>
#include <array>
#include <optional>

namespace difftrace::dtsa {

namespace {

using Toks = std::vector<Token>;

bool is_kw(const Token& t, std::string_view kw) {
  return t.kind == TokKind::kIdentifier && t.text == kw;
}

bool is_p(const Token& t, std::string_view p) {
  return t.kind == TokKind::kPunct && t.text == p;
}

/// Keywords that can never be a callee or a declared type; seeing one as a
/// "name(" means control flow, not a call.
constexpr std::string_view kNotCallable[] = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "alignas", "decltype", "static_assert", "noexcept", "throw", "new",
    "delete", "co_return", "co_await", "co_yield", "typeid", "requires",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
    "defined", "assert", "goto", "case", "do", "else", "try", "using",
};

/// Keywords after which an identifier still starts a fresh expression chain
/// (as opposed to a preceding identifier that makes it a declared name).
constexpr std::string_view kChainAfter[] = {
    "return", "co_return", "co_await", "co_yield", "throw", "case", "else",
    "do", "goto", "const", "constexpr", "consteval", "constinit", "static",
    "inline", "extern", "virtual", "explicit", "friend", "mutable",
    "volatile", "thread_local", "typename", "public", "private", "protected",
    "new",
};

bool in(std::string_view needle, const auto& haystack) {
  return std::find(std::begin(haystack), std::end(haystack), needle) != std::end(haystack);
}

/// Direct blocking operations by spelled last name: syscalls, sleeps,
/// filesystem mutations, socket ops, and the pool's blocking wait. CondVar
/// waits are deliberately absent — cv.wait(mu) releases the annotated lock
/// by design (see util/mutex.hpp).
constexpr std::string_view kBlockingNames[] = {
    "sleep", "usleep", "nanosleep", "sleep_for", "sleep_until", "poll",
    "select", "epoll_wait", "accept", "connect", "bind", "listen", "recv",
    "send", "recvfrom", "sendto", "system", "popen", "fopen", "fsync",
    "fdatasync", "rename", "remove_all", "create_directory",
    "create_directories", "copy_file", "resize_file", "wait_for_progress",
};

/// Bare-call blocking syscalls: only when spelled unqualified and
/// non-member (`read(fd, ...)`), so `store.read(...)` methods stay legal.
constexpr std::string_view kBareBlockingNames[] = {"read", "write", "open", "close", "unlink"};

/// Stream-object types whose construction is file IO.
constexpr std::string_view kStreamTypes[] = {"ifstream", "ofstream", "fstream"};

/// Allocation by spelled name. `reserve` is deliberately absent: it is the
/// remedy the alloc-in-hot-path rule asks for, not the disease.
constexpr std::string_view kAllocFree[] = {"make_unique", "make_shared", "to_string"};
constexpr std::string_view kAllocMember[] = {"push_back", "emplace_back", "emplace",
                                             "insert", "resize", "append"};

/// Receivers whose `.decode(...)` is the strict, unbounded codec entry.
bool is_decoder_receiver(std::string_view recv) {
  const auto last = recv.rfind("::");
  const std::string_view tail = last == std::string_view::npos ? recv : recv.substr(last + 2);
  return tail == "decoder" || tail == "codec" || tail == "decoder_" || tail == "codec_" ||
         tail == "dec" || tail == "dec_";
}

// ---------------------------------------------------------------------------
// Token-stream helpers
// ---------------------------------------------------------------------------

/// Skips a balanced template-argument list starting at `i` (toks[i] == "<").
/// Returns the index just past the matching ">" or nullopt when this is not
/// a template argument list (expression comparison, unbalanced, too long).
/// ">>" closes two levels — that is the nested-template case.
std::optional<std::size_t> skip_template_args(const Toks& toks, std::size_t i) {
  int angle = 0;
  int paren = 0;
  const std::size_t limit = std::min(toks.size(), i + 160);
  for (std::size_t j = i; j < limit; ++j) {
    const Token& t = toks[j];
    if (t.kind == TokKind::kPunct) {
      const std::string& p = t.text;
      if (p == "(") ++paren;
      else if (p == ")") {
        if (paren == 0) return std::nullopt;
        --paren;
      } else if (paren == 0) {
        if (p == "<") ++angle;
        else if (p == ">") {
          if (--angle == 0) return j + 1;
        } else if (p == ">>") {
          angle -= 2;
          if (angle == 0) return j + 1;
          if (angle < 0) return std::nullopt;
        } else if (p == ";" || p == "{" || p == "}" || p == "&&" || p == "||" || p == "<<")
          return std::nullopt;
      }
    } else if (t.kind == TokKind::kPreproc) {
      return std::nullopt;
    }
  }
  return std::nullopt;
}

struct Chain {
  std::string text;        // full spelling: "std::make_unique", "~Pool"
  std::string last;        // last component: "make_unique"
  std::size_t end = 0;     // index just past the chain (before template args)
  std::size_t after = 0;   // index just past chain AND template args
};

/// Parses an id-expression chain at `i`: [~]ident(::[~]ident)* with
/// operator-function names ("operator<<", "operator()", "operator bool")
/// and trailing template arguments skipped into `after`.
std::optional<Chain> parse_chain(const Toks& toks, std::size_t i) {
  Chain c;
  std::size_t j = i;
  bool first = true;
  while (j < toks.size()) {
    std::string comp;
    if (is_p(toks[j], "~") && j + 1 < toks.size() && toks[j + 1].kind == TokKind::kIdentifier) {
      comp = "~" + toks[j + 1].text;
      j += 2;
    } else if (toks[j].kind == TokKind::kIdentifier) {
      comp = toks[j].text;
      ++j;
      if (comp == "operator" && j < toks.size()) {
        if (toks[j].kind == TokKind::kPunct && !is_p(toks[j], "(") ) {
          comp += toks[j].text;
          ++j;
          // operator[] / operator() spell as two tokens.
          if ((comp == "operator[" && j < toks.size() && is_p(toks[j], "]"))) {
            comp += toks[j].text;
            ++j;
          }
        } else if (is_p(toks[j], "(") && j + 1 < toks.size() && is_p(toks[j + 1], ")")) {
          comp += "()";
          j += 2;
        } else if (toks[j].kind == TokKind::kIdentifier) {
          comp += " " + toks[j].text;  // conversion operator
          ++j;
        } else if (toks[j].kind == TokKind::kString && j + 1 < toks.size() &&
                   toks[j + 1].kind == TokKind::kIdentifier) {
          comp += "\"\"" + toks[j + 1].text;  // user-defined literal
          j += 2;
        }
      }
    } else {
      break;
    }
    if (!first) c.text += "::";
    c.text += comp;
    c.last = comp;
    first = false;
    // Optional template arguments between components: Foo<int>::bar.
    std::size_t next = j;
    if (next < toks.size() && is_p(toks[next], "<")) {
      if (const auto past = skip_template_args(toks, next)) {
        if (*past < toks.size() && is_p(toks[*past], "::")) next = *past;
      }
    }
    if (next < toks.size() && is_p(toks[next], "::") && next + 1 < toks.size() &&
        (toks[next + 1].kind == TokKind::kIdentifier || is_p(toks[next + 1], "~"))) {
      j = next + 1;
      continue;
    }
    break;
  }
  if (first) return std::nullopt;
  c.end = j;
  c.after = j;
  if (j < toks.size() && is_p(toks[j], "<")) {
    if (const auto past = skip_template_args(toks, j)) c.after = *past;
  }
  return c;
}

/// Walks a receiver chain backwards from `j` (the token before `.`/`->`).
std::string receiver_before(const Toks& toks, std::size_t dot) {
  if (dot == 0) return "";
  std::size_t j = dot - 1;
  if (toks[j].kind != TokKind::kIdentifier) return "";
  std::size_t start = j;
  while (start >= 2 && is_p(toks[start - 1], "::") && toks[start - 2].kind == TokKind::kIdentifier)
    start -= 2;
  std::string out;
  for (std::size_t k = start; k <= j; ++k) {
    if (!out.empty() && toks[k].kind == TokKind::kIdentifier) out += "::";
    if (toks[k].kind == TokKind::kIdentifier) out += toks[k].text;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Statement classification (what does this `{` open?)
// ---------------------------------------------------------------------------

struct Signature {
  std::string name;  // possibly qualified: "LoopTable::intern"
  std::uint32_t line = 0;
  std::vector<std::string> requires_mutexes;  // raw DT_REQUIRES args
  bool ctor_init_pending = false;  // pending ends awaiting a member initializer
};

/// Scans `P` (the statement tokens before a `{` or `;`) for a function
/// signature: the first name-chain followed by a balanced paren group at
/// nesting level 0 whose tail contains only declarator qualifiers (const,
/// noexcept(...), &, &&, ->ret, DT_* annotation macros) or a ctor-init.
std::optional<Signature> parse_signature(const Toks& toks, std::size_t begin, std::size_t end) {
  int paren = 0;
  std::size_t i = begin;
  while (i < end) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPreproc || t.kind == TokKind::kString ||
        t.kind == TokKind::kChar || t.kind == TokKind::kNumber) {
      ++i;
      continue;
    }
    if (t.kind == TokKind::kPunct) {
      if (t.text == "(") ++paren;
      else if (t.text == ")") paren = std::max(0, paren - 1);
      else if (t.text == "=" && paren == 0)
        return std::nullopt;  // initializer, not a definition (default args are nested)
      ++i;
      continue;
    }
    // Identifier: try a chain at nesting level 0.
    if (paren != 0) {
      ++i;
      continue;
    }
    const auto chain = parse_chain(toks, i);
    if (!chain) {
      ++i;
      continue;
    }
    if (in(chain->last, kNotCallable) || in(chain->text, kNotCallable)) return std::nullopt;
    if (chain->after >= end || !is_p(toks[chain->after], "(")) {
      i = std::max(chain->after, i + 1);
      continue;
    }
    // Balance the parameter list.
    int depth = 0;
    std::size_t close = chain->after;
    for (; close < end; ++close) {
      if (is_p(toks[close], "(")) ++depth;
      else if (is_p(toks[close], ")")) {
        if (--depth == 0) break;
      }
    }
    if (close >= end) return std::nullopt;  // `(` unbalanced before `{`: expression
    // Validate the tail.
    Signature sig;
    sig.name = chain->text;
    sig.line = toks[i].line;
    bool in_ctor_init = false;
    std::size_t j = close + 1;
    while (j < end) {
      const Token& q = toks[j];
      if (in_ctor_init) {
        // Accept everything; just track whether the pending statement ends
        // awaiting a member initializer (then the next `{` is a braced
        // member init, not the body).
        ++j;
        continue;
      }
      if (q.kind == TokKind::kIdentifier) {
        if (q.text == "DT_REQUIRES" || q.text == "DT_REQUIRES_SHARED") {
          // Capture the annotation's argument expressions.
          if (j + 1 < end && is_p(toks[j + 1], "(")) {
            std::size_t k = j + 2;
            int d = 1;
            std::string arg;
            for (; k < end && d > 0; ++k) {
              if (is_p(toks[k], "(")) ++d;
              else if (is_p(toks[k], ")")) {
                if (--d == 0) break;
              }
              if (d >= 1) {
                if (is_p(toks[k], ",") && d == 1) {
                  if (!arg.empty()) sig.requires_mutexes.push_back(arg);
                  arg.clear();
                } else {
                  arg += toks[k].text;
                }
              }
            }
            if (!arg.empty()) sig.requires_mutexes.push_back(arg);
            j = k + 1;
            continue;
          }
        }
        // const / noexcept / override / final / try / any annotation macro.
        ++j;
        continue;
      }
      if (q.kind == TokKind::kPunct) {
        const std::string& p = q.text;
        if (p == ":") {
          in_ctor_init = true;
          ++j;
          continue;
        }
        if (p == "(" ) {  // noexcept(...) / macro(...)
          int d = 1;
          ++j;
          while (j < end && d > 0) {
            if (is_p(toks[j], "(")) ++d;
            else if (is_p(toks[j], ")")) --d;
            ++j;
          }
          continue;
        }
        if (p == "&" || p == "&&" || p == "->" || p == "::" || p == "<" || p == ">" ||
            p == ">>" || p == "," || p == "*" || p == "[" || p == "]") {
          ++j;
          continue;
        }
        return std::nullopt;  // `;`, `=`, ... — not a definition
      }
      ++j;  // literals in noexcept/annotations
    }
    if (in_ctor_init && end > begin) {
      const Token& lastTok = toks[end - 1];
      // `: a_(x), b_` + `{`  → that `{` initializes b_, the body comes later.
      sig.ctor_init_pending = lastTok.kind == TokKind::kIdentifier;
    }
    return sig;
  }
  return std::nullopt;
}

/// Is there a top-level occurrence of keyword `kw` in [begin,end)?
/// "Top-level" ignores occurrences inside parens and template-parameter
/// lists (`template <class T>` must not read as a class definition).
bool has_top_keyword(const Toks& toks, std::size_t begin, std::size_t end, std::string_view kw) {
  int paren = 0;
  std::size_t i = begin;
  while (i < end) {
    const Token& t = toks[i];
    if (is_p(t, "(")) ++paren;
    else if (is_p(t, ")")) paren = std::max(0, paren - 1);
    else if (paren == 0 && is_kw(t, "template") && i + 1 < end && is_p(toks[i + 1], "<")) {
      if (const auto past = skip_template_args(toks, i + 1)) {
        i = *past;
        continue;
      }
    } else if (paren == 0 && is_kw(t, kw)) {
      return true;
    }
    ++i;
  }
  return false;
}

bool has_top_punct(const Toks& toks, std::size_t begin, std::size_t end, std::string_view p) {
  int paren = 0;
  for (std::size_t i = begin; i < end; ++i) {
    if (is_p(toks[i], "(")) ++paren;
    else if (is_p(toks[i], ")")) paren = std::max(0, paren - 1);
    else if (paren == 0 && is_p(toks[i], p)) return true;
  }
  return false;
}

/// Class-head name: the last identifier before the base-clause `:` or the
/// end, skipping `final` (handles `class DT_CAPABILITY("mutex") Mutex`).
std::string class_head_name(const Toks& toks, std::size_t begin, std::size_t end) {
  std::string name;
  int paren = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const Token& t = toks[i];
    if (is_p(t, "(")) ++paren;
    else if (is_p(t, ")")) paren = std::max(0, paren - 1);
    else if (paren == 0 && is_p(t, ":")) break;
    else if (paren == 0 && t.kind == TokKind::kIdentifier && t.text != "final" &&
             t.text != "class" && t.text != "struct" && t.text != "union" &&
             t.text != "enum" && t.text != "alignas" && t.text != "public" &&
             t.text != "private" && t.text != "protected")
      name = t.text;
  }
  return name.empty() ? "(anon)" : name;
}

// ---------------------------------------------------------------------------
// The walker
// ---------------------------------------------------------------------------

struct Frame {
  enum class Kind : std::uint8_t { kNamespace, kClass, kFunction, kBlock } kind;
  std::vector<std::string> names;  // namespace components / class name
  int fn = -1;                     // index into out.functions for kFunction
  int saved_paren = 0;
  bool expr = false;               // expression brace: popping keeps the statement alive
  std::vector<std::size_t> lock_ids;  // LockAcquires (per owning fn) closing with me
};

class Walker {
 public:
  Walker(std::string_view display, const LexResult& lexed)
      : toks_(lexed.tokens), lexed_(lexed) {
    out_.file = std::string(display);
    out_.nolint = lexed.directives.nolint;
    out_.notes = lexed.notes;
  }

  FileIndex run() {
    const std::size_t n = toks_.size();
    for (std::size_t i = 0; i < n; ++i) {
      const Token& t = toks_[i];
      if (t.kind == TokKind::kPreproc) continue;
      if (t.kind == TokKind::kPunct) {
        if (t.text == "(") {
          ++paren_;
          continue;
        }
        if (t.text == ")") {
          paren_ = std::max(0, paren_ - 1);
          continue;
        }
        if (t.text == "{") {
          open_brace(i);
          continue;
        }
        if (t.text == "}") {
          close_brace(i);
          continue;
        }
        if (t.text == ";" && paren_ == 0) {
          end_statement(i);
          continue;
        }
        continue;
      }
      if (t.kind == TokKind::kIdentifier) maybe_site(i);
    }
    apply_hot_markers();
    return std::move(out_);
  }

 private:
  int current_fn() const {
    for (auto it = frames_.rbegin(); it != frames_.rend(); ++it)
      if (it->kind == Frame::Kind::kFunction) return it->fn;
    return -1;
  }

  /// Innermost non-block frame kind (drives "may a function start here").
  Frame::Kind host_kind() const {
    for (auto it = frames_.rbegin(); it != frames_.rend(); ++it)
      if (it->kind != Frame::Kind::kBlock) return it->kind;
    return Frame::Kind::kNamespace;  // file scope behaves like a namespace
  }

  std::vector<std::string> scope_names() const {
    std::vector<std::string> names;
    for (const Frame& f : frames_)
      for (const std::string& nm : f.names) names.push_back(nm);
    return names;
  }

  std::string qualify(std::string_view name) const {
    std::string q;
    for (const std::string& nm : scope_names()) {
      q += nm;
      q += "::";
    }
    q += name;
    return q;
  }

  /// Class prefix for canonical mutex naming: the enclosing class scope, or
  /// (for out-of-class definitions) the qualifier embedded in the name.
  std::string class_prefix(std::string_view fn_name) const {
    const auto pos = fn_name.rfind("::");
    if (pos != std::string_view::npos) return qualify(fn_name.substr(0, pos));
    for (auto it = frames_.rbegin(); it != frames_.rend(); ++it)
      if (it->kind == Frame::Kind::kClass) {
        // Qualify the class itself (drop nothing).
        std::string q;
        for (const Frame& f : frames_) {
          if (&f == &*it.base() - 1) break;
          for (const std::string& nm : f.names) q += nm + "::";
        }
        for (const std::string& nm : it->names) q += nm + "::";
        if (!q.empty()) q.resize(q.size() - 2);
        return q;
      }
    return "";
  }

  std::string canon_mutex(const std::string& expr, const std::string& cls) const {
    if (!cls.empty()) return cls + "::" + expr;
    return out_.file + "::" + expr;
  }

  void open_brace(std::size_t i) {
    Frame fr;
    fr.saved_paren = paren_;
    if (paren_ > 0) {
      fr.kind = Frame::Kind::kBlock;
      fr.expr = true;
      frames_.push_back(std::move(fr));
      paren_ = 0;
      return;
    }
    const std::size_t begin = stmt_start_;
    const std::size_t end = i;
    const Frame::Kind host = host_kind();
    if (has_top_keyword(toks_, begin, end, "namespace")) {
      fr.kind = Frame::Kind::kNamespace;
      for (std::size_t j = begin; j < end; ++j)
        if (toks_[j].kind == TokKind::kIdentifier && toks_[j].text != "namespace" &&
            toks_[j].text != "inline")
          fr.names.push_back(toks_[j].text);
    } else if (has_top_keyword(toks_, begin, end, "enum")) {
      fr.kind = Frame::Kind::kBlock;
    } else if (has_top_keyword(toks_, begin, end, "class") ||
               has_top_keyword(toks_, begin, end, "struct") ||
               has_top_keyword(toks_, begin, end, "union")) {
      fr.kind = Frame::Kind::kClass;
      fr.names.push_back(class_head_name(toks_, begin, end));
    } else if (has_top_punct(toks_, begin, end, "=")) {
      fr.kind = Frame::Kind::kBlock;
      fr.expr = true;
    } else if (host != Frame::Kind::kFunction) {
      if (const auto sig = parse_signature(toks_, begin, end)) {
        if (sig->ctor_init_pending) {
          // `{` initializes a member; the body brace is still to come.
          fr.kind = Frame::Kind::kBlock;
          fr.expr = true;
          frames_.push_back(std::move(fr));
          paren_ = 0;
          return;  // keep stmt_start_: the signature stays pending
        }
        fr.kind = Frame::Kind::kFunction;
        FunctionInfo fn;
        fn.qualified = qualify(sig->name);
        fn.file = out_.file;
        fn.line = sig->line;
        fn.tok_begin = static_cast<std::uint32_t>(i + 1);
        const std::string cls = class_prefix(sig->name);
        for (const std::string& m : sig->requires_mutexes)
          fn.requires_mutexes.push_back(canon_mutex(m, cls));
        fn_class_.push_back(cls);
        fr.fn = static_cast<int>(out_.functions.size());
        out_.functions.push_back(std::move(fn));
      } else {
        fr.kind = Frame::Kind::kBlock;
      }
    } else {
      fr.kind = Frame::Kind::kBlock;
    }
    frames_.push_back(std::move(fr));
    paren_ = 0;
    stmt_start_ = i + 1;
  }

  void close_brace(std::size_t i) {
    if (frames_.empty()) {
      stmt_start_ = i + 1;
      return;
    }
    Frame fr = std::move(frames_.back());
    frames_.pop_back();
    const int fn = fr.fn >= 0 ? fr.fn : current_fn();
    if (fn >= 0) {
      for (const std::size_t lock_id : fr.lock_ids)
        out_.functions[static_cast<std::size_t>(fn)].locks[lock_id].tok_end =
            static_cast<std::uint32_t>(i);
    }
    if (fr.kind == Frame::Kind::kFunction && fr.fn >= 0) {
      auto& f = out_.functions[static_cast<std::size_t>(fr.fn)];
      f.tok_end = static_cast<std::uint32_t>(i);
      f.end_line = toks_[i].line;
    }
    paren_ = fr.saved_paren;
    if (!fr.expr) stmt_start_ = i + 1;
  }

  void end_statement(std::size_t i) {
    // DT_REQUIRES on a declaration (header prototype): keep the annotation
    // so the out-of-line definition inherits it.
    if (current_fn() < 0) {
      bool has_req = false;
      for (std::size_t j = stmt_start_; j < i; ++j)
        if (is_kw(toks_[j], "DT_REQUIRES") || is_kw(toks_[j], "DT_REQUIRES_SHARED")) {
          has_req = true;
          break;
        }
      if (has_req) {
        if (const auto sig = parse_signature(toks_, stmt_start_, i)) {
          if (!sig->requires_mutexes.empty()) {
            AnnotationDecl anno;
            anno.qualified = qualify(sig->name);
            const std::string cls = class_prefix(sig->name);
            for (const std::string& m : sig->requires_mutexes)
              anno.requires_mutexes.push_back(canon_mutex(m, cls));
            out_.annotations.push_back(std::move(anno));
          }
        }
      }
    }
    stmt_start_ = i + 1;
  }

  /// Records call/effect sites for the identifier chain starting at `i`,
  /// when inside a function body.
  void maybe_site(std::size_t i) {
    const int fn = current_fn();
    if (fn < 0) return;
    // Chain starts: not mid-chain, not a declared name after a type.
    if (i > 0) {
      const Token& prev = toks_[i - 1];
      if (is_p(prev, "~")) return;
      if (is_p(prev, "::") && i >= 2) {
        // Mid-chain unless the `::` is a global qualifier (`::read(fd, ...)`).
        const Token& pp = toks_[i - 2];
        if (pp.kind == TokKind::kIdentifier || is_p(pp, ">") || is_p(pp, ">>") ||
            is_p(pp, ")"))
          return;
      }
      if (prev.kind == TokKind::kIdentifier && !in(prev.text, kChainAfter)) return;
    }
    const auto chain = parse_chain(toks_, i);
    if (!chain) return;
    auto& f = out_.functions[static_cast<std::size_t>(fn)];
    const std::uint32_t line = toks_[i].line;
    const std::uint32_t tok = static_cast<std::uint32_t>(i);

    if (chain->text == "new") {
      f.sites.push_back(Site{SiteKind::kAlloc, "new", line, tok});
      return;
    }
    if (chain->last == "cout" &&
        (chain->text == "std::cout" || chain->text == "cout")) {
      f.sites.push_back(Site{SiteKind::kStdout, "std::cout", line, tok});
      return;
    }

    const bool member = i > 0 && (is_p(toks_[i - 1], ".") || is_p(toks_[i - 1], "->"));
    const std::string receiver = member ? receiver_before(toks_, i - 1) : "";
    const bool is_call = chain->after < toks_.size() && is_p(toks_[chain->after], "(");

    if (is_call) {
      if (in(chain->last, kNotCallable)) return;
      f.calls.push_back(CallSite{chain->text, receiver, member, line, tok});
      if (in(chain->last, kBlockingNames) ||
          (!member && chain->text == chain->last && in(chain->last, kBareBlockingNames))) {
        f.sites.push_back(Site{SiteKind::kBlocking, chain->last, line, tok});
      }
      if ((!member && in(chain->last, kAllocFree)) || (member && in(chain->last, kAllocMember))) {
        f.sites.push_back(Site{SiteKind::kAlloc, chain->last, line, tok});
      }
      if (member && chain->last == "decode" && is_decoder_receiver(receiver)) {
        f.sites.push_back(Site{SiteKind::kStrictDecode, receiver + "->decode", line, tok});
      }
      if (!member && (chain->last == "printf" || chain->last == "puts" ||
                      chain->last == "putchar")) {
        f.sites.push_back(Site{SiteKind::kStdout, chain->last, line, tok});
      }
      if (chain->last == "fprintf" && chain->after + 1 < toks_.size() &&
          is_kw(toks_[chain->after + 1], "stdout")) {
        f.sites.push_back(Site{SiteKind::kStdout, "fprintf(stdout", line, tok});
      }
      return;
    }

    // Declaration with constructor parens: `Type var(args...)`.
    const std::size_t v = chain->after;
    if (v + 1 < toks_.size() && toks_[v].kind == TokKind::kIdentifier &&
        is_p(toks_[v + 1], "(") && !in(chain->last, kNotCallable)) {
      if (chain->last == "MutexLock" || chain->last == "MutexLock2") {
        record_lock(*chain, fn, v + 1, line, tok);
        return;
      }
      if (in(chain->last, kStreamTypes)) {
        f.sites.push_back(Site{SiteKind::kBlocking, chain->last, line, tok});
        return;
      }
      // Constructor call of a (possibly repo-defined) type.
      f.calls.push_back(CallSite{chain->text + "::" + chain->last, "", false, line, tok});
    }
  }

  void record_lock(const Chain& chain, int fn, std::size_t open_paren, std::uint32_t line,
                   std::uint32_t tok) {
    auto& f = out_.functions[static_cast<std::size_t>(fn)];
    LockAcquire acq;
    acq.address_ordered = chain.last == "MutexLock2";
    acq.line = line;
    acq.tok_begin = tok;
    acq.tok_end = 0;  // patched when the enclosing frame closes
    // Split the constructor arguments on top-level commas.
    std::size_t j = open_paren + 1;
    int depth = 1;
    std::string arg;
    while (j < toks_.size() && depth > 0) {
      if (is_p(toks_[j], "(")) ++depth;
      else if (is_p(toks_[j], ")")) {
        if (--depth == 0) break;
      }
      if (depth >= 1) {
        if (is_p(toks_[j], ",") && depth == 1) {
          if (!arg.empty()) acq.mutexes.push_back(arg);
          arg.clear();
        } else {
          arg += toks_[j].text;
        }
      }
      ++j;
    }
    if (!arg.empty()) acq.mutexes.push_back(arg);
    const std::string cls = fn_class_[static_cast<std::size_t>(fn)];
    for (std::string& m : acq.mutexes) m = canon_mutex(m, cls);
    f.locks.push_back(std::move(acq));
    if (!frames_.empty()) frames_.back().lock_ids.push_back(f.locks.size() - 1);
  }

  void apply_hot_markers() {
    for (const std::uint32_t marker : lexed_.directives.hot_markers) {
      FunctionInfo* best = nullptr;
      for (auto& f : out_.functions) {
        if (f.line <= marker && marker <= f.end_line) {
          // Innermost containing function: latest start wins.
          if (!best || f.line >= best->line) best = &f;
        }
      }
      if (!best) {
        // Marker directly above a function: attach to the next one starting
        // within two lines.
        for (auto& f : out_.functions)
          if (f.line > marker && f.line <= marker + 2 && (!best || f.line < best->line)) best = &f;
      }
      if (best) best->hot = true;
    }
  }

  const Toks& toks_;
  const LexResult& lexed_;
  FileIndex out_;
  std::vector<Frame> frames_;
  std::vector<std::string> fn_class_;  // parallel to out_.functions
  std::size_t stmt_start_ = 0;
  int paren_ = 0;
};

}  // namespace

FileIndex index_file(std::string_view display, std::string_view text) {
  const LexResult lexed = lex(text);
  return Walker(display, lexed).run();
}

bool path_has_dir(std::string_view path, const std::vector<std::string_view>& names) {
  std::size_t start = 0;
  while (start <= path.size()) {
    std::size_t slash = path.find('/', start);
    if (slash == std::string_view::npos) slash = path.size();
    const std::string_view part = path.substr(start, slash - start);
    for (const std::string_view nm : names)
      if (part == nm) return true;
    start = slash + 1;
  }
  return false;
}

}  // namespace difftrace::dtsa
