// dtsa — the DiffTrace static analyzer CLI.
//
//   dtsa [--root DIR] [--jobs N] [--sarif FILE] [PATH...]
//   dtsa --list-rules
//
// Exit codes mirror the Python linter: 0 clean, 1 findings, 2 usage/error.

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "dtsa/analyzer.hpp"
#include "dtsa/sarif.hpp"

namespace {

/// The single stdout write in dtsa: all rendering funnels through here so
/// the analyzer's own stream-reach rule has exactly one site to account for.
void emit_stdout(const std::string& text) {
  std::cout << text;  // NOLINT-DT(stream-reach, stream-discipline): dtsa is a CLI; findings render to stdout by design
}

int usage(int code) {
  std::ostringstream out;
  out << "usage: dtsa [--root DIR] [--jobs N] [--sarif FILE] [PATH...]\n"
      << "       dtsa --list-rules\n"
      << "\n"
      << "Analyzes C++ sources under DIR (paths relative to it; default: the\n"
      << "root itself) with DiffTrace's interprocedural rules. Suppress a\n"
      << "finding with a same-line comment: // NOLINT-DT(rule): reason\n";
  emit_stdout(std::move(out).str());
  return code;
}

int list_rules() {
  std::ostringstream out;
  for (const auto& r : difftrace::dtsa::rule_registry())
    out << r.id << ": " << r.summary << "\n";
  emit_stdout(std::move(out).str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  difftrace::dtsa::AnalyzeOptions options;
  std::string sarif_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--list-rules") return list_rules();
    if (arg == "--root") {
      const char* v = next();
      if (!v) return usage(2);
      options.root = v;
    } else if (arg == "--jobs") {
      const char* v = next();
      if (!v) return usage(2);
      options.jobs = std::atoi(v);
    } else if (arg == "--sarif") {
      const char* v = next();
      if (!v) return usage(2);
      sarif_path = v;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "dtsa: unknown option '" << arg << "'\n";
      return usage(2);
    } else {
      options.paths.emplace_back(arg);
    }
  }

  try {
    const difftrace::dtsa::AnalyzeResult result = difftrace::dtsa::analyze(options);
    std::ostringstream text;
    difftrace::dtsa::render_text(text, result);
    emit_stdout(std::move(text).str());
    if (!sarif_path.empty()) {
      std::ofstream out(sarif_path, std::ios::binary);
      if (!out) {
        std::cerr << "dtsa: cannot write " << sarif_path << "\n";
        return 2;
      }
      difftrace::dtsa::write_sarif(out, "dtsa", difftrace::dtsa::rule_registry(),
                                   result.findings);
    }
    return result.findings.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
