#include "dtsa/lexer.hpp"

#include <cctype>

namespace difftrace::dtsa {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_cont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_digit(char c) { return c >= '0' && c <= '9'; }

bool is_number_cont(char c) {
  // pp-number continuation: digits, letters (hex/suffixes/exponents), dot.
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '.' || c == '_';
}

/// String-literal encoding prefixes; `ends_R` selects the raw flavours.
bool is_encoding_prefix(std::string_view id, bool* raw) {
  if (id == "R" || id == "u8R" || id == "uR" || id == "UR" || id == "LR") {
    *raw = true;
    return true;
  }
  if (id == "u8" || id == "u" || id == "U" || id == "L") {
    *raw = false;
    return true;
  }
  return false;
}

// Multi-char punctuators, longest first within each leading char. `>>` is
// kept as ONE token; consumers that balance template angle brackets treat
// it as two closers (see index.cpp) — that is what keeps
// `std::vector<std::vector<int>>` from desynchronizing the scan.
constexpr std::string_view kPuncts[] = {
    "->*", "...", "<<=", ">>=", "::", "->", "<<", ">>", "<=", ">=", "==", "!=",
    "&&",  "||",  "+=",  "-=",  "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  LexResult run() {
    while (pos_ < text_.size()) step();
    return std::move(result_);
  }

 private:
  void step() {
    const char c = text_[pos_];
    if (c == '\n') {
      ++line_;
      ++pos_;
      at_line_start_ = true;
      return;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++pos_;
      return;
    }
    if (c == '\\' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '\n') {
      // Stray line continuation outside a directive: splice.
      ++line_;
      pos_ += 2;
      return;
    }
    if (c == '/' && peek(1) == '/') {
      line_comment();
      return;
    }
    if (c == '/' && peek(1) == '*') {
      block_comment();
      return;
    }
    if (c == '#' && at_line_start_) {
      preproc();
      return;
    }
    at_line_start_ = false;
    if (is_ident_start(c)) {
      identifier();
      return;
    }
    if (is_digit(c) || (c == '.' && is_digit(peek(1)))) {
      number();
      return;
    }
    if (c == '"') {
      string_lit(/*raw=*/false);
      return;
    }
    if (c == '\'') {
      char_lit();
      return;
    }
    punct();
  }

  char peek(std::size_t ahead) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  void emit(TokKind kind, std::string text, std::uint32_t line) {
    result_.tokens.push_back(Token{kind, std::move(text), line});
  }

  /// Mines NOLINT-DT suppressions and DT_HOT markers out of one comment line.
  void mine_comment(std::string_view comment, std::uint32_t line) {
    for (std::size_t i = 0; i + 10 <= comment.size(); ++i) {
      if (comment.compare(i, 10, "NOLINT-DT(") == 0) {
        const std::size_t open = i + 9;
        const std::size_t close = comment.find(')', open);
        if (close == std::string_view::npos) break;
        auto& set = result_.directives.nolint[line];
        std::size_t start = open + 1;
        while (start < close) {
          std::size_t comma = comment.find(',', start);
          if (comma == std::string_view::npos || comma > close) comma = close;
          std::string_view rule = comment.substr(start, comma - start);
          while (!rule.empty() && (rule.front() == ' ' || rule.front() == '\t')) rule.remove_prefix(1);
          while (!rule.empty() && (rule.back() == ' ' || rule.back() == '\t')) rule.remove_suffix(1);
          if (!rule.empty()) set.insert(std::string(rule));
          start = comma + 1;
        }
        i = close;
      }
    }
    // The hot marker must be the comment's *first* word ("// DT_HOT: reason"),
    // never a mention mid-prose — otherwise documentation that merely talks
    // about the marker (this file included) would mark its own functions hot.
    std::size_t i = 0;
    while (i < comment.size() &&
           (comment[i] == '/' || comment[i] == '*' || comment[i] == '!' ||
            comment[i] == ' ' || comment[i] == '\t'))
      ++i;
    if (comment.compare(i, 6, "DT_HOT") == 0 &&
        (i + 6 == comment.size() || !is_ident_cont(comment[i + 6])))
      result_.directives.hot_markers.push_back(line);
  }

  void line_comment() {
    std::size_t end = text_.find('\n', pos_);
    if (end == std::string_view::npos) end = text_.size();
    mine_comment(text_.substr(pos_, end - pos_), line_);
    pos_ = end;  // newline handled by step()
  }

  void block_comment() {
    std::size_t i = pos_ + 2;
    std::uint32_t line = line_;
    std::size_t seg_start = pos_;
    while (i < text_.size()) {
      if (text_[i] == '\n') {
        mine_comment(text_.substr(seg_start, i - seg_start), line);
        ++line;
        seg_start = i + 1;
        ++i;
        continue;
      }
      if (text_[i] == '*' && i + 1 < text_.size() && text_[i + 1] == '/') {
        i += 2;
        mine_comment(text_.substr(seg_start, i - seg_start), line);
        pos_ = i;
        line_ = line;
        return;
      }
      ++i;
    }
    result_.notes.push_back("unterminated block comment at line " + std::to_string(line_));
    mine_comment(text_.substr(seg_start, text_.size() - seg_start), line);
    pos_ = text_.size();
    line_ = line;
  }

  /// One whole directive, including backslash-newline continuations and any
  /// comments or literals inside it. Emitted as a single kPreproc token
  /// spelled "#word" so the indexer can skip it without brace confusion.
  void preproc() {
    const std::uint32_t start_line = line_;
    std::size_t i = pos_ + 1;
    while (i < text_.size() && (text_[i] == ' ' || text_[i] == '\t')) ++i;
    std::size_t word_start = i;
    while (i < text_.size() && is_ident_cont(text_[i])) ++i;
    std::string spelled("#");
    spelled.append(text_.substr(word_start, i - word_start));
    // Consume to the end of the *logical* line. Line comments end the
    // directive at the physical newline (a backslash inside a // comment is
    // comment text, not a continuation); block comments and string/char
    // literals are opaque.
    while (i < text_.size()) {
      const char c = text_[i];
      if (c == '\n') break;
      if (c == '\\' && i + 1 < text_.size() && text_[i + 1] == '\n') {
        ++line_;
        i += 2;
        continue;
      }
      if (c == '/' && i + 1 < text_.size() && text_[i + 1] == '/') {
        std::size_t end = text_.find('\n', i);
        mine_comment(text_.substr(i, (end == std::string_view::npos ? text_.size() : end) - i), line_);
        i = end == std::string_view::npos ? text_.size() : end;
        break;
      }
      if (c == '/' && i + 1 < text_.size() && text_[i + 1] == '*') {
        std::size_t end = text_.find("*/", i + 2);
        if (end == std::string_view::npos) {
          i = text_.size();
          break;
        }
        for (std::size_t j = i; j < end + 2; ++j)
          if (text_[j] == '\n') ++line_;
        i = end + 2;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        ++i;
        while (i < text_.size() && text_[i] != quote && text_[i] != '\n') {
          if (text_[i] == '\\' && i + 1 < text_.size() && text_[i + 1] != '\n') {
            i += 2;
            continue;
          }
          ++i;
        }
        if (i < text_.size() && text_[i] == quote) ++i;
        continue;
      }
      ++i;
    }
    emit(TokKind::kPreproc, std::move(spelled), start_line);
    pos_ = i;
  }

  void identifier() {
    const std::uint32_t line = line_;
    std::size_t i = pos_;
    while (i < text_.size() && is_ident_cont(text_[i])) ++i;
    std::string id(text_.substr(pos_, i - pos_));
    bool raw = false;
    // Encoding prefix glued to a string literal: u8R"(...)", L"...", ...
    // Only the exact prefix spellings count — `MACRO_R"text"` is an
    // identifier followed by an ordinary string, NOT a raw string.
    if (i < text_.size() && text_[i] == '"' && is_encoding_prefix(id, &raw)) {
      pos_ = i;
      string_lit(raw);
      return;
    }
    if (i < text_.size() && text_[i] == '\'' && (id == "u8" || id == "u" || id == "U" || id == "L")) {
      pos_ = i;
      char_lit();
      return;
    }
    pos_ = i;
    emit(TokKind::kIdentifier, std::move(id), line);
  }

  void number() {
    const std::uint32_t line = line_;
    std::size_t i = pos_;
    while (i < text_.size()) {
      const char c = text_[i];
      if (is_number_cont(c)) {
        // Exponent signs keep the pp-number going: 1e+3, 0x1p-4.
        if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') && i + 1 < text_.size() &&
            (text_[i + 1] == '+' || text_[i + 1] == '-')) {
          i += 2;
          continue;
        }
        ++i;
        continue;
      }
      // Digit separator: a single quote BETWEEN digit characters is part of
      // the number (1'000'000, 0xFF'FF), not a character literal.
      if (c == '\'' && i + 1 < text_.size() &&
          std::isalnum(static_cast<unsigned char>(text_[i + 1])) != 0) {
        i += 2;
        continue;
      }
      break;
    }
    emit(TokKind::kNumber, std::string(text_.substr(pos_, i - pos_)), line);
    pos_ = i;
  }

  void string_lit(bool raw) {
    const std::uint32_t line = line_;
    if (raw) {
      // R"delim( ... )delim" — no escapes, newlines are content.
      std::size_t i = pos_ + 1;  // past the opening quote
      std::size_t delim_start = i;
      while (i < text_.size() && text_[i] != '(' && text_[i] != '\n' &&
             i - delim_start <= 16)
        ++i;
      if (i >= text_.size() || text_[i] != '(') {
        // Malformed raw literal; recover as an ordinary string.
        pos_ = delim_start - 1;
        string_lit(false);
        return;
      }
      std::string closer(")");
      closer.append(text_.substr(delim_start, i - delim_start));
      closer += '"';
      std::size_t end = text_.find(closer, i + 1);
      if (end == std::string_view::npos) {
        result_.notes.push_back("unterminated raw string at line " + std::to_string(line_));
        end = text_.size();
      } else {
        end += closer.size();
      }
      for (std::size_t j = pos_; j < end; ++j)
        if (text_[j] == '\n') ++line_;
      pos_ = end;
      emit(TokKind::kString, "", line);
      return;
    }
    std::size_t i = pos_ + 1;
    while (i < text_.size()) {
      const char c = text_[i];
      if (c == '\\' && i + 1 < text_.size()) {
        if (text_[i + 1] == '\n') ++line_;  // spliced literal keeps line count exact
        i += 2;
        continue;
      }
      if (c == '"') {
        ++i;
        break;
      }
      if (c == '\n') break;  // unterminated on this line; recover
      ++i;
    }
    pos_ = i;
    emit(TokKind::kString, "", line);
  }

  void char_lit() {
    const std::uint32_t line = line_;
    std::size_t i = pos_ + 1;
    while (i < text_.size()) {
      const char c = text_[i];
      if (c == '\\' && i + 1 < text_.size()) {
        if (text_[i + 1] == '\n') ++line_;
        i += 2;
        continue;
      }
      if (c == '\'') {
        ++i;
        break;
      }
      if (c == '\n') break;
      ++i;
    }
    pos_ = i;
    emit(TokKind::kChar, "", line);
  }

  void punct() {
    const char c = text_[pos_];
    for (const std::string_view p : kPuncts) {
      if (p[0] != c) continue;
      if (text_.compare(pos_, p.size(), p) == 0) {
        emit(TokKind::kPunct, std::string(p), line_);
        pos_ += p.size();
        return;
      }
    }
    emit(TokKind::kPunct, std::string(1, c), line_);
    ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  bool at_line_start_ = true;
  LexResult result_;
};

}  // namespace

LexResult lex(std::string_view text) { return Lexer(text).run(); }

}  // namespace difftrace::dtsa
