// dtsa call graph: merges per-file indexes (index.hpp) into a whole-repo
// graph of resolved call edges. Resolution is name-based and deliberately
// over-approximate where C++ would need types:
//
//  - Plain calls resolve by scope walk: for a caller in scope A::B, the
//    spelled name `f` tries A::B::f, A::f, f (and each suffix-qualified
//    spelling like `util::f` tries A::util::f, util::f, ...). First hit by
//    longest scope prefix wins; overloads collapse into one node.
//  - Member calls (`x.f(...)`) resolve by last-component match against every
//    indexed method named `f` — an over-approximation that errs toward
//    reporting (rules allow per-line NOLINT-DT when it is too eager).
//  - Unresolved calls are external (std::, libc) and produce no edge; their
//    effects are covered by the site classification in the indexer.
//
// All node and edge orderings are deterministic (sorted by qualified name /
// file / token), which is what makes dtsa output byte-stable across runs
// and at any --jobs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dtsa/index.hpp"

namespace difftrace::dtsa {

/// One resolved call edge, anchored at the caller's call site.
struct CallEdge {
  std::uint32_t callee = 0;  // node id
  std::uint32_t line = 0;    // call-site line in the caller's file
  std::uint32_t tok = 0;     // call-site token index (lock-span containment)
};

/// One function node in the whole-repo graph.
struct Node {
  FunctionInfo fn;                  // merged definition facts
  std::vector<CallEdge> edges;      // resolved outgoing calls, deterministic order
};

class CallGraph {
 public:
  /// Builds the graph from per-file indexes. `files` may arrive in any
  /// order; the graph sorts everything internally.
  static CallGraph build(std::vector<FileIndex> files);

  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<FileIndex>& files() const { return files_; }

  /// Node id by exact qualified name, or -1.
  [[nodiscard]] int find(const std::string& qualified) const;

  /// The per-file NOLINT map for a display path (empty map when unknown).
  [[nodiscard]] const std::map<std::uint32_t, std::set<std::string>>& nolint(
      const std::string& file) const;

 private:
  std::vector<Node> nodes_;                  // sorted by fn.qualified
  std::vector<FileIndex> files_;             // sorted by file; functions cleared
  std::map<std::string, std::uint32_t> by_name_;
};

}  // namespace difftrace::dtsa
