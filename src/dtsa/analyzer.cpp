#include "dtsa/analyzer.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "dtsa/callgraph.hpp"
#include "dtsa/index.hpp"
#include "sched/pool.hpp"

namespace difftrace::dtsa {

namespace {

namespace fs = std::filesystem;

bool source_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".hh" || ext == ".h" ||
         ext == ".cxx" || ext == ".hxx";
}

bool skip_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == "build" || (!name.empty() && name[0] == '.');
}

void collect(const fs::path& root, const fs::path& base, std::vector<std::string>& out) {
  if (!fs::exists(base)) throw std::runtime_error("dtsa: no such path: " + base.string());
  if (fs::is_regular_file(base)) {
    if (source_extension(base))
      out.push_back(fs::relative(base, root).generic_string());
    return;
  }
  for (auto it = fs::recursive_directory_iterator(base);
       it != fs::recursive_directory_iterator(); ++it) {
    if (it->is_directory()) {
      if (skip_dir(it->path())) it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && source_extension(it->path()))
      out.push_back(fs::relative(it->path(), root).generic_string());
  }
}

std::string read_text(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) throw std::runtime_error("dtsa: cannot read " + p.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

}  // namespace

AnalyzeResult analyze(const AnalyzeOptions& options) {
  const fs::path root(options.root);
  if (!fs::exists(root)) throw std::runtime_error("dtsa: no such root: " + options.root);

  std::vector<std::string> files;
  if (options.paths.empty()) {
    collect(root, root, files);
  } else {
    for (const std::string& p : options.paths) collect(root, root / p, files);
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Index files in parallel into order-indexed slots: the merge below sees
  // the same sequence at any job count.
  std::vector<FileIndex> slots(files.size());
  sched::Pool pool(sched::resolve_jobs(static_cast<std::size_t>(std::max(options.jobs, 0))));
  pool.parallel_for(files.size(), [&](std::size_t i) {
    slots[i] = index_file(files[i], read_text(root / files[i]));
  });

  AnalyzeResult result;
  result.files = files.size();
  for (const FileIndex& fi : slots) {
    result.functions += fi.functions.size();
    for (const std::string& note : fi.notes) result.notes.push_back(fi.file + ": " + note);
  }
  std::sort(result.notes.begin(), result.notes.end());

  const CallGraph graph = CallGraph::build(std::move(slots));
  std::vector<Finding> findings = run_rules(graph, options.rules);
  result.findings = filter_suppressed(graph, std::move(findings), &result.suppressed);
  return result;
}

void render_text(std::ostream& out, const AnalyzeResult& result) {
  for (const Finding& f : result.findings)
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
  for (const std::string& note : result.notes) out << "note: " << note << "\n";
  out << "dtsa: " << result.findings.size() << " finding(s), " << result.suppressed
      << " suppressed, " << result.functions << " function(s) in " << result.files
      << " file(s)\n";
}

}  // namespace difftrace::dtsa
