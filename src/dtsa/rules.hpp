// dtsa rules: the five interprocedural checks over the whole-repo call
// graph (callgraph.hpp). Every rule anchors findings to a concrete source
// line, so a NOLINT-DT suppression naming the rule on that line (with a
// reason after the colon) drops it — the same suppression syntax (and
// shared rule-id namespace) as the Python linter.
//
//   blocking-under-lock     no syscall/IO/sleep reachable while a
//                           util::Mutex is held (lock regions + DT_REQUIRES)
//   alloc-in-hot-path       no heap allocation reachable from // DT_HOT roots
//   unbounded-decode-reach  strict codec decode stays within the
//                           bounded-decode family (compress/ + allowlist)
//   lock-order-consistency  the static acquisition-order graph is acyclic
//                           and never fixes an order between a MutexLock2 pair
//   stream-reach            stdout writes only in (or via) blessed
//                           result-rendering roots (cli/apps/tools/...)
//
// Rules report the *frontier* of a violation (the site, or the call edge
// that first crosses into the bad set), not every transitive caller —
// one finding per root cause, not a cascade.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dtsa/callgraph.hpp"

namespace difftrace::dtsa {

struct Finding {
  std::string rule;
  std::string file;
  std::uint32_t line = 0;
  std::string message;
};

struct RuleInfo {
  std::string_view id;
  std::string_view summary;
};

/// The stable rule registry (ids are part of the NOLINT-DT contract).
[[nodiscard]] const std::vector<RuleInfo>& rule_registry();

struct RuleConfig {
  /// Directory components whose functions may write stdout (stream-reach).
  std::vector<std::string_view> blessed_dirs{"cli", "apps", "tools", "examples", "bench"};
  /// Directory components inside the bounded-decode family.
  std::vector<std::string_view> decode_family_dirs{"compress"};
  /// Qualified names allowlisted into the decode family (strict-by-contract
  /// wrappers whose callers, not bodies, are the frontier).
  std::vector<std::string_view> decode_family_names{"difftrace::trace::TraceStore::decode"};
};

/// Runs all rules. Output is sorted by (file, line, rule, message) and
/// exact-deduplicated — deterministic for a given graph.
[[nodiscard]] std::vector<Finding> run_rules(const CallGraph& graph, const RuleConfig& config);

/// Drops findings whose line carries a NOLINT-DT suppression (naming the
/// rule, or the `*` wildcard) in their file. Returns the kept findings;
/// `suppressed` (if non-null) receives the number dropped.
[[nodiscard]] std::vector<Finding> filter_suppressed(const CallGraph& graph,
                                                     std::vector<Finding> findings,
                                                     std::size_t* suppressed);

}  // namespace difftrace::dtsa
