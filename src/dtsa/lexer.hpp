// dtsa lexer: a dependency-free C++ tokenizer for the difftrace static
// analyzer. It is not a compiler frontend — it produces exactly the token
// stream the indexer (index.hpp) needs to extract functions, call sites and
// lock regions: identifiers, numbers, literals (collapsed), punctuation and
// whole preprocessor directives, each tagged with its 1-based source line.
//
// The hard part of lexing C++ without a preprocessor is not the tokens, it
// is the *non-tokens*: comments, string/char literals (including raw
// strings with custom delimiters and encoding prefixes), digit separators
// and line continuations all hide characters that would otherwise be
// misread as code. This lexer handles all of them and keeps line numbers
// exact across every multi-line construct, because downstream findings and
// NOLINT-DT suppressions are keyed by line.
//
// Comments are not discarded: NOLINT-DT rule suppressions and DT_HOT
// region markers are mined out of them into LexResult::directives.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace difftrace::dtsa {

enum class TokKind : std::uint8_t {
  kIdentifier,  // foo, operator (the keyword), DT_REQUIRES
  kNumber,      // 42, 1'000'000, 0xFF'8p3
  kString,      // any string literal, raw or not (text is "")
  kChar,        // any character literal (text is "")
  kPunct,       // one operator/punctuator per token ("::", "->", ">>", "{")
  kPreproc,     // a whole directive incl. continuations (text is "#word")
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;        // identifier spelling / punctuator / "#directive"
  std::uint32_t line = 0;  // 1-based line the token starts on
};

/// Comment-borne directives, keyed by the 1-based line they sit on.
struct CommentDirectives {
  /// Comma-separated NOLINT-DT rule lists, or the `*` wildcard: the
  /// suppressed rule ids per line.
  std::map<std::uint32_t, std::set<std::string>> nolint;
  /// `// DT_HOT[: reason]` marker lines (hot-path roots for alloc rules).
  std::vector<std::uint32_t> hot_markers;
};

struct LexResult {
  std::vector<Token> tokens;
  CommentDirectives directives;
  /// Lexical damage worth surfacing (unterminated raw string, ...). The
  /// lexer always recovers; these are advisory.
  std::vector<std::string> notes;
};

/// Tokenizes one translation unit's text. Never throws on malformed input.
[[nodiscard]] LexResult lex(std::string_view text);

}  // namespace difftrace::dtsa
