// dtsa indexer: turns one file's token stream (lexer.hpp) into the facts the
// interprocedural rules consume — function definitions with qualified names,
// call sites, effect sites (blocking ops, allocations, stdout writes, strict
// decodes), lock-acquisition regions and DT_* thread-safety annotations.
//
// The extractor is AST-lite: it tracks namespace/class/function/block
// nesting by brace matching, classifies each `{` from the statement tokens
// preceding it, and walks function bodies recording sites with their token
// position (so "is this site inside that lock region?" is a span check).
// It is deliberately resolution-light — call sites record spelled names;
// cross-file resolution happens in callgraph.cpp over the merged index.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "dtsa/lexer.hpp"

namespace difftrace::dtsa {

/// Kinds of effect sites a rule can anchor a finding to.
enum class SiteKind : std::uint8_t {
  kBlocking,     // sleep/poll/file-IO/filesystem op, stream-object ctor
  kAlloc,        // new / make_unique / container growth / to_string
  kStdout,       // std::cout, printf(...), fprintf(stdout, ...)
  kStrictDecode, // decoder->decode(...) — the unbounded entry point
};

struct Site {
  SiteKind kind;
  std::string detail;   // spelled op, e.g. "sleep_for", "push_back", "new"
  std::uint32_t line = 0;
  std::uint32_t tok = 0;  // token index within the file (span containment)
};

struct CallSite {
  std::string name;      // spelled callee: "foo", "LoopTable::intern", "util::status_line"
  std::string receiver;  // receiver chain for member calls ("table_"), else ""
  bool member = false;   // x.f(...) / x->f(...)
  std::uint32_t line = 0;
  std::uint32_t tok = 0;
};

/// One lock acquisition: a MutexLock/MutexLock2 declaration. The held
/// region spans from the declaration to the end of its enclosing block.
struct LockAcquire {
  std::vector<std::string> mutexes;  // canonical ids; 2 entries for MutexLock2
  bool address_ordered = false;      // MutexLock2 (ordering escape hatch)
  std::uint32_t line = 0;
  std::uint32_t tok_begin = 0;  // region start (declaration)
  std::uint32_t tok_end = 0;    // region end (enclosing block close), exclusive
};

struct FunctionInfo {
  std::string qualified;  // difftrace::core::NlrBuilder::push
  std::string file;       // display path (repo-relative)
  std::uint32_t line = 0;
  std::uint32_t end_line = 0;
  std::uint32_t tok_begin = 0;  // body span, exclusive of braces
  std::uint32_t tok_end = 0;
  bool hot = false;  // carries a // DT_HOT marker
  std::vector<CallSite> calls;
  std::vector<Site> sites;
  std::vector<LockAcquire> locks;
  std::vector<std::string> requires_mutexes;  // DT_REQUIRES(...) — held on entry
};

/// DT_REQUIRES found on a *declaration* (header prototypes): merged into the
/// defining FunctionInfo by qualified name when the definition is elsewhere.
struct AnnotationDecl {
  std::string qualified;
  std::vector<std::string> requires_mutexes;
};

struct FileIndex {
  std::string file;  // display path
  std::vector<FunctionInfo> functions;
  std::vector<AnnotationDecl> annotations;
  std::map<std::uint32_t, std::set<std::string>> nolint;  // line -> rules ('*' ok)
  std::vector<std::string> notes;
};

/// Indexes one file. `display` is the path recorded on every fact.
[[nodiscard]] FileIndex index_file(std::string_view display, std::string_view text);

/// True when `path` (repo-relative, '/'-separated) has a directory component
/// in `names` — the path-scoping helper every rule uses.
[[nodiscard]] bool path_has_dir(std::string_view path, const std::vector<std::string_view>& names);

}  // namespace difftrace::dtsa
