// SARIF 2.1.0 writer for dtsa findings. The emitted document is the
// minimal-but-valid profile both static analyzers in this repo share (the
// Python linter's --sarif mirrors this shape): one run, a tool.driver with
// the full rule registry, and one result per finding with a single physical
// location. Deterministic: findings arrive pre-sorted and the writer adds
// no timestamps or absolute paths, so byte-identical inputs produce
// byte-identical SARIF.
#pragma once

#include <ostream>
#include <string_view>
#include <vector>

#include "dtsa/rules.hpp"

namespace difftrace::dtsa {

/// Writes the findings as a SARIF 2.1.0 document. `tool_name` names the
/// driver ("dtsa"); `uris` in results are the finding file paths verbatim
/// (repo-relative).
void write_sarif(std::ostream& out, std::string_view tool_name,
                 const std::vector<RuleInfo>& rules, const std::vector<Finding>& findings);

}  // namespace difftrace::dtsa
