#include "dtsa/callgraph.hpp"

#include <algorithm>
#include <cctype>

namespace difftrace::dtsa {

namespace {

std::string_view last_component(std::string_view qualified) {
  const auto pos = qualified.rfind("::");
  return pos == std::string_view::npos ? qualified : qualified.substr(pos + 2);
}

/// Receiver stem for member-call filtering: last chain component, trailing
/// underscores stripped, lowercased ("shard_store_" -> "shard_store").
std::string receiver_stem(std::string_view receiver) {
  const auto pos = receiver.rfind("::");
  std::string_view tail = pos == std::string_view::npos ? receiver : receiver.substr(pos + 2);
  while (!tail.empty() && tail.back() == '_') tail.remove_suffix(1);
  std::string out(tail);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

/// Does the receiver spelling plausibly name an instance of `cls`?
/// "store" ~ "TraceStore", "cache" ~ "Cache", "decoder" ~ "SymbolDecoder";
/// but "cv" !~ "Comm" and "done" !~ "Cache" — this is what keeps the
/// last-component fallback from aliasing std members (atomic `store`,
/// condition-variable `wait`) onto unrelated repo methods.
bool receiver_matches_class(const std::string& stem, std::string_view cls) {
  // One-letter receivers are loop variables of unknown type (`b.store(0)`
  // over atomics); matching them against everything aliases std members
  // onto repo methods, so unjudgeable means no edge.
  if (stem.size() < 2) return false;
  std::string c(cls);
  for (char& ch : c) ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  std::string flat = stem;
  flat.erase(std::remove(flat.begin(), flat.end(), '_'), flat.end());
  return c.find(flat) != std::string::npos || flat.find(c) != std::string::npos;
}

std::vector<std::string> split_scopes(std::string_view qualified) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= qualified.size()) {
    const auto pos = qualified.find("::", start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(qualified.substr(start));
      break;
    }
    parts.emplace_back(qualified.substr(start, pos - start));
    start = pos + 2;
  }
  return parts;
}

}  // namespace

CallGraph CallGraph::build(std::vector<FileIndex> files) {
  CallGraph g;
  std::sort(files.begin(), files.end(),
            [](const FileIndex& a, const FileIndex& b) { return a.file < b.file; });

  // Collect annotation declarations (header DT_REQUIRES) by qualified name.
  std::map<std::string, std::vector<std::string>> decl_requires;
  for (const FileIndex& fi : files)
    for (const AnnotationDecl& a : fi.annotations) {
      auto& dst = decl_requires[a.qualified];
      dst.insert(dst.end(), a.requires_mutexes.begin(), a.requires_mutexes.end());
    }

  // One node per (qualified, file): same-file overloads merge (their token
  // spans stay disjoint, so lock-region containment remains exact); same
  // name in different files stays separate so findings carry the right file.
  std::map<std::pair<std::string, std::string>, std::size_t> slot;
  for (FileIndex& fi : files) {
    for (FunctionInfo& fn : fi.functions) {
      const auto key = std::make_pair(fn.qualified, fn.file);
      const auto it = slot.find(key);
      if (it == slot.end()) {
        slot.emplace(key, g.nodes_.size());
        g.nodes_.push_back(Node{std::move(fn), {}});
      } else {
        FunctionInfo& dst = g.nodes_[it->second].fn;
        dst.hot = dst.hot || fn.hot;
        dst.line = std::min(dst.line, fn.line);
        dst.end_line = std::max(dst.end_line, fn.end_line);
        dst.calls.insert(dst.calls.end(), fn.calls.begin(), fn.calls.end());
        dst.sites.insert(dst.sites.end(), fn.sites.begin(), fn.sites.end());
        dst.locks.insert(dst.locks.end(), fn.locks.begin(), fn.locks.end());
        dst.requires_mutexes.insert(dst.requires_mutexes.end(), fn.requires_mutexes.begin(),
                                    fn.requires_mutexes.end());
      }
    }
    fi.functions.clear();
  }
  std::sort(g.nodes_.begin(), g.nodes_.end(), [](const Node& a, const Node& b) {
    if (a.fn.qualified != b.fn.qualified) return a.fn.qualified < b.fn.qualified;
    return a.fn.file < b.fn.file;
  });

  // Name lookup: exact qualified name -> sorted node ids.
  std::map<std::string, std::vector<std::uint32_t>> by_exact;
  std::map<std::string, std::vector<std::uint32_t>> by_last;
  for (std::uint32_t id = 0; id < g.nodes_.size(); ++id) {
    Node& n = g.nodes_[id];
    by_exact[n.fn.qualified].push_back(id);
    by_last[std::string(last_component(n.fn.qualified))].push_back(id);
    g.by_name_.emplace(n.fn.qualified, id);  // first (lowest) id wins
    // Merge header-declared DT_REQUIRES into the definition.
    if (const auto it = decl_requires.find(n.fn.qualified); it != decl_requires.end())
      n.fn.requires_mutexes.insert(n.fn.requires_mutexes.end(), it->second.begin(),
                                   it->second.end());
    std::sort(n.fn.requires_mutexes.begin(), n.fn.requires_mutexes.end());
    n.fn.requires_mutexes.erase(
        std::unique(n.fn.requires_mutexes.begin(), n.fn.requires_mutexes.end()),
        n.fn.requires_mutexes.end());
  }

  // Resolve call sites to edges.
  for (Node& n : g.nodes_) {
    const std::vector<std::string> scopes = [&] {
      const auto pos = n.fn.qualified.rfind("::");
      return pos == std::string::npos ? std::vector<std::string>{}
                                      : split_scopes(n.fn.qualified.substr(0, pos));
    }();
    for (const CallSite& cs : n.fn.calls) {
      const std::vector<std::uint32_t>* targets = nullptr;
      if (!cs.member) {
        // Scope walk, innermost first: A::B::f, A::f, f.
        for (std::size_t keep = scopes.size() + 1; keep-- > 0 && !targets;) {
          std::string cand;
          for (std::size_t s = 0; s < keep; ++s) {
            cand += scopes[s];
            cand += "::";
          }
          cand += cs.name;
          if (const auto it = by_exact.find(cand); it != by_exact.end()) targets = &it->second;
        }
      }
      std::vector<std::uint32_t> filtered;
      if (!targets && cs.member) {
        // Member calls resolve by last component against every indexed
        // method of that name, filtered by receiver/class-name plausibility
        // (over-approximate, but not so much that std::atomic's `store`
        // aliases sched::Cache::store). Plain calls get no such fallback
        // (it would alias std::move onto any repo `move`).
        const std::string tail{last_component(cs.name)};
        if (const auto it = by_last.find(tail); it != by_last.end()) {
          if (cs.receiver == "this" || cs.receiver.empty()) {
            // `this->f()` or an anonymous receiver (`arr[i].f()`,
            // `make().f()`): only the caller's own class is plausible —
            // keeping every candidate here is how std::atomic's `store` on
            // an array element would alias sched::Cache::store.
            const auto dot = n.fn.qualified.rfind("::");
            const std::string self =
                dot == std::string::npos ? "" : n.fn.qualified.substr(0, dot) + "::" + tail;
            for (const std::uint32_t id : it->second)
              if (g.nodes_[id].fn.qualified == self) filtered.push_back(id);
          } else {
            const std::string stem = receiver_stem(cs.receiver);
            for (const std::uint32_t id : it->second) {
              const std::string& q = g.nodes_[id].fn.qualified;
              const auto mpos = q.rfind("::");
              if (mpos == std::string::npos) continue;
              const std::string_view prefix(q.data(), mpos);
              if (receiver_matches_class(stem, last_component(prefix)))
                filtered.push_back(id);
            }
          }
          if (!filtered.empty()) targets = &filtered;
        }
      }
      if (!targets) continue;  // external: effects covered by site extraction
      for (const std::uint32_t callee : *targets)
        n.edges.push_back(CallEdge{callee, cs.line, cs.tok});
    }
    std::sort(n.edges.begin(), n.edges.end(), [](const CallEdge& a, const CallEdge& b) {
      if (a.tok != b.tok) return a.tok < b.tok;
      return a.callee < b.callee;
    });
    n.edges.erase(std::unique(n.edges.begin(), n.edges.end(),
                              [](const CallEdge& a, const CallEdge& b) {
                                return a.tok == b.tok && a.callee == b.callee;
                              }),
                  n.edges.end());
  }

  g.files_ = std::move(files);
  return g;
}

int CallGraph::find(const std::string& qualified) const {
  const auto it = by_name_.find(qualified);
  return it == by_name_.end() ? -1 : static_cast<int>(it->second);
}

const std::map<std::uint32_t, std::set<std::string>>& CallGraph::nolint(
    const std::string& file) const {
  static const std::map<std::uint32_t, std::set<std::string>> kEmpty;
  for (const FileIndex& fi : files_)
    if (fi.file == file) return fi.nolint;
  return kEmpty;
}

}  // namespace difftrace::dtsa
