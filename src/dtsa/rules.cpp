#include "dtsa/rules.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

namespace difftrace::dtsa {

const std::vector<RuleInfo>& rule_registry() {
  static const std::vector<RuleInfo> kRules = {
      {"blocking-under-lock",
       "no blocking syscall/IO/sleep reachable while a util::Mutex is held"},
      {"alloc-in-hot-path", "no heap allocation reachable from a // DT_HOT hot-path root"},
      {"unbounded-decode-reach",
       "strict codec decode stays within the bounded-decode family; use decode_tolerant"},
      {"lock-order-consistency",
       "static mutex acquisition order is acyclic and never fixes an order inside a "
       "MutexLock2 pair"},
      {"stream-reach", "stdout writes only in, or via, blessed result-rendering roots"},
  };
  return kRules;
}

namespace {

void emit(std::vector<Finding>& out, std::string_view rule, const std::string& file,
          std::uint32_t line, std::string message) {
  out.push_back(Finding{std::string(rule), file, line, std::move(message)});
}

/// Effective body span end: unclosed lock regions (lexer recovery) extend to
/// the end of the function.
std::uint32_t region_end(const LockAcquire& l, const FunctionInfo& fn) {
  return l.tok_end != 0 ? l.tok_end : fn.tok_end;
}

std::string join(const std::vector<std::string>& parts, const char* sep) {
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out += sep;
    out += p;
  }
  return out;
}

// ---------------------------------------------------------------------------
// blocking-under-lock
// ---------------------------------------------------------------------------

struct BlockingClosure {
  std::vector<char> blocking;     // node transitively reaches a blocking op
  std::vector<std::string> op;    // representative direct op ("sleep_for")
  std::vector<std::string> where; // function holding that direct op
};

BlockingClosure blocking_closure(const CallGraph& g) {
  const auto& nodes = g.nodes();
  BlockingClosure c;
  c.blocking.assign(nodes.size(), 0);
  c.op.resize(nodes.size());
  c.where.resize(nodes.size());
  for (std::size_t id = 0; id < nodes.size(); ++id)
    for (const Site& s : nodes[id].fn.sites)
      if (s.kind == SiteKind::kBlocking) {
        c.blocking[id] = 1;
        c.op[id] = s.detail;
        c.where[id] = nodes[id].fn.qualified;
        break;  // sites are in token order: first one is the representative
      }
  // Multi-pass fixpoint in node-id order: deterministic representatives.
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t id = 0; id < nodes.size(); ++id) {
      if (c.blocking[id]) continue;
      for (const CallEdge& e : nodes[id].edges) {
        if (e.callee == id || !c.blocking[e.callee]) continue;
        c.blocking[id] = 1;
        c.op[id] = c.op[e.callee];
        c.where[id] = c.where[e.callee];
        changed = true;
        break;
      }
    }
  }
  return c;
}

void rule_blocking_under_lock(const CallGraph& g, std::vector<Finding>& out) {
  const auto& nodes = g.nodes();
  const BlockingClosure c = blocking_closure(g);
  for (std::size_t id = 0; id < nodes.size(); ++id) {
    const FunctionInfo& fn = nodes[id].fn;
    struct Ctx {
      std::string held;
      std::uint32_t begin, end;
    };
    std::vector<Ctx> ctxs;
    if (!fn.requires_mutexes.empty())
      ctxs.push_back(Ctx{join(fn.requires_mutexes, ","), fn.tok_begin, fn.tok_end});
    for (const LockAcquire& l : fn.locks)
      ctxs.push_back(Ctx{join(l.mutexes, ","), l.tok_begin, region_end(l, fn)});
    for (const Ctx& ctx : ctxs) {
      for (const Site& s : fn.sites)
        if (s.kind == SiteKind::kBlocking && s.tok >= ctx.begin && s.tok <= ctx.end)
          emit(out, "blocking-under-lock", fn.file, s.line,
               "blocking op '" + s.detail + "' while holding '" + ctx.held + "'");
      for (const CallEdge& e : nodes[id].edges) {
        if (e.callee == id || !c.blocking[e.callee]) continue;
        if (e.tok < ctx.begin || e.tok > ctx.end) continue;
        const FunctionInfo& callee = nodes[e.callee].fn;
        std::string msg = "call to '" + callee.qualified + "' may block while holding '" +
                          ctx.held + "'";
        if (c.where[e.callee] != callee.qualified)
          msg += " (reaches '" + c.op[e.callee] + "' in '" + c.where[e.callee] + "')";
        else
          msg += " ('" + c.op[e.callee] + "')";
        emit(out, "blocking-under-lock", fn.file, e.line, std::move(msg));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// alloc-in-hot-path
// ---------------------------------------------------------------------------

void rule_alloc_in_hot_path(const CallGraph& g, std::vector<Finding>& out) {
  const auto& nodes = g.nodes();
  // Nodes are sorted by qualified name, so scanning roots in id order makes
  // the recorded root for each reachable node the lexicographically first.
  std::vector<int> root_of(nodes.size(), -1);
  for (std::size_t root = 0; root < nodes.size(); ++root) {
    if (!nodes[root].fn.hot || root_of[root] != -1) continue;
    std::deque<std::uint32_t> queue{static_cast<std::uint32_t>(root)};
    root_of[root] = static_cast<int>(root);
    while (!queue.empty()) {
      const std::uint32_t id = queue.front();
      queue.pop_front();
      for (const CallEdge& e : nodes[id].edges)
        if (root_of[e.callee] == -1) {
          root_of[e.callee] = static_cast<int>(root);
          queue.push_back(e.callee);
        }
    }
  }
  for (std::size_t id = 0; id < nodes.size(); ++id) {
    if (root_of[id] == -1) continue;
    const FunctionInfo& fn = nodes[id].fn;
    const std::string& root = nodes[static_cast<std::size_t>(root_of[id])].fn.qualified;
    for (const Site& s : fn.sites)
      if (s.kind == SiteKind::kAlloc)
        emit(out, "alloc-in-hot-path", fn.file, s.line,
             "heap allocation '" + s.detail + "' on hot path (reachable from DT_HOT root '" +
                 root + "')");
  }
}

// ---------------------------------------------------------------------------
// unbounded-decode-reach
// ---------------------------------------------------------------------------

void rule_unbounded_decode_reach(const CallGraph& g, const RuleConfig& cfg,
                                 std::vector<Finding>& out) {
  const auto& nodes = g.nodes();
  std::vector<char> family(nodes.size(), 0);
  for (std::size_t id = 0; id < nodes.size(); ++id) {
    const FunctionInfo& fn = nodes[id].fn;
    if (path_has_dir(fn.file, cfg.decode_family_dirs) ||
        std::find(cfg.decode_family_names.begin(), cfg.decode_family_names.end(),
                  fn.qualified) != cfg.decode_family_names.end())
      family[id] = 1;
  }
  // Tainted = holds a strict-decode site, or a *family* member calling a
  // tainted node. Non-family members never propagate: they are the frontier
  // and get reported instead.
  std::vector<char> tainted(nodes.size(), 0);
  for (std::size_t id = 0; id < nodes.size(); ++id)
    for (const Site& s : nodes[id].fn.sites)
      if (s.kind == SiteKind::kStrictDecode) tainted[id] = 1;
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t id = 0; id < nodes.size(); ++id) {
      if (tainted[id] || !family[id]) continue;
      for (const CallEdge& e : nodes[id].edges)
        if (e.callee != id && tainted[e.callee]) {
          tainted[id] = 1;
          changed = true;
          break;
        }
    }
  }
  for (std::size_t id = 0; id < nodes.size(); ++id) {
    if (family[id]) continue;
    const FunctionInfo& fn = nodes[id].fn;
    for (const Site& s : fn.sites)
      if (s.kind == SiteKind::kStrictDecode)
        emit(out, "unbounded-decode-reach", fn.file, s.line,
             "strict decode '" + s.detail +
                 "' outside the bounded-decode family; use decode_tolerant/decode_prefix");
    for (const CallEdge& e : nodes[id].edges)
      if (e.callee != id && tainted[e.callee])
        emit(out, "unbounded-decode-reach", fn.file, e.line,
             "call to '" + nodes[e.callee].fn.qualified +
                 "' reaches a strict decode outside the bounded-decode family; use "
                 "decode_tolerant/decode_prefix");
  }
}

// ---------------------------------------------------------------------------
// lock-order-consistency
// ---------------------------------------------------------------------------

struct Prov {
  std::string file;
  std::uint32_t line = 0;
  bool operator<(const Prov& o) const {
    return file != o.file ? file < o.file : line < o.line;
  }
};

void rule_lock_order(const CallGraph& g, std::vector<Finding>& out) {
  const auto& nodes = g.nodes();
  // Transitive acquisition sets (which mutexes can a call into f take?).
  std::vector<std::set<std::string>> acq(nodes.size());
  for (std::size_t id = 0; id < nodes.size(); ++id)
    for (const LockAcquire& l : nodes[id].fn.locks)
      acq[id].insert(l.mutexes.begin(), l.mutexes.end());
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t id = 0; id < nodes.size(); ++id)
      for (const CallEdge& e : nodes[id].edges) {
        if (e.callee == id) continue;
        for (const std::string& m : acq[e.callee])
          if (acq[id].insert(m).second) changed = true;
      }
  }
  // Order edges held -> acquired, with first (smallest) provenance.
  std::map<std::pair<std::string, std::string>, Prov> order;
  auto add_edge = [&](const std::string& a, const std::string& b, Prov p) {
    if (a == b) return;
    const auto key = std::make_pair(a, b);
    const auto it = order.find(key);
    if (it == order.end())
      order.emplace(key, std::move(p));
    else if (p < it->second)
      it->second = std::move(p);
  };
  // MutexLock2 pairs (unordered by design), with acquisition provenance.
  std::map<std::pair<std::string, std::string>, Prov> pairs;
  for (std::size_t id = 0; id < nodes.size(); ++id) {
    const FunctionInfo& fn = nodes[id].fn;
    auto held_at = [&](std::uint32_t tok) {
      std::set<std::string> held(fn.requires_mutexes.begin(), fn.requires_mutexes.end());
      for (const LockAcquire& l : fn.locks)
        if (l.tok_begin < tok && tok <= region_end(l, fn))
          held.insert(l.mutexes.begin(), l.mutexes.end());
      return held;
    };
    for (const LockAcquire& l : fn.locks) {
      const std::set<std::string> held = held_at(l.tok_begin);
      for (const std::string& h : held)
        for (const std::string& m : l.mutexes)
          add_edge(h, m, Prov{fn.file, l.line});
      if (l.address_ordered && l.mutexes.size() == 2) {
        auto key = std::make_pair(std::min(l.mutexes[0], l.mutexes[1]),
                                  std::max(l.mutexes[0], l.mutexes[1]));
        const Prov p{fn.file, l.line};
        const auto it = pairs.find(key);
        if (it == pairs.end())
          pairs.emplace(std::move(key), p);
        else if (p < it->second)
          it->second = p;
      }
    }
    for (const CallEdge& e : nodes[id].edges) {
      if (e.callee == id || acq[e.callee].empty()) continue;
      const std::set<std::string> held = held_at(e.tok);
      for (const std::string& h : held)
        for (const std::string& m : acq[e.callee])
          add_edge(h, m, Prov{fn.file, e.line});
    }
  }
  // (a) A fixed order between the members of a MutexLock2 pair contradicts
  // its by-address acquisition.
  for (const auto& [pair, prov] : pairs) {
    for (const auto& [a, b] : {pair, std::make_pair(pair.second, pair.first)}) {
      const auto it = order.find(std::make_pair(a, b));
      if (it == order.end()) continue;
      emit(out, "lock-order-consistency", prov.file, prov.line,
           "MutexLock2 acquires {'" + pair.first + "', '" + pair.second +
               "'} by address, but a fixed order '" + a + "' -> '" + b +
               "' is established at " + it->second.file + ":" +
               std::to_string(it->second.line));
    }
  }
  // (b) Cycles in the order graph. Adjacency in sorted order; report each
  // cycle once, keyed by its smallest member, anchored at that member's
  // outgoing edge provenance.
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [key, prov] : order) adj[key.first].push_back(key.second);
  std::set<std::string> reported;
  for (const auto& [start, nbrs] : adj) {
    if (reported.count(start)) continue;
    // BFS back to `start`.
    std::map<std::string, std::string> parent;
    std::deque<std::string> queue;
    for (const std::string& nb : nbrs)
      if (!parent.count(nb)) {
        parent[nb] = start;
        queue.push_back(nb);
      }
    bool found = false;
    while (!queue.empty() && !found) {
      const std::string cur = queue.front();
      queue.pop_front();
      if (cur == start) {
        found = true;
        break;
      }
      const auto it = adj.find(cur);
      if (it == adj.end()) continue;
      for (const std::string& nb : it->second)
        if (!parent.count(nb)) {
          parent[nb] = cur;
          queue.push_back(nb);
        }
    }
    if (!found) continue;
    // Reconstruct start -> ... -> start.
    std::vector<std::string> cycle{start};
    for (std::string cur = parent[start]; cur != start; cur = parent[cur])
      cycle.push_back(cur);
    std::reverse(cycle.begin() + 1, cycle.end());
    // Only report from the smallest member so each cycle appears once.
    if (cycle.size() < 2) continue;  // self-edges are never added
    if (*std::min_element(cycle.begin(), cycle.end()) != start) continue;
    for (const std::string& m : cycle) reported.insert(m);
    std::string path;
    for (const std::string& m : cycle) path += "'" + m + "' -> ";
    path += "'" + start + "'";
    const Prov& prov = order.at(std::make_pair(start, cycle.size() > 1 ? cycle[1] : start));
    emit(out, "lock-order-consistency", prov.file, prov.line,
         "lock acquisition order cycle: " + path);
  }
}

// ---------------------------------------------------------------------------
// stream-reach
// ---------------------------------------------------------------------------

void rule_stream_reach(const CallGraph& g, const RuleConfig& cfg, std::vector<Finding>& out) {
  const auto& nodes = g.nodes();
  std::vector<char> blessed(nodes.size(), 0);
  std::vector<char> writes(nodes.size(), 0);  // transitively reaches stdout
  for (std::size_t id = 0; id < nodes.size(); ++id) {
    blessed[id] = path_has_dir(nodes[id].fn.file, cfg.blessed_dirs) ? 1 : 0;
    for (const Site& s : nodes[id].fn.sites)
      if (s.kind == SiteKind::kStdout) writes[id] = 1;
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t id = 0; id < nodes.size(); ++id) {
      if (writes[id]) continue;
      for (const CallEdge& e : nodes[id].edges)
        if (e.callee != id && writes[e.callee]) {
          writes[id] = 1;
          changed = true;
          break;
        }
    }
  }
  for (std::size_t id = 0; id < nodes.size(); ++id) {
    if (blessed[id]) continue;
    const FunctionInfo& fn = nodes[id].fn;
    for (const Site& s : fn.sites)
      if (s.kind == SiteKind::kStdout)
        emit(out, "stream-reach", fn.file, s.line,
             "stdout write '" + s.detail + "' outside the blessed rendering roots");
    for (const CallEdge& e : nodes[id].edges)
      if (e.callee != id && blessed[e.callee] && writes[e.callee])
        emit(out, "stream-reach", fn.file, e.line,
             "call to rendering root '" + nodes[e.callee].fn.qualified +
                 "' (writes stdout) from non-blessed code");
  }
}

}  // namespace

std::vector<Finding> run_rules(const CallGraph& graph, const RuleConfig& config) {
  std::vector<Finding> out;
  rule_blocking_under_lock(graph, out);
  rule_alloc_in_hot_path(graph, out);
  rule_unbounded_decode_reach(graph, config, out);
  rule_lock_order(graph, out);
  rule_stream_reach(graph, config, out);
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Finding& a, const Finding& b) {
                          return a.file == b.file && a.line == b.line && a.rule == b.rule &&
                                 a.message == b.message;
                        }),
            out.end());
  return out;
}

std::vector<Finding> filter_suppressed(const CallGraph& graph, std::vector<Finding> findings,
                                       std::size_t* suppressed) {
  std::vector<Finding> kept;
  std::size_t dropped = 0;
  for (Finding& f : findings) {
    const auto& nolint = graph.nolint(f.file);
    const auto it = nolint.find(f.line);
    const bool drop = it != nolint.end() && (it->second.count("*") || it->second.count(f.rule));
    if (drop)
      ++dropped;
    else
      kept.push_back(std::move(f));
  }
  if (suppressed) *suppressed = dropped;
  return kept;
}

}  // namespace difftrace::dtsa
