// Ring — token passing around a rank ring, the smallest possible MPI shape.
//
// A token starts at rank 0 and circulates `laps` times; each rank increments
// it before forwarding. After the laps, rank 0 broadcasts the final token so
// every rank can verify it. The per-rank loop body is [Recv, bump, Send]
// (rank 0: [bump, Send, Recv]) — a single-edge cyclic dependency chain,
// ideal for watching one interfered message ripple around the whole job.
//
// Deterministic: one message in flight at a time, fixed lap count.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/faults.hpp"
#include "simmpi/runtime.hpp"

namespace difftrace::apps {

struct RingConfig {
  int nranks = 4;  // needs nranks >= 2
  int laps = 3;
  std::uint64_t seed = 42;

  /// Optional per-rank sink for the broadcast final token (index = rank).
  std::vector<std::int64_t>* token_sink = nullptr;
};

void ring_rank(simmpi::Comm& comm, const RingConfig& config);

[[nodiscard]] simmpi::RunReport run_ring(const RingConfig& config,
                                         const simmpi::WorldConfig& world);

}  // namespace difftrace::apps
