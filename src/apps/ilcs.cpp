#include "apps/ilcs.hpp"

#include <atomic>
#include <chrono>
#include <limits>
#include <span>
#include <thread>

#include "apps/libc.hpp"
#include "apps/tsp.hpp"
#include "instrument/tracer.hpp"
#include "simomp/team.hpp"
#include "util/prng.hpp"

namespace difftrace::apps {

namespace {

using instrument::TraceScope;

/// Shared per-process state between the master and its workers
/// (the `champ` array and `cont` flag of Listing 1).
struct ProcessState {
  explicit ProcessState(int workers)
      : champ(static_cast<std::size_t>(workers) + 1, std::numeric_limits<double>::infinity()) {}

  std::vector<double> champ;  // champ[tid]; slot 0 unused (master)
  std::atomic<bool> cont{true};
};

void worker_thread(simmpi::Comm& comm, const IlcsConfig& config, const TspProblem& problem,
                   ProcessState& state, int tid) {
  TraceScope scope("ilcsWorker");
  const int rank = comm.rank();
  util::Xoshiro256 rng(config.seed ^ (static_cast<std::uint64_t>(rank) << 20) ^
                       (static_cast<std::uint64_t>(tid) << 8));
  // Champion slots are touched through atomic_ref: the *protocol-level*
  // protection is the critical section (whose omission is the injected bug
  // DiffTrace must spot in the trace), while atomic_ref keeps the injected
  // race from being C++ UB inside our own test process.
  const auto update_champ = [&](double value) {
    double staging = 0.0;
    traced_memcpy(&staging, &value, sizeof(double));
    std::atomic_ref<double>(state.champ[static_cast<std::size_t>(tid)])
        .store(staging, std::memory_order_relaxed);
  };
  // Every worker evaluates at least one seed: real ILCS workers complete
  // thousands of evaluations per exchange round; our in-process masters can
  // converge before a lagging worker is even scheduled, which would leave a
  // structurally empty worker trace no real run exhibits.
  bool first_evaluation = true;
  while (first_evaluation || (state.cont.load(std::memory_order_acquire) && !comm.cancelled())) {
    first_evaluation = false;
    {
      // Spin-loop politeness between evaluations — the poll/yield artifact
      // Table I's "System/Poll" filter targets.
      instrument::TraceScope yield_scope("sched_yield", trace::Image::SystemLib, /*plt=*/true);
      std::this_thread::yield();
    }
    const std::uint64_t eval_seed = rng();
    const double local_result = tsp_exec(problem, eval_seed);
    const double current =
        std::atomic_ref<double>(state.champ[static_cast<std::size_t>(tid)]).load(std::memory_order_relaxed);
    if (local_result < current) {
      // §IV-B fault: worker `thread` of process `proc` omits the critical
      // section around the champion update.
      if (config.fault.type == FaultType::OmpNoCritical && config.fault.targets(rank, tid)) {
        update_champ(local_result);
      } else {
        simomp::Critical critical(rank, "champ");
        update_champ(local_result);
      }
    }
  }
}

void master_thread(simmpi::Comm& comm, const IlcsConfig& config, ProcessState& state) {
  TraceScope scope("ilcsMaster");
  const int rank = comm.rank();
  double best_seen = std::numeric_limits<double>::infinity();
  std::vector<std::byte> bcast_buffer(sizeof(double));
  int stagnant = 0;

  // The champion exchange is meaningless before the local workers have
  // produced anything (on a cluster the first CPU_Exec results long precede
  // the first reduction); wait for the first local result so round 0
  // already reduces real champions — otherwise every rank "claims" the
  // infinite champion and the MIN over claim ids degenerates to rank 0.
  const auto local_champion = [&] {
    simomp::Critical critical(rank, "champ");
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t t = 1; t < state.champ.size(); ++t)
      best = std::min(best,
                      std::atomic_ref<double>(state.champ[t]).load(std::memory_order_relaxed));
    return best;
  };
  while (local_champion() == std::numeric_limits<double>::infinity() && !comm.cancelled())
    std::this_thread::sleep_for(std::chrono::microseconds(100));

  for (int round = 0; round < config.max_rounds && stagnant < config.patience; ++round) {
    // On a cluster a champion-exchange round costs network latency; our
    // in-process collectives are near-instant, so pace the master loop to
    // give workers wall-clock time to search (like real ILCS, where rounds
    // interleave with multi-millisecond CPU_Exec evaluations).
    std::this_thread::sleep_for(config.round_pacing);

    // Local champion = best over this process's workers.
    const double local_best = local_champion();

    // Reduce the global champion (Listing 1 line 24).
    const auto op = config.fault.type == FaultType::WrongCollectiveOp && config.fault.targets(rank)
                        ? simmpi::ReduceOp::Max
                        : simmpi::ReduceOp::Min;
    double global_champion;
    if (config.fault.type == FaultType::WrongCollectiveSize && config.fault.targets(rank)) {
      // §IV-C: wrong count — structurally mismatched, the whole job hangs.
      const double wrong[2] = {local_best, 0.0};
      double wrong_out[2];
      comm.allreduce(std::span<const double>(wrong, 2), std::span<double>(wrong_out, 2), op);
      global_champion = wrong_out[0];
    } else {
      global_champion = comm.allreduce_value(local_best, op);
    }

    // Reduce the champion's owner rank (Listing 1 line 25). Under the
    // wrong-op fault the faulty rank sees the MAX and claims ownership
    // almost every round, distorting who broadcasts and how often the
    // champion "improves".
    const std::int32_t my_claim =
        local_best <= global_champion ? rank : std::numeric_limits<std::int32_t>::max();
    std::int32_t champion_pid = comm.allreduce_value(my_claim, simmpi::ReduceOp::Min);
    if (champion_pid == std::numeric_limits<std::int32_t>::max()) champion_pid = 0;

    // Every master stages its local champion into the broadcast buffer
    // under the critical section (each maintains its own candidate), so the
    // memory/critical-section trace of a master round is identical across
    // ranks and runs — who actually OWNS the champion is marked only by the
    // application-level updateChampionBuffer call (Listing 1 lines 26-28),
    // which the wrong-op fault makes the faulty rank execute every round.
    {
      simomp::Critical critical(rank, "champ");
      traced_memcpy(bcast_buffer.data(), &local_best, sizeof(double));
    }
    if (rank == champion_pid) {
      TraceScope claim_scope("updateChampionBuffer");
    }

    // Broadcast the champion tour from its owner (Listing 1 lines 29-31);
    // every rank sees the same payload, which drives termination.
    double payload = local_best;
    comm.bcast(std::span<double>(&payload, 1), champion_pid);

    if (payload < best_seen - 1e-9) {
      best_seen = payload;
      stagnant = 0;
    } else if (best_seen != std::numeric_limits<double>::infinity()) {
      // Stagnation only counts once a champion exists: before the workers
      // deliver their first result there is no "quality" to stop improving.
      ++stagnant;
    }
  }

  state.cont.store(false, std::memory_order_release);

  if (config.champion_sink != nullptr)
    (*config.champion_sink)[static_cast<std::size_t>(rank)] = best_seen;
}

}  // namespace

void ilcs_rank(simmpi::Comm& comm, const IlcsConfig& config) {
  TraceScope scope("main");
  comm.init();
  const int rank = comm.comm_rank();
  (void)comm.comm_size();

  // Total CPU/GPU discovery (Listing 1 lines 7-8).
  const auto total_cpus =
      comm.allreduce_value(static_cast<std::int32_t>(config.workers), simmpi::ReduceOp::Sum);
  const auto total_gpus = comm.allreduce_value(std::int32_t{0}, simmpi::ReduceOp::Sum);
  (void)total_cpus;
  (void)total_gpus;

  const TspProblem problem = tsp_init(config.ncities, config.seed);
  traced_alloc_note(problem.size() * sizeof(double) * 2);  // champion storage (line 10)

  comm.barrier();

  ProcessState state(config.workers);
  simomp::parallel_region(rank, config.workers + 1, [&](int tid) {
    if (tid == 0)
      master_thread(comm, config, state);
    else
      worker_thread(comm, config, problem, state, tid);
  });

  if (rank == 0) tsp_output(0.0);
  comm.finalize();
}

simmpi::RunReport run_ilcs(const IlcsConfig& config, const simmpi::WorldConfig& world) {
  simmpi::WorldConfig wc = world;
  wc.nranks = config.nranks;
  return simmpi::run_world(wc, [&config](simmpi::Comm& comm) { ilcs_rank(comm, config); });
}

}  // namespace difftrace::apps
