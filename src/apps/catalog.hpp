// The miniapp catalog: one registry describing every app the CLI and the
// fault matrix can run — name, trace-shape summary, determinism, the
// app-side (legacy paper) fault classes it implements, its coordinate shape
// for plan validation, and a factory building the rank program.
//
// The factory path is the single choke point where fault plans meet apps:
// make_rank_fn resolves parameter defaults, validates the plan against the
// app's shape (rejecting out-of-range rank/thread/iteration with a
// structured PlanError — silently-armed-nothing runs are a bug class this
// replaces), converts app-side classes to the legacy FaultSpec, and leaves
// runtime classes to the separately-armed simfault::Injector.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "apps/faults.hpp"
#include "simfault/plan.hpp"
#include "simmpi/runtime.hpp"

namespace difftrace::apps {

/// Uniform knobs across apps; 0 means "use the app's default". Each app maps
/// them onto its own config (size -> elements/cities/cells, iterations ->
/// phases/rounds/cycles/tasks, threads -> team size for hybrid apps).
struct AppParams {
  int nranks = 0;
  int threads = 0;
  int iterations = 0;
  int size = 0;
  std::uint64_t seed = 42;
  simfault::FaultPlan plan;
};

struct AppInfo {
  std::string_view name;
  std::string_view summary;
  /// Same (params, plan) => byte-identical traces. False only for apps with
  /// wall-clock pacing or cross-thread races (ilcs); the matrix pins
  /// verdicts — and the determinism tests pin archives — only where true.
  bool deterministic = true;
  /// Uses simomp teams (so LockHold / OmpNoCritical plans can fire).
  bool hybrid = false;
  /// App-side (legacy) fault classes this app implements.
  std::vector<simfault::FaultClass> app_faults;
  AppParams defaults;
  std::function<simfault::AppShape(const AppParams&)> shape;
  /// Builds the rank program; `fault` is the already-converted legacy spec
  /// (FaultType::None for clean or runtime-injected runs).
  std::function<simmpi::RankFn(const AppParams&, const FaultSpec&)> build;
};

[[nodiscard]] const std::vector<AppInfo>& app_catalog();
/// nullptr when no app has that name.
[[nodiscard]] const AppInfo* find_app(std::string_view name);
[[nodiscard]] bool app_supports(const AppInfo& app, simfault::FaultClass cls);

/// Fills zero-valued params from the app's defaults.
[[nodiscard]] AppParams resolve_params(const AppInfo& app, AppParams params);

/// Resolve + validate + build (see file comment). Throws simfault::PlanError
/// on out-of-range predicates or an app-side class the app does not
/// implement. Runtime-class plans validate here but *arm* via the Injector.
[[nodiscard]] simmpi::RankFn make_rank_fn(const AppInfo& app, const AppParams& params);

}  // namespace difftrace::apps
