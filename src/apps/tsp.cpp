#include "apps/tsp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "apps/libc.hpp"
#include "instrument/tracer.hpp"
#include "util/prng.hpp"

namespace difftrace::apps {

using instrument::TraceScope;

double TspProblem::distance(std::size_t a, std::size_t b) const {
  const double dx = xs[a] - xs[b];
  const double dy = ys[a] - ys[b];
  return std::sqrt(dx * dx + dy * dy);
}

double TspProblem::tour_length(const std::vector<std::uint32_t>& tour) const {
  double total = 0.0;
  for (std::size_t i = 0; i < tour.size(); ++i)
    total += distance(tour[i], tour[(i + 1) % tour.size()]);
  return total;
}

TspProblem tsp_init(std::size_t ncities, std::uint64_t seed) {
  TraceScope scope("CPU_Init");
  // Option-string handling at startup (the System/String filter artifact).
  (void)traced_strlen("tsp:2opt");
  util::Xoshiro256 rng(seed);
  TspProblem p;
  p.xs.reserve(ncities);
  p.ys.reserve(ncities);
  for (std::size_t i = 0; i < ncities; ++i) {
    p.xs.push_back(rng.uniform() * 1000.0);
    p.ys.push_back(rng.uniform() * 1000.0);
  }
  return p;
}

namespace {

/// One full 2-opt sweep; returns true when an improving move was applied.
bool two_opt_pass(const TspProblem& problem, std::vector<std::uint32_t>& tour) {
  TraceScope scope("twoOptPass");
  const std::size_t n = tour.size();
  bool improved = false;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    for (std::size_t j = i + 2; j < n; ++j) {
      if (i == 0 && j + 1 == n) continue;  // same edge
      const auto a = tour[i];
      const auto b = tour[i + 1];
      const auto c = tour[j];
      const auto d = tour[(j + 1) % n];
      const double before = problem.distance(a, b) + problem.distance(c, d);
      const double after = problem.distance(a, c) + problem.distance(b, d);
      if (after + 1e-12 < before) {
        std::reverse(tour.begin() + static_cast<std::ptrdiff_t>(i + 1),
                     tour.begin() + static_cast<std::ptrdiff_t>(j + 1));
        improved = true;
      }
    }
  }
  return improved;
}

}  // namespace

double tsp_exec(const TspProblem& problem, std::uint64_t seed) {
  TraceScope scope("CPU_Exec");
  util::Xoshiro256 rng(seed);
  std::vector<std::uint32_t> tour(problem.size());
  std::iota(tour.begin(), tour.end(), 0u);
  // Fisher-Yates random restart.
  for (std::size_t i = tour.size(); i > 1; --i)
    std::swap(tour[i - 1], tour[rng.below(i)]);
  while (two_opt_pass(problem, tour)) {
  }
  return problem.tour_length(tour);
}

void tsp_output(double champion_length) {
  TraceScope scope("CPU_Output");
  (void)champion_length;
}

}  // namespace difftrace::apps
