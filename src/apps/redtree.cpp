#include "apps/redtree.hpp"

#include <cmath>
#include <span>

#include "instrument/tracer.hpp"
#include "simfault/injector.hpp"
#include "util/prng.hpp"

namespace difftrace::apps {

namespace {

using instrument::TraceScope;

constexpr int kPartialTag = 51;

double local_work(util::Xoshiro256& rng, int work_size) {
  TraceScope scope("localWork");
  double sum = 0.0;
  for (int i = 0; i < work_size; ++i) sum += std::sin(rng.uniform() * 3.141592653589793);
  return sum;
}

/// Stride-doubling combine: returns the subtree sum at rank 0, the partial
/// sum a rank handed upward everywhere else.
double tree_reduce(simmpi::Comm& comm, double partial) {
  TraceScope scope("treeReduce");
  const int rank = comm.rank();
  const int nranks = comm.size();
  for (int stride = 1; stride < nranks; stride *= 2) {
    if (rank % (2 * stride) == 0) {
      const int child = rank + stride;
      if (child < nranks) partial += comm.recv_value<double>(child, kPartialTag);
    } else {
      comm.send_value(partial, rank - stride, kPartialTag);
      break;  // handed upward; this rank is done with the tree
    }
  }
  return partial;
}

}  // namespace

void redtree_rank(simmpi::Comm& comm, const RedtreeConfig& config) {
  TraceScope scope("main");
  comm.init();
  const int rank = comm.comm_rank();
  (void)comm.comm_size();

  util::Xoshiro256 rng(config.seed + static_cast<std::uint64_t>(rank) * 0x9E37u);
  double total = 0.0;
  for (int round = 0; round < config.rounds; ++round) {
    if (!simfault::hooks::begin_iteration(rank, round)) continue;  // SkipIter plans
    double partial = local_work(rng, config.work_size);
    partial = tree_reduce(comm, partial);
    total = partial;
    comm.bcast(std::span<double>(&total, 1), 0);
  }

  if (config.total_sink != nullptr)
    (*config.total_sink)[static_cast<std::size_t>(rank)] = total;
  comm.finalize();
}

simmpi::RunReport run_redtree(const RedtreeConfig& config, const simmpi::WorldConfig& world) {
  simmpi::WorldConfig wc = world;
  wc.nranks = config.nranks;
  return simmpi::run_world(wc, [&config](simmpi::Comm& comm) { redtree_rank(comm, config); });
}

}  // namespace difftrace::apps
