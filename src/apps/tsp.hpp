// The TSP user code run under ILCS (§IV-A): random tour + 2-opt improvement
// until a local minimum — the paper's CPU_Init / CPU_Exec / CPU_Output
// triple. Instrumented with the same function names so Table VI's custom
// filter ("CPU_Exec") applies.
#pragma once

#include <cstdint>
#include <vector>

namespace difftrace::apps {

struct TspProblem {
  std::vector<double> xs;
  std::vector<double> ys;

  [[nodiscard]] std::size_t size() const noexcept { return xs.size(); }
  [[nodiscard]] double distance(std::size_t a, std::size_t b) const;
  [[nodiscard]] double tour_length(const std::vector<std::uint32_t>& tour) const;
};

/// CPU_Init: generates `ncities` deterministic pseudo-random coordinates.
[[nodiscard]] TspProblem tsp_init(std::size_t ncities, std::uint64_t seed);

/// CPU_Exec: evaluates one seed — random restart + 2-opt to local minimum.
/// Returns the tour length found.
[[nodiscard]] double tsp_exec(const TspProblem& problem, std::uint64_t seed);

/// CPU_Output: traced no-op sink for the champion (rank 0 only in ILCS).
void tsp_output(double champion_length);

}  // namespace difftrace::apps
