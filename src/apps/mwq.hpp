// MWQ — a master/worker task queue over point-to-point messages.
//
// Rank 0 is the master: it dispatches `tasks` work items round-robin to the
// worker ranks (blocking MPI_Send), then collects one result per dispatched
// task (blocking MPI_Recv, in dispatch order), then sends every worker a
// poison pill. Workers loop [MPI_Recv task, executeTask, MPI_Send result]
// until the pill arrives. The master's trace is a long Send burst followed
// by a Recv burst; each worker's is a tight recv/compute/send loop whose
// length depends on its rank — an asymmetric star topology, unlike the
// neighbour/collective patterns of the other apps.
//
// Deterministic: dispatch order, result collection order, and worker task
// counts are all fixed functions of (tasks, nranks) — no wildcard receives,
// no polling.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/faults.hpp"
#include "simmpi/runtime.hpp"

namespace difftrace::apps {

struct MwqConfig {
  int nranks = 4;  // 1 master + (nranks-1) workers; needs nranks >= 2
  int tasks = 12;
  int task_size = 64;  // work-item payload length (doubles)
  std::uint64_t seed = 42;

  /// Optional sink for the master's aggregated result checksum (index 0)
  /// and each worker's local checksum (index = rank).
  std::vector<double>* result_sink = nullptr;
};

void mwq_rank(simmpi::Comm& comm, const MwqConfig& config);

[[nodiscard]] simmpi::RunReport run_mwq(const MwqConfig& config,
                                        const simmpi::WorldConfig& world);

}  // namespace difftrace::apps
