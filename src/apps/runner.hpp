// run_traced: the "collect ParLOT traces from one execution" step — begins
// a tracing session, runs the MPI job, and harvests the per-thread trace
// store, with RAII cleanup of the session even if the job throws.
#pragma once

#include <string>

#include "instrument/tracer.hpp"
#include "simmpi/runtime.hpp"
#include "trace/store.hpp"

namespace difftrace::apps {

struct TracedRun {
  trace::TraceStore store;
  simmpi::RunReport report;
};

[[nodiscard]] TracedRun run_traced(const simmpi::WorldConfig& world, const simmpi::RankFn& fn,
                                   instrument::CaptureLevel level = instrument::CaptureLevel::MainImage,
                                   const std::string& codec = "parlot");

}  // namespace difftrace::apps
