#include "apps/stencil.hpp"

#include <array>
#include <cmath>
#include <span>

#include "instrument/tracer.hpp"
#include "simfault/injector.hpp"
#include "util/prng.hpp"

namespace difftrace::apps {

namespace {

using instrument::TraceScope;

constexpr int kLeftTag = 11;
constexpr int kRightTag = 12;

/// One halo exchange: nonblocking receives first (as real stencil codes
/// order them), then boundary sends, then a single Waitall.
void exchange_halos(simmpi::Comm& comm, std::vector<double>& cells, int iter) {
  TraceScope scope("exchangeHalos");
  (void)iter;
  const int rank = comm.rank();
  const int nranks = comm.size();
  const int left = rank - 1;
  const int right = rank + 1;
  const std::size_t last = cells.size() - 1;

  std::array<simmpi::Request, 4> reqs;
  std::size_t n = 0;
  if (left >= 0)
    reqs[n++] = comm.irecv(std::span<double>(&cells[0], 1), left, kRightTag);
  if (right < nranks)
    reqs[n++] = comm.irecv(std::span<double>(&cells[last], 1), right, kLeftTag);
  if (left >= 0)
    reqs[n++] = comm.isend(std::span<const double>(&cells[1], 1), left, kLeftTag);
  if (right < nranks)
    reqs[n++] = comm.isend(std::span<const double>(&cells[last - 1], 1), right, kRightTag);
  comm.waitall(std::span<simmpi::Request>(reqs.data(), n));
}

/// 3-point Jacobi update over the interior; returns the local residual.
double apply_stencil(std::vector<double>& cells, std::vector<double>& next) {
  TraceScope scope("applyStencil");
  double residual = 0.0;
  for (std::size_t i = 1; i + 1 < cells.size(); ++i) {
    next[i] = 0.5 * cells[i] + 0.25 * (cells[i - 1] + cells[i + 1]);
    residual += std::abs(next[i] - cells[i]);
  }
  for (std::size_t i = 1; i + 1 < cells.size(); ++i) cells[i] = next[i];
  return residual;
}

}  // namespace

void stencil_rank(simmpi::Comm& comm, const StencilConfig& config) {
  TraceScope scope("main");
  comm.init();
  const int rank = comm.comm_rank();
  (void)comm.comm_size();

  // Interior cells plus one ghost per side.
  util::Xoshiro256 rng(config.seed + static_cast<std::uint64_t>(rank) * 0x9E37u);
  std::vector<double> cells(static_cast<std::size_t>(config.cells_per_rank) + 2, 0.0);
  for (auto& c : cells) c = rng.uniform();
  std::vector<double> next(cells.size(), 0.0);

  double residual = 0.0;
  for (int iter = 0; iter < config.iterations; ++iter) {
    if (!simfault::hooks::begin_iteration(rank, iter)) continue;  // SkipIter plans
    TraceScope step("stencilStep");
    exchange_halos(comm, cells, iter);
    residual = apply_stencil(cells, next);
    if (config.residual_every > 0 && (iter + 1) % config.residual_every == 0)
      residual = comm.allreduce_value(residual, simmpi::ReduceOp::Sum);
  }

  if (config.residual_sink != nullptr)
    (*config.residual_sink)[static_cast<std::size_t>(rank)] = residual;
  comm.finalize();
}

simmpi::RunReport run_stencil(const StencilConfig& config, const simmpi::WorldConfig& world) {
  simmpi::WorldConfig wc = world;
  wc.nranks = config.nranks;
  return simmpi::run_world(wc, [&config](simmpi::Comm& comm) { stencil_rank(comm, config); });
}

}  // namespace difftrace::apps
