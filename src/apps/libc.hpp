// Traced libc-style helpers. Pin sees the miniapps' calls into libc as
// @plt-bracketed system-library functions; these wrappers reproduce that in
// the trace (Table I's "System/Memory" and "System/String" filter targets)
// while performing the real operation.
#pragma once

#include <cstddef>
#include <cstring>

#include "instrument/tracer.hpp"

namespace difftrace::apps {

inline void traced_memcpy(void* dst, const void* src, std::size_t n) {
  instrument::TraceScope scope("memcpy", trace::Image::SystemLib, /*plt=*/true);
  std::memcpy(dst, src, n);
}

inline void traced_memset(void* dst, int value, std::size_t n) {
  instrument::TraceScope scope("memset", trace::Image::SystemLib, /*plt=*/true);
  std::memset(dst, value, n);
}

[[nodiscard]] inline std::size_t traced_strlen(const char* s) {
  instrument::TraceScope scope("strlen", trace::Image::SystemLib, /*plt=*/true);
  return std::strlen(s);
}

/// Allocation-shaped trace entry (the storage itself is the caller's vector).
inline void traced_alloc_note(std::size_t bytes) {
  instrument::TraceScope scope("malloc", trace::Image::SystemLib, /*plt=*/true);
  (void)bytes;
}

inline void traced_free_note() {
  instrument::TraceScope scope("free", trace::Image::SystemLib, /*plt=*/true);
}

}  // namespace difftrace::apps
