#include "apps/ring.hpp"

#include <span>
#include <stdexcept>

#include "instrument/tracer.hpp"
#include "simfault/injector.hpp"

namespace difftrace::apps {

namespace {

using instrument::TraceScope;

constexpr int kTokenTag = 41;

std::int64_t bump_token(std::int64_t token) {
  TraceScope scope("bumpToken");
  return token + 1;
}

}  // namespace

void ring_rank(simmpi::Comm& comm, const RingConfig& config) {
  TraceScope scope("main");
  comm.init();
  const int rank = comm.comm_rank();
  const int nranks = comm.comm_size();
  if (nranks < 2) throw std::invalid_argument("ring: needs nranks >= 2");
  const int next = (rank + 1) % nranks;
  const int prev = (rank + nranks - 1) % nranks;

  std::int64_t token = static_cast<std::int64_t>(config.seed % 1000);
  for (int lap = 0; lap < config.laps; ++lap) {
    if (!simfault::hooks::begin_iteration(rank, lap)) continue;  // SkipIter plans
    TraceScope pass("passToken");
    if (rank == 0) {
      token = bump_token(token);
      comm.send_value(token, next, kTokenTag);
      token = comm.recv_value<std::int64_t>(prev, kTokenTag);
    } else {
      token = comm.recv_value<std::int64_t>(prev, kTokenTag);
      token = bump_token(token);
      comm.send_value(token, next, kTokenTag);
    }
  }

  comm.bcast(std::span<std::int64_t>(&token, 1), 0);
  if (config.token_sink != nullptr)
    (*config.token_sink)[static_cast<std::size_t>(rank)] = token;
  comm.finalize();
}

simmpi::RunReport run_ring(const RingConfig& config, const simmpi::WorldConfig& world) {
  simmpi::WorldConfig wc = world;
  wc.nranks = config.nranks;
  return simmpi::run_world(wc, [&config](simmpi::Comm& comm) { ring_rank(comm, config); });
}

}  // namespace difftrace::apps
