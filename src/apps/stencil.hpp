// Stencil — 1-D Jacobi halo exchange, the classic bulk-synchronous shape.
//
// Each rank owns a block of cells with one ghost cell per side. Every
// iteration: post MPI_Irecv for both halos, MPI_Isend both boundary cells,
// MPI_Waitall, apply the 3-point stencil, and every `residual_every`
// iterations MPI_Allreduce(SUM) the local residual. The per-trace loop body
// is [Irecv, Irecv, Isend, Isend, Waitall, (Allreduce)] — a nonblocking
// pattern none of the paper's three apps exercises.
//
// Fully deterministic: fixed iteration count, no wildcard receives, no
// wall-clock pacing — a given (seed, plan) yields byte-identical traces.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/faults.hpp"
#include "simmpi/runtime.hpp"

namespace difftrace::apps {

struct StencilConfig {
  int nranks = 4;
  int cells_per_rank = 32;
  int iterations = 8;
  int residual_every = 4;  // Allreduce cadence (0 = never)
  std::uint64_t seed = 42;

  /// Optional per-rank sink for the final local residual (index = rank).
  std::vector<double>* residual_sink = nullptr;
};

void stencil_rank(simmpi::Comm& comm, const StencilConfig& config);

[[nodiscard]] simmpi::RunReport run_stencil(const StencilConfig& config,
                                            const simmpi::WorldConfig& world);

}  // namespace difftrace::apps
