// LULESH proxy — the §V workload.
//
// A Lagrangian shock-hydrodynamics *proxy* reproducing the real LULESH 2.0
// call tree (LagrangeLeapFrog → LagrangeNodal/LagrangeElements → the force,
// kinematics, artificial-viscosity, EOS and time-constraint kernels), with:
//   * 1-D domain decomposition and halo exchange between neighbouring ranks
//     via MPI_Irecv/MPI_Isend/MPI_Wait (the Comm* functions of LULESH),
//   * OpenMP-style element loops (simomp parallel regions) inside the three
//     big kernels, each element invoking small traced math kernels — the
//     repetitive patterns NLR folds,
//   * a per-cycle MPI_Allreduce(MIN) for the time increment.
// The physics is simplified (the arrays evolve through cheap smoothing
// updates); what §V measures — distinct functions, calls per trace,
// compressed size, NLR reduction, and the progress-truncation fault — only
// depends on the call structure and the message pattern, which match.
//
// Supported fault: SkipLagrangeLeapFrog (process `proc` never advances the
// domain, §V's injected bug).
#pragma once

#include <cstdint>
#include <vector>

#include "apps/faults.hpp"
#include "simmpi/runtime.hpp"

namespace difftrace::apps {

struct LuleshConfig {
  int nranks = 8;
  int omp_threads = 4;       // element-loop team size (including thread 0)
  int elements_per_rank = 64;
  int regions = 4;           // material regions (per-region EOS loops)
  int cycles = 3;            // single-cycle in the paper; more cycles = richer loops
  std::uint64_t seed = 11;

  FaultSpec fault;

  /// Optional per-rank sink for the final origin energy (index = rank).
  std::vector<double>* energy_sink = nullptr;
};

void lulesh_rank(simmpi::Comm& comm, const LuleshConfig& config);

[[nodiscard]] simmpi::RunReport run_lulesh(const LuleshConfig& config,
                                           const simmpi::WorldConfig& world);

}  // namespace difftrace::apps
