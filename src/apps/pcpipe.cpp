#include "apps/pcpipe.hpp"

#include <cmath>
#include <span>
#include <stdexcept>

#include "instrument/tracer.hpp"
#include "simfault/injector.hpp"
#include "util/prng.hpp"

namespace difftrace::apps {

namespace {

using instrument::TraceScope;

constexpr int kItemTag = 31;

double produce(util::Xoshiro256& rng, std::vector<double>& item) {
  TraceScope scope("produce");
  double sum = 0.0;
  for (auto& v : item) {
    v = rng.uniform();
    sum += v;
  }
  return sum;
}

double transform(std::vector<double>& item, int stage) {
  TraceScope scope("transform");
  double sum = 0.0;
  for (auto& v : item) {
    v = std::fma(v, 0.75, 0.125 * static_cast<double>(stage + 1));
    sum += v;
  }
  return sum;
}

double consume(const std::vector<double>& item) {
  TraceScope scope("consume");
  double sum = 0.0;
  for (const double v : item) sum += v;
  return sum;
}

}  // namespace

void pcpipe_rank(simmpi::Comm& comm, const PcpipeConfig& config) {
  TraceScope scope("main");
  comm.init();
  const int rank = comm.comm_rank();
  const int nranks = comm.comm_size();
  if (nranks < 2) throw std::invalid_argument("pcpipe: needs nranks >= 2");

  util::Xoshiro256 rng(config.seed);
  std::vector<double> item(static_cast<std::size_t>(config.item_size), 0.0);
  double checksum = 0.0;

  for (int i = 0; i < config.items; ++i) {
    // A skipped iteration on any stage starves the rest of the chain for
    // this item — the realistic outcome of a lost pipeline element.
    if (!simfault::hooks::begin_iteration(rank, i)) continue;
    if (rank == 0) {
      checksum += produce(rng, item);
      comm.send(std::span<const double>(item), rank + 1, kItemTag);
    } else if (rank < nranks - 1) {
      comm.recv(std::span<double>(item), rank - 1, kItemTag);
      checksum += transform(item, rank);
      comm.send(std::span<const double>(item), rank + 1, kItemTag);
    } else {
      comm.recv(std::span<double>(item), rank - 1, kItemTag);
      checksum += consume(item);
    }
  }

  const double global = comm.allreduce_value(checksum, simmpi::ReduceOp::Sum);
  if (config.checksum_sink != nullptr)
    (*config.checksum_sink)[static_cast<std::size_t>(rank)] = global;
  comm.finalize();
}

simmpi::RunReport run_pcpipe(const PcpipeConfig& config, const simmpi::WorldConfig& world) {
  simmpi::WorldConfig wc = world;
  wc.nranks = config.nranks;
  return simmpi::run_world(wc, [&config](simmpi::Comm& comm) { pcpipe_rank(comm, config); });
}

}  // namespace difftrace::apps
