// PCPipe — a producer/consumer pipeline across ranks.
//
// Rank 0 produces `items` work items; each middle rank receives an item from
// its left neighbour, transforms it, and forwards it right; the last rank
// consumes. After the stream drains, all ranks MPI_Allreduce(SUM) their
// stage checksums. Per-rank loop bodies are [produce, Send] at the head,
// [Recv, transform, Send] in the middle, and [Recv, consume] at the tail —
// a chain topology where every rank's trace differs by position.
//
// Deterministic: the item count is global and fixed, messages flow along a
// single edge per stage (no wildcard receives), and transforms are pure.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/faults.hpp"
#include "simmpi/runtime.hpp"

namespace difftrace::apps {

struct PcpipeConfig {
  int nranks = 4;  // pipeline stages; needs nranks >= 2
  int items = 10;
  int item_size = 48;  // payload length (doubles)
  std::uint64_t seed = 42;

  /// Optional per-rank sink for the global checksum (index = rank).
  std::vector<double>* checksum_sink = nullptr;
};

void pcpipe_rank(simmpi::Comm& comm, const PcpipeConfig& config);

[[nodiscard]] simmpi::RunReport run_pcpipe(const PcpipeConfig& config,
                                           const simmpi::WorldConfig& world);

}  // namespace difftrace::apps
