// Fault-injection vocabulary for the miniapps — the paper's planted bugs.
//
//   SwapBug              §II-G: rank `proc` swaps the MPI_Recv/MPI_Send
//                        order after iteration `iteration` of the odd/even
//                        exchange loop (latent Send‖Send deadlock; completes
//                        under eager buffering).
//   DlBug                §II-G: an actual deadlock at the same location —
//                        the rank posts a receive nobody will ever match.
//   OmpNoCritical        §IV-B: worker `thread` of process `proc` updates
//                        the shared champion WITHOUT the critical section.
//   WrongCollectiveSize  §IV-C: process `proc` passes a wrong count to
//                        MPI_Allreduce → whole-job hang.
//   WrongCollectiveOp    §IV-D: process `proc` reduces with MPI_MAX instead
//                        of MPI_MIN → silent semantic bug.
//   SkipLagrangeLeapFrog §V: process `proc` never calls LagrangeLeapFrog →
//                        neighbours starve on halo messages.
#pragma once

#include <string>
#include <string_view>

#include "simfault/plan.hpp"

namespace difftrace::apps {

enum class FaultType {
  None,
  SwapBug,
  DlBug,
  OmpNoCritical,
  WrongCollectiveSize,
  WrongCollectiveOp,
  SkipLagrangeLeapFrog,
};

[[nodiscard]] constexpr std::string_view fault_name(FaultType t) noexcept {
  switch (t) {
    case FaultType::None: return "none";
    case FaultType::SwapBug: return "swapBug";
    case FaultType::DlBug: return "dlBug";
    case FaultType::OmpNoCritical: return "ompNoCritical";
    case FaultType::WrongCollectiveSize: return "wrongCollectiveSize";
    case FaultType::WrongCollectiveOp: return "wrongCollectiveOp";
    case FaultType::SkipLagrangeLeapFrog: return "skipLagrangeLeapFrog";
  }
  return "unknown";
}

struct FaultSpec {
  FaultType type = FaultType::None;
  int proc = -1;       // target process rank
  int thread = -1;     // target worker thread (OmpNoCritical)
  int iteration = -1;  // loop iteration at which the fault arms (SwapBug/DlBug)

  [[nodiscard]] bool targets(int p) const noexcept { return type != FaultType::None && proc == p; }
  [[nodiscard]] bool targets(int p, int t) const noexcept { return targets(p) && thread == t; }
};

// FaultSpec <-> simfault::FaultPlan bridge. The six paper bugs are app-side
// fault *classes* in the unified plan vocabulary (their `fault_name` strings
// are the plan class names), so one spec grammar, one validator, and one
// matrix driver cover hand-planted and runtime-injected faults alike.

/// Plan equivalent of a legacy spec (class + rank/thread/iteration).
[[nodiscard]] simfault::FaultPlan to_fault_plan(const FaultSpec& spec);

/// Legacy-spec equivalent of an app-side plan. Throws simfault::PlanError
/// for runtime classes — those are armed on the injector, not on the app.
[[nodiscard]] FaultSpec to_fault_spec(const simfault::FaultPlan& plan);

}  // namespace difftrace::apps
