// Odd/even transposition sort — the paper's walkthrough miniapp (Figure 2).
//
// Each rank holds a sorted block; the sort runs `nranks` phases. In even
// phases even↔odd+1 pairs exchange blocks, in odd phases odd↔even+1 pairs.
// Per Figure 2, even ranks Send-then-Recv and odd ranks Recv-then-Send, so
// the per-trace loop bodies are [MPI_Send, MPI_Recv] for even ranks and
// [MPI_Recv, MPI_Send] for odd ranks — the paper's L0 and L1. The first and
// last rank sit out half the phases (Table III's halved iteration counts).
//
// Supported faults: SwapBug, DlBug (see faults.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "apps/faults.hpp"
#include "simmpi/runtime.hpp"

namespace difftrace::apps {

struct OddEvenConfig {
  int nranks = 4;
  int elements_per_rank = 16;
  std::uint64_t seed = 42;
  FaultSpec fault;

  /// When set, each rank deposits its final block here (index = rank) so
  /// tests can verify global sortedness. Caller must size it to nranks.
  std::vector<std::vector<std::int32_t>>* result_sink = nullptr;
};

/// The rank program (the `main()` of Figure 2). Emits main-image scopes
/// "main", "oddEvenSort", "findPtr" plus the MPI API calls.
void odd_even_rank(simmpi::Comm& comm, const OddEvenConfig& config);

/// Convenience: run the whole job.
[[nodiscard]] simmpi::RunReport run_odd_even(const OddEvenConfig& config,
                                             const simmpi::WorldConfig& world);

}  // namespace difftrace::apps
