#include "apps/oddeven.hpp"

#include <algorithm>
#include <span>

#include "instrument/tracer.hpp"
#include "simfault/injector.hpp"
#include "util/prng.hpp"

namespace difftrace::apps {

namespace {

using instrument::TraceScope;

/// Partner of `rank` in phase `i`, or -1 when the rank sits out (the traced
/// findPtr() of Figure 2).
int find_ptr(int i, int rank, int nranks) {
  TraceScope scope("findPtr");
  int partner;
  if (i % 2 == 0)
    partner = rank % 2 == 0 ? rank + 1 : rank - 1;
  else
    partner = rank % 2 == 0 ? rank - 1 : rank + 1;
  if (partner < 0 || partner >= nranks) return -1;
  return partner;
}

/// After an exchange the lower rank keeps the smaller half, the upper rank
/// the larger half.
void keep_half(std::vector<std::int32_t>& mine, const std::vector<std::int32_t>& theirs, bool keep_low) {
  std::vector<std::int32_t> merged;
  merged.reserve(mine.size() + theirs.size());
  std::merge(mine.begin(), mine.end(), theirs.begin(), theirs.end(), std::back_inserter(merged));
  if (keep_low)
    mine.assign(merged.begin(), merged.begin() + static_cast<std::ptrdiff_t>(mine.size()));
  else
    mine.assign(merged.end() - static_cast<std::ptrdiff_t>(mine.size()), merged.end());
}

void odd_even_sort(simmpi::Comm& comm, std::vector<std::int32_t>& data, const OddEvenConfig& config) {
  TraceScope scope("oddEvenSort");
  const int rank = comm.rank();
  const int nranks = comm.size();
  std::vector<std::int32_t> partner_data(data.size());

  for (int i = 0; i < nranks; ++i) {
    if (!simfault::hooks::begin_iteration(rank, i)) continue;  // SkipIter plans
    const int partner = find_ptr(i, rank, nranks);
    if (partner < 0) continue;

    const bool fault_here = config.fault.targets(rank) && i >= config.fault.iteration;
    if (fault_here && config.fault.type == FaultType::DlBug) {
      // An actual deadlock: post a receive with a tag no one ever sends.
      static constexpr int kDeadTag = 0x7FFF;
      comm.recv(std::span<std::int32_t>(partner_data), partner, kDeadTag);
      continue;  // unreachable: the recv blocks until the watchdog aborts
    }

    const bool send_first_normally = rank % 2 == 0;
    const bool send_first =
        fault_here && config.fault.type == FaultType::SwapBug ? !send_first_normally : send_first_normally;

    if (send_first) {
      comm.send(std::span<const std::int32_t>(data), partner, i);
      comm.recv(std::span<std::int32_t>(partner_data), partner, i);
    } else {
      comm.recv(std::span<std::int32_t>(partner_data), partner, i);
      comm.send(std::span<const std::int32_t>(data), partner, i);
    }
    keep_half(data, partner_data, rank < partner);
  }
}

}  // namespace

void odd_even_rank(simmpi::Comm& comm, const OddEvenConfig& config) {
  TraceScope scope("main");
  comm.init();
  const int rank = comm.comm_rank();
  (void)comm.comm_size();

  // Initialize the local block with deterministic pseudo-random data.
  util::Xoshiro256 rng(config.seed + static_cast<std::uint64_t>(rank) * 0x9E37u);
  std::vector<std::int32_t> data(static_cast<std::size_t>(config.elements_per_rank));
  for (auto& v : data) v = static_cast<std::int32_t>(rng.below(1'000'000));
  std::sort(data.begin(), data.end());

  odd_even_sort(comm, data, config);

  if (config.result_sink != nullptr) (*config.result_sink)[static_cast<std::size_t>(rank)] = data;
  comm.finalize();
}

simmpi::RunReport run_odd_even(const OddEvenConfig& config, const simmpi::WorldConfig& world) {
  simmpi::WorldConfig wc = world;
  wc.nranks = config.nranks;
  return simmpi::run_world(wc, [&config](simmpi::Comm& comm) { odd_even_rank(comm, config); });
}

}  // namespace difftrace::apps
