#include "apps/catalog.hpp"

#include <algorithm>
#include <memory>
#include <string>

#include "apps/ilcs.hpp"
#include "apps/lulesh.hpp"
#include "apps/mwq.hpp"
#include "apps/oddeven.hpp"
#include "apps/pcpipe.hpp"
#include "apps/redtree.hpp"
#include "apps/ring.hpp"
#include "apps/stencil.hpp"

namespace difftrace::apps {

namespace {

using simfault::AppShape;
using simfault::FaultClass;

std::vector<AppInfo> build_catalog() {
  std::vector<AppInfo> catalog;

  catalog.push_back(AppInfo{
      .name = "oddeven",
      .summary = "odd/even transposition sort (Figure 2 walkthrough)",
      .deterministic = true,
      .hybrid = false,
      .app_faults = {FaultClass::SwapBug, FaultClass::DlBug},
      .defaults = {.nranks = 4, .threads = 1, .iterations = 4, .size = 16, .seed = 42, .plan = {}},
      .shape = [](const AppParams& p) { return AppShape{p.nranks, 1, p.nranks}; },
      .build =
          [](const AppParams& p, const FaultSpec& fault) -> simmpi::RankFn {
        auto cfg = std::make_shared<OddEvenConfig>();
        cfg->nranks = p.nranks;
        cfg->elements_per_rank = p.size;
        cfg->seed = p.seed;
        cfg->fault = fault;
        return [cfg](simmpi::Comm& comm) { odd_even_rank(comm, *cfg); };
      },
  });

  catalog.push_back(AppInfo{
      .name = "ilcs",
      .summary = "master/worker iterative local search (§IV case study)",
      // Wall-clock pacing and racing workers make trace bytes run-dependent.
      .deterministic = false,
      .hybrid = true,
      .app_faults = {FaultClass::OmpNoCritical, FaultClass::WrongCollectiveSize,
                     FaultClass::WrongCollectiveOp},
      .defaults = {.nranks = 4, .threads = 2, .iterations = 6, .size = 12, .seed = 42, .plan = {}},
      .shape = [](const AppParams& p) { return AppShape{p.nranks, p.threads + 1, p.iterations}; },
      .build =
          [](const AppParams& p, const FaultSpec& fault) -> simmpi::RankFn {
        auto cfg = std::make_shared<IlcsConfig>();
        cfg->nranks = p.nranks;
        cfg->workers = p.threads;
        cfg->ncities = static_cast<std::size_t>(p.size);
        cfg->max_rounds = p.iterations;
        cfg->seed = p.seed;
        cfg->fault = fault;
        return [cfg](simmpi::Comm& comm) { ilcs_rank(comm, *cfg); };
      },
  });

  catalog.push_back(AppInfo{
      .name = "lulesh",
      .summary = "Lagrangian shock-hydro proxy with halo exchange (§V)",
      .deterministic = true,
      .hybrid = true,
      .app_faults = {FaultClass::SkipLagrangeLeapFrog},
      .defaults = {.nranks = 4, .threads = 2, .iterations = 2, .size = 16, .seed = 42, .plan = {}},
      .shape = [](const AppParams& p) { return AppShape{p.nranks, p.threads, p.iterations}; },
      .build =
          [](const AppParams& p, const FaultSpec& fault) -> simmpi::RankFn {
        auto cfg = std::make_shared<LuleshConfig>();
        cfg->nranks = p.nranks;
        cfg->omp_threads = p.threads;
        cfg->elements_per_rank = p.size;
        cfg->cycles = p.iterations;
        cfg->seed = p.seed;
        cfg->fault = fault;
        return [cfg](simmpi::Comm& comm) { lulesh_rank(comm, *cfg); };
      },
  });

  catalog.push_back(AppInfo{
      .name = "stencil",
      .summary = "1-D Jacobi halo exchange (Irecv/Isend/Waitall + Allreduce)",
      .deterministic = true,
      .hybrid = false,
      .app_faults = {},
      .defaults = {.nranks = 4, .threads = 1, .iterations = 8, .size = 32, .seed = 42, .plan = {}},
      .shape = [](const AppParams& p) { return AppShape{p.nranks, 1, p.iterations}; },
      .build =
          [](const AppParams& p, const FaultSpec&) -> simmpi::RankFn {
        auto cfg = std::make_shared<StencilConfig>();
        cfg->nranks = p.nranks;
        cfg->cells_per_rank = p.size;
        cfg->iterations = p.iterations;
        cfg->seed = p.seed;
        return [cfg](simmpi::Comm& comm) { stencil_rank(comm, *cfg); };
      },
  });

  catalog.push_back(AppInfo{
      .name = "mwq",
      .summary = "master/worker task queue (send burst + recv burst star)",
      .deterministic = true,
      .hybrid = false,
      .app_faults = {},
      .defaults = {.nranks = 4, .threads = 1, .iterations = 12, .size = 64, .seed = 42, .plan = {}},
      .shape = [](const AppParams& p) { return AppShape{p.nranks, 1, p.iterations}; },
      .build =
          [](const AppParams& p, const FaultSpec&) -> simmpi::RankFn {
        auto cfg = std::make_shared<MwqConfig>();
        cfg->nranks = p.nranks;
        cfg->tasks = p.iterations;
        cfg->task_size = p.size;
        cfg->seed = p.seed;
        return [cfg](simmpi::Comm& comm) { mwq_rank(comm, *cfg); };
      },
  });

  catalog.push_back(AppInfo{
      .name = "pcpipe",
      .summary = "producer/consumer pipeline chain across ranks",
      .deterministic = true,
      .hybrid = false,
      .app_faults = {},
      .defaults = {.nranks = 4, .threads = 1, .iterations = 10, .size = 48, .seed = 42, .plan = {}},
      .shape = [](const AppParams& p) { return AppShape{p.nranks, 1, p.iterations}; },
      .build =
          [](const AppParams& p, const FaultSpec&) -> simmpi::RankFn {
        auto cfg = std::make_shared<PcpipeConfig>();
        cfg->nranks = p.nranks;
        cfg->items = p.iterations;
        cfg->item_size = p.size;
        cfg->seed = p.seed;
        return [cfg](simmpi::Comm& comm) { pcpipe_rank(comm, *cfg); };
      },
  });

  catalog.push_back(AppInfo{
      .name = "ring",
      .summary = "token passing around a rank ring (single-edge cycle)",
      .deterministic = true,
      .hybrid = false,
      .app_faults = {},
      .defaults = {.nranks = 4, .threads = 1, .iterations = 3, .size = 1, .seed = 42, .plan = {}},
      .shape = [](const AppParams& p) { return AppShape{p.nranks, 1, p.iterations}; },
      .build =
          [](const AppParams& p, const FaultSpec&) -> simmpi::RankFn {
        auto cfg = std::make_shared<RingConfig>();
        cfg->nranks = p.nranks;
        cfg->laps = p.iterations;
        cfg->seed = p.seed;
        return [cfg](simmpi::Comm& comm) { ring_rank(comm, *cfg); };
      },
  });

  catalog.push_back(AppInfo{
      .name = "redtree",
      .summary = "hand-rolled binomial reduction tree over Send/Recv",
      .deterministic = true,
      .hybrid = false,
      .app_faults = {},
      .defaults = {.nranks = 4, .threads = 1, .iterations = 3, .size = 32, .seed = 42, .plan = {}},
      .shape = [](const AppParams& p) { return AppShape{p.nranks, 1, p.iterations}; },
      .build =
          [](const AppParams& p, const FaultSpec&) -> simmpi::RankFn {
        auto cfg = std::make_shared<RedtreeConfig>();
        cfg->nranks = p.nranks;
        cfg->rounds = p.iterations;
        cfg->work_size = p.size;
        cfg->seed = p.seed;
        return [cfg](simmpi::Comm& comm) { redtree_rank(comm, *cfg); };
      },
  });

  return catalog;
}

}  // namespace

const std::vector<AppInfo>& app_catalog() {
  static const std::vector<AppInfo> catalog = build_catalog();
  return catalog;
}

const AppInfo* find_app(std::string_view name) {
  for (const auto& app : app_catalog())
    if (app.name == name) return &app;
  return nullptr;
}

bool app_supports(const AppInfo& app, simfault::FaultClass cls) {
  if (cls == simfault::FaultClass::None || simfault::is_runtime_class(cls)) return true;
  return std::find(app.app_faults.begin(), app.app_faults.end(), cls) != app.app_faults.end();
}

AppParams resolve_params(const AppInfo& app, AppParams params) {
  if (params.nranks <= 0) params.nranks = app.defaults.nranks;
  if (params.threads <= 0) params.threads = app.defaults.threads;
  if (params.iterations <= 0) params.iterations = app.defaults.iterations;
  if (params.size <= 0) params.size = app.defaults.size;
  return params;
}

simmpi::RankFn make_rank_fn(const AppInfo& app, const AppParams& params) {
  const AppParams p = resolve_params(app, params);
  simfault::validate_plan(p.plan, app.shape(p));
  FaultSpec fault;
  if (p.plan.enabled() && !simfault::is_runtime_class(p.plan.cls)) {
    if (!app_supports(app, p.plan.cls))
      throw simfault::PlanError(
          "class", std::string(app.name) + " does not implement app-side fault '" +
                       std::string(simfault::fault_class_name(p.plan.cls)) + "'");
    fault = to_fault_spec(p.plan);
  }
  return app.build(p, fault);
}

}  // namespace difftrace::apps
