// ILCS — the paper's §IV case study: a scalable master/worker framework for
// iterative local searches [23], reimplemented from Listing 1.
//
// Per process: an OpenMP-style parallel region of `workers + 1` threads.
// Thread 0 (master) repeatedly MPI_Allreduce's the local champion and its
// owner rank, then MPI_Bcast's the champion tour from the owning process.
// Threads 1..workers loop on CPU_Exec (TSP 2-opt), updating the per-thread
// champion under a named critical section via memcpy — the exact structure
// whose perturbations Tables VI-VIII rank.
//
// Supported faults: OmpNoCritical, WrongCollectiveSize, WrongCollectiveOp.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "apps/faults.hpp"
#include "simmpi/runtime.hpp"

namespace difftrace::apps {

struct IlcsConfig {
  int nranks = 8;
  int workers = 4;        // lCPUs: worker threads per process (+1 master)
  std::size_t ncities = 20;
  /// Termination: stop after `patience` champion-exchange rounds without an
  /// improvement in the broadcast champion (the listing's no-change
  /// threshold), hard-capped at `max_rounds`. Decisions are made from the
  /// broadcast value, which all ranks observe identically, so loop counts
  /// stay consistent even under the wrong-op fault.
  int patience = 2;
  int max_rounds = 24;
  /// Wall-clock pause per master round, standing in for the network latency
  /// of a real cluster's champion exchange (keeps the in-process collectives
  /// from outrunning the workers).
  std::chrono::microseconds round_pacing{500};
  std::uint64_t seed = 7;

  FaultSpec fault;

  /// Optional per-rank sink for the final global champion (index = rank);
  /// size to nranks before running.
  std::vector<double>* champion_sink = nullptr;
};

void ilcs_rank(simmpi::Comm& comm, const IlcsConfig& config);

[[nodiscard]] simmpi::RunReport run_ilcs(const IlcsConfig& config, const simmpi::WorldConfig& world);

}  // namespace difftrace::apps
