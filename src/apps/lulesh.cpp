#include "apps/lulesh.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <span>

#include "apps/libc.hpp"
#include "instrument/tracer.hpp"
#include "simfault/injector.hpp"
#include "simomp/team.hpp"
#include "util/prng.hpp"

namespace difftrace::apps {

namespace {

using instrument::TraceScope;

/// The mesh slab owned by one rank.
struct Domain {
  std::vector<double> x;       // nodal positions
  std::vector<double> xd;      // nodal velocities
  std::vector<double> xdd;     // nodal accelerations
  std::vector<double> force;   // nodal forces
  std::vector<double> e;       // element energy
  std::vector<double> p;       // element pressure
  std::vector<double> q;       // element artificial viscosity
  std::vector<double> vol;     // element relative volume
  std::vector<double> ss;      // element sound speed
  std::vector<int> region;     // element material region
  double dt = 1e-3;
  double time = 0.0;
};

// --- domain setup (the Domain constructor's call tree in real LULESH) -------

void allocate_node_persistent(Domain& d, std::size_t n) {
  TraceScope scope("AllocateNodePersistent");
  traced_alloc_note((n + 1) * 4 * sizeof(double));
  d.x.resize(n + 1);
  d.xd.assign(n + 1, 0.0);
  d.xdd.assign(n + 1, 0.0);
  d.force.assign(n + 1, 0.0);
}

void allocate_elem_persistent(Domain& d, std::size_t n) {
  TraceScope scope("AllocateElemPersistent");
  traced_alloc_note(n * 6 * sizeof(double));
  d.e.assign(n, 0.0);
  d.p.assign(n, 0.0);
  d.q.assign(n, 0.0);
  d.vol.assign(n, 1.0);
  d.ss.assign(n, 0.0);
  d.region.resize(n);
}

void build_mesh(Domain& d, int rank, std::size_t n) {
  TraceScope scope("BuildMesh");
  for (std::size_t i = 0; i <= n; ++i)
    d.x[i] = static_cast<double>(rank) + static_cast<double>(i) / static_cast<double>(n);
}

void setup_thread_support_structures(const LuleshConfig& config) {
  TraceScope scope("SetupThreadSupportStructures");
  traced_alloc_note(static_cast<std::size_t>(config.omp_threads) * sizeof(void*));
}

void create_region_index_sets(Domain& d, const LuleshConfig& config, util::Xoshiro256& rng) {
  TraceScope scope("CreateRegionIndexSets");
  for (auto& r : d.region) r = static_cast<int>(rng.below(static_cast<std::uint64_t>(config.regions)));
}

void setup_symmetry_planes(Domain& d, int rank) {
  TraceScope scope("SetupSymmetryPlanes");
  if (rank == 0) d.xd.front() = 0.0;
}

void setup_element_connectivities(std::size_t n) {
  TraceScope scope("SetupElementConnectivities");
  traced_alloc_note(n * 2 * sizeof(int));
}

void setup_boundary_conditions(std::size_t n) {
  TraceScope scope("SetupBoundaryConditions");
  traced_alloc_note(n * sizeof(int));
}

void setup_comm_buffers(int rank, int size) {
  TraceScope scope("SetupCommBuffers");
  (void)rank;
  (void)size;
  traced_alloc_note(2 * sizeof(double));
}

Domain allocate_domain(const LuleshConfig& config, int rank, int size) {
  TraceScope scope("Domain_Build");
  const auto n = static_cast<std::size_t>(config.elements_per_rank);
  Domain d;
  util::Xoshiro256 rng(config.seed + static_cast<std::uint64_t>(rank) * 0x51u);
  allocate_node_persistent(d, n);
  allocate_elem_persistent(d, n);
  build_mesh(d, rank, n);
  setup_thread_support_structures(config);
  create_region_index_sets(d, config, rng);
  setup_symmetry_planes(d, rank);
  setup_element_connectivities(n);
  setup_boundary_conditions(n);
  setup_comm_buffers(rank, size);
  // Sedov-style point deposit at the global origin.
  if (rank == 0) d.e[0] = 3.948746e+7;
  return d;
}

// --- tiny traced element kernels (the leaves of the LULESH call tree) -------

/// libm entry points Pin would see as system-library calls.
double traced_cbrt(double v) {
  instrument::TraceScope scope("cbrt", trace::Image::SystemLib, /*plt=*/true);
  return std::cbrt(v);
}

double traced_fabs(double v) {
  instrument::TraceScope scope("fabs", trace::Image::SystemLib, /*plt=*/true);
  return std::fabs(v);
}

double calc_elem_volume(double a, double b) {
  TraceScope scope("CalcElemVolume");
  return std::max(1e-12, b - a);
}

void collect_domain_nodes_to_elem_nodes(const Domain& d, std::size_t i, double out[2]) {
  TraceScope scope("CollectDomainNodesToElemNodes");
  out[0] = d.x[i];
  out[1] = d.x[i + 1];
}

double sum_elem_face_normal(double a, double b) {
  TraceScope scope("SumElemFaceNormal");
  return 0.5 * (a + b);
}

double calc_elem_node_normals(double a, double b) {
  TraceScope scope("CalcElemNodeNormals");
  return sum_elem_face_normal(a, b);
}

double calc_elem_shape_function_derivatives(double volume) {
  TraceScope scope("CalcElemShapeFunctionDerivatives");
  return 1.0 / volume;
}

double sum_elem_stresses_to_node_forces(double p, double q, double grad) {
  TraceScope scope("SumElemStressesToNodeForces");
  return -(p + q) * grad;
}

double volu_der(double a, double b) {
  TraceScope scope("VoluDer");
  return b - a;
}

double calc_elem_volume_derivative(const Domain& d, std::size_t i) {
  TraceScope scope("CalcElemVolumeDerivative");
  return volu_der(d.x[i], d.x[i + 1]);
}

double calc_elem_fb_hourglass_force(double xd_left, double xd_right) {
  TraceScope scope("CalcElemFBHourglassForce");
  return 0.01 * (xd_left - xd_right);
}

double calc_elem_characteristic_length(double volume) {
  TraceScope scope("CalcElemCharacteristicLength");
  // Real LULESH: characteristic length ~ volume / largest face area; the
  // cube root keeps the same scaling flavour (and exercises libm tracing).
  return traced_cbrt(volume * volume * volume);
}

double calc_elem_velocity_gradient(double xd_left, double xd_right, double length) {
  TraceScope scope("CalcElemVelocityGradient");
  return (xd_right - xd_left) / length;
}

// --- halo exchange (the Comm* functions of LULESH) -----------------------------

/// Exchanges one boundary double with each existing neighbour.
/// recv_left/recv_right receive the neighbour values (untouched at domain
/// boundaries).
void comm_exchange(simmpi::Comm& comm, const char* phase, double send_left, double send_right,
                   double& recv_left, double& recv_right) {
  TraceScope scope(phase);
  const int rank = comm.rank();
  const int size = comm.size();
  const int left = rank - 1;
  const int right = rank + 1;
  constexpr int kHaloTag = 77;

  // CommRecv: post receives first, like LULESH does.
  std::vector<simmpi::Request> recvs;
  {
    TraceScope recv_scope("CommRecv");
    if (left >= 0) recvs.push_back(comm.irecv(std::span<double>(&recv_left, 1), left, kHaloTag));
    if (right < size) recvs.push_back(comm.irecv(std::span<double>(&recv_right, 1), right, kHaloTag));
  }
  {
    TraceScope send_scope("CommSend");
    if (left >= 0) recvs.push_back(comm.isend(std::span<const double>(&send_left, 1), left, kHaloTag));
    if (right < size)
      recvs.push_back(comm.isend(std::span<const double>(&send_right, 1), right, kHaloTag));
  }
  // Real LULESH completes its halo requests with MPI_Waitall.
  comm.waitall(std::span<simmpi::Request>(recvs));
}

// --- the LULESH call tree ---------------------------------------------------------

/// [lo, hi) slice of `count` items for thread `tid` of `threads`.
std::pair<std::size_t, std::size_t> thread_chunk(std::size_t count, int tid, int threads) {
  const std::size_t chunk =
      (count + static_cast<std::size_t>(threads) - 1) / static_cast<std::size_t>(threads);
  const std::size_t lo = static_cast<std::size_t>(tid) * chunk;
  return {std::min(count, lo), std::min(count, lo + chunk)};
}

// Both force kernels are *node*-parallel: each node gathers the
// contributions of its (at most two) adjacent elements, so every array slot
// has exactly one writer in a fixed evaluation order — race-free AND
// bit-deterministic regardless of thread schedule (real LULESH achieves the
// same with its per-node scatter structures).

void integrate_stress_for_elems(const LuleshConfig& config, Domain& d, int rank) {
  TraceScope scope("IntegrateStressForElems");
  const std::size_t nelem = d.e.size();
  simomp::parallel_region(rank, config.omp_threads, [&](int tid) {
    TraceScope worker("IntegrateStressForElems_omp");
    const auto [lo, hi] = thread_chunk(nelem + 1, tid, config.omp_threads);
    const auto stress_of = [&](std::size_t elem) {
      double nodes[2];
      collect_domain_nodes_to_elem_nodes(d, elem, nodes);
      const double volume = calc_elem_volume(nodes[0], nodes[1]);
      const double grad = calc_elem_shape_function_derivatives(volume);
      const double normal = calc_elem_node_normals(nodes[0], nodes[1]);
      return sum_elem_stresses_to_node_forces(d.p[elem], d.q[elem], grad) *
             (normal != 0.0 ? 1.0 : 1.0);
    };
    for (std::size_t node = lo; node < hi; ++node) {
      double sum = 0.0;
      if (node > 0) sum += 0.5 * stress_of(node - 1);
      if (node < nelem) sum += 0.5 * stress_of(node);
      d.force[node] += sum;
    }
  });
}

void calc_hourglass_control_for_elems(const LuleshConfig& config, Domain& d, int rank) {
  TraceScope scope("CalcHourglassControlForElems");
  const std::size_t nelem = d.e.size();
  simomp::parallel_region(rank, config.omp_threads, [&](int tid) {
    TraceScope worker("CalcFBHourglassForceForElems");
    const auto [lo, hi] = thread_chunk(nelem + 1, tid, config.omp_threads);
    const auto hourglass_of = [&](std::size_t elem) {
      const double dvol = calc_elem_volume_derivative(d, elem);
      return calc_elem_fb_hourglass_force(d.xd[elem], d.xd[elem + 1]) * (1.0 + 0.0 * dvol);
    };
    for (std::size_t node = lo; node < hi; ++node) {
      double sum = 0.0;
      if (node > 0) sum += hourglass_of(node - 1);
      if (node < nelem) sum -= hourglass_of(node);
      d.force[node] += sum;
    }
  });
}

void calc_volume_force_for_elems(const LuleshConfig& config, Domain& d, int rank) {
  TraceScope scope("CalcVolumeForceForElems");
  {
    TraceScope init_scope("InitStressTermsForElems");
    for (auto& f : d.force) f = 0.0;
  }
  integrate_stress_for_elems(config, d, rank);
  calc_hourglass_control_for_elems(config, d, rank);
}

void calc_force_for_nodes(simmpi::Comm& comm, const LuleshConfig& config, Domain& d) {
  TraceScope scope("CalcForceForNodes");
  calc_volume_force_for_elems(config, d, comm.rank());
  // CommSBN: sum boundary nodal forces with the neighbours.
  double left_force = 0.0;
  double right_force = 0.0;
  comm_exchange(comm, "CommSBN", d.force.front(), d.force.back(), left_force, right_force);
  d.force.front() += left_force;
  d.force.back() += right_force;
}

void calc_acceleration_for_nodes(Domain& d) {
  TraceScope scope("CalcAccelerationForNodes");
  for (std::size_t i = 0; i < d.xdd.size(); ++i) d.xdd[i] = d.force[i];
}

void apply_acceleration_boundary_conditions(Domain& d, int rank, int size) {
  TraceScope scope("ApplyAccelerationBoundaryConditionsForNodes");
  if (rank == 0) d.xdd.front() = 0.0;
  if (rank == size - 1) d.xdd.back() = 0.0;
}

void calc_velocity_for_nodes(Domain& d) {
  TraceScope scope("CalcVelocityForNodes");
  for (std::size_t i = 0; i < d.xd.size(); ++i) d.xd[i] += d.xdd[i] * d.dt;
}

void calc_position_for_nodes(Domain& d) {
  TraceScope scope("CalcPositionForNodes");
  for (std::size_t i = 0; i < d.x.size(); ++i) d.x[i] += d.xd[i] * d.dt;
}

void lagrange_nodal(simmpi::Comm& comm, const LuleshConfig& config, Domain& d) {
  TraceScope scope("LagrangeNodal");
  calc_force_for_nodes(comm, config, d);
  calc_acceleration_for_nodes(d);
  apply_acceleration_boundary_conditions(d, comm.rank(), comm.size());
  calc_velocity_for_nodes(d);
  calc_position_for_nodes(d);
  // CommSyncPosVel: exchange boundary positions/velocities.
  double left_x = d.x.front();
  double right_x = d.x.back();
  comm_exchange(comm, "CommSyncPosVel", d.x.front(), d.x.back(), left_x, right_x);
  d.x.front() = 0.5 * (d.x.front() + left_x);
  d.x.back() = 0.5 * (d.x.back() + right_x);
}

void calc_kinematics_for_elems(Domain& d) {
  TraceScope scope("CalcKinematicsForElems");
  for (std::size_t i = 0; i < d.vol.size(); ++i) {
    const double volume = calc_elem_volume(d.x[i], d.x[i + 1]);
    const double length = calc_elem_characteristic_length(volume);
    const double grad = calc_elem_velocity_gradient(d.xd[i], d.xd[i + 1], length);
    d.vol[i] = std::max(0.1, std::min(10.0, volume * (1.0 + grad * d.dt)));
  }
}

void calc_lagrange_elements(Domain& d) {
  TraceScope scope("CalcLagrangeElements");
  calc_kinematics_for_elems(d);
}

void calc_monotonic_q_region_for_elems(Domain& d, int region) {
  TraceScope scope("CalcMonotonicQRegionForElems");
  for (std::size_t i = 0; i < d.q.size(); ++i)
    if (d.region[i] == region) d.q[i] = 0.25 * traced_fabs(d.xd[i + 1] - d.xd[i]);
}

void calc_q_for_elems(simmpi::Comm& comm, const LuleshConfig& config, Domain& d) {
  TraceScope scope("CalcQForElems");
  {
    TraceScope grad_scope("CalcMonotonicQGradientsForElems");
    for (std::size_t i = 0; i < d.q.size(); ++i) d.q[i] *= 0.5;
  }
  // CommMonoQ: viscosity gradients at the slab boundary.
  double left_q = 0.0;
  double right_q = 0.0;
  comm_exchange(comm, "CommMonoQ", d.q.front(), d.q.back(), left_q, right_q);
  {
    TraceScope mono_scope("CalcMonotonicQForElems");
    for (int r = 0; r < config.regions; ++r) calc_monotonic_q_region_for_elems(d, r);
  }
}

void calc_energy_for_elems(Domain& d, int region) {
  TraceScope scope("CalcEnergyForElems");
  for (std::size_t i = 0; i < d.e.size(); ++i)
    if (d.region[i] == region) d.e[i] = std::max(0.0, d.e[i] - (d.p[i] + d.q[i]) * (1.0 - d.vol[i]));
}

void calc_pressure_for_elems(Domain& d, int region) {
  TraceScope scope("CalcPressureForElems");
  for (std::size_t i = 0; i < d.p.size(); ++i)
    if (d.region[i] == region) d.p[i] = std::max(0.0, (2.0 / 3.0) * d.e[i] / d.vol[i]);
}

void calc_sound_speed_for_elems(Domain& d, int region) {
  TraceScope scope("CalcSoundSpeedForElems");
  for (std::size_t i = 0; i < d.ss.size(); ++i)
    if (d.region[i] == region) d.ss[i] = std::sqrt(std::max(1e-12, d.p[i] / d.vol[i])) + 1e-3;
}

void eval_eos_for_elems(Domain& d, int region) {
  TraceScope scope("EvalEOSForElems");
  calc_energy_for_elems(d, region);
  calc_pressure_for_elems(d, region);
  calc_sound_speed_for_elems(d, region);
}

void apply_material_properties_for_elems(const LuleshConfig& config, Domain& d, int rank) {
  TraceScope scope("ApplyMaterialPropertiesForElems");
  simomp::parallel_region(rank, config.omp_threads, [&](int tid) {
    TraceScope worker("EvalEOSForElems_omp");
    // Regions are striped across the team.
    for (int r = tid; r < config.regions; r += config.omp_threads) eval_eos_for_elems(d, r);
  });
}

void update_volumes_for_elems(Domain& d) {
  TraceScope scope("UpdateVolumesForElems");
  for (auto& v : d.vol) v = 0.5 * (v + 1.0);
}

void lagrange_elements(simmpi::Comm& comm, const LuleshConfig& config, Domain& d) {
  TraceScope scope("LagrangeElements");
  calc_lagrange_elements(d);
  calc_q_for_elems(comm, config, d);
  apply_material_properties_for_elems(config, d, comm.rank());
  update_volumes_for_elems(d);
}

double calc_courant_constraint_for_elems(const Domain& d) {
  TraceScope scope("CalcCourantConstraintForElems");
  double dt = 1e-2;
  for (std::size_t i = 0; i < d.ss.size(); ++i)
    dt = std::min(dt, 0.5 * d.vol[i] / std::max(1e-9, d.ss[i]));
  return dt;
}

double calc_hydro_constraint_for_elems(const Domain& d) {
  TraceScope scope("CalcHydroConstraintForElems");
  double dt = 1e-2;
  for (std::size_t i = 0; i < d.vol.size(); ++i)
    dt = std::min(dt, 1e-2 * std::max(0.1, d.vol[i]));
  return dt;
}

void calc_time_constraints_for_elems(Domain& d) {
  TraceScope scope("CalcTimeConstraintsForElems");
  d.dt = std::min(calc_courant_constraint_for_elems(d), calc_hydro_constraint_for_elems(d));
}

void lagrange_leap_frog(simmpi::Comm& comm, const LuleshConfig& config, Domain& d) {
  TraceScope scope("LagrangeLeapFrog");
  lagrange_nodal(comm, config, d);
  lagrange_elements(comm, config, d);
  calc_time_constraints_for_elems(d);
}

void time_increment(simmpi::Comm& comm, Domain& d) {
  TraceScope scope("TimeIncrement");
  d.dt = comm.allreduce_value(d.dt, simmpi::ReduceOp::Min);
  d.time += d.dt;
}

}  // namespace

void lulesh_rank(simmpi::Comm& comm, const LuleshConfig& config) {
  TraceScope scope("main");
  comm.init();
  const int rank = comm.comm_rank();
  (void)comm.comm_size();

  Domain domain = allocate_domain(config, rank, comm.size());
  comm.barrier();

  for (int cycle = 0; cycle < config.cycles; ++cycle) {
    if (!simfault::hooks::begin_iteration(rank, cycle)) continue;  // SkipIter plans
    time_increment(comm, domain);
    // §V fault: process `proc` never invokes LagrangeLeapFrog — it stops
    // updating the domain and stops serving halo messages, starving its
    // neighbours.
    if (config.fault.type == FaultType::SkipLagrangeLeapFrog && config.fault.targets(rank)) continue;
    lagrange_leap_frog(comm, config, domain);
  }

  {
    TraceScope verify("VerifyAndWriteFinalOutput");
    if (config.energy_sink != nullptr)
      (*config.energy_sink)[static_cast<std::size_t>(rank)] = domain.e.front();
  }
  comm.finalize();
}

simmpi::RunReport run_lulesh(const LuleshConfig& config, const simmpi::WorldConfig& world) {
  simmpi::WorldConfig wc = world;
  wc.nranks = config.nranks;
  return simmpi::run_world(wc, [&config](simmpi::Comm& comm) { lulesh_rank(comm, config); });
}

}  // namespace difftrace::apps
