#include "apps/runner.hpp"

#include <memory>

namespace difftrace::apps {

namespace {

/// Ends the tracer session on scope exit even when run_world throws.
class SessionGuard {
 public:
  SessionGuard(std::shared_ptr<trace::FunctionRegistry> registry, instrument::CaptureLevel level,
               const std::string& codec) {
    instrument::Tracer::instance().begin_session(std::move(registry), level, codec);
  }
  ~SessionGuard() {
    if (!taken_ && instrument::Tracer::instance().session_active())
      (void)instrument::Tracer::instance().end_session();
  }
  SessionGuard(const SessionGuard&) = delete;
  SessionGuard& operator=(const SessionGuard&) = delete;

  [[nodiscard]] trace::TraceStore take() {
    taken_ = true;
    return instrument::Tracer::instance().end_session();
  }

 private:
  bool taken_ = false;
};

}  // namespace

TracedRun run_traced(const simmpi::WorldConfig& world, const simmpi::RankFn& fn,
                     instrument::CaptureLevel level, const std::string& codec) {
  SessionGuard guard(std::make_shared<trace::FunctionRegistry>(), level, codec);
  TracedRun result;
  result.report = simmpi::run_world(world, fn);
  result.store = guard.take();
  return result;
}

}  // namespace difftrace::apps
