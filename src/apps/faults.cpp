#include "apps/faults.hpp"

namespace difftrace::apps {

namespace {

using simfault::FaultClass;

constexpr FaultClass to_class(FaultType type) noexcept {
  switch (type) {
    case FaultType::None: return FaultClass::None;
    case FaultType::SwapBug: return FaultClass::SwapBug;
    case FaultType::DlBug: return FaultClass::DlBug;
    case FaultType::OmpNoCritical: return FaultClass::OmpNoCritical;
    case FaultType::WrongCollectiveSize: return FaultClass::WrongCollectiveSize;
    case FaultType::WrongCollectiveOp: return FaultClass::WrongCollectiveOp;
    case FaultType::SkipLagrangeLeapFrog: return FaultClass::SkipLagrangeLeapFrog;
  }
  return FaultClass::None;
}

}  // namespace

simfault::FaultPlan to_fault_plan(const FaultSpec& spec) {
  simfault::FaultPlan plan;
  plan.cls = to_class(spec.type);
  plan.rank = spec.proc;
  plan.thread = spec.thread;
  plan.iteration = spec.iteration;
  return plan;
}

FaultSpec to_fault_spec(const simfault::FaultPlan& plan) {
  FaultSpec spec;
  switch (plan.cls) {
    case FaultClass::None: spec.type = FaultType::None; break;
    case FaultClass::SwapBug: spec.type = FaultType::SwapBug; break;
    case FaultClass::DlBug: spec.type = FaultType::DlBug; break;
    case FaultClass::OmpNoCritical: spec.type = FaultType::OmpNoCritical; break;
    case FaultClass::WrongCollectiveSize: spec.type = FaultType::WrongCollectiveSize; break;
    case FaultClass::WrongCollectiveOp: spec.type = FaultType::WrongCollectiveOp; break;
    case FaultClass::SkipLagrangeLeapFrog: spec.type = FaultType::SkipLagrangeLeapFrog; break;
    default:
      throw simfault::PlanError("class", "'" + std::string(simfault::fault_class_name(plan.cls)) +
                                             "' is a runtime class, not an app-side fault");
  }
  spec.proc = plan.rank;
  spec.thread = plan.thread;
  spec.iteration = plan.iteration;
  return spec;
}

}  // namespace difftrace::apps
