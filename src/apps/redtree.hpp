// RedTree — a hand-rolled binomial reduction tree over point-to-point sends,
// the shape real MPI libraries use *inside* MPI_Reduce, written out in the
// application so every hop is a visible MPI_Send/MPI_Recv pair.
//
// Each round: every rank does traced local work, then the tree combines
// partial sums with stride doubling (rank r receives from r+stride when
// r % (2*stride) == 0, else sends to r-stride and leaves the round), and
// rank 0 broadcasts the total. Rank traces thin out up the tree — rank 0
// talks every level, odd ranks exactly once — giving a per-rank call-count
// gradient unlike any other app in the catalog.
//
// Deterministic: the tree is a pure function of (rank, nranks).
#pragma once

#include <cstdint>
#include <vector>

#include "apps/faults.hpp"
#include "simmpi/runtime.hpp"

namespace difftrace::apps {

struct RedtreeConfig {
  int nranks = 4;
  int rounds = 3;
  int work_size = 32;  // local work-array length per round
  std::uint64_t seed = 42;

  /// Optional per-rank sink for the last broadcast total (index = rank).
  std::vector<double>* total_sink = nullptr;
};

void redtree_rank(simmpi::Comm& comm, const RedtreeConfig& config);

[[nodiscard]] simmpi::RunReport run_redtree(const RedtreeConfig& config,
                                            const simmpi::WorldConfig& world);

}  // namespace difftrace::apps
