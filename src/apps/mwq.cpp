#include "apps/mwq.hpp"

#include <cmath>
#include <span>
#include <stdexcept>

#include "instrument/tracer.hpp"
#include "simfault/injector.hpp"
#include "util/prng.hpp"

namespace difftrace::apps {

namespace {

using instrument::TraceScope;

constexpr int kTaskTag = 21;
constexpr int kResultTag = 22;
/// A task whose first element is the pill value tells the worker to stop.
constexpr double kPoisonPill = -1.0;

/// The traced work kernel: a little arithmetic over the payload.
double execute_task(std::span<const double> payload) {
  TraceScope scope("executeTask");
  double acc = 0.0;
  for (const double v : payload) acc += std::sqrt(std::abs(v)) * 0.5 + v * 0.25;
  return acc;
}

void master_rank(simmpi::Comm& comm, const MwqConfig& config) {
  TraceScope scope("masterLoop");
  const int workers = comm.size() - 1;
  util::Xoshiro256 rng(config.seed);
  std::vector<double> task(static_cast<std::size_t>(config.task_size));

  // Dispatch round-robin; SkipIter plans drop a dispatch entirely (the
  // matching result is then never collected — bookkeeping stays consistent).
  std::vector<int> dispatched_to;
  dispatched_to.reserve(static_cast<std::size_t>(config.tasks));
  for (int t = 0; t < config.tasks; ++t) {
    for (auto& v : task) v = rng.uniform() * 2.0 - 1.0;
    if (!simfault::hooks::begin_iteration(0, t)) continue;
    const int worker = 1 + t % workers;
    comm.send(std::span<const double>(task), worker, kTaskTag);
    dispatched_to.push_back(worker);
  }

  // Collect one result per dispatched task, in dispatch order.
  double total = 0.0;
  for (const int worker : dispatched_to)
    total += comm.recv_value<double>(worker, kResultTag);

  // Poison pills shut the workers down.
  std::vector<double> pill(static_cast<std::size_t>(config.task_size), kPoisonPill);
  for (int w = 1; w <= workers; ++w) comm.send(std::span<const double>(pill), w, kTaskTag);

  if (config.result_sink != nullptr) (*config.result_sink)[0] = total;
}

void worker_rank(simmpi::Comm& comm, const MwqConfig& config) {
  TraceScope scope("workerLoop");
  const int rank = comm.rank();
  std::vector<double> task(static_cast<std::size_t>(config.task_size));
  double checksum = 0.0;
  int local_task = 0;
  for (;;) {
    comm.recv(std::span<double>(task), 0, kTaskTag);
    if (!task.empty() && task[0] == kPoisonPill) break;
    (void)simfault::hooks::begin_iteration(rank, local_task++);
    const double result = execute_task(task);
    checksum += result;
    comm.send_value(result, 0, kResultTag);
  }
  if (config.result_sink != nullptr)
    (*config.result_sink)[static_cast<std::size_t>(rank)] = checksum;
}

}  // namespace

void mwq_rank(simmpi::Comm& comm, const MwqConfig& config) {
  TraceScope scope("main");
  comm.init();
  const int rank = comm.comm_rank();
  if (comm.comm_size() < 2) throw std::invalid_argument("mwq: needs nranks >= 2");
  if (rank == 0)
    master_rank(comm, config);
  else
    worker_rank(comm, config);
  comm.finalize();
}

simmpi::RunReport run_mwq(const MwqConfig& config, const simmpi::WorldConfig& world) {
  simmpi::WorldConfig wc = world;
  wc.nranks = config.nranks;
  return simmpi::run_world(wc, [&config](simmpi::Comm& comm) { mwq_rank(comm, config); });
}

}  // namespace difftrace::apps
