#include "compress/codec.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"

namespace difftrace::compress {

std::vector<Symbol> SymbolDecoder::decode(std::span<const std::uint8_t> data) const {
  static auto& bytes_in = obs::counter("compress.decode_bytes_in");
  static auto& symbols_out = obs::counter("compress.decode_symbols_out");
  auto result = decode_prefix(data, kNoSymbolCap);
  if (!result.complete) throw std::runtime_error(result.error);
  bytes_in.add(data.size());
  symbols_out.add(result.symbols.size());
  return std::move(result.symbols);
}

Codec make_parlot_codec();
Codec make_lz78_codec();
Codec make_null_codec();

Codec make_codec(std::string_view name) {
  if (name == "parlot") return make_parlot_codec();
  if (name == "lz78") return make_lz78_codec();
  if (name == "null") return make_null_codec();
  throw std::invalid_argument("make_codec: unknown codec '" + std::string(name) + "'");
}

std::vector<std::string> codec_names() { return {"parlot", "lz78", "null"}; }

}  // namespace difftrace::compress
