// "parlot" codec: order-2 finite-context predictor with hit-run-length
// coding.
//
// The encoder keeps a hash table mapping the last two symbols (the context)
// to the symbol that followed that context most recently. For each incoming
// symbol it asks the predictor for its guess:
//   - hit:  extend the current hit run (no output),
//   - miss: emit the pending run length and the literal symbol, then update
//           the table.
// Tight loops in function-call traces make the predictor converge after one
// iteration, so a loop iterated a million times costs a handful of bytes.
// The decoder maintains the identical predictor and replays the stream.
//
// Wire format: a sequence of records, each `varint(run) varint(literal)`,
// terminated at flush by `varint(run) 0xFF-marker` if a run is pending with
// no literal. Concretely we encode record := varint(run_length) followed by
// varint(literal+1); a literal field of 0 means "end-of-chunk, run only".
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "compress/codec.hpp"

namespace difftrace::compress {

namespace detail {

/// Shared predictor model: context (prev2, prev1) -> last successor.
class Order2Predictor {
 public:
  [[nodiscard]] bool predict(Symbol& out) const noexcept;
  void update(Symbol actual);

 private:
  [[nodiscard]] std::uint64_t context() const noexcept {
    return (static_cast<std::uint64_t>(prev2_) << 32) | prev1_;
  }

  std::unordered_map<std::uint64_t, Symbol> table_;
  Symbol prev1_ = 0xFFFFFFFFu;
  Symbol prev2_ = 0xFFFFFFFFu;
  bool warm_ = false;  // true once two symbols have been seen
  int seen_ = 0;
};

}  // namespace detail

class ParlotEncoder final : public SymbolEncoder {
 public:
  void push(Symbol sym) override;
  void flush() override;
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept override { return out_; }
  [[nodiscard]] std::uint64_t symbol_count() const noexcept override { return pushed_; }

 private:
  detail::Order2Predictor predictor_;
  std::vector<std::uint8_t> out_;
  std::uint64_t run_ = 0;
  std::uint64_t pushed_ = 0;
};

class ParlotDecoder final : public SymbolDecoder {
 public:
  [[nodiscard]] PrefixDecode decode_prefix(std::span<const std::uint8_t> data,
                                           std::uint64_t max_symbols) const override;
};

}  // namespace difftrace::compress
