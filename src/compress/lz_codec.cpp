#include "compress/lz_codec.hpp"

#include <stdexcept>
#include <string>

#include "util/varint.hpp"

namespace difftrace::compress {

void Lz78Encoder::push(Symbol sym) {
  ++pushed_;
  const auto key = std::make_pair(current_, sym);
  if (const auto it = dict_.find(key); it != dict_.end()) {
    current_ = it->second;
    return;
  }
  util::put_varint(out_, current_);
  util::put_varint(out_, static_cast<std::uint64_t>(sym) + 1);
  dict_.emplace(key, next_index_++);
  current_ = 0;
}

void Lz78Encoder::flush() {
  if (current_ != 0) {
    util::put_varint(out_, current_);
    util::put_varint(out_, 0);  // flush record: phrase only
    current_ = 0;
  }
}

PrefixDecode Lz78Decoder::decode_prefix(std::span<const std::uint8_t> data,
                                        std::uint64_t max_symbols) const {
  PrefixDecode result;
  // phrases[i] = (parent phrase, symbol); index 0 is the empty phrase.
  std::vector<std::pair<std::uint64_t, Symbol>> phrases = {{0, 0}};
  std::vector<Symbol> scratch;
  // Expands `index` into scratch (in reverse); empty optional on a dangling
  // phrase reference. Parent indices are always smaller than the phrase's
  // own index, so the chain walk terminates.
  const auto expand = [&](std::uint64_t index) -> bool {
    scratch.clear();
    while (index != 0) {
      if (index >= phrases.size()) return false;
      scratch.push_back(phrases[index].second);
      index = phrases[index].first;
    }
    return true;
  };

  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t record_start = pos;
    std::uint64_t phrase = 0;
    std::uint64_t literal = 0;
    try {
      phrase = util::get_varint(data, pos);
      literal = util::get_varint(data, pos);
    } catch (const std::exception&) {
      result.consumed = record_start;
      result.error = "lz78 decode: truncated record at byte " + std::to_string(record_start);
      return result;
    }
    if (!expand(phrase)) {
      result.consumed = record_start;
      result.error = "lz78 decode: phrase index out of range (byte " + std::to_string(record_start) + ")";
      return result;
    }
    if (result.symbols.size() + scratch.size() + (literal != 0 ? 1 : 0) > max_symbols) {
      result.consumed = record_start;
      result.error = "lz78 decode: symbol cap exceeded at byte " + std::to_string(record_start);
      return result;
    }
    result.symbols.insert(result.symbols.end(), scratch.rbegin(), scratch.rend());
    if (literal != 0) {
      const auto sym = static_cast<Symbol>(literal - 1);
      result.symbols.push_back(sym);
      phrases.emplace_back(phrase, sym);
    }
    result.consumed = pos;
  }
  result.complete = true;
  return result;
}

Codec make_lz78_codec() {
  return Codec{std::make_unique<Lz78Encoder>(), std::make_unique<Lz78Decoder>()};
}

}  // namespace difftrace::compress
