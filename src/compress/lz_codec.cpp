#include "compress/lz_codec.hpp"

#include <stdexcept>

#include "util/varint.hpp"

namespace difftrace::compress {

void Lz78Encoder::push(Symbol sym) {
  ++pushed_;
  const auto key = std::make_pair(current_, sym);
  if (const auto it = dict_.find(key); it != dict_.end()) {
    current_ = it->second;
    return;
  }
  util::put_varint(out_, current_);
  util::put_varint(out_, static_cast<std::uint64_t>(sym) + 1);
  dict_.emplace(key, next_index_++);
  current_ = 0;
}

void Lz78Encoder::flush() {
  if (current_ != 0) {
    util::put_varint(out_, current_);
    util::put_varint(out_, 0);  // flush record: phrase only
    current_ = 0;
  }
}

std::vector<Symbol> Lz78Decoder::decode(std::span<const std::uint8_t> data) const {
  // phrases[i] = (parent phrase, symbol); index 0 is the empty phrase.
  std::vector<std::pair<std::uint64_t, Symbol>> phrases = {{0, 0}};
  std::vector<Symbol> out;
  std::vector<Symbol> scratch;
  const auto expand = [&](std::uint64_t index) {
    scratch.clear();
    while (index != 0) {
      if (index >= phrases.size()) throw std::runtime_error("lz78 decode: phrase index out of range");
      scratch.push_back(phrases[index].second);
      index = phrases[index].first;
    }
    out.insert(out.end(), scratch.rbegin(), scratch.rend());
  };

  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::uint64_t phrase = util::get_varint(data, pos);
    const std::uint64_t literal = util::get_varint(data, pos);
    expand(phrase);
    if (literal != 0) {
      const auto sym = static_cast<Symbol>(literal - 1);
      out.push_back(sym);
      phrases.emplace_back(phrase, sym);
    }
  }
  return out;
}

Codec make_lz78_codec() {
  return Codec{std::make_unique<Lz78Encoder>(), std::make_unique<Lz78Decoder>()};
}

}  // namespace difftrace::compress
