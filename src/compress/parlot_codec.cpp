#include "compress/parlot_codec.hpp"

#include <stdexcept>
#include <string>

#include "util/varint.hpp"

namespace difftrace::compress {

namespace detail {

bool Order2Predictor::predict(Symbol& out) const noexcept {
  if (!warm_) return false;
  const auto it = table_.find(context());
  if (it == table_.end()) return false;
  out = it->second;
  return true;
}

void Order2Predictor::update(Symbol actual) {
  if (warm_) table_[context()] = actual;
  prev2_ = prev1_;
  prev1_ = actual;
  if (!warm_) {
    if (++seen_ >= 2) warm_ = true;
  }
}

}  // namespace detail

void ParlotEncoder::push(Symbol sym) {
  ++pushed_;
  Symbol guess = 0;
  if (predictor_.predict(guess) && guess == sym) {
    ++run_;
  } else {
    util::put_varint(out_, run_);
    util::put_varint(out_, static_cast<std::uint64_t>(sym) + 1);  // +1: 0 is the run-only marker
    run_ = 0;
  }
  predictor_.update(sym);
}

void ParlotEncoder::flush() {
  if (run_ != 0) {
    util::put_varint(out_, run_);
    util::put_varint(out_, 0);  // run-only chunk terminator
    run_ = 0;
  }
}

PrefixDecode ParlotDecoder::decode_prefix(std::span<const std::uint8_t> data,
                                          std::uint64_t max_symbols) const {
  PrefixDecode result;
  detail::Order2Predictor predictor;
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t record_start = pos;
    std::uint64_t run = 0;
    std::uint64_t literal = 0;
    try {
      run = util::get_varint(data, pos);
      literal = util::get_varint(data, pos);
    } catch (const std::exception&) {
      result.consumed = record_start;
      result.error = "parlot decode: truncated record at byte " + std::to_string(record_start);
      return result;
    }
    if (result.symbols.size() + run + (literal != 0 ? 1 : 0) > max_symbols) {
      result.consumed = record_start;
      result.error = "parlot decode: symbol cap exceeded at byte " + std::to_string(record_start);
      return result;
    }
    for (std::uint64_t i = 0; i < run; ++i) {
      Symbol guess = 0;
      if (!predictor.predict(guess)) {
        // A hit run can only replay symbols the predictor can reproduce; a
        // failed mid-run prediction means the run length is corrupt. The
        // partially-replayed run is discarded (roll back to record_start).
        result.symbols.resize(result.symbols.size() - i);
        result.consumed = record_start;
        result.error = "parlot decode: run claimed where predictor has no prediction (byte " +
                       std::to_string(record_start) + ")";
        return result;
      }
      result.symbols.push_back(guess);
      predictor.update(guess);
    }
    if (literal != 0) {
      const auto sym = static_cast<Symbol>(literal - 1);
      result.symbols.push_back(sym);
      predictor.update(sym);
    }
    result.consumed = pos;
  }
  result.complete = true;
  return result;
}

Codec make_parlot_codec() {
  return Codec{std::make_unique<ParlotEncoder>(), std::make_unique<ParlotDecoder>()};
}

}  // namespace difftrace::compress
