#include "compress/parlot_codec.hpp"

#include <stdexcept>

#include "util/varint.hpp"

namespace difftrace::compress {

namespace detail {

bool Order2Predictor::predict(Symbol& out) const noexcept {
  if (!warm_) return false;
  const auto it = table_.find(context());
  if (it == table_.end()) return false;
  out = it->second;
  return true;
}

void Order2Predictor::update(Symbol actual) {
  if (warm_) table_[context()] = actual;
  prev2_ = prev1_;
  prev1_ = actual;
  if (!warm_) {
    if (++seen_ >= 2) warm_ = true;
  }
}

}  // namespace detail

void ParlotEncoder::push(Symbol sym) {
  ++pushed_;
  Symbol guess = 0;
  if (predictor_.predict(guess) && guess == sym) {
    ++run_;
  } else {
    util::put_varint(out_, run_);
    util::put_varint(out_, static_cast<std::uint64_t>(sym) + 1);  // +1: 0 is the run-only marker
    run_ = 0;
  }
  predictor_.update(sym);
}

void ParlotEncoder::flush() {
  if (run_ != 0) {
    util::put_varint(out_, run_);
    util::put_varint(out_, 0);  // run-only chunk terminator
    run_ = 0;
  }
}

std::vector<Symbol> ParlotDecoder::decode(std::span<const std::uint8_t> data) const {
  std::vector<Symbol> out;
  detail::Order2Predictor predictor;
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::uint64_t run = util::get_varint(data, pos);
    const std::uint64_t literal = util::get_varint(data, pos);
    for (std::uint64_t i = 0; i < run; ++i) {
      Symbol guess = 0;
      if (!predictor.predict(guess))
        throw std::runtime_error("parlot decode: run claimed where predictor has no prediction");
      out.push_back(guess);
      predictor.update(guess);
    }
    if (literal != 0) {
      const auto sym = static_cast<Symbol>(literal - 1);
      out.push_back(sym);
      predictor.update(sym);
    }
  }
  return out;
}

Codec make_parlot_codec() {
  return Codec{std::make_unique<ParlotEncoder>(), std::make_unique<ParlotDecoder>()};
}

}  // namespace difftrace::compress
