// Streaming symbol codecs for trace compression.
//
// ParLOT's key property is *incremental, on-the-fly* compression of the
// per-thread function-ID streams: every pushed symbol is absorbed
// immediately, the encoder can be flushed at any moment (so traces survive a
// crash or deadlock truncation), and decoding recovers the exact symbol
// sequence. The codecs here encode an abstract stream of 32-bit symbols —
// the trace layer maps call/return events onto symbols.
//
// Three codecs are provided (see DESIGN.md "Codec choice" ablation):
//   "parlot" — order-2 context predictor + hit-run-length coding; mirrors the
//              spirit of ParLOT's lightweight incremental scheme and achieves
//              very high ratios on loopy traces.
//   "lz78"   — classic LZ78 over the symbol alphabet; stronger on low-repeat
//              streams, slightly slower.
//   "null"   — plain varint literals; the "no compression" baseline.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace difftrace::compress {

using Symbol = std::uint32_t;

/// Incremental encoder. Push symbols one at a time; `bytes()` is valid after
/// `flush()` and also mid-stream (everything pushed before the last flush is
/// decodable — this is the crash-survivability property).
class SymbolEncoder {
 public:
  virtual ~SymbolEncoder() = default;

  virtual void push(Symbol sym) = 0;

  /// Drains internal state into the output buffer. Idempotent; push() may be
  /// called again afterwards (the stream continues).
  virtual void flush() = 0;

  [[nodiscard]] virtual const std::vector<std::uint8_t>& bytes() const noexcept = 0;

  /// Number of symbols pushed so far (pre-compression).
  [[nodiscard]] virtual std::uint64_t symbol_count() const noexcept = 0;
};

/// One-shot decoder matching a codec's encoder output.
class SymbolDecoder {
 public:
  virtual ~SymbolDecoder() = default;

  /// Decodes an entire encoded buffer (as produced by flush()). Throws
  /// std::runtime_error on malformed input.
  [[nodiscard]] virtual std::vector<Symbol> decode(std::span<const std::uint8_t> data) const = 0;
};

struct Codec {
  std::unique_ptr<SymbolEncoder> encoder;
  std::unique_ptr<SymbolDecoder> decoder;
};

/// Factory. Known names: "parlot", "lz78", "null". Throws
/// std::invalid_argument for unknown names.
[[nodiscard]] Codec make_codec(std::string_view name);

/// Names accepted by make_codec, for sweeps.
[[nodiscard]] std::vector<std::string> codec_names();

}  // namespace difftrace::compress
