// Streaming symbol codecs for trace compression.
//
// ParLOT's key property is *incremental, on-the-fly* compression of the
// per-thread function-ID streams: every pushed symbol is absorbed
// immediately, the encoder can be flushed at any moment (so traces survive a
// crash or deadlock truncation), and decoding recovers the exact symbol
// sequence. The codecs here encode an abstract stream of 32-bit symbols —
// the trace layer maps call/return events onto symbols.
//
// Three codecs are provided (see DESIGN.md "Codec choice" ablation):
//   "parlot" — order-2 context predictor + hit-run-length coding; mirrors the
//              spirit of ParLOT's lightweight incremental scheme and achieves
//              very high ratios on loopy traces.
//   "lz78"   — classic LZ78 over the symbol alphabet; stronger on low-repeat
//              streams, slightly slower.
//   "null"   — plain varint literals; the "no compression" baseline.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace difftrace::compress {

using Symbol = std::uint32_t;

/// Incremental encoder. Push symbols one at a time; `bytes()` is valid after
/// `flush()` and also mid-stream (everything pushed before the last flush is
/// decodable — this is the crash-survivability property).
class SymbolEncoder {
 public:
  virtual ~SymbolEncoder() = default;

  virtual void push(Symbol sym) = 0;

  /// Drains internal state into the output buffer. Idempotent; push() may be
  /// called again afterwards (the stream continues).
  virtual void flush() = 0;

  [[nodiscard]] virtual const std::vector<std::uint8_t>& bytes() const noexcept = 0;

  /// Number of symbols pushed so far (pre-compression).
  [[nodiscard]] virtual std::uint64_t symbol_count() const noexcept = 0;
};

/// Cap on symbols produced by a bounded decode. Guards against corrupt
/// run-length / phrase fields that would otherwise expand a few flipped bits
/// into gigabytes of output (a decode-bomb hang). Trusted paths pass
/// kNoSymbolCap.
inline constexpr std::uint64_t kDefaultSymbolCap = std::uint64_t{1} << 24;
inline constexpr std::uint64_t kNoSymbolCap = ~std::uint64_t{0};

/// Result of a bounded best-effort decode (see SymbolDecoder::decode_prefix).
struct PrefixDecode {
  std::vector<Symbol> symbols;
  /// Bytes consumed through the last fully-decoded record. Always <= the
  /// input size; the suffix [consumed, size) is the unreadable tail.
  std::size_t consumed = 0;
  /// True when the whole buffer decoded cleanly (and the cap was not hit).
  bool complete = false;
  /// Why decoding stopped, when !complete.
  std::string error;
};

/// One-shot decoder matching a codec's encoder output.
class SymbolDecoder {
 public:
  virtual ~SymbolDecoder() = default;

  /// Decodes an entire encoded buffer (as produced by flush()). Throws
  /// std::runtime_error on malformed input.
  [[nodiscard]] std::vector<Symbol> decode(std::span<const std::uint8_t> data) const;

  /// Best-effort bounded decode: consumes records until the buffer ends, a
  /// record is malformed/truncated, or `max_symbols` would be exceeded —
  /// then stops cleanly at the last valid record boundary instead of
  /// throwing or over-reading. Since every encoder flush ends on a record
  /// boundary, a stream truncated mid-flush salvages everything up to the
  /// last complete record (ParLOT's crash-survivability property).
  [[nodiscard]] virtual PrefixDecode decode_prefix(std::span<const std::uint8_t> data,
                                                   std::uint64_t max_symbols = kDefaultSymbolCap) const = 0;
};

struct Codec {
  std::unique_ptr<SymbolEncoder> encoder;
  std::unique_ptr<SymbolDecoder> decoder;
};

/// Factory. Known names: "parlot", "lz78", "null". Throws
/// std::invalid_argument for unknown names.
[[nodiscard]] Codec make_codec(std::string_view name);

/// Names accepted by make_codec, for sweeps.
[[nodiscard]] std::vector<std::string> codec_names();

}  // namespace difftrace::compress
