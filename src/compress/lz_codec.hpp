// "lz78" codec: incremental LZ78 over the symbol alphabet.
//
// Output is a sequence of (phrase, literal) pairs: `varint(phrase_index)`
// followed by `varint(literal+1)`. Phrase index 0 is the empty phrase. A
// literal field of 0 marks a flush record (phrase only, no dictionary
// growth), which keeps mid-stream flushes decodable — the property the
// trace writer relies on for crash/deadlock survivability.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "compress/codec.hpp"

namespace difftrace::compress {

class Lz78Encoder final : public SymbolEncoder {
 public:
  void push(Symbol sym) override;
  void flush() override;
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept override { return out_; }
  [[nodiscard]] std::uint64_t symbol_count() const noexcept override { return pushed_; }

 private:
  // (phrase index, symbol) -> extended phrase index
  std::map<std::pair<std::uint64_t, Symbol>, std::uint64_t> dict_;
  std::vector<std::uint8_t> out_;
  std::uint64_t current_ = 0;  // 0 = empty phrase
  std::uint64_t next_index_ = 1;
  std::uint64_t pushed_ = 0;
};

class Lz78Decoder final : public SymbolDecoder {
 public:
  [[nodiscard]] PrefixDecode decode_prefix(std::span<const std::uint8_t> data,
                                           std::uint64_t max_symbols) const override;
};

}  // namespace difftrace::compress
