#include "compress/null_codec.hpp"

#include "util/varint.hpp"

namespace difftrace::compress {

void NullEncoder::push(Symbol sym) {
  ++pushed_;
  util::put_varint(out_, sym);
}

std::vector<Symbol> NullDecoder::decode(std::span<const std::uint8_t> data) const {
  std::vector<Symbol> out;
  std::size_t pos = 0;
  while (pos < data.size()) out.push_back(static_cast<Symbol>(util::get_varint(data, pos)));
  return out;
}

Codec make_null_codec() {
  return Codec{std::make_unique<NullEncoder>(), std::make_unique<NullDecoder>()};
}

}  // namespace difftrace::compress
