#include "compress/null_codec.hpp"

#include <stdexcept>
#include <string>

#include "util/varint.hpp"

namespace difftrace::compress {

void NullEncoder::push(Symbol sym) {
  ++pushed_;
  util::put_varint(out_, sym);
}

PrefixDecode NullDecoder::decode_prefix(std::span<const std::uint8_t> data,
                                        std::uint64_t max_symbols) const {
  PrefixDecode result;
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t record_start = pos;
    if (result.symbols.size() + 1 > max_symbols) {
      result.consumed = record_start;
      result.error = "null decode: symbol cap exceeded at byte " + std::to_string(record_start);
      return result;
    }
    try {
      result.symbols.push_back(static_cast<Symbol>(util::get_varint(data, pos)));
    } catch (const std::exception&) {
      result.consumed = record_start;
      result.error = "null decode: truncated varint at byte " + std::to_string(record_start);
      return result;
    }
    result.consumed = pos;
  }
  result.complete = true;
  return result;
}

Codec make_null_codec() {
  return Codec{std::make_unique<NullEncoder>(), std::make_unique<NullDecoder>()};
}

}  // namespace difftrace::compress
