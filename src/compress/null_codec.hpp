// "null" codec: plain varint literals, no modeling. The uncompressed
// baseline for the compression-ratio experiment (E8).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "compress/codec.hpp"

namespace difftrace::compress {

class NullEncoder final : public SymbolEncoder {
 public:
  void push(Symbol sym) override;
  void flush() override {}
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept override { return out_; }
  [[nodiscard]] std::uint64_t symbol_count() const noexcept override { return pushed_; }

 private:
  std::vector<std::uint8_t> out_;
  std::uint64_t pushed_ = 0;
};

class NullDecoder final : public SymbolDecoder {
 public:
  [[nodiscard]] PrefixDecode decode_prefix(std::span<const std::uint8_t> data,
                                           std::uint64_t max_symbols) const override;
};

}  // namespace difftrace::compress
