// The instrumentation layer: DiffTrace's stand-in for Pin + ParLOT.
//
// Real ParLOT attaches to a binary and records every function call/return
// per thread, at one of two capture levels: *main image* (application code,
// API entry points, and `@plt` stubs) or *all images* (additionally the
// library-internal helpers). Here, instrumented code declares its functions
// with RAII `TraceScope` guards; the guard emits a Call event on entry and a
// Return event on destruction into a writer bound to the current thread.
//
// API wrappers (MPI_*, GOMP_*, memcpy, ...) construct their scopes with
// `plt = true`, which additionally brackets the call with a synthetic
// `<name>@plt` stub — the artifact Pin sees when the main image calls into a
// shared library, and the thing Table I's "PLT" filter removes.
//
// Usage:
//   Tracer::instance().begin_session(registry, CaptureLevel::MainImage);
//   ... per thread: ThreadBinding bind({proc, thread}); run code ...
//   trace::TraceStore store = Tracer::instance().end_session();
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "trace/event.hpp"
#include "trace/registry.hpp"
#include "trace/store.hpp"
#include "trace/writer.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace difftrace::instrument {

enum class CaptureLevel {
  MainImage,  // application functions, API entry points, @plt stubs
  AllImages,  // additionally Image::Internal library helpers
};

class Tracer {
 public:
  [[nodiscard]] static Tracer& instance();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Starts a tracing session. Throws std::logic_error if one is active.
  void begin_session(std::shared_ptr<trace::FunctionRegistry> registry,
                     CaptureLevel level = CaptureLevel::MainImage,
                     std::string codec_name = "parlot");

  /// Harvests all per-thread writers into a TraceStore and closes the
  /// session. Throws std::logic_error if none is active.
  [[nodiscard]] trace::TraceStore end_session();

  [[nodiscard]] bool session_active() const;
  [[nodiscard]] CaptureLevel level() const;

  /// Binds the calling thread to a trace stream. One binding per thread at
  /// a time; ThreadBinding is the RAII front door. Re-binding a key that
  /// already has a stream appends to it — successive parallel regions of
  /// the same process keep writing the same per-thread trace file, exactly
  /// as an OS thread reused across OpenMP regions would.
  void bind_current_thread(trace::TraceKey key);
  void unbind_current_thread() noexcept;

  /// Instrumentation callbacks (no-ops when the thread is unbound, the
  /// session is closed, or the capture level excludes the image).
  void on_call(std::string_view name, trace::Image image);
  void on_return(std::string_view name, trace::Image image);

  /// Semantic annotation callback: attaches an op record (peer/tag/
  /// collective params, see trace/op.hpp) to the current thread's stream.
  /// Recorded at every capture level — ops are metadata about the API call
  /// the runtime is executing, not extra events. No-op when unbound.
  void on_op(trace::OpRecord op);

  /// Watchdog hook: permanently freezes every writer in the session, so
  /// post-abort unwinding cannot append events (deadlock truncation).
  void freeze_all();

 private:
  Tracer() = default;

  // Per-event hot paths (on_call/on_return/on_op) bypass this mutex via the
  // thread-local writer cached at bind time; the mutex guards session
  // lifecycle and the writer map only.
  mutable util::Mutex mutex_;
  bool active_ DT_GUARDED_BY(mutex_) = false;
  CaptureLevel level_ DT_GUARDED_BY(mutex_) = CaptureLevel::MainImage;
  std::string codec_name_ DT_GUARDED_BY(mutex_) = "parlot";
  std::shared_ptr<trace::FunctionRegistry> registry_ DT_GUARDED_BY(mutex_);
  std::map<trace::TraceKey, std::unique_ptr<trace::TraceWriter>> writers_ DT_GUARDED_BY(mutex_);
};

/// RAII thread binding. Throws if no session is active.
class ThreadBinding {
 public:
  explicit ThreadBinding(trace::TraceKey key) { Tracer::instance().bind_current_thread(key); }
  ~ThreadBinding() { Tracer::instance().unbind_current_thread(); }
  ThreadBinding(const ThreadBinding&) = delete;
  ThreadBinding& operator=(const ThreadBinding&) = delete;
};

/// RAII thread binding that is a no-op when no session is active, so the
/// simulated runtimes can run untraced (e.g. in correctness unit tests).
class ScopedBinding {
 public:
  explicit ScopedBinding(trace::TraceKey key) {
    auto& tracer = Tracer::instance();
    if (tracer.session_active()) {
      tracer.bind_current_thread(key);
      bound_ = true;
    }
  }
  ~ScopedBinding() {
    if (bound_) Tracer::instance().unbind_current_thread();
  }
  ScopedBinding(const ScopedBinding&) = delete;
  ScopedBinding& operator=(const ScopedBinding&) = delete;

 private:
  bool bound_ = false;
};

/// RAII call/return guard. `plt` wraps the call in a synthetic @plt stub.
class TraceScope {
 public:
  explicit TraceScope(std::string_view name, trace::Image image = trace::Image::Main, bool plt = false);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  std::string name_;
  trace::Image image_;
  bool plt_;
};

}  // namespace difftrace::instrument

/// Instruments the enclosing scope as application (main-image) code.
#define DIFFTRACE_FN(name) ::difftrace::instrument::TraceScope difftrace_scope_##__LINE__(name)
