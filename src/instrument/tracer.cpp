#include "instrument/tracer.hpp"

#include <atomic>
#include <stdexcept>

namespace difftrace::instrument {

namespace {

// Hot-path state is thread-local so instrumented code never touches the
// Tracer mutex per event: the writer and registry are cached at bind time
// (bind/unbind happen at thread start/end, strictly inside a session).
struct ThreadState {
  trace::TraceWriter* writer = nullptr;
  trace::FunctionRegistry* registry = nullptr;
};
thread_local ThreadState t_state;

std::atomic<CaptureLevel> g_level{CaptureLevel::MainImage};

[[nodiscard]] bool captures(trace::Image image) noexcept {
  return g_level.load(std::memory_order_relaxed) == CaptureLevel::AllImages ||
         image != trace::Image::Internal;
}

}  // namespace

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::begin_session(std::shared_ptr<trace::FunctionRegistry> registry, CaptureLevel level,
                           std::string codec_name) {
  const util::MutexLock lock(mutex_);
  if (active_) throw std::logic_error("Tracer: a session is already active");
  if (!registry) throw std::invalid_argument("Tracer: registry must not be null");
  active_ = true;
  level_ = level;
  g_level.store(level, std::memory_order_relaxed);
  codec_name_ = std::move(codec_name);
  registry_ = std::move(registry);
  writers_.clear();
}

trace::TraceStore Tracer::end_session() {
  const util::MutexLock lock(mutex_);
  if (!active_) throw std::logic_error("Tracer: no active session");
  trace::TraceStore store(registry_);
  for (const auto& [key, writer] : writers_) store.absorb(*writer);
  active_ = false;
  registry_.reset();
  writers_.clear();
  return store;
}

bool Tracer::session_active() const {
  const util::MutexLock lock(mutex_);
  return active_;
}

CaptureLevel Tracer::level() const {
  const util::MutexLock lock(mutex_);
  return level_;
}

void Tracer::bind_current_thread(trace::TraceKey key) {
  const util::MutexLock lock(mutex_);
  if (!active_) throw std::logic_error("Tracer: bind_current_thread without an active session");
  if (t_state.writer != nullptr) throw std::logic_error("Tracer: thread already bound");
  auto& slot = writers_[key];
  if (!slot) slot = std::make_unique<trace::TraceWriter>(key, codec_name_);
  t_state.writer = slot.get();
  t_state.registry = registry_.get();
}

void Tracer::unbind_current_thread() noexcept { t_state = ThreadState{}; }

void Tracer::on_call(std::string_view name, trace::Image image) {
  const ThreadState state = t_state;
  if (state.writer == nullptr || !captures(image)) return;
  state.writer->record(trace::EventKind::Call, state.registry->intern(name, image));
}

void Tracer::on_return(std::string_view name, trace::Image image) {
  const ThreadState state = t_state;
  if (state.writer == nullptr || !captures(image)) return;
  state.writer->record(trace::EventKind::Return, state.registry->intern(name, image));
}

void Tracer::on_op(trace::OpRecord op) {
  const ThreadState state = t_state;
  if (state.writer == nullptr) return;
  state.writer->annotate(std::move(op));
}

void Tracer::freeze_all() {
  const util::MutexLock lock(mutex_);
  for (const auto& [key, writer] : writers_) writer->freeze();
}

TraceScope::TraceScope(std::string_view name, trace::Image image, bool plt)
    : name_(name), image_(image), plt_(plt) {
  auto& tracer = Tracer::instance();
  if (plt_) tracer.on_call(name_ + "@plt", trace::Image::Main);
  tracer.on_call(name_, image_);
}

TraceScope::~TraceScope() {
  auto& tracer = Tracer::instance();
  tracer.on_return(name_, image_);
  if (plt_) tracer.on_return(name_ + "@plt", trace::Image::Main);
}

}  // namespace difftrace::instrument
