// Quickstart: the full DiffTrace loop in ~60 lines.
//
//   1. Run the program twice under the tracer — once known-good, once with
//      the bug (here: odd/even sort with the §II-G swapBug in rank 5).
//   2. Sweep filters × attribute configs into a ranking table.
//   3. Read the verdict and print diffNLR(suspect).
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "apps/oddeven.hpp"
#include "apps/runner.hpp"
#include "core/pipeline.hpp"

using namespace difftrace;

namespace {

trace::TraceStore collect(apps::FaultSpec fault) {
  apps::OddEvenConfig app;
  app.nranks = 16;
  app.elements_per_rank = 16;
  app.fault = fault;

  simmpi::WorldConfig world;
  world.nranks = app.nranks;

  auto run = apps::run_traced(world, [app](simmpi::Comm& comm) { apps::odd_even_rank(comm, app); });
  if (run.report.deadlock) std::printf("[watchdog] %s\n", run.report.deadlock_info.c_str());
  return std::move(run.store);
}

}  // namespace

int main() {
  std::printf("collecting the known-good run...\n");
  const auto normal = collect({});
  std::printf("collecting the buggy run (swapBug in rank 5, iteration 7)...\n\n");
  const auto faulty = collect({apps::FaultType::SwapBug, 5, -1, 7});

  core::DiffTrace difftrace(normal, faulty);

  core::SweepConfig sweep;
  sweep.filters = {core::FilterSpec::mpi_all(), core::FilterSpec::mpi_send_recv()};
  const auto table = difftrace.rank(sweep);
  std::printf("%s\n", table.render().c_str());

  const auto suspect = table.consensus_thread();
  std::printf("most suspicious trace: %s\n\n", suspect.c_str());

  const auto session = difftrace.make_session(core::FilterSpec::mpi_all());
  std::printf("diffNLR(%s):   ('-' = normal only, '+' = faulty only)\n", suspect.c_str());
  std::printf("%s\n", session.diffnlr({5, 0}).render(/*color=*/true).c_str());
  return 0;
}
