// The §II walkthrough of the paper, reproduced end to end on a live run:
// raw filtered traces (Table II), their NLR (Table III), the formal context
// (Table IV), the concept lattice (Figure 3), and the JSM heatmap
// (Figure 4) — for odd/even sort with 4 MPI processes.
#include <cstdio>

#include "apps/oddeven.hpp"
#include "apps/runner.hpp"
#include "core/attributes.hpp"
#include "core/fca.hpp"
#include "core/jsm.hpp"
#include "core/nlr.hpp"
#include "core/pipeline.hpp"
#include "util/table.hpp"

using namespace difftrace;

int main() {
  apps::OddEvenConfig app;
  app.nranks = 4;
  app.elements_per_rank = 8;
  simmpi::WorldConfig world;
  world.nranks = app.nranks;
  auto run = apps::run_traced(world, [app](simmpi::Comm& comm) { apps::odd_even_rank(comm, app); });
  const auto& store = run.store;

  const auto filter = core::FilterSpec::mpi_all();

  std::printf("=== Table II: pre-processed traces (MPI filter) ===\n");
  for (const auto& key : store.keys()) {
    std::printf("--- T%d ---\n", key.proc);
    for (const auto& token : filter.apply(store, key)) std::printf("  %s\n", token.c_str());
  }

  std::printf("\n=== Table III: NLR of traces (K=10) ===\n");
  core::TokenTable tokens;
  core::LoopTable loops;
  std::vector<core::NlrProgram> programs;
  for (const auto& key : store.keys()) {
    programs.push_back(core::build_nlr(tokens.intern_all(filter.apply(store, key)), loops));
    std::printf("--- T%d ---\n", key.proc);
    std::printf("%s", core::program_to_string(programs.back(), tokens).c_str());
  }
  for (std::size_t l = 0; l < loops.size(); ++l) {
    std::printf("L%zu = [", l);
    for (std::size_t i = 0; i < loops.body(l).size(); ++i)
      std::printf("%s%s", i ? ", " : "", core::item_label(loops.body(l)[i], tokens).c_str());
    std::printf("]\n");
  }

  std::printf("\n=== Table IV: formal context (sing.noFreq attributes) ===\n");
  core::FormalContext context;
  std::vector<std::set<std::string>> attr_sets;
  for (std::size_t g = 0; g < programs.size(); ++g) {
    context.add_object("Trace " + std::to_string(g));
    attr_sets.push_back(core::mine_attributes(
        programs[g], tokens, loops,
        {core::AttrKind::Single, core::FreqMode::NoFreq, /*deep=*/false}));
    for (const auto& attr : attr_sets.back()) context.set_incidence(g, attr);
  }
  std::printf("%s", context.render().c_str());

  std::printf("\n=== Figure 3: concept lattice (incremental construction) ===\n");
  const auto lattice = core::incremental_lattice(context);
  std::printf("%s", lattice.render(context).c_str());

  std::printf("\n=== Figure 4: pairwise Jaccard similarity matrix ===\n");
  const auto jsm = core::jsm_from_attributes(attr_sets);
  std::printf("%s", util::render_heatmap(jsm, "JSM (dark = similar)").c_str());
  for (std::size_t i = 0; i < jsm.rows(); ++i) {
    for (std::size_t j = 0; j < jsm.cols(); ++j) std::printf(" %5.3f", jsm(i, j));
    std::printf("\n");
  }
  return 0;
}
