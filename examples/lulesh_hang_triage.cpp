// §V scenario: triaging a LULESH hang.
//
// Rank 2 silently stops calling LagrangeLeapFrog; the job deadlocks and the
// watchdog truncates every trace at its last point of progress — exactly
// what ParLOT's incremental flushing gives the paper. DiffTrace then shows
// per-rank diffNLRs whose truncation points tell the story.
#include <cstdio>

#include "apps/lulesh.hpp"
#include "apps/runner.hpp"
#include "core/pipeline.hpp"

using namespace difftrace;

namespace {

trace::TraceStore collect(apps::FaultSpec fault) {
  apps::LuleshConfig app;
  app.nranks = 8;
  app.omp_threads = 4;
  app.elements_per_rank = 24;
  app.cycles = 4;
  app.fault = fault;
  simmpi::WorldConfig world;
  world.nranks = app.nranks;
  auto run = apps::run_traced(world, [app](simmpi::Comm& comm) { apps::lulesh_rank(comm, app); });
  if (run.report.deadlock) std::printf("[watchdog] %s\n", run.report.deadlock_info.c_str());
  return std::move(run.store);
}

}  // namespace

int main() {
  std::printf("running LULESH proxy fault-free (8 procs x 4 threads, 4 cycles)...\n");
  const auto normal = collect({});
  std::printf("running LULESH proxy with rank 2 skipping LagrangeLeapFrog...\n\n");
  const auto faulty = collect({apps::FaultType::SkipLagrangeLeapFrog, 2, -1, -1});

  core::FilterSpec filter;
  filter.keep(core::Category::MpiAll).keep_custom("^Lagrange|^TimeIncrement|^Comm[SMR]");

  core::SweepConfig sweep;
  sweep.filters = {filter, core::FilterSpec::mpi_all()};
  const auto table = core::sweep(normal, faulty, sweep);
  std::printf("%s\n", table.render().c_str());

  const core::Session session(normal, faulty, filter, {});
  for (const int rank : {2, 1, 3}) {
    std::printf("diffNLR(%d.0) — where did rank %d stop making progress?\n", rank, rank);
    std::printf("%s\n", session.diffnlr({rank, 0}).render(true).c_str());
  }
  return 0;
}
