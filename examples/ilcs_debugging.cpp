// §IV scenario: debugging ILCS-TSP with DiffTrace.
//
// Runs ILCS (8 MPI processes × 4 worker threads, like the paper) twice —
// fault-free and with the §IV-B unprotected-critical-section bug in worker
// 4 of process 6 — then sweeps the Table VI filter/attribute grid and
// prints the ranking table plus diffNLR(6.4).
#include <cstdio>

#include "apps/ilcs.hpp"
#include "apps/runner.hpp"
#include "core/pipeline.hpp"

using namespace difftrace;

namespace {

trace::TraceStore collect(apps::FaultSpec fault) {
  apps::IlcsConfig app;
  app.nranks = 8;
  app.workers = 4;
  app.ncities = 14;
  app.fault = fault;
  simmpi::WorldConfig world;
  world.nranks = app.nranks;
  auto run = apps::run_traced(world, [app](simmpi::Comm& comm) { apps::ilcs_rank(comm, app); });
  if (run.report.deadlock) std::printf("[watchdog] %s\n", run.report.deadlock_info.c_str());
  return std::move(run.store);
}

}  // namespace

int main() {
  std::printf("running ILCS-TSP fault-free (8 procs x 4 workers)...\n");
  const auto normal = collect({});
  std::printf("running ILCS-TSP with OmpNoCritical in worker 4 of process 6...\n\n");
  const auto faulty = collect({apps::FaultType::OmpNoCritical, 6, 4, -1});

  // Table VI filter grid: memory + OMP-critical + the custom user-code
  // filter, with and without returns.
  core::FilterSpec mem_crit_cust;
  mem_crit_cust.keep(core::Category::Memory)
      .keep(core::Category::OmpCritical)
      .keep_custom("^CPU_Exec$");
  core::FilterSpec mem_cust;
  mem_cust.keep(core::Category::Memory).keep_custom("^CPU_Exec$");

  core::SweepConfig sweep;
  sweep.filters = {mem_crit_cust, mem_cust};
  const auto table = core::sweep(normal, faulty, sweep);
  std::printf("%s\n", table.render().c_str());
  std::printf("consensus suspicious trace: %s (expected 6.4)\n\n",
              table.consensus_thread().c_str());

  const core::Session session(normal, faulty, mem_crit_cust, {});
  std::printf("diffNLR(6.4):\n%s\n", session.diffnlr({6, 4}).render(true).c_str());
  return 0;
}
