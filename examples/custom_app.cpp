// Bringing your own application to DiffTrace.
//
// This example is NOT one of the bundled miniapps: it shows the three
// integration points a downstream user needs —
//   1. instrument functions with DIFFTRACE_FN / TraceScope,
//   2. run ranks through simmpi::run_world under apps::run_traced,
//   3. hand the two TraceStores to the analysis pipeline.
//
// The toy "pipeline stage" app: every rank repeatedly loads a block,
// transforms it, and forwards it to the next rank; rank 0 produces, the
// last rank consumes. The injected regression: a new "validateBlock" call
// was added in one version, and on rank 2 it retries ("revalidates") in a
// loop — the kind of upgrade-introduced behaviour drift the paper's
// relative-debugging story targets.
#include <cstdio>
#include <span>

#include "apps/runner.hpp"
#include "core/pipeline.hpp"
#include "core/triage.hpp"
#include "instrument/tracer.hpp"

using namespace difftrace;

namespace {

constexpr int kBlocks = 12;

void load_block(std::span<double> block, int index) {
  DIFFTRACE_FN("loadBlock");
  for (std::size_t i = 0; i < block.size(); ++i)
    block[i] = static_cast<double>(index) + static_cast<double>(i) * 0.5;
}

void transform_block(std::span<double> block) {
  DIFFTRACE_FN("transformBlock");
  for (auto& v : block) v = v * 1.5 + 1.0;
}

void validate_block(std::span<const double> block, int retries) {
  DIFFTRACE_FN("validateBlock");
  for (int r = 0; r < retries; ++r) {
    instrument::TraceScope retry_scope("revalidateBlock");
    double checksum = 0.0;
    for (const auto v : block) checksum += v;
    (void)checksum;
  }
}

/// `buggy`: rank 2 revalidates every block three times instead of zero.
void stage_rank(simmpi::Comm& comm, bool buggy) {
  instrument::TraceScope scope("main");
  comm.init();
  const int rank = comm.comm_rank();
  const int size = comm.comm_size();

  double block[8];
  for (int b = 0; b < kBlocks; ++b) {
    if (rank == 0) {
      load_block(block, b);
    } else {
      comm.recv(std::span<double>(block), rank - 1, b);
    }
    transform_block(block);
    validate_block(block, buggy && rank == 2 ? 3 : 0);
    if (rank + 1 < size) comm.send(std::span<const double>(block), rank + 1, b);
  }
  comm.finalize();
}

trace::TraceStore collect(bool buggy) {
  simmpi::WorldConfig world;
  world.nranks = 6;
  return apps::run_traced(world, [buggy](simmpi::Comm& comm) { stage_rank(comm, buggy); }).store;
}

}  // namespace

int main() {
  std::printf("tracing the last-known-good version...\n");
  const auto normal = collect(false);
  std::printf("tracing the upgraded (regressed) version...\n\n");
  const auto faulty = collect(true);

  // Triage first: what kind of change is this?
  core::FilterSpec filter;
  filter.keep_custom("Block$|^MPI_");  // this app's own vocabulary + MPI
  std::printf("%s\n", core::triage(normal, faulty, filter).render().c_str());

  // Then the standard ranking sweep over the app-specific filter.
  core::SweepConfig sweep;
  sweep.filters = {filter};
  const auto table = core::sweep(normal, faulty, sweep);
  std::printf("%s\n", table.render().c_str());

  const core::Session session(normal, faulty, filter, {});
  const auto suspect = table.consensus_thread();
  std::printf("diffNLR(%s):\n%s", suspect.c_str(),
              session.diffnlr({table.consensus_process(), 0}).render(true).c_str());
  return 0;
}
