#!/usr/bin/env python3
"""Validate a `difftrace matrix` report against schema version 1.

The report is the machine-readable output of the apps x fault-plans
accuracy wall (`difftrace matrix --out FILE`). The schema is documented in
DESIGN.md ("Fault injection") and mirrored by cli/matrix.cpp. CI runs this
over a pruned grid so the verdict contract — stable field names, coherent
run/verdict pairs, a grid that actually covers apps x faults — is
enforced, not just described.

With --golden GOLDEN.json the report is also diffed against a pinned
verdict wall: every `pinned` cell present in the golden file must
reproduce its golden verdict, rank_first, and check_ok bits exactly
(deterministic apps promise run-to-run stable archives, so a drifting
pinned cell is a regression, not noise). Unpinned cells — apps with
wall-clock pacing or racing threads — are never compared.

Usage: tools/check_matrix.py REPORT.json [--golden GOLDEN.json]
           [--require-apps N] [--require-faults N]
Exit code: 0 when the report validates, 1 otherwise (problems on stderr).

Stdlib only — no third-party JSON-schema machinery.
"""

from __future__ import annotations

import argparse
import json
import sys

RUNS = {"completed", "hang", "failed", "skipped"}
VERDICTS = {
    "clean",
    "false-positive",
    "hang",
    "detected",
    "rank-only",
    "check-only",
    "silent",
    "skipped",
    "failed",
}
# Verdicts a run state may legally carry. `hang` runs always resolve to the
# `hang` verdict — the bounded-watchdog contract for injected deadlocks.
RUN_VERDICTS = {
    "completed": {"clean", "false-positive", "detected", "rank-only", "check-only", "silent"},
    "hang": {"hang"},
    "failed": {"failed"},
    "skipped": {"skipped"},
}


class Problems:
    def __init__(self) -> None:
        self.messages: list[str] = []

    def add(self, message: str) -> None:
        self.messages.append(message)

    def expect(self, obj: dict, key: str, kinds, where: str) -> object:
        """Checks obj[key] exists with one of `kinds`; returns it (or None)."""
        if key not in obj:
            self.add(f"{where}: missing key '{key}'")
            return None
        value = obj[key]
        if not isinstance(value, kinds) or isinstance(value, bool) and kinds is not bool:
            self.add(f"{where}: '{key}' has type {type(value).__name__}")
            return None
        return value


def check_cell(cell: dict, where: str, apps: list, faults: list, problems: Problems) -> None:
    app = problems.expect(cell, "app", str, where)
    problems.expect(cell, "fault", str, where)
    spec = problems.expect(cell, "spec", str, where)
    problems.expect(cell, "pinned", bool, where)
    run = problems.expect(cell, "run", str, where)
    problems.expect(cell, "fired", bool, where)
    problems.expect(cell, "injected_rank", int, where)
    problems.expect(cell, "consensus", int, where)
    rank_first = problems.expect(cell, "rank_first", bool, where)
    problems.expect(cell, "check_exit", int, where)
    rules = problems.expect(cell, "check_rules", list, where)
    problems.expect(cell, "check_ok", bool, where)
    verdict = problems.expect(cell, "verdict", str, where)

    if app is not None and apps and app not in apps:
        problems.add(f"{where}: app '{app}' not in the report's apps list")
    if spec is not None and faults and spec not in faults:
        problems.add(f"{where}: spec '{spec}' not in the report's faults list")
    if rules is not None and not all(isinstance(r, str) for r in rules):
        problems.add(f"{where}: check_rules entries must be strings")
    if run is not None and run not in RUNS:
        problems.add(f"{where}: unknown run state '{run}'")
    if verdict is not None and verdict not in VERDICTS:
        problems.add(f"{where}: unknown verdict '{verdict}'")
    if run in RUN_VERDICTS and verdict is not None and verdict not in RUN_VERDICTS[run]:
        problems.add(f"{where}: run '{run}' cannot carry verdict '{verdict}'")
    if verdict == "detected" and rank_first is False:
        problems.add(f"{where}: verdict 'detected' with rank_first false")
    injected = cell.get("injected_rank")
    consensus = cell.get("consensus")
    if (
        rank_first is True
        and isinstance(injected, int)
        and isinstance(consensus, int)
        and injected != consensus
    ):
        problems.add(f"{where}: rank_first but consensus {consensus} != injected {injected}")


def check_summary(doc: dict, cells: list, problems: Problems) -> None:
    summary = problems.expect(doc, "summary", dict, "matrix")
    if summary is None:
        return
    counted = {
        "cells": len(cells),
        "hangs": sum(1 for c in cells if isinstance(c, dict) and c.get("run") == "hang"),
        "skipped": sum(1 for c in cells if isinstance(c, dict) and c.get("run") == "skipped"),
        "failed": sum(1 for c in cells if isinstance(c, dict) and c.get("run") == "failed"),
        "detected": sum(1 for c in cells if isinstance(c, dict) and c.get("verdict") == "detected"),
        "rank_first": sum(1 for c in cells if isinstance(c, dict) and c.get("rank_first") is True),
    }
    for key, expected in counted.items():
        value = problems.expect(summary, key, int, "summary")
        if value is not None and value != expected:
            problems.add(f"summary: '{key}' is {value} but the cells say {expected}")
    problems.expect(summary, "check_ok", int, "summary")


def check_matrix(doc: object, require_apps: int, require_faults: int) -> list[str]:
    problems = Problems()
    if not isinstance(doc, dict):
        return ["document root is not an object"]

    version = problems.expect(doc, "matrix_version", int, "matrix")
    if version is not None and version != 1:
        problems.add(f"matrix: unsupported matrix_version {version}")
    problems.expect(doc, "generator", str, "matrix")
    problems.expect(doc, "jobs", int, "matrix")
    problems.expect(doc, "cell_timeout_ms", int, "matrix")

    apps = problems.expect(doc, "apps", list, "matrix") or []
    faults = problems.expect(doc, "faults", list, "matrix") or []
    if not all(isinstance(a, str) for a in apps):
        problems.add("matrix: apps entries must be strings")
    if not all(isinstance(f, str) for f in faults):
        problems.add("matrix: faults entries must be strings")
    if len(set(apps)) != len(apps):
        problems.add("matrix: duplicate app in apps list")
    if len(set(faults)) != len(faults):
        problems.add("matrix: duplicate spec in faults list")
    if len(apps) < require_apps:
        problems.add(f"matrix: {len(apps)} app(s), required at least {require_apps}")
    if len(faults) < require_faults:
        problems.add(f"matrix: {len(faults)} fault column(s), required at least {require_faults}")

    cells = problems.expect(doc, "cells", list, "matrix")
    if cells is None:
        return problems.messages
    if apps and faults and len(cells) != len(apps) * len(faults):
        problems.add(
            f"matrix: {len(cells)} cell(s) but {len(apps)} apps x {len(faults)} faults"
            f" = {len(apps) * len(faults)}"
        )
    seen = set()
    for i, cell in enumerate(cells):
        where = f"cells[{i}]"
        if not isinstance(cell, dict):
            problems.add(f"{where}: not an object")
            continue
        check_cell(cell, where, apps, faults, problems)
        key = (cell.get("app"), cell.get("spec"))
        if key in seen:
            problems.add(f"{where}: duplicate cell {key}")
        seen.add(key)

    check_summary(doc, cells, problems)
    return problems.messages


def check_golden(doc: dict, golden: dict) -> list[str]:
    """Pinned-cell regression wall: every pinned golden cell must reproduce."""
    problems: list[str] = []
    cells = {
        (c.get("app"), c.get("spec")): c
        for c in doc.get("cells", [])
        if isinstance(c, dict)
    }
    for gold in golden.get("cells", []):
        if not isinstance(gold, dict) or not gold.get("pinned"):
            continue
        key = (gold.get("app"), gold.get("spec"))
        cell = cells.get(key)
        if cell is None:
            problems.append(f"golden: pinned cell {key} missing from the report")
            continue
        for field in ("verdict", "run", "rank_first", "check_ok", "fired"):
            if field in gold and cell.get(field) != gold[field]:
                problems.append(
                    f"golden: {key} {field} regressed: "
                    f"got {cell.get(field)!r}, pinned {gold[field]!r}"
                )
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="matrix JSON written by `difftrace matrix --out`")
    parser.add_argument("--golden", help="pinned verdict wall to diff against")
    parser.add_argument(
        "--require-apps", type=int, default=0, help="minimum number of app columns"
    )
    parser.add_argument(
        "--require-faults", type=int, default=0, help="minimum number of fault rows"
    )
    args = parser.parse_args()

    try:
        with open(args.report, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_matrix: cannot read {args.report}: {e}", file=sys.stderr)
        return 1

    problems = check_matrix(doc, args.require_apps, args.require_faults)
    if args.golden and not problems:
        try:
            with open(args.golden, encoding="utf-8") as f:
                golden = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"check_matrix: cannot read {args.golden}: {e}", file=sys.stderr)
            return 1
        problems += check_golden(doc, golden)

    if problems:
        for message in problems:
            print(f"check_matrix: {message}", file=sys.stderr)
        print(f"check_matrix: {args.report}: {len(problems)} problem(s)", file=sys.stderr)
        return 1

    cells = doc.get("cells", [])
    summary = doc.get("summary", {})
    print(
        f"check_matrix: {args.report}: ok ({len(doc.get('apps', []))} apps x "
        f"{len(doc.get('faults', []))} faults, {len(cells)} cells, "
        f"{summary.get('detected', 0)} detected, {summary.get('hangs', 0)} hang)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
