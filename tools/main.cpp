// The difftrace command-line tool. All logic lives in src/cli (testable);
// this is just argv marshalling.
#include <iostream>
#include <string>
#include <vector>

#include "cli/commands.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return difftrace::cli::run_command(args, std::cout, std::cerr);
}
