#!/usr/bin/env python3
"""Standalone-compile every public header under src/.

A header that only compiles because some .cpp happens to include its
dependencies first is a refactoring landmine: reordering includes or adding
the header to a new TU breaks the build far from the actual culprit. This
tool wraps each header in a one-line TU and runs the compiler in syntax-only
mode, so every header is proven self-sufficient (IWYU at the include-set
level). Wired into CI next to the build jobs.

Usage: tools/check_headers.py [--compiler g++] [--std c++20] [--jobs N] [HEADER...]
Exit code: 0 when every header compiles standalone, 1 otherwise.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC_DIR = REPO_ROOT / "src"


def find_headers() -> list[pathlib.Path]:
    return sorted(SRC_DIR.rglob("*.hpp"))


def check_one(header: pathlib.Path, compiler: str, std: str) -> tuple[pathlib.Path, str]:
    """Compile `header` alone; returns (header, error_output) — empty on success."""
    rel = header.relative_to(SRC_DIR).as_posix()
    cmd = [
        compiler,
        f"-std={std}",
        "-fsyntax-only",
        "-Wall",
        "-Wextra",
        "-Werror",
        "-I",
        str(SRC_DIR),
        "-x",
        "c++",
        "-",  # the synthetic TU arrives on stdin
    ]
    proc = subprocess.run(
        cmd,
        input=f'#include "{rel}"\n',
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    if proc.returncode == 0:
        return header, ""
    output = proc.stderr.strip() or proc.stdout.strip() or f"exit code {proc.returncode}"
    return header, output


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--compiler", default="g++", help="compiler driver (default: g++)")
    parser.add_argument("--std", default="c++20", help="language standard (default: c++20)")
    parser.add_argument("--jobs", type=int, default=4, help="parallel compiles (default: 4)")
    parser.add_argument(
        "headers",
        nargs="*",
        type=pathlib.Path,
        help="specific headers to check (default: every src/**/*.hpp)",
    )
    args = parser.parse_args()

    headers = [h.resolve() for h in args.headers] if args.headers else find_headers()
    if not headers:
        print("no headers found under src/", file=sys.stderr)
        return 1

    failures: list[tuple[pathlib.Path, str]] = []
    with concurrent.futures.ThreadPoolExecutor(max_workers=max(1, args.jobs)) as pool:
        futures = [pool.submit(check_one, h, args.compiler, args.std) for h in headers]
        for future in concurrent.futures.as_completed(futures):
            header, error = future.result()
            if error:
                failures.append((header, error))

    for header, error in sorted(failures):
        rel = header.relative_to(REPO_ROOT)
        print(f"FAIL {rel}", file=sys.stderr)
        for line in error.splitlines():
            print(f"  {line}", file=sys.stderr)

    ok = len(headers) - len(failures)
    print(f"check_headers: {ok}/{len(headers)} headers compile standalone")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
